(* MECF tests: Theorem 2 made executable — the flow view agrees with
   the combinatorial view on coverage and on optima. *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Mecf = Monpos.Mecf
module Pop = Monpos_topo.Pop
module Graph = Monpos_graph.Graph
module Prng = Monpos_util.Prng

let pop10_instance seed =
  Instance.of_pop (Pop.make_preset `Pop10 ~seed) ~seed:(seed * 3)

(* the MECF MIP carries one flow variable per (traffic, edge) pair, so
   the cross-validation properties run on a trimmed matrix *)
let small_instance seed =
  let pop = Pop.make_preset `Pop10 ~seed in
  let endpoints =
    List.filteri (fun i _ -> i < 6) (Pop.endpoints pop)
  in
  let m =
    Monpos_traffic.Traffic.generate pop.Monpos_topo.Pop.graph ~endpoints
      ~seed:(seed * 7)
  in
  Instance.make pop.Monpos_topo.Pop.graph m

let test_figure3_mecf_optimum () =
  let inst = Instance.figure3 () in
  let sol = Mecf.solve_mip inst in
  Alcotest.(check int) "optimum 2" 2 sol.Passive.count;
  Alcotest.(check bool) "proved" true sol.Passive.optimal;
  Alcotest.(check (float 1e-9)) "full" 1.0 sol.Passive.fraction

let test_figure3_flow_heuristic_feasible () =
  let inst = Instance.figure3 () in
  let sol = Mecf.flow_heuristic inst in
  Alcotest.(check bool) "feasible" true
    (Passive.validate ~k:1.0 inst sol.Passive.monitors)

let test_coverage_via_flow_figure3 () =
  let inst = Instance.figure3 () in
  Alcotest.(check (float 1e-6)) "central link" 4.0
    (Mecf.coverage_via_flow inst ~monitors:[ 0 ]);
  Alcotest.(check (float 1e-6)) "optimal pair" 6.0
    (Mecf.coverage_via_flow inst ~monitors:[ 1; 2 ]);
  Alcotest.(check (float 1e-6)) "nothing" 0.0
    (Mecf.coverage_via_flow inst ~monitors:[])

let prop_flow_coverage_equals_combinatorial =
  (* Theorem 2's accounting: max flow through selected w_e nodes =
     monitored volume *)
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"max-flow coverage equals combinatorial coverage"
    ~count:30 gen (fun seed ->
      let inst = pop10_instance (1 + (seed mod 19)) in
      let rng = Prng.create seed in
      let ne = Graph.num_edges inst.Instance.graph in
      let monitors =
        List.filter (fun _ -> Prng.bool rng) (List.init ne Fun.id)
      in
      let flow = Mecf.coverage_via_flow inst ~monitors in
      let comb = Instance.coverage inst monitors in
      abs_float (flow -. comb) < 1e-6 *. (1.0 +. comb))

let prop_mecf_mip_matches_exact =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"mecf mip optimum equals combinatorial optimum"
    ~count:6 gen (fun seed ->
      let inst = small_instance (1 + (seed mod 11)) in
      let rng = Prng.create seed in
      let k = 0.7 +. Prng.float rng 0.3 in
      let m = Mecf.solve_mip ~k inst in
      let e = Passive.solve_exact ~k inst in
      m.Passive.optimal && e.Passive.optimal
      && m.Passive.count = e.Passive.count
      && Passive.validate ~k inst m.Passive.monitors)

let prop_flow_heuristic_feasible =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"flow heuristic always feasible, never better than exact"
    ~count:12 gen (fun seed ->
      let inst = small_instance (1 + (seed mod 13)) in
      let rng = Prng.create seed in
      let k = 0.7 +. Prng.float rng 0.3 in
      let f = Mecf.flow_heuristic ~k inst in
      let e = Passive.solve_exact ~k inst in
      Passive.validate ~k inst f.Passive.monitors
      && f.Passive.count >= e.Passive.count)

let suite =
  [
    Alcotest.test_case "figure 3 mecf optimum" `Quick test_figure3_mecf_optimum;
    Alcotest.test_case "figure 3 flow heuristic" `Quick test_figure3_flow_heuristic_feasible;
    Alcotest.test_case "coverage via flow" `Quick test_coverage_via_flow_figure3;
    QCheck_alcotest.to_alcotest prop_flow_coverage_equals_combinatorial;
    QCheck_alcotest.to_alcotest prop_mecf_mip_matches_exact;
    QCheck_alcotest.to_alcotest prop_flow_heuristic_feasible;
  ]
