(* Branch-and-bound tests: exact agreement with brute force on random
   0-1 programs, statuses, and integer (non-binary) variables. *)

module Model = Monpos_lp.Model
module Mip = Monpos_lp.Mip

let check_float = Alcotest.(check (float 1e-6))

let status_name = function
  | Mip.Optimal -> "optimal"
  | Mip.Feasible -> "feasible"
  | Mip.Infeasible -> "infeasible"
  | Mip.Unbounded -> "unbounded"
  | Mip.No_solution -> "no_solution"

let check_status expected got =
  Alcotest.(check string) "status" (status_name expected) (status_name got)

let test_knapsack () =
  (* classic: values 60,100,120 weights 10,20,30 cap 50 -> 220 *)
  let m = Model.create Model.Maximize in
  let x1 = Model.add_var m ~obj:60.0 Model.Binary in
  let x2 = Model.add_var m ~obj:100.0 Model.Binary in
  let x3 = Model.add_var m ~obj:120.0 Model.Binary in
  Model.add_constr m [ (10.0, x1); (20.0, x2); (30.0, x3) ] Model.Le 50.0;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 220.0 r.objective;
  let sol = Option.get r.solution in
  check_float "x1" 0.0 sol.(0);
  check_float "x2" 1.0 sol.(1);
  check_float "x3" 1.0 sol.(2)

let test_integer_rounding_is_not_enough () =
  (* LP relaxation optimum rounds to an infeasible point; B&B must
     still find the true optimum. max x + y st -2x + 2y >= 1,
     2x + 2y <= 7, ints -> LP opt (1.5, 2) ; MIP opt (1, 2) -> 3 *)
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1.0 ~ub:10.0 Model.Integer in
  let y = Model.add_var m ~obj:1.0 ~ub:10.0 Model.Integer in
  Model.add_constr m [ (-2.0, x); (2.0, y) ] Model.Ge 1.0;
  Model.add_constr m [ (2.0, x); (2.0, y) ] Model.Le 7.0;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 3.0 r.objective

let test_infeasible_integer () =
  (* 2x = 1 has no integer solution *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 ~ub:10.0 Model.Integer in
  Model.add_constr m [ (2.0, x) ] Model.Eq 1.0;
  let r = Mip.solve m in
  check_status Mip.Infeasible r.status

let test_unbounded_integer () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1.0 Model.Integer in
  ignore x;
  let r = Mip.solve m in
  check_status Mip.Unbounded r.status

let test_mixed_integer_continuous () =
  (* min 3b + y st y >= 2.5 - 10 b, y >= 0, b binary.
     b=0 -> y=2.5 cost 2.5 ; b=1 -> y=0 cost 3. Optimum 2.5. *)
  let m = Model.create Model.Minimize in
  let b = Model.add_var m ~obj:3.0 Model.Binary in
  let y = Model.add_var m ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, y); (10.0, b) ] Model.Ge 2.5;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 2.5 r.objective

let test_equality_binary () =
  (* exactly 2 of 4 picked, minimize weighted sum *)
  let m = Model.create Model.Minimize in
  let costs = [| 5.0; 1.0; 3.0; 2.0 |] in
  let xs = Array.map (fun c -> Model.add_var m ~obj:c Model.Binary) costs in
  Model.add_constr m (Array.to_list (Array.map (fun x -> (1.0, x)) xs)) Model.Eq 2.0;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 3.0 r.objective

let test_vertex_cover_c5 () =
  (* minimum vertex cover of a 5-cycle is 3 *)
  let m = Model.create Model.Minimize in
  let xs = Array.init 5 (fun _ -> Model.add_var m ~obj:1.0 Model.Binary) in
  for i = 0 to 4 do
    Model.add_constr m [ (1.0, xs.(i)); (1.0, xs.((i + 1) mod 5)) ] Model.Ge 1.0
  done;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 3.0 r.objective

let test_solve_or_fail () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 ~lb:2.0 ~ub:9.0 Model.Integer in
  ignore x;
  let sol, obj = Mip.solve_or_fail m in
  check_float "obj" 2.0 obj;
  check_float "x" 2.0 sol.(0)

(* Brute force a random 0-1 program and compare. *)
let brute_force_binary model n =
  let best = ref None in
  let x = Array.make n 0.0 in
  let rec go i =
    if i = n then begin
      if Model.value_feasible model x then begin
        let v = Model.objective_value model x in
        let better =
          match (!best, Model.direction model) with
          | None, _ -> true
          | Some b, Model.Minimize -> v < b -. 1e-12
          | Some b, Model.Maximize -> v > b +. 1e-12
        in
        if better then best := Some v
      end
    end
    else begin
      x.(i) <- 0.0;
      go (i + 1);
      x.(i) <- 1.0;
      go (i + 1);
      x.(i) <- 0.0
    end
  in
  go 0;
  !best

let prop_matches_brute_force =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"mip matches brute force on random 0-1 programs"
    ~count:80 gen (fun seed ->
      let rng = Monpos_util.Prng.create seed in
      let n = 3 + Monpos_util.Prng.int rng 6 in
      let rows = 1 + Monpos_util.Prng.int rng 5 in
      let dir =
        if Monpos_util.Prng.bool rng then Model.Minimize else Model.Maximize
      in
      let m = Model.create dir in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~obj:(float_of_int (Monpos_util.Prng.range rng (-10) 10))
              Model.Binary)
      in
      for _ = 1 to rows do
        let terms =
          Array.to_list
            (Array.map
               (fun x -> (float_of_int (Monpos_util.Prng.range rng (-5) 5), x))
               xs)
        in
        let sense =
          match Monpos_util.Prng.int rng 3 with
          | 0 -> Model.Le
          | 1 -> Model.Ge
          | _ -> Model.Le
        in
        let rhs = float_of_int (Monpos_util.Prng.range rng (-6) 12) in
        Model.add_constr m terms sense rhs
      done;
      let r = Mip.solve m in
      match brute_force_binary m n with
      | None -> r.status = Mip.Infeasible
      | Some best ->
        r.status = Mip.Optimal && abs_float (r.objective -. best) < 1e-6)

let prop_solution_is_feasible =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"mip incumbents are feasible and integral" ~count:80
    gen (fun seed ->
      let rng = Monpos_util.Prng.create seed in
      let n = 2 + Monpos_util.Prng.int rng 8 in
      let m = Model.create Model.Maximize in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~obj:(1.0 +. Monpos_util.Prng.float rng 9.0)
              Model.Binary)
      in
      let weights = Array.map (fun _ -> 1.0 +. Monpos_util.Prng.float rng 9.0) xs in
      let cap = 1.0 +. Monpos_util.Prng.float rng (float_of_int n *. 4.0) in
      Model.add_constr m
        (List.init n (fun i -> (weights.(i), xs.(i))))
        Model.Le cap;
      let r = Mip.solve m in
      match (r.status, r.solution) with
      | Mip.Optimal, Some x -> Model.value_feasible m x
      | _ -> false)

let prop_branching_rules_agree =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"pseudocost and most-fractional find the same optimum"
    ~count:40 gen (fun seed ->
      let rng = Monpos_util.Prng.create seed in
      let n = 3 + Monpos_util.Prng.int rng 6 in
      let m = Model.create Model.Minimize in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~obj:(1.0 +. Monpos_util.Prng.float rng 9.0)
              Model.Binary)
      in
      (* covering constraints *)
      for _ = 1 to 2 + Monpos_util.Prng.int rng 4 do
        let terms =
          Array.to_list
            (Array.map
               (fun x ->
                 ((if Monpos_util.Prng.bool rng then 1.0 else 0.0), x))
               xs)
        in
        if List.exists (fun (c, _) -> c > 0.0) terms then
          Model.add_constr m terms Model.Ge 1.0
      done;
      let a =
        Mip.solve ~options:{ Mip.default_options with Mip.branching = Mip.Pseudocost } m
      in
      let b =
        Mip.solve
          ~options:{ Mip.default_options with Mip.branching = Mip.Most_fractional }
          m
      in
      match (a.Mip.status, b.Mip.status) with
      | Mip.Infeasible, Mip.Infeasible -> true
      | Mip.Optimal, Mip.Optimal -> abs_float (a.Mip.objective -. b.Mip.objective) < 1e-6
      | _ -> false)

let suite =
  [
    Alcotest.test_case "knapsack" `Quick test_knapsack;
    Alcotest.test_case "rounding not enough" `Quick test_integer_rounding_is_not_enough;
    Alcotest.test_case "infeasible integer" `Quick test_infeasible_integer;
    Alcotest.test_case "unbounded integer" `Quick test_unbounded_integer;
    Alcotest.test_case "mixed integer continuous" `Quick test_mixed_integer_continuous;
    Alcotest.test_case "equality on binaries" `Quick test_equality_binary;
    Alcotest.test_case "vertex cover C5" `Quick test_vertex_cover_c5;
    Alcotest.test_case "solve_or_fail" `Quick test_solve_or_fail;
    QCheck_alcotest.to_alcotest prop_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_branching_rules_agree;
    QCheck_alcotest.to_alcotest prop_solution_is_feasible;
  ]
