(* Active monitoring tests: probe computation covers all coverable
   links, placements are valid covers, ILP <= greedy <= thiran, ILP
   matches brute force on small candidate sets. *)

module Active = Monpos.Active
module Pop = Monpos_topo.Pop
module Synthetic = Monpos_topo.Synthetic
module Graph = Monpos_graph.Graph
module Paths = Monpos_graph.Paths
module Prng = Monpos_util.Prng

let probes_cover_links g probes expected =
  let covered = Array.make (Graph.num_edges g) false in
  List.iter
    (fun (p : Active.probe) ->
      List.iter (fun e -> covered.(e) <- true) p.Active.path.Paths.edges)
    probes;
  List.for_all (fun e -> covered.(e)) expected

let test_probes_cover_ring () =
  let g = Synthetic.ring 6 in
  let candidates = [ 0; 3 ] in
  let probes = Active.compute_probes g ~candidates in
  let coverable = Active.coverable_links g ~candidates in
  Alcotest.(check int) "ring fully coverable" 6 (List.length coverable);
  Alcotest.(check bool) "probes cover coverable" true
    (probes_cover_links g probes coverable);
  (* all probe a-endpoints are candidates *)
  List.iter
    (fun (p : Active.probe) ->
      Alcotest.(check bool) "endpoint_a candidate" true
        (List.mem p.Active.endpoint_a candidates))
    probes

let test_probe_paths_are_shortest () =
  let pop = Pop.make_preset `Pop15 ~seed:2 in
  let g = pop.Pop.graph in
  let candidates =
    match Pop.routers pop with a :: b :: c :: _ -> [ a; b; c ] | _ -> []
  in
  let probes = Active.compute_probes g ~candidates in
  List.iter
    (fun (p : Active.probe) ->
      let sp =
        Option.get
          (Paths.shortest_path g ~weight:(fun _ -> 1.0) p.Active.endpoint_a
             p.Active.endpoint_b)
      in
      Alcotest.(check (float 1e-9)) "probe is a shortest path" sp.Paths.cost
        p.Active.path.Paths.cost)
    probes

let test_placements_valid_and_ordered () =
  let pop = Pop.make_preset `Pop15 ~seed:3 in
  let g = pop.Pop.graph in
  let routers = Array.of_list (Pop.routers pop) in
  let rng = Prng.create 5 in
  Prng.shuffle rng routers;
  let candidates = List.sort compare (Array.to_list (Array.sub routers 0 8)) in
  let probes = Active.compute_probes g ~candidates in
  let t = Active.place_thiran probes ~candidates in
  let gr = Active.place_greedy probes ~candidates in
  let ilp = Active.place_ilp probes ~candidates in
  List.iter
    (fun (p : Active.placement) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s valid" p.Active.method_name)
        true
        (Active.validate probes ~beacons:p.Active.beacons ~candidates))
    [ t; gr; ilp ];
  Alcotest.(check bool) "ilp <= greedy" true
    (List.length ilp.Active.beacons <= List.length gr.Active.beacons);
  Alcotest.(check bool) "ilp <= thiran" true
    (List.length ilp.Active.beacons <= List.length t.Active.beacons);
  Alcotest.(check bool) "ilp proved" true ilp.Active.optimal

let test_single_candidate () =
  let g = Synthetic.star 5 in
  let probes = Active.compute_probes g ~candidates:[ 0 ] in
  Alcotest.(check bool) "some probes" true (probes <> []);
  let ilp = Active.place_ilp probes ~candidates:[ 0 ] in
  Alcotest.(check (list int)) "hub beacon" [ 0 ] ilp.Active.beacons;
  let gr = Active.place_greedy probes ~candidates:[ 0 ] in
  Alcotest.(check (list int)) "greedy hub" [ 0 ] gr.Active.beacons

let test_probe_set_is_minimal_enough () =
  (* compute_probes designates at most [redundancy] probes per covered
     link (deduplicated), so the set stays linear in the link count *)
  let pop = Pop.make_preset `Pop29 ~seed:4 in
  let g = pop.Pop.graph in
  let routers = Pop.routers pop in
  let probes = Active.compute_probes g ~candidates:routers in
  let coverable = Active.coverable_links g ~candidates:routers in
  Alcotest.(check bool) "covers everything coverable" true
    (probes_cover_links g probes coverable);
  Alcotest.(check bool) "not absurdly many probes" true
    (List.length probes <= 3 * List.length coverable);
  (* redundancy 1 keeps it below one probe per link *)
  let single = Active.compute_probes ~redundancy:1 g ~candidates:routers in
  Alcotest.(check bool) "redundancy 1 bound" true
    (List.length single <= List.length coverable);
  Alcotest.(check bool) "redundancy 1 still covers" true
    (probes_cover_links g single coverable)

let test_overhead_accounting () =
  let pop = Pop.make_preset `Pop15 ~seed:6 in
  let g = pop.Pop.graph in
  let candidates = Pop.routers pop in
  let probes = Active.compute_probes ~targets:candidates g ~candidates in
  let ilp = Active.place_ilp probes ~candidates in
  let cost = Active.overhead probes ~beacons:ilp.Active.beacons in
  Alcotest.(check int) "every probe is sent" (List.length probes)
    cost.Active.messages;
  let expected_hops =
    List.fold_left
      (fun acc (p : Active.probe) -> acc + List.length p.Active.path.Paths.edges)
      0 probes
  in
  Alcotest.(check int) "hops add up" expected_hops cost.Active.hops;
  let per_beacon_sum =
    List.fold_left (fun acc (_, c) -> acc + c) 0 cost.Active.per_beacon
  in
  Alcotest.(check int) "per-beacon counts sum to messages"
    cost.Active.messages per_beacon_sum;
  (* senders are beacons *)
  List.iter
    (fun (b, _) ->
      Alcotest.(check bool) "sender is beacon" true
        (List.mem b ilp.Active.beacons))
    cost.Active.per_beacon

let brute_force_vertex_cover probes candidates =
  let cands = Array.of_list candidates in
  let n = Array.length cands in
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    let chosen =
      List.filter_map
        (fun i -> if mask land (1 lsl i) <> 0 then Some cands.(i) else None)
        (List.init n Fun.id)
    in
    if
      List.length chosen < !best
      && List.for_all
           (fun (p : Active.probe) ->
             List.mem p.Active.endpoint_a chosen
             || List.mem p.Active.endpoint_b chosen)
           probes
    then best := List.length chosen
  done;
  !best

let prop_ilp_matches_brute_force =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"beacon ILP matches brute-force vertex cover"
    ~count:15 gen (fun seed ->
      let pop = Pop.make_preset `Pop10 ~seed:(1 + (seed mod 29)) in
      let g = pop.Pop.graph in
      let routers = Array.of_list (Pop.routers pop) in
      let rng = Prng.create seed in
      Prng.shuffle rng routers;
      let vb_size = 2 + Prng.int rng 7 in
      let candidates =
        List.sort compare (Array.to_list (Array.sub routers 0 vb_size))
      in
      let probes = Active.compute_probes g ~candidates in
      probes = []
      ||
      let ilp = Active.place_ilp probes ~candidates in
      ilp.Active.optimal
      && List.length ilp.Active.beacons = brute_force_vertex_cover probes candidates)

let prop_greedy_between_ilp_and_thiran =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"ilp <= greedy placements always valid" ~count:15
    gen (fun seed ->
      let pop = Pop.make_preset `Pop15 ~seed:(1 + (seed mod 17)) in
      let g = pop.Pop.graph in
      let routers = Array.of_list (Pop.routers pop) in
      let rng = Prng.create seed in
      Prng.shuffle rng routers;
      let vb_size = 2 + Prng.int rng 10 in
      let candidates =
        List.sort compare (Array.to_list (Array.sub routers 0 vb_size))
      in
      let probes = Active.compute_probes g ~candidates in
      probes = []
      ||
      let t = Active.place_thiran probes ~candidates in
      let gr = Active.place_greedy probes ~candidates in
      let ilp = Active.place_ilp probes ~candidates in
      Active.validate probes ~beacons:t.Active.beacons ~candidates
      && Active.validate probes ~beacons:gr.Active.beacons ~candidates
      && Active.validate probes ~beacons:ilp.Active.beacons ~candidates
      && List.length ilp.Active.beacons <= List.length gr.Active.beacons
      && List.length ilp.Active.beacons <= List.length t.Active.beacons)

let suite =
  [
    Alcotest.test_case "probes cover ring" `Quick test_probes_cover_ring;
    Alcotest.test_case "probe paths shortest" `Quick test_probe_paths_are_shortest;
    Alcotest.test_case "placements valid" `Quick test_placements_valid_and_ordered;
    Alcotest.test_case "single candidate" `Quick test_single_candidate;
    Alcotest.test_case "probe set small" `Quick test_probe_set_is_minimal_enough;
    Alcotest.test_case "overhead accounting" `Quick test_overhead_accounting;
    QCheck_alcotest.to_alcotest prop_ilp_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_greedy_between_ilp_and_thiran;
  ]
