(* Graph substrate tests: structure, shortest paths (vs brute-force
   enumeration on random graphs), ECMP enumeration, Yen, components. *)

module Graph = Monpos_graph.Graph
module Paths = Monpos_graph.Paths
module Prng = Monpos_util.Prng

let line n =
  (* 0 - 1 - ... - n-1 *)
  let g = Graph.create ~num_nodes:n () in
  for i = 0 to n - 2 do
    ignore (Graph.add_edge g i (i + 1))
  done;
  g

let test_structure () =
  let g = Graph.create () in
  let a = Graph.add_node ~label:"a" g in
  let b = Graph.add_node g in
  let c = Graph.add_node g in
  let e1 = Graph.add_edge g a b in
  let e2 = Graph.add_edge g b c in
  Alcotest.(check int) "nodes" 3 (Graph.num_nodes g);
  Alcotest.(check int) "edges" 2 (Graph.num_edges g);
  Alcotest.(check (pair int int)) "endpoints" (a, b) (Graph.endpoints g e1);
  Alcotest.(check int) "other end" a (Graph.other_end g e1 b);
  Alcotest.(check int) "degree b" 2 (Graph.degree g b);
  Alcotest.(check bool) "has edge" true (Graph.has_edge g b a);
  Alcotest.(check bool) "no edge" false (Graph.has_edge g a c);
  Alcotest.(check (option int)) "find edge" (Some e2) (Graph.find_edge g c b);
  Alcotest.(check string) "label" "a" (Graph.label g a);
  Alcotest.(check string) "default label" "n1" (Graph.label g b)

let test_parallel_edges () =
  let g = Graph.create ~num_nodes:2 () in
  let e1 = Graph.add_edge g 0 1 in
  let e2 = Graph.add_edge g 0 1 in
  Alcotest.(check bool) "distinct ids" true (e1 <> e2);
  Alcotest.(check int) "degree counts both" 2 (Graph.degree g 0)

let test_bfs () =
  let g = line 5 in
  let d = Paths.bfs_distances g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] d;
  let g2 = Graph.create ~num_nodes:3 () in
  ignore (Graph.add_edge g2 0 1);
  let d2 = Paths.bfs_distances g2 0 in
  Alcotest.(check int) "unreachable" (-1) d2.(2)

let test_dijkstra_weighted () =
  (* triangle with a shortcut: 0-1 (1.0), 1-2 (1.0), 0-2 (3.0) *)
  let g = Graph.create ~num_nodes:3 () in
  let _e01 = Graph.add_edge g 0 1 in
  let _e12 = Graph.add_edge g 1 2 in
  let _e02 = Graph.add_edge g 0 2 in
  let weight e = if e = 2 then 3.0 else 1.0 in
  let p = Option.get (Paths.shortest_path g ~weight 0 2) in
  Alcotest.(check (float 1e-9)) "cost" 2.0 p.Paths.cost;
  Alcotest.(check (list int)) "nodes" [ 0; 1; 2 ] p.Paths.nodes;
  Alcotest.(check (list int)) "edges" [ 0; 1 ] p.Paths.edges

let test_path_same_node () =
  let g = line 3 in
  let p = Option.get (Paths.shortest_path g ~weight:(fun _ -> 1.0) 1 1) in
  Alcotest.(check (list int)) "trivial path" [ 1 ] p.Paths.nodes;
  Alcotest.(check (list int)) "no edges" [] p.Paths.edges

let test_path_disconnected () =
  let g = Graph.create ~num_nodes:4 () in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 2 3);
  Alcotest.(check bool) "none" true
    (Paths.shortest_path g ~weight:(fun _ -> 1.0) 0 3 = None)

let test_ecmp_enumeration () =
  (* diamond: 0-1-3 and 0-2-3, both cost 2 *)
  let g = Graph.create ~num_nodes:4 () in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 3);
  ignore (Graph.add_edge g 0 2);
  ignore (Graph.add_edge g 2 3);
  let ps = Paths.all_shortest_paths g ~weight:(fun _ -> 1.0) ~max_paths:10 0 3 in
  Alcotest.(check int) "two equal-cost paths" 2 (List.length ps);
  List.iter
    (fun p -> Alcotest.(check (float 1e-9)) "cost 2" 2.0 p.Paths.cost)
    ps;
  let truncated =
    Paths.all_shortest_paths g ~weight:(fun _ -> 1.0) ~max_paths:1 0 3
  in
  Alcotest.(check int) "truncation" 1 (List.length truncated)

let test_yen_k_shortest () =
  (* square with diagonal: 0-1, 1-3, 0-2, 2-3, 0-3(direct cost 5) *)
  let g = Graph.create ~num_nodes:4 () in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 3);
  ignore (Graph.add_edge g 0 2);
  ignore (Graph.add_edge g 2 3);
  ignore (Graph.add_edge g 0 3);
  let weight e = if e = 4 then 5.0 else 1.0 in
  let ps = Paths.k_shortest_paths g ~weight ~k:3 0 3 in
  Alcotest.(check int) "three paths" 3 (List.length ps);
  let costs = List.map (fun p -> p.Paths.cost) ps in
  Alcotest.(check (list (float 1e-9))) "costs sorted" [ 2.0; 2.0; 5.0 ] costs;
  (* loopless: no repeated nodes *)
  List.iter
    (fun p ->
      let nodes = List.sort_uniq compare p.Paths.nodes in
      Alcotest.(check int) "loopless" (List.length p.Paths.nodes)
        (List.length nodes))
    ps

let test_components () =
  let g = Graph.create ~num_nodes:6 () in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 3 4);
  let comp, k = Paths.connected_components g in
  Alcotest.(check int) "three components" 3 k;
  Alcotest.(check bool) "same comp" true (comp.(0) = comp.(2));
  Alcotest.(check bool) "diff comp" true (comp.(0) <> comp.(3));
  Alcotest.(check bool) "not connected" false (Paths.is_connected g);
  Alcotest.(check bool) "line connected" true (Paths.is_connected (line 4))

(* Brute-force shortest path by DFS enumeration on small random graphs. *)
let brute_shortest g weight s t =
  let n = Graph.num_nodes g in
  let best = ref infinity in
  let visited = Array.make n false in
  let rec go u cost =
    if cost < !best then
      if u = t then best := cost
      else begin
        visited.(u) <- true;
        List.iter
          (fun (v, e) -> if not visited.(v) then go v (cost +. weight e))
          (Graph.neighbors g u);
        visited.(u) <- false
      end
  in
  go s 0.0;
  if !best = infinity then None else Some !best

let prop_dijkstra_matches_brute_force =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"dijkstra matches exhaustive search" ~count:100 gen
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 7 in
      let g = Graph.create ~num_nodes:n () in
      let medges = Prng.int rng (n * 2) in
      let weights = ref [] in
      for _ = 1 to medges do
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v then begin
          ignore (Graph.add_edge g u v);
          weights := (0.5 +. Prng.float rng 5.0) :: !weights
        end
      done;
      let wa = Array.of_list (List.rev !weights) in
      let weight e = wa.(e) in
      let s = Prng.int rng n and t = Prng.int rng n in
      let expected = brute_shortest g weight s t in
      let got = Paths.shortest_path g ~weight s t in
      match (expected, got) with
      | None, None -> true
      | Some c, Some p ->
        abs_float (c -. p.Paths.cost) < 1e-9
        && List.length p.Paths.nodes = List.length p.Paths.edges + 1
      | _ -> false)

let prop_path_edges_consistent =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"shortest-path edge list matches node list"
    ~count:100 gen (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 8 in
      let g = Graph.create ~num_nodes:n () in
      (* random connected graph: spanning tree + extras *)
      for v = 1 to n - 1 do
        ignore (Graph.add_edge g (Prng.int rng v) v)
      done;
      for _ = 1 to Prng.int rng n do
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v then ignore (Graph.add_edge g u v)
      done;
      let weight _ = 1.0 in
      let s = Prng.int rng n and t = Prng.int rng n in
      match Paths.shortest_path g ~weight s t with
      | None -> false (* graph is connected *)
      | Some p ->
        let rec walk nodes edges =
          match (nodes, edges) with
          | [ last ], [] -> last = t
          | u :: (v :: _ as rest), e :: es ->
            let a, b = Graph.endpoints g e in
            ((a = u && b = v) || (a = v && b = u)) && walk rest es
          | _ -> false
        in
        List.hd p.Paths.nodes = s && walk p.Paths.nodes p.Paths.edges)

module Metrics = Monpos_graph.Metrics

let test_all_pairs_hops () =
  let g = line 4 in
  let d = Metrics.all_pairs_hops g in
  Alcotest.(check int) "d(0,3)" 3 d.(0).(3);
  Alcotest.(check int) "d(2,1)" 1 d.(2).(1);
  Alcotest.(check int) "diameter" 3 (Metrics.diameter g);
  let g2 = Graph.create ~num_nodes:2 () in
  let d2 = Metrics.all_pairs_hops g2 in
  Alcotest.(check int) "unreachable" (-1) d2.(0).(1)

let test_edge_betweenness_line () =
  (* on a path 0-1-2-3 the middle edge carries the most pairs *)
  let g = line 4 in
  let b = Metrics.edge_betweenness g in
  (* edge 1 = (1,2): pairs {0,1}x{2,3} cross it in both directions = 8 *)
  Alcotest.(check (float 1e-9)) "middle edge" 8.0 b.(1);
  Alcotest.(check (float 1e-9)) "end edge" 6.0 b.(0)

let test_edge_betweenness_split () =
  (* diamond: two equal shortest paths split the pair's weight *)
  let g = Graph.create ~num_nodes:4 () in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 3);
  ignore (Graph.add_edge g 0 2);
  ignore (Graph.add_edge g 2 3);
  let b = Metrics.edge_betweenness g in
  (* by symmetry all four edges carry the same weight *)
  Alcotest.(check (float 1e-9)) "symmetric 0-1" b.(0) b.(2);
  Alcotest.(check (float 1e-9)) "symmetric 1-3" b.(1) b.(3)

let test_bridges_line_and_cycle () =
  let g = line 4 in
  Alcotest.(check (list int)) "all line edges are bridges" [ 0; 1; 2 ]
    (Metrics.bridges g);
  let c = Graph.create ~num_nodes:3 () in
  ignore (Graph.add_edge c 0 1);
  ignore (Graph.add_edge c 1 2);
  ignore (Graph.add_edge c 2 0);
  Alcotest.(check (list int)) "cycle has none" [] (Metrics.bridges c)

let test_bridges_parallel_edges () =
  let g = Graph.create ~num_nodes:2 () in
  ignore (Graph.add_edge g 0 1);
  Alcotest.(check (list int)) "single edge is a bridge" [ 0 ] (Metrics.bridges g);
  ignore (Graph.add_edge g 0 1);
  Alcotest.(check (list int)) "parallel edges are not" [] (Metrics.bridges g)

let test_articulation_points () =
  (* two triangles sharing node 2 *)
  let g = Graph.create ~num_nodes:5 () in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 2);
  ignore (Graph.add_edge g 2 0);
  ignore (Graph.add_edge g 2 3);
  ignore (Graph.add_edge g 3 4);
  ignore (Graph.add_edge g 4 2);
  Alcotest.(check (list int)) "shared node" [ 2 ] (Metrics.articulation_points g);
  Alcotest.(check (list int)) "line interior" [ 1; 2 ]
    (Metrics.articulation_points (line 4))

let prop_bridges_disconnect =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"removing a bridge disconnects; removing a non-bridge does not"
    ~count:60 gen (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 9 in
      let g = Graph.create ~num_nodes:n () in
      for v = 1 to n - 1 do
        ignore (Graph.add_edge g (Prng.int rng v) v)
      done;
      for _ = 1 to Prng.int rng n do
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v then ignore (Graph.add_edge g u v)
      done;
      let bridges = Metrics.bridges g in
      let components_without dropped =
        (* rebuild without edge [dropped] *)
        let h = Graph.create ~num_nodes:n () in
        Graph.iter_edges
          (fun e u v -> if e <> dropped then ignore (Graph.add_edge h u v))
          g;
        snd (Paths.connected_components h)
      in
      List.for_all (fun e -> components_without e = 2) bridges
      && List.for_all
           (fun e ->
             List.mem e bridges || components_without e = 1)
           (List.init (Graph.num_edges g) Fun.id))

let prop_betweenness_total_mass =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"edge betweenness mass = sum of pair distances"
    ~count:40 gen (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 8 in
      let g = Graph.create ~num_nodes:n () in
      for v = 1 to n - 1 do
        ignore (Graph.add_edge g (Prng.int rng v) v)
      done;
      for _ = 1 to Prng.int rng n do
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v && not (Graph.has_edge g u v) then ignore (Graph.add_edge g u v)
      done;
      let b = Metrics.edge_betweenness g in
      let total = Array.fold_left ( +. ) 0.0 b in
      let d = Metrics.all_pairs_hops g in
      let expected = ref 0.0 in
      Array.iter
        (Array.iter (fun x -> if x > 0 then expected := !expected +. float_of_int x))
        d;
      abs_float (total -. !expected) < 1e-6 *. (1.0 +. !expected))

let test_dot_export () =
  let g = line 3 in
  let s = Monpos_graph.Dot.to_string g in
  Alcotest.(check bool) "has graph header" true
    (String.length s >= 5 && String.sub s 0 5 = "graph");
  let loads = [| 1.0; 3.0 |] in
  let s2 = Monpos_graph.Dot.with_loads g ~loads in
  Alcotest.(check bool) "has penwidth" true
    (Astring.String.is_infix ~affix:"penwidth" s2)

let suite =
  [
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
    Alcotest.test_case "bfs" `Quick test_bfs;
    Alcotest.test_case "dijkstra weighted" `Quick test_dijkstra_weighted;
    Alcotest.test_case "trivial path" `Quick test_path_same_node;
    Alcotest.test_case "disconnected" `Quick test_path_disconnected;
    Alcotest.test_case "ecmp enumeration" `Quick test_ecmp_enumeration;
    Alcotest.test_case "yen k-shortest" `Quick test_yen_k_shortest;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "all pairs hops" `Quick test_all_pairs_hops;
    Alcotest.test_case "betweenness line" `Quick test_edge_betweenness_line;
    Alcotest.test_case "betweenness split" `Quick test_edge_betweenness_split;
    Alcotest.test_case "bridges" `Quick test_bridges_line_and_cycle;
    Alcotest.test_case "bridges parallel" `Quick test_bridges_parallel_edges;
    Alcotest.test_case "articulation points" `Quick test_articulation_points;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    QCheck_alcotest.to_alcotest prop_bridges_disconnect;
    QCheck_alcotest.to_alcotest prop_betweenness_total_mass;
    QCheck_alcotest.to_alcotest prop_dijkstra_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_path_edges_consistent;
  ]
