(* Passive placement tests: Figure 3 behaviour, exact-vs-MIP-vs-greedy
   agreement, partial coverage, incremental and budgeted variants. *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Pop = Monpos_topo.Pop
module Graph = Monpos_graph.Graph
module Prng = Monpos_util.Prng

let pop10_instance seed =
  Instance.of_pop (Pop.make_preset `Pop10 ~seed) ~seed:(seed * 3)

let test_figure3_greedy_vs_exact () =
  (* the paper's §4.3 example: greedy needs 3 devices, the optimum 2 *)
  let inst = Instance.figure3 () in
  let g = Passive.greedy inst in
  let e = Passive.solve_exact inst in
  Alcotest.(check int) "greedy 3" 3 g.Passive.count;
  Alcotest.(check int) "exact 2" 2 e.Passive.count;
  Alcotest.(check bool) "exact optimal" true e.Passive.optimal;
  Alcotest.(check (list int)) "optimal links are the load-3 pair" [ 1; 2 ]
    e.Passive.monitors;
  Alcotest.(check bool) "greedy picks heaviest first" true
    (List.mem 0 g.Passive.monitors)

let test_figure3_mip_formulations () =
  let inst = Instance.figure3 () in
  let lp2 = Passive.solve_mip ~formulation:`Lp2 inst in
  let lp1 = Passive.solve_mip ~formulation:`Lp1 inst in
  Alcotest.(check int) "lp2 optimum" 2 lp2.Passive.count;
  Alcotest.(check int) "lp1 optimum" 2 lp1.Passive.count;
  Alcotest.(check bool) "lp2 proved" true lp2.Passive.optimal;
  Alcotest.(check bool) "lp1 proved" true lp1.Passive.optimal

let test_full_coverage_pop10 () =
  let inst = pop10_instance 1 in
  let e = Passive.solve_exact inst in
  Alcotest.(check bool) "covers all" true
    (Passive.validate ~k:1.0 inst e.Passive.monitors);
  Alcotest.(check (float 1e-9)) "fraction 1" 1.0 e.Passive.fraction

let test_partial_needs_fewer () =
  let inst = pop10_instance 2 in
  let full = Passive.solve_exact ~k:1.0 inst in
  let partial = Passive.solve_exact ~k:0.75 inst in
  Alcotest.(check bool) "0.75 needs <= devices" true
    (partial.Passive.count <= full.Passive.count);
  Alcotest.(check bool) "0.75 reached" true
    (partial.Passive.fraction >= 0.75 -. 1e-9)

let test_greedy_validates () =
  List.iter
    (fun k ->
      let inst = pop10_instance 3 in
      let g = Passive.greedy ~k inst in
      Alcotest.(check bool) "feasible" true
        (Passive.validate ~k inst g.Passive.monitors))
    [ 0.5; 0.75; 0.9; 1.0 ]

let test_lp_bound_sandwich () =
  let inst = pop10_instance 4 in
  let bound = Passive.lp_bound ~k:0.9 inst in
  let e = Passive.solve_exact ~k:0.9 inst in
  Alcotest.(check bool) "lp <= opt" true
    (bound <= float_of_int e.Passive.count +. 1e-6);
  Alcotest.(check bool) "lp positive" true (bound > 0.0)

let test_incremental () =
  let inst = Instance.figure3 () in
  (* with the central link already installed, one more device cannot
     complete coverage; two can (links 1 and 2 overlap link 0) *)
  let sol = Passive.incremental ~k:1.0 ~installed:[ 0 ] inst in
  Alcotest.(check int) "needs 2 new" 2 sol.Passive.count;
  Alcotest.(check bool) "not counting installed" true
    (not (List.mem 0 sol.Passive.monitors));
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 sol.Passive.fraction

let test_incremental_zero_new () =
  let inst = Instance.figure3 () in
  let sol = Passive.incremental ~k:1.0 ~installed:[ 1; 2 ] inst in
  Alcotest.(check int) "no new devices" 0 sol.Passive.count;
  Alcotest.(check (float 1e-9)) "covered" 1.0 sol.Passive.fraction

let test_budgeted () =
  let inst = Instance.figure3 () in
  (* best single device is the load-4 link: fraction 4/6 *)
  let sol1 = Passive.budgeted ~budget:1 inst in
  Alcotest.(check (float 1e-6)) "budget 1" (4.0 /. 6.0) sol1.Passive.fraction;
  Alcotest.(check int) "one device" 1 sol1.Passive.count;
  let sol2 = Passive.budgeted ~budget:2 inst in
  Alcotest.(check (float 1e-6)) "budget 2 covers all" 1.0 sol2.Passive.fraction

let test_budgeted_zero () =
  let inst = Instance.figure3 () in
  let sol = Passive.budgeted ~budget:0 inst in
  Alcotest.(check int) "no devices" 0 sol.Passive.count;
  Alcotest.(check (float 1e-6)) "no coverage" 0.0 sol.Passive.fraction

let test_marginal_gains_monotone () =
  let inst = Instance.figure3 () in
  let gains = Passive.marginal_gains ~max_budget:4 inst in
  Alcotest.(check int) "four budgets" 4 (List.length gains);
  let rec nondecreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (nondecreasing gains);
  (* figure 3: budget 1 buys 4/6, budget 2 buys everything *)
  Alcotest.(check (float 1e-6)) "budget 1" (4.0 /. 6.0) (List.assoc 1 gains);
  Alcotest.(check (float 1e-6)) "budget 2" 1.0 (List.assoc 2 gains)

let prop_exact_leq_greedy =
  let gen = QCheck2.Gen.int_range 1 1_000_000 in
  QCheck2.Test.make ~name:"exact count <= greedy count on random pops"
    ~count:20 gen (fun seed ->
      let inst = pop10_instance (1 + (seed mod 50)) in
      let rng = Prng.create seed in
      let k = 0.6 +. Prng.float rng 0.4 in
      let g = Passive.greedy ~k inst in
      let e = Passive.solve_exact ~k inst in
      e.Passive.optimal
      && e.Passive.count <= g.Passive.count
      && Passive.validate ~k inst e.Passive.monitors
      && Passive.validate ~k inst g.Passive.monitors)

let prop_mip_matches_exact =
  let gen = QCheck2.Gen.int_range 1 1_000_000 in
  QCheck2.Test.make ~name:"mip lp2 optimum equals combinatorial optimum"
    ~count:8 gen (fun seed ->
      let inst = pop10_instance (1 + (seed mod 23)) in
      let rng = Prng.create seed in
      let k = 0.7 +. Prng.float rng 0.3 in
      let e = Passive.solve_exact ~k inst in
      let m = Passive.solve_mip ~k ~formulation:`Lp2 inst in
      e.Passive.optimal && m.Passive.optimal
      && e.Passive.count = m.Passive.count
      && Passive.validate ~k inst m.Passive.monitors)

let prop_more_coverage_needs_more_devices =
  let gen = QCheck2.Gen.int_range 1 1_000_000 in
  QCheck2.Test.make ~name:"device count is monotone in k" ~count:10 gen
    (fun seed ->
      let inst = pop10_instance (1 + (seed mod 31)) in
      let counts =
        List.map
          (fun k -> (Passive.solve_exact ~k inst).Passive.count)
          [ 0.75; 0.85; 0.95; 1.0 ]
      in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing counts)

let suite =
  [
    Alcotest.test_case "figure 3 greedy vs exact" `Quick test_figure3_greedy_vs_exact;
    Alcotest.test_case "figure 3 mip formulations" `Quick test_figure3_mip_formulations;
    Alcotest.test_case "full coverage pop10" `Quick test_full_coverage_pop10;
    Alcotest.test_case "partial needs fewer" `Quick test_partial_needs_fewer;
    Alcotest.test_case "greedy validates" `Quick test_greedy_validates;
    Alcotest.test_case "lp bound sandwich" `Quick test_lp_bound_sandwich;
    Alcotest.test_case "incremental" `Quick test_incremental;
    Alcotest.test_case "incremental zero new" `Quick test_incremental_zero_new;
    Alcotest.test_case "budgeted" `Quick test_budgeted;
    Alcotest.test_case "budgeted zero" `Quick test_budgeted_zero;
    Alcotest.test_case "marginal gains" `Quick test_marginal_gains_monotone;
    QCheck_alcotest.to_alcotest prop_exact_leq_greedy;
    QCheck_alcotest.to_alcotest prop_mip_matches_exact;
    QCheck_alcotest.to_alcotest prop_more_coverage_needs_more_devices;
  ]
