test/test_flow.ml: Alcotest Array List Monpos_flow Monpos_lp Monpos_util QCheck2 QCheck_alcotest
