test/test_campaign.ml: Alcotest Array List Monpos Monpos_graph Monpos_lp Monpos_topo Monpos_traffic Monpos_util QCheck2 QCheck_alcotest
