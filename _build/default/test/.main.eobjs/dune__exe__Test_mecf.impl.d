test/test_mecf.ml: Alcotest Fun List Monpos Monpos_graph Monpos_topo Monpos_traffic Monpos_util QCheck2 QCheck_alcotest
