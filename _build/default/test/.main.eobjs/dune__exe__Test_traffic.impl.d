test/test_traffic.ml: Alcotest Array List Monpos_graph Monpos_topo Monpos_traffic Monpos_util Option QCheck2 QCheck_alcotest
