test/main.mli:
