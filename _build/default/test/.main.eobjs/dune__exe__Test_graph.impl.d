test/test_graph.ml: Alcotest Array Astring Fun List Monpos_graph Monpos_util Option QCheck2 QCheck_alcotest String
