test/test_topology.ml: Alcotest Array Astring List Monpos_graph Monpos_topo Monpos_util Printf QCheck2 QCheck_alcotest
