test/test_cover.ml: Alcotest Array Fun List Monpos_cover Monpos_graph Monpos_util QCheck2 QCheck_alcotest
