test/test_lp.ml: Alcotest Array Astring Float List Monpos_lp Monpos_util QCheck2 QCheck_alcotest
