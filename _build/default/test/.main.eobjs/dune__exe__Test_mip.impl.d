test/test_mip.ml: Alcotest Array List Monpos_lp Monpos_util Option QCheck2 QCheck_alcotest
