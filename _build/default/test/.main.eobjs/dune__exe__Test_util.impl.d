test/test_util.ml: Alcotest Array List Monpos_util String
