test/test_instance.ml: Alcotest Array Fun List Monpos Monpos_cover Monpos_graph Monpos_topo Monpos_traffic Monpos_util QCheck2 QCheck_alcotest
