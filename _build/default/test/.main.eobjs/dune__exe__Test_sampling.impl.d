test/test_sampling.ml: Alcotest Array Fun List Monpos Monpos_graph Monpos_lp Monpos_topo Monpos_util QCheck2 QCheck_alcotest
