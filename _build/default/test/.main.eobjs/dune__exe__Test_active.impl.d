test/test_active.ml: Alcotest Array Fun List Monpos Monpos_graph Monpos_topo Monpos_util Option Printf QCheck2 QCheck_alcotest
