test/test_scenario.ml: Alcotest Array List Monpos Monpos_topo Monpos_traffic
