test/test_passive.ml: Alcotest List Monpos Monpos_graph Monpos_topo Monpos_util QCheck2 QCheck_alcotest
