(* Instance tests: flattening, loads, coverage accounting, the
   Figure 3 fixture, and the cover view. *)

module Instance = Monpos.Instance
module Pop = Monpos_topo.Pop
module Traffic = Monpos_traffic.Traffic
module Graph = Monpos_graph.Graph
module Cover = Monpos_cover.Cover

let pop10_instance seed =
  Instance.of_pop (Pop.make_preset `Pop10 ~seed) ~seed:(seed * 3)

let test_figure3_shape () =
  let inst = Instance.figure3 () in
  Alcotest.(check int) "nodes" 6 (Graph.num_nodes inst.Instance.graph);
  Alcotest.(check int) "links" 5 (Graph.num_edges inst.Instance.graph);
  Alcotest.(check int) "traffics" 4 (Instance.num_traffics inst);
  Alcotest.(check (float 1e-9)) "volume" 6.0 inst.Instance.total_volume;
  (* loads per the figure: 4 on the central link, 3, 3, 1, 1 *)
  let sorted = Array.copy inst.Instance.loads in
  Array.sort compare sorted;
  Alcotest.(check (array (float 1e-9))) "loads" [| 1.0; 1.0; 3.0; 3.0; 4.0 |] sorted

let test_figure3_coverage () =
  let inst = Instance.figure3 () in
  (* the two load-3 links cover everything *)
  Alcotest.(check (float 1e-9)) "e1+e2 cover all" 6.0
    (Instance.coverage inst [ 1; 2 ]);
  (* the central link covers only the two heavy traffics *)
  Alcotest.(check (float 1e-9)) "e0 covers 4" 4.0 (Instance.coverage inst [ 0 ]);
  Alcotest.(check (float 1e-9)) "fraction" (4.0 /. 6.0)
    (Instance.coverage_fraction inst [ 0 ]);
  Alcotest.(check (float 1e-9)) "nothing" 0.0 (Instance.coverage inst [])

let test_flattening_counts () =
  let inst = pop10_instance 2 in
  (* single-path routing: one traffic per demand *)
  Alcotest.(check int) "flattened = demands"
    (Array.length inst.Instance.demands)
    (Instance.num_traffics inst)

let test_loads_match_traffic_loads () =
  let pop = Pop.make_preset `Pop10 ~seed:3 in
  let m =
    Traffic.generate pop.Pop.graph ~endpoints:(Pop.endpoints pop) ~seed:5
  in
  let inst = Instance.make pop.Pop.graph m in
  let expected = Traffic.loads pop.Pop.graph m in
  Alcotest.(check int) "same length" (Array.length expected)
    (Array.length inst.Instance.loads);
  Array.iteri
    (fun e l ->
      Alcotest.(check (float 1e-6)) "load" l inst.Instance.loads.(e))
    expected

let test_multipath_flattening () =
  (* an ECMP demand flattens into one traffic per route *)
  let g = Graph.create ~num_nodes:4 () in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 3);
  ignore (Graph.add_edge g 0 2);
  ignore (Graph.add_edge g 2 3);
  let params = { Traffic.default_gen with Traffic.max_ecmp_paths = 4 } in
  let m = Traffic.generate_pairs ~params g ~pairs:[ (0, 3) ] ~seed:1 in
  let inst = Instance.make g m in
  Alcotest.(check int) "two traffics" 2 (Instance.num_traffics inst);
  Alcotest.(check int) "same demand" 0 inst.Instance.traffics.(1).Instance.t_demand;
  (* monitoring one branch covers only half the volume *)
  let half = inst.Instance.total_volume /. 2.0 in
  Alcotest.(check (float 1e-9)) "half coverage" half (Instance.coverage inst [ 0 ])

let test_cover_view_consistency () =
  let inst = pop10_instance 4 in
  let cover = Instance.cover_view inst in
  Alcotest.(check int) "sets = links"
    (Graph.num_edges inst.Instance.graph)
    (Array.length cover.Cover.sets);
  Alcotest.(check int) "items = traffics" (Instance.num_traffics inst)
    cover.Cover.num_items;
  Alcotest.(check (float 1e-6)) "weights = volume" inst.Instance.total_volume
    (Cover.total_weight cover);
  (* covered weight of a set = Instance.coverage of the edge *)
  for e = 0 to Graph.num_edges inst.Instance.graph - 1 do
    Alcotest.(check (float 1e-6)) "per-edge coverage"
      (Instance.coverage inst [ e ])
      (Cover.covered_weight cover [ e ])
  done

let test_replace_demands () =
  let inst = pop10_instance 5 in
  let scaled =
    Traffic.scale_volumes inst.Instance.demands ~factor:(fun _ -> 3.0)
  in
  let inst' = Instance.replace_demands inst scaled in
  Alcotest.(check (float 1e-6)) "tripled volume"
    (3.0 *. inst.Instance.total_volume)
    inst'.Instance.total_volume;
  Alcotest.(check int) "same traffics" (Instance.num_traffics inst)
    (Instance.num_traffics inst')

let prop_coverage_monotone =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"coverage is monotone in the monitor set"
    ~count:50 gen (fun seed ->
      let inst = pop10_instance (1 + (seed mod 17)) in
      let rng = Monpos_util.Prng.create seed in
      let ne = Graph.num_edges inst.Instance.graph in
      let small =
        List.filter (fun _ -> Monpos_util.Prng.bool rng) (List.init ne Fun.id)
      in
      let extra =
        List.filter (fun _ -> Monpos_util.Prng.bool rng) (List.init ne Fun.id)
      in
      let big = List.sort_uniq compare (small @ extra) in
      Instance.coverage inst big >= Instance.coverage inst small -. 1e-9)

let prop_coverage_bounded =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"coverage within [0, V]" ~count:50 gen (fun seed ->
      let inst = pop10_instance (1 + (seed mod 13)) in
      let rng = Monpos_util.Prng.create seed in
      let ne = Graph.num_edges inst.Instance.graph in
      let monitors =
        List.filter (fun _ -> Monpos_util.Prng.bool rng) (List.init ne Fun.id)
      in
      let c = Instance.coverage inst monitors in
      c >= -1e-9 && c <= inst.Instance.total_volume +. 1e-6)

let suite =
  [
    Alcotest.test_case "figure 3 shape" `Quick test_figure3_shape;
    Alcotest.test_case "figure 3 coverage" `Quick test_figure3_coverage;
    Alcotest.test_case "flattening counts" `Quick test_flattening_counts;
    Alcotest.test_case "loads match" `Quick test_loads_match_traffic_loads;
    Alcotest.test_case "multipath flattening" `Quick test_multipath_flattening;
    Alcotest.test_case "cover view" `Quick test_cover_view_consistency;
    Alcotest.test_case "replace demands" `Quick test_replace_demands;
    QCheck_alcotest.to_alcotest prop_coverage_monotone;
    QCheck_alcotest.to_alcotest prop_coverage_bounded;
  ]
