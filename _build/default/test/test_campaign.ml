(* Measurement-campaign tests (§7 extension): re-routing never hurts
   coverage, monitored demands prefer tapped paths, the joint MIP
   dominates fixed-routing placement, and the sampling-aware variant
   respects rate semantics. *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Sampling = Monpos.Sampling
module Campaign = Monpos.Campaign
module Pop = Monpos_topo.Pop
module Graph = Monpos_graph.Graph
module Paths = Monpos_graph.Paths
module Traffic = Monpos_traffic.Traffic
module Prng = Monpos_util.Prng

let pop10_instance seed =
  Instance.of_pop (Pop.make_preset `Pop10 ~seed) ~seed:(seed * 3)

(* a pop10 with traffic between only a few endpoints, keeping the
   joint MIP (hundreds of binaries at full scale) test-sized *)
let small_instance seed =
  let pop = Pop.make_preset `Pop10 ~seed in
  let endpoints =
    match Pop.endpoints pop with
    | a :: b :: c :: d :: _ -> [ a; b; c; d ]
    | l -> l
  in
  let m = Traffic.generate pop.Monpos_topo.Pop.graph ~endpoints ~seed:(seed * 7) in
  Instance.make pop.Monpos_topo.Pop.graph m

(* diamond where the default route misses the monitor *)
let diamond_instance () =
  let g = Graph.create ~num_nodes:4 () in
  let e01 = Graph.add_edge g 0 1 in
  let _e13 = Graph.add_edge g 1 3 in
  let e02 = Graph.add_edge g 0 2 in
  let _e23 = Graph.add_edge g 2 3 in
  ignore e01;
  ignore e02;
  let params =
    { Traffic.default_gen with Traffic.hot_pairs = 0; max_ecmp_paths = 1 }
  in
  let m = Traffic.generate_pairs ~params g ~pairs:[ (0, 3) ] ~seed:5 in
  Instance.make g m

let test_reroute_diamond () =
  let inst = diamond_instance () in
  let d = inst.Instance.demands.(0) in
  let current = (List.hd d.Traffic.routes).Traffic.path.Paths.edges in
  (* monitor the branch the demand does NOT use *)
  let other =
    List.filter (fun e -> not (List.mem e current)) [ 0; 1; 2; 3 ]
  in
  let monitor = List.hd other in
  let r = Campaign.reroute_for_monitors inst ~monitors:[ monitor ] in
  Alcotest.(check (float 1e-9)) "before: unmonitored" 0.0 r.Campaign.coverage_before;
  Alcotest.(check (float 1e-9)) "after: fully monitored" 1.0 r.Campaign.coverage_after;
  Alcotest.(check int) "one move" 1 (List.length r.Campaign.moves);
  let m = List.hd r.Campaign.moves in
  Alcotest.(check bool) "new route crosses the tap" true
    (List.mem monitor m.Campaign.new_edges);
  Alcotest.(check bool) "gain positive" true (m.Campaign.gain > 0.0)

let test_reroute_never_hurts () =
  List.iter
    (fun seed ->
      let inst = pop10_instance seed in
      let placement = Passive.solve_exact ~k:0.8 inst in
      let r =
        Campaign.reroute_for_monitors inst ~monitors:placement.Passive.monitors
      in
      Alcotest.(check bool) "coverage does not decrease" true
        (r.Campaign.coverage_after >= r.Campaign.coverage_before -. 1e-9);
      (* the rebuilt instance carries the same total volume *)
      Alcotest.(check (float 1e-6)) "volume preserved"
        inst.Instance.total_volume r.Campaign.instance.Instance.total_volume)
    [ 1; 2; 3 ]

let test_reroute_noop_when_everything_covered () =
  let inst = Instance.figure3 () in
  (* links 1 and 2 already cover everything; no move should fire
     (moves only happen on strict improvement or tie-breaking to a
     cheaper path of the same coverage) *)
  let r = Campaign.reroute_for_monitors inst ~monitors:[ 1; 2 ] in
  Alcotest.(check (float 1e-9)) "before full" 1.0 r.Campaign.coverage_before;
  Alcotest.(check (float 1e-9)) "after full" 1.0 r.Campaign.coverage_after

let test_reroute_for_rates () =
  let inst = diamond_instance () in
  let pb = Sampling.make_problem ~k:0.5 inst in
  let d = inst.Instance.demands.(0) in
  let current = (List.hd d.Traffic.routes).Traffic.path.Paths.edges in
  let other =
    List.filter (fun e -> not (List.mem e current)) [ 0; 1; 2; 3 ]
  in
  let rates = Array.make 4 0.0 in
  rates.(List.hd other) <- 0.7;
  let r = Campaign.reroute_for_rates pb ~rates in
  Alcotest.(check (float 1e-9)) "before" 0.0 r.Campaign.coverage_before;
  Alcotest.(check (float 1e-9)) "after = sampling rate" 0.7
    r.Campaign.coverage_after

let test_joint_placement_dominates_fixed_routing () =
  List.iter
    (fun seed ->
      let inst = small_instance seed in
      let fixed = Passive.solve_exact ~k:0.9 inst in
      let joint, campaign =
        Campaign.joint_placement ~k_paths:2 ~coverage:0.9
          ~options:Monpos_lp.Mip.default_options inst
      in
      Alcotest.(check bool) "joint proved" true joint.Passive.optimal;
      Alcotest.(check bool) "joint needs <= devices" true
        (joint.Passive.count <= fixed.Passive.count);
      Alcotest.(check bool) "coverage reached on rerouted instance" true
        (campaign.Campaign.coverage_after >= 0.9 -. 1e-6))
    [ 1; 2 ]

let test_joint_placement_figure3 () =
  (* with freedom to reroute, figure 3 needs at most 2 devices *)
  let inst = Instance.figure3 () in
  let joint, _ = Campaign.joint_placement ~coverage:1.0 inst in
  Alcotest.(check bool) "at most 2" true (joint.Passive.count <= 2);
  Alcotest.(check bool) "proved" true joint.Passive.optimal

let test_randomized_rounding_feasible () =
  List.iter
    (fun seed ->
      let inst = pop10_instance seed in
      let rr = Passive.randomized_rounding ~k:0.9 ~seed inst in
      Alcotest.(check bool) "feasible" true
        (Passive.validate ~k:0.9 inst rr.Passive.monitors);
      let e = Passive.solve_exact ~k:0.9 inst in
      Alcotest.(check bool) "not better than optimal" true
        (rr.Passive.count >= e.Passive.count))
    [ 1; 2; 3 ]

let test_randomized_rounding_deterministic () =
  let inst = pop10_instance 4 in
  let a = Passive.randomized_rounding ~k:0.85 ~seed:9 inst in
  let b = Passive.randomized_rounding ~k:0.85 ~seed:9 inst in
  Alcotest.(check (list int)) "same seed, same placement" a.Passive.monitors
    b.Passive.monitors

let prop_rounding_close_to_optimal =
  let gen = QCheck2.Gen.int_range 1 1_000_000 in
  QCheck2.Test.make ~name:"randomized rounding within 2x of optimal"
    ~count:10 gen (fun seed ->
      let inst = pop10_instance (1 + (seed mod 19)) in
      let rng = Prng.create seed in
      let k = 0.7 +. Prng.float rng 0.25 in
      let rr = Passive.randomized_rounding ~k ~seed inst in
      let e = Passive.solve_exact ~k inst in
      Passive.validate ~k inst rr.Passive.monitors
      && rr.Passive.count <= 2 * e.Passive.count)

let prop_campaign_coverage_monotone_in_k_paths =
  let gen = QCheck2.Gen.int_range 1 1_000_000 in
  QCheck2.Test.make ~name:"more alternative paths never reduce campaign coverage"
    ~count:10 gen (fun seed ->
      let inst = pop10_instance (1 + (seed mod 11)) in
      let placement = Passive.solve_exact ~k:0.75 inst in
      let c1 =
        Campaign.reroute_for_monitors ~k_paths:1 inst
          ~monitors:placement.Passive.monitors
      in
      let c4 =
        Campaign.reroute_for_monitors ~k_paths:4 inst
          ~monitors:placement.Passive.monitors
      in
      c4.Campaign.coverage_after >= c1.Campaign.coverage_after -. 1e-9)

let suite =
  [
    Alcotest.test_case "reroute diamond" `Quick test_reroute_diamond;
    Alcotest.test_case "reroute never hurts" `Quick test_reroute_never_hurts;
    Alcotest.test_case "reroute noop" `Quick test_reroute_noop_when_everything_covered;
    Alcotest.test_case "reroute for rates" `Quick test_reroute_for_rates;
    Alcotest.test_case "joint dominates fixed" `Slow test_joint_placement_dominates_fixed_routing;
    Alcotest.test_case "joint figure3" `Quick test_joint_placement_figure3;
    Alcotest.test_case "rounding feasible" `Quick test_randomized_rounding_feasible;
    Alcotest.test_case "rounding deterministic" `Quick test_randomized_rounding_deterministic;
    QCheck_alcotest.to_alcotest prop_rounding_close_to_optimal;
    QCheck_alcotest.to_alcotest prop_campaign_coverage_monotone_in_k_paths;
  ]
