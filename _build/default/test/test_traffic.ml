(* Traffic matrix tests: demand counts, routing validity, load
   accounting, non-uniformity, ECMP splitting, drift model. *)

module Pop = Monpos_topo.Pop
module Traffic = Monpos_traffic.Traffic
module Graph = Monpos_graph.Graph
module Paths = Monpos_graph.Paths
module Prng = Monpos_util.Prng

let pop10 seed = Pop.make_preset `Pop10 ~seed

let test_demand_count_pop10 () =
  let pop = pop10 3 in
  let m =
    Traffic.generate pop.Pop.graph ~endpoints:(Pop.endpoints pop) ~seed:11
  in
  (* paper: 132 traffics on the 10-router POP = 12 * 11 ordered pairs *)
  Alcotest.(check int) "132 traffics" 132 (Array.length m)

let test_routes_are_shortest_paths () =
  let pop = pop10 4 in
  let g = pop.Pop.graph in
  let m = Traffic.generate g ~endpoints:(Pop.endpoints pop) ~seed:12 in
  Array.iter
    (fun d ->
      let sp =
        Option.get (Paths.shortest_path g ~weight:(fun _ -> 1.0) d.Traffic.src d.Traffic.dst)
      in
      List.iter
        (fun (r : Traffic.route) ->
          Alcotest.(check (float 1e-9)) "route cost is min"
            sp.Paths.cost r.Traffic.path.Paths.cost;
          Alcotest.(check int) "starts at src" d.Traffic.src
            (List.hd r.Traffic.path.Paths.nodes);
          Alcotest.(check int) "ends at dst" d.Traffic.dst
            (List.nth r.Traffic.path.Paths.nodes
               (List.length r.Traffic.path.Paths.nodes - 1)))
        d.Traffic.routes)
    m

let test_loads_consistency () =
  let pop = pop10 5 in
  let g = pop.Pop.graph in
  let m = Traffic.generate g ~endpoints:(Pop.endpoints pop) ~seed:13 in
  let loads = Traffic.loads g m in
  (* sum of loads = sum over demands of volume * path length *)
  let expected =
    Array.fold_left
      (fun acc d ->
        List.fold_left
          (fun acc (r : Traffic.route) ->
            acc
            +. (r.Traffic.volume *. float_of_int (List.length r.Traffic.path.Paths.edges)))
          acc d.Traffic.routes)
      0.0 m
  in
  Alcotest.(check (float 1e-6)) "load mass" expected
    (Array.fold_left ( +. ) 0.0 loads)

let test_hot_pairs_nonuniform () =
  let pop = pop10 6 in
  let g = pop.Pop.graph in
  let params = { Traffic.default_gen with Traffic.hot_pairs = 6 } in
  let m = Traffic.generate ~params g ~endpoints:(Pop.endpoints pop) ~seed:14 in
  let volumes = Array.map (fun d -> d.Traffic.volume) m in
  Array.sort compare volumes;
  let n = Array.length volumes in
  let top = volumes.(n - 1) and median = volumes.(n / 2) in
  (* hot pairs make the max volume stand far above the median *)
  Alcotest.(check bool) "heavy tail" true (top > 5.0 *. median)

let test_ecmp_split () =
  (* diamond graph: two equal shortest paths; ECMP must split volume *)
  let g = Graph.create ~num_nodes:4 () in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 3);
  ignore (Graph.add_edge g 0 2);
  ignore (Graph.add_edge g 2 3);
  let params =
    { Traffic.default_gen with Traffic.max_ecmp_paths = 4; hot_pairs = 0 }
  in
  let m = Traffic.generate_pairs ~params g ~pairs:[ (0, 3) ] ~seed:9 in
  Alcotest.(check int) "one demand" 1 (Array.length m);
  let d = m.(0) in
  Alcotest.(check int) "two routes" 2 (List.length d.Traffic.routes);
  let route_sum =
    List.fold_left
      (fun acc (r : Traffic.route) -> acc +. r.Traffic.volume)
      0.0 d.Traffic.routes
  in
  Alcotest.(check (float 1e-9)) "volumes sum" d.Traffic.volume route_sum;
  List.iter
    (fun (r : Traffic.route) ->
      Alcotest.(check (float 1e-9)) "even split" (d.Traffic.volume /. 2.0)
        r.Traffic.volume)
    d.Traffic.routes

let test_demand_edges_dedup () =
  let g = Graph.create ~num_nodes:4 () in
  ignore (Graph.add_edge g 0 1);
  ignore (Graph.add_edge g 1 3);
  ignore (Graph.add_edge g 0 2);
  ignore (Graph.add_edge g 2 3);
  let params = { Traffic.default_gen with Traffic.max_ecmp_paths = 4 } in
  let m = Traffic.generate_pairs ~params g ~pairs:[ (0, 3) ] ~seed:9 in
  let edges = Traffic.demand_edges m.(0) in
  Alcotest.(check (list int)) "all four edges" [ 0; 1; 2; 3 ] edges

let test_drift_changes_volumes_not_paths () =
  let pop = pop10 7 in
  let g = pop.Pop.graph in
  let m = Traffic.generate g ~endpoints:(Pop.endpoints pop) ~seed:15 in
  let m' = Traffic.drift m ~seed:99 ~sigma:0.4 in
  Alcotest.(check int) "same count" (Array.length m) (Array.length m');
  let changed = ref false in
  Array.iteri
    (fun i d ->
      let d' = m'.(i) in
      if abs_float (d.Traffic.volume -. d'.Traffic.volume) > 1e-9 then
        changed := true;
      Alcotest.(check int) "same route count"
        (List.length d.Traffic.routes)
        (List.length d'.Traffic.routes);
      List.iter2
        (fun (r : Traffic.route) (r' : Traffic.route) ->
          Alcotest.(check (list int)) "same edges" r.Traffic.path.Paths.edges
            r'.Traffic.path.Paths.edges)
        d.Traffic.routes d'.Traffic.routes)
    m;
  Alcotest.(check bool) "some volume changed" true !changed

let test_scale_volumes () =
  let pop = pop10 8 in
  let g = pop.Pop.graph in
  let m = Traffic.generate g ~endpoints:(Pop.endpoints pop) ~seed:16 in
  let m' = Traffic.scale_volumes m ~factor:(fun _ -> 2.0) in
  Alcotest.(check (float 1e-6)) "doubled"
    (2.0 *. Traffic.total_volume m)
    (Traffic.total_volume m')

let prop_routes_are_valid_walks =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"generated routes are valid walks" ~count:40 gen
    (fun seed ->
      let pop = Pop.make_preset `Pop10 ~seed in
      let g = pop.Pop.graph in
      let m = Traffic.generate g ~endpoints:(Pop.endpoints pop) ~seed in
      Array.for_all
        (fun d ->
          List.for_all
            (fun (r : Traffic.route) ->
              let rec walk ns es =
                match (ns, es) with
                | [ last ], [] -> last = d.Traffic.dst
                | u :: (v :: _ as rest), e :: etl ->
                  let a, b = Graph.endpoints g e in
                  ((a = u && b = v) || (a = v && b = u)) && walk rest etl
                | _ -> false
              in
              List.hd r.Traffic.path.Paths.nodes = d.Traffic.src
              && walk r.Traffic.path.Paths.nodes r.Traffic.path.Paths.edges
              && r.Traffic.volume > 0.0)
            d.Traffic.routes)
        m)

let test_gravity_volume_and_structure () =
  let pop = pop10 9 in
  let g = pop.Pop.graph in
  let endpoints = Pop.endpoints pop in
  let m = Traffic.generate_gravity ~total_volume:500.0 g ~endpoints ~seed:21 in
  Alcotest.(check int) "all ordered pairs" 132 (Array.length m);
  (* total volume close to the requested mass (diagonal excluded) *)
  let v = Traffic.total_volume m in
  Alcotest.(check bool) "volume below target" true (v < 500.0 +. 1e-6);
  Alcotest.(check bool) "volume substantial" true (v > 100.0);
  (* gravity symmetry of volumes: v(i,j) = v(j,i) *)
  Array.iter
    (fun (d : Traffic.demand) ->
      match
        Array.find_opt
          (fun (d' : Traffic.demand) ->
            d'.Traffic.src = d.Traffic.dst && d'.Traffic.dst = d.Traffic.src)
          m
      with
      | None -> Alcotest.fail "missing reverse demand"
      | Some d' ->
        Alcotest.(check (float 1e-9)) "symmetric volumes" d.Traffic.volume
          d'.Traffic.volume)
    m

let test_gravity_heavy_endpoint_dominates () =
  let pop = pop10 10 in
  let m =
    Traffic.generate_gravity pop.Pop.graph ~endpoints:(Pop.endpoints pop)
      ~seed:33
  in
  let volumes = Array.map (fun d -> d.Traffic.volume) m in
  Array.sort compare volumes;
  let n = Array.length volumes in
  Alcotest.(check bool) "tail is heavy" true
    (volumes.(n - 1) > 10.0 *. volumes.(n / 2))

let suite =
  [
    Alcotest.test_case "demand count pop10" `Quick test_demand_count_pop10;
    Alcotest.test_case "routes are shortest" `Quick test_routes_are_shortest_paths;
    Alcotest.test_case "loads consistency" `Quick test_loads_consistency;
    Alcotest.test_case "hot pairs nonuniform" `Quick test_hot_pairs_nonuniform;
    Alcotest.test_case "ecmp split" `Quick test_ecmp_split;
    Alcotest.test_case "demand edges dedup" `Quick test_demand_edges_dedup;
    Alcotest.test_case "drift keeps paths" `Quick test_drift_changes_volumes_not_paths;
    Alcotest.test_case "scale volumes" `Quick test_scale_volumes;
    Alcotest.test_case "gravity structure" `Quick test_gravity_volume_and_structure;
    Alcotest.test_case "gravity heavy tail" `Quick test_gravity_heavy_endpoint_dominates;
    QCheck_alcotest.to_alcotest prop_routes_are_valid_walks;
  ]
