(* Scenario tests: small-scale versions of every figure driver, plus
   the cross-solver agreement harness. *)

module Scenario = Monpos.Scenario

let test_passive_sweep_small () =
  let points =
    Scenario.passive_sweep ~preset:`Pop10 ~seeds:[ 1; 2; 3 ]
      ~ks:[ 75; 95; 100 ] ()
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "ilp <= greedy" true
        (p.Scenario.ilp_devices <= p.Scenario.greedy_devices +. 1e-9);
      Alcotest.(check bool) "proved" true p.Scenario.ilp_optimal;
      Alcotest.(check bool) "positive" true (p.Scenario.ilp_devices > 0.0))
    points;
  (* device count grows with coverage *)
  let arr = Array.of_list points in
  Alcotest.(check bool) "monotone in k" true
    (arr.(0).Scenario.ilp_devices <= arr.(1).Scenario.ilp_devices +. 1e-9
    && arr.(1).Scenario.ilp_devices <= arr.(2).Scenario.ilp_devices +. 1e-9)

let test_passive_sweep_jump_at_100 () =
  (* the paper's headline shape: the 95 -> 100 step needs notably more
     devices than the 90 -> 95 one *)
  let points =
    Scenario.passive_sweep ~preset:`Pop10 ~seeds:[ 1; 2; 3; 4; 5 ]
      ~ks:[ 90; 95; 100 ] ()
  in
  match points with
  | [ p90; p95; p100 ] ->
    let step1 = p95.Scenario.ilp_devices -. p90.Scenario.ilp_devices in
    let step2 = p100.Scenario.ilp_devices -. p95.Scenario.ilp_devices in
    Alcotest.(check bool) "full coverage is disproportionately costly" true
      (step2 >= step1)
  | _ -> Alcotest.fail "expected three points"

let test_active_sweep_small () =
  let points =
    Scenario.active_sweep ~preset:`Pop15 ~seeds:[ 1; 2 ] ~sizes:[ 2; 6; 10 ] ()
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "ilp <= greedy" true
        (p.Scenario.ilp_beacons <= p.Scenario.greedy_beacons +. 1e-9);
      Alcotest.(check bool) "ilp <= thiran" true
        (p.Scenario.ilp_beacons <= p.Scenario.thiran_beacons +. 1e-9);
      Alcotest.(check bool) "some probes" true (p.Scenario.probes > 0.0))
    points

let test_dynamic_run_small () =
  let points =
    Scenario.dynamic_run ~preset:`Pop10 ~seed:1 ~k:0.85 ~threshold:0.8
      ~steps:10 ~sigma:0.2 ()
  in
  Alcotest.(check int) "ten points" 10 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "fractions in range" true
        (p.Scenario.coverage_before >= 0.0
        && p.Scenario.coverage_before <= 1.0 +. 1e-9
        && p.Scenario.coverage_after >= 0.0
        && p.Scenario.coverage_after <= 1.0 +. 1e-9))
    points;
  (* cumulative reoptimization counter is nondecreasing *)
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
      a.Scenario.reoptimizations <= b.Scenario.reoptimizations
      && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "counter monotone" true (nondecreasing points)

let test_solver_agreement () =
  let a = Scenario.solver_agreement ~seeds:[ 1; 2 ] ~k:0.9 ~endpoint_limit:7 () in
  Alcotest.(check int) "instances" 2 a.Scenario.instances;
  Alcotest.(check int) "no disagreement" 0 a.Scenario.disagreements;
  Alcotest.(check int) "four methods" 4 (List.length a.Scenario.methods)

(* End-to-end integration on the bigger paper instances: every layer
   (topology -> traffic -> placement -> validation) on pop29, both
   problem families. *)
let test_integration_pop29 () =
  let pop = Monpos_topo.Pop.make_preset `Pop29 ~seed:3 in
  let inst = Monpos.Instance.of_pop pop ~seed:11 in
  (* passive *)
  let g = Monpos.Passive.greedy ~k:0.9 inst in
  let e = Monpos.Passive.solve_exact ~k:0.9 inst in
  Alcotest.(check bool) "greedy feasible" true
    (Monpos.Passive.validate ~k:0.9 inst g.Monpos.Passive.monitors);
  Alcotest.(check bool) "exact feasible + proved" true
    (e.Monpos.Passive.optimal
    && Monpos.Passive.validate ~k:0.9 inst e.Monpos.Passive.monitors);
  Alcotest.(check bool) "exact <= greedy" true
    (e.Monpos.Passive.count <= g.Monpos.Passive.count);
  (* sampling re-optimization on the greedy placement *)
  let pb = Monpos.Sampling.make_problem ~k:0.85 inst in
  let s = Monpos.Sampling.reoptimize pb ~installed:g.Monpos.Passive.monitors in
  Alcotest.(check bool) "ppme* reaches k" true
    (s.Monpos.Sampling.fraction >= 0.85 -. 1e-6);
  (* active *)
  let routers = Monpos_topo.Pop.routers pop in
  let vb = List.filteri (fun i _ -> i mod 2 = 0) routers in
  let probes =
    Monpos.Active.compute_probes ~targets:vb pop.Monpos_topo.Pop.graph
      ~candidates:vb
  in
  let ilp = Monpos.Active.place_ilp probes ~candidates:vb in
  Alcotest.(check bool) "beacons valid" true
    (Monpos.Active.validate probes ~beacons:ilp.Monpos.Active.beacons
       ~candidates:vb);
  let cost = Monpos.Active.overhead probes ~beacons:ilp.Monpos.Active.beacons in
  Alcotest.(check int) "all probes sent" (List.length probes)
    cost.Monpos.Active.messages

let test_integration_sample_topology () =
  (* the whole pipeline on a file-loaded topology *)
  let pop = Monpos_topo.Topo_file.load_sample "backbone-11" in
  let m =
    Monpos_traffic.Traffic.generate_gravity pop.Monpos_topo.Pop.graph
      ~endpoints:(Monpos_topo.Pop.endpoints pop) ~seed:5
  in
  let inst = Monpos.Instance.make pop.Monpos_topo.Pop.graph m in
  let e = Monpos.Passive.solve_exact ~k:1.0 inst in
  Alcotest.(check bool) "full cover proved" true e.Monpos.Passive.optimal;
  Alcotest.(check (float 1e-9)) "full" 1.0 e.Monpos.Passive.fraction;
  (* every bridge that carries traffic and is the only way to cover
     some demand appears in any full cover... weaker check: coverage
     via the MECF flow oracle agrees *)
  Alcotest.(check (float 1e-6)) "flow oracle agrees"
    e.Monpos.Passive.coverage
    (Monpos.Mecf.coverage_via_flow inst ~monitors:e.Monpos.Passive.monitors)

let suite =
  [
    Alcotest.test_case "passive sweep small" `Slow test_passive_sweep_small;
    Alcotest.test_case "passive jump at 100" `Slow test_passive_sweep_jump_at_100;
    Alcotest.test_case "active sweep small" `Slow test_active_sweep_small;
    Alcotest.test_case "dynamic run small" `Slow test_dynamic_run_small;
    Alcotest.test_case "solver agreement" `Slow test_solver_agreement;
    Alcotest.test_case "integration pop29" `Slow test_integration_pop29;
    Alcotest.test_case "integration sample topo" `Quick test_integration_sample_topology;
  ]
