(* §5 end to end: place sampling-capable devices with the PPME MILP,
   then survive 30 steps of traffic drift with the §5.4 threshold
   controller, re-optimizing sampling rates (PPME*, a pure LP) when
   coverage sinks below the tolerance.

   Run with: dune exec examples/sampling_dynamic.exe *)

module Instance = Monpos.Instance
module Sampling = Monpos.Sampling
module Pop = Monpos_topo.Pop
module Table = Monpos_util.Table

let () =
  let pop = Pop.make_preset `Pop10 ~seed:3 in
  let inst = Instance.of_pop pop ~seed:11 in
  let pb =
    Sampling.make_problem ~k:0.9
      ~costs:(Sampling.load_scaled_costs inst ~install:8.0 ())
      inst
  in
  Format.printf "Instance: %a@." Instance.pp_summary inst;
  let placement = Sampling.solve_milp pb in
  Format.printf "PPME placement: %a@.@." Sampling.pp placement;
  let ticks =
    Sampling.run_dynamic pb ~installed:placement.Sampling.installed
      ~threshold:0.87 ~steps:30 ~sigma:0.25 ~seed:5
  in
  let rows =
    List.map
      (fun (t : Sampling.tick) ->
        [
          string_of_int t.Sampling.step;
          Table.float_cell ~decimals:3 t.Sampling.fraction_before;
          (if t.Sampling.reoptimized then "yes" else "");
          Table.float_cell ~decimals:3 t.Sampling.fraction_after;
          Table.float_cell t.Sampling.exploit_cost;
        ])
      ticks
  in
  Table.print
    ~header:[ "step"; "coverage"; "reopt?"; "after"; "exploit cost" ]
    rows;
  let n_reopt =
    List.length (List.filter (fun t -> t.Sampling.reoptimized) ticks)
  in
  Format.printf
    "@.%d re-optimizations over %d drift steps; devices never moved — only@."
    n_reopt (List.length ticks);
  Format.printf "their sampling rates did (a polynomial min-cost computation).@."
