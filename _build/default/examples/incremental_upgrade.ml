(* §4.3's planning variants: an operator already runs some taps and
   wants to know (a) the cheapest upgrade to a higher coverage target,
   and (b) what each extra device in the budget would buy — "the
   estimation of the expected gain in buying one or a set of new
   devices".

   Run with: dune exec examples/incremental_upgrade.exe *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Pop = Monpos_topo.Pop
module Graph = Monpos_graph.Graph
module Table = Monpos_util.Table

let () =
  let pop = Pop.make_preset `Pop10 ~seed:21 in
  let inst = Instance.of_pop pop ~seed:22 in
  Format.printf "Instance: %a@.@." Instance.pp_summary inst;
  (* today: an 80%-coverage optimal deployment *)
  let today = Passive.solve_exact ~k:0.8 inst in
  Format.printf "Installed base (k = 0.80): %a@.@." Passive.pp today;
  (* upgrade path: reach 90, 95, 100% without moving anything *)
  Format.printf "Upgrades keeping the installed devices in place:@.";
  let rows =
    List.map
      (fun k ->
        let up =
          Passive.incremental ~k ~installed:today.Passive.monitors inst
        in
        [
          Printf.sprintf "%.0f%%" (100.0 *. k);
          string_of_int up.Passive.count;
          String.concat " "
            (List.map (Graph.edge_name inst.Instance.graph) up.Passive.monitors);
        ])
      [ 0.9; 0.95; 1.0 ]
  in
  Table.print ~header:[ "target"; "new devices"; "links" ] rows;
  (* marginal value of a budget: best coverage for 1..6 devices *)
  Format.printf "@.Expected gain of buying n devices (greenfield):@.";
  let rows =
    List.map
      (fun b ->
        let sol = Passive.budgeted ~budget:b inst in
        [
          string_of_int b;
          Table.float_cell ~decimals:1 (100.0 *. sol.Passive.fraction);
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Table.print ~header:[ "devices"; "best coverage %" ] rows;
  Format.printf
    "@.Diminishing returns are immediate: the first couple of taps sit on@.";
  Format.printf
    "the aggregation links and buy most of the volume (\u{00a7}4.4's 95%% advice).@."
