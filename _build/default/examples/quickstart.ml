(* Quickstart: the paper's Figure 3 example end to end.

   Builds the 6-node POP carrying four traffics (weights 2, 2, 1, 1),
   runs the greedy heuristic and the exact/MIP solvers, and shows why
   the greedy pays one extra device.

   Run with: dune exec examples/quickstart.exe *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Graph = Monpos_graph.Graph

let () =
  let inst = Instance.figure3 () in
  Format.printf "Instance: %a@." Instance.pp_summary inst;
  Format.printf "Link loads:@.";
  Array.iteri
    (fun e load ->
      Format.printf "  %s load %.0f@." (Graph.edge_name inst.Instance.graph e) load)
    inst.Instance.loads;
  Format.printf "@.";
  let greedy = Passive.greedy inst in
  let exact = Passive.solve_exact inst in
  let mip = Passive.solve_mip ~formulation:`Lp2 inst in
  let show (s : Passive.solution) =
    Format.printf "%a@.  links:%s@." Passive.pp s
      (String.concat ""
         (List.map
            (fun e -> " " ^ Graph.edge_name inst.Instance.graph e)
            s.Passive.monitors))
  in
  show greedy;
  show exact;
  show mip;
  Format.printf
    "@.The greedy grabs the load-4 backbone link first and then needs two@.";
  Format.printf
    "more taps; the optimum ignores it and covers everything with the two@.";
  Format.printf "load-3 links — the \u{00a7}4.3 counterexample, reproduced.@."
