examples/pop_loads.mli:
