examples/measurement_campaign.ml: Array Format List Monpos Monpos_graph Monpos_lp Monpos_topo Monpos_traffic Monpos_util Printf
