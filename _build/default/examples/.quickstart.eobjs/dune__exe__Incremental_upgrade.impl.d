examples/incremental_upgrade.ml: Format List Monpos Monpos_graph Monpos_topo Monpos_util Printf String
