examples/incremental_upgrade.mli:
