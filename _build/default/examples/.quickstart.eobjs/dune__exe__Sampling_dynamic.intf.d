examples/sampling_dynamic.mli:
