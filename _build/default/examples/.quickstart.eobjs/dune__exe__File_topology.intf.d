examples/file_topology.mli:
