examples/sampling_dynamic.ml: Format List Monpos Monpos_topo Monpos_util
