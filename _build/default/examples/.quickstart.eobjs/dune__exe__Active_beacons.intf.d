examples/active_beacons.mli:
