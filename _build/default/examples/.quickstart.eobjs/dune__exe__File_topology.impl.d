examples/file_topology.ml: Array Format Fun List Monpos Monpos_graph Monpos_topo Monpos_traffic Monpos_util Sys
