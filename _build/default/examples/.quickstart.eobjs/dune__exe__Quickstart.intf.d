examples/quickstart.mli:
