examples/pop_loads.ml: Array Format Fun List Monpos Monpos_graph Monpos_topo Monpos_util Out_channel Sys
