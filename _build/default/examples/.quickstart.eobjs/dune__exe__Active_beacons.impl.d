examples/active_beacons.ml: Array Format List Monpos Monpos_topo Monpos_util
