examples/quickstart.ml: Array Format List Monpos Monpos_graph String
