(* Figure 6 exhibit: generate a POP, route a non-uniform traffic
   matrix across it, and render the per-link load shares — as a table
   on stdout and as Graphviz dot (pass a filename to write it).

   Run with: dune exec examples/pop_loads.exe [-- out.dot] *)

module Instance = Monpos.Instance
module Pop = Monpos_topo.Pop
module Graph = Monpos_graph.Graph
module Table = Monpos_util.Table

let () =
  let pop = Pop.make_preset `Pop10 ~seed:42 in
  let inst = Instance.of_pop pop ~seed:7 in
  Format.printf "Generated %s: %a@.@." pop.Pop.name Instance.pp_summary inst;
  let total = Array.fold_left ( +. ) 0.0 inst.Instance.loads in
  let order =
    List.sort
      (fun a b -> compare inst.Instance.loads.(b) inst.Instance.loads.(a))
      (List.init (Graph.num_edges inst.Instance.graph) Fun.id)
  in
  let rows =
    List.map
      (fun e ->
        [
          Graph.edge_name inst.Instance.graph e;
          Table.float_cell inst.Instance.loads.(e);
          Table.float_cell ~decimals:1 (100.0 *. inst.Instance.loads.(e) /. total);
        ])
      order
  in
  Table.print ~header:[ "link"; "load"; "% of carried volume" ] rows;
  let dot = Monpos_graph.Dot.with_loads inst.Instance.graph ~loads:inst.Instance.loads in
  match Sys.argv with
  | [| _; path |] ->
    Out_channel.with_open_text path (fun oc -> output_string oc dot);
    Format.printf "@.dot written to %s (render with: neato -Tpng %s)@." path path
  | _ ->
    Format.printf
      "@.(pass a filename to write the Figure-6 style dot rendering)@."
