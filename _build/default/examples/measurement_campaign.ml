(* §7's measurement-campaign extension: with taps already bolted to a
   few links, the operator re-routes traffics onto alternative
   (k-shortest) paths that cross a tap, lifting the monitored ratio
   without buying hardware. The joint variant chooses placement and
   routing together.

   Run with: dune exec examples/measurement_campaign.exe *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Campaign = Monpos.Campaign
module Pop = Monpos_topo.Pop
module Graph = Monpos_graph.Graph
module Table = Monpos_util.Table

let () =
  let pop = Pop.make_preset `Pop10 ~seed:12 in
  let inst = Instance.of_pop pop ~seed:13 in
  Format.printf "Instance: %a@.@." Instance.pp_summary inst;
  (* a tight budget: the 3 best taps under today's routing *)
  let budget = Passive.budgeted ~budget:3 inst in
  Format.printf "3-device budget placement: %a@." Passive.pp budget;
  let campaign =
    Campaign.reroute_for_monitors ~k_paths:4 inst
      ~monitors:budget.Passive.monitors
  in
  Format.printf
    "campaign: coverage %.1f%% -> %.1f%% by re-routing %d of %d demands@.@."
    (100.0 *. campaign.Campaign.coverage_before)
    (100.0 *. campaign.Campaign.coverage_after)
    (List.length campaign.Campaign.moves)
    (Array.length inst.Instance.demands);
  let top_moves =
    List.sort
      (fun a b -> compare b.Campaign.gain a.Campaign.gain)
      campaign.Campaign.moves
  in
  let rows =
    List.filteri (fun i _ -> i < 8) top_moves
    |> List.map (fun (m : Campaign.reroute) ->
           let d = inst.Instance.demands.(m.Campaign.demand) in
           [
             Printf.sprintf "%s -> %s"
               (Graph.label inst.Instance.graph d.Monpos_traffic.Traffic.src)
               (Graph.label inst.Instance.graph d.Monpos_traffic.Traffic.dst);
             string_of_int (List.length m.Campaign.old_edges);
             string_of_int (List.length m.Campaign.new_edges);
             Table.float_cell m.Campaign.gain;
           ])
  in
  Table.print
    ~header:[ "demand"; "old hops"; "new hops"; "volume gained" ]
    rows;
  (* joint placement: how many devices does coverage need when the
     operator may also re-route? (on a trimmed matrix so the joint MIP
     proves optimality quickly) *)
  let small =
    let endpoints =
      List.filteri (fun i _ -> i < 6) (Pop.endpoints pop)
    in
    let m =
      Monpos_traffic.Traffic.generate pop.Pop.graph ~endpoints ~seed:13
    in
    Instance.make pop.Pop.graph m
  in
  let fixed = Passive.solve_exact ~k:0.95 small in
  let joint, _ =
    Campaign.joint_placement ~k_paths:3 ~coverage:0.95
      ~options:Monpos_lp.Mip.default_options small
  in
  Format.printf "@.On a 6-endpoint matrix (30 demands):@.";
  Format.printf "95%% coverage, fixed routing:   %d devices@."
    fixed.Passive.count;
  Format.printf "95%% coverage, joint w/ routing: %d devices%s@."
    joint.Passive.count
    (if joint.Passive.optimal then " (proved)" else " (incumbent)");
  Format.printf
    "@.Re-routing is a knob the MIP framework absorbs for free — the@.";
  Format.printf "flow-based model 'applies perfectly' as \u{00a7}7 anticipated.@."
