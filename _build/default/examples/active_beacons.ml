(* §6 end to end: compute the optimal probe set on a 15-router POP and
   compare the three beacon-placement algorithms (the [15] baseline,
   the paper's greedy, the paper's ILP) as the candidate set grows —
   a single-seed Figure 9.

   Run with: dune exec examples/active_beacons.exe *)

module Active = Monpos.Active
module Pop = Monpos_topo.Pop
module Prng = Monpos_util.Prng
module Table = Monpos_util.Table

let () =
  let pop = Pop.make_preset `Pop15 ~seed:8 in
  let routers = Array.of_list (Pop.routers pop) in
  Format.printf "POP %s: %d routers@.@." pop.Pop.name (Array.length routers);
  let rows =
    List.filter_map
      (fun vb_size ->
        let rng = Prng.create (100 + vb_size) in
        let shuffled = Array.copy routers in
        Prng.shuffle rng shuffled;
        let candidates =
          List.sort compare (Array.to_list (Array.sub shuffled 0 vb_size))
        in
        let probes =
          Active.compute_probes ~targets:candidates pop.Pop.graph ~candidates
        in
        if probes = [] then None
        else begin
          let t = Active.place_thiran probes ~candidates in
          let g = Active.place_greedy probes ~candidates in
          let i = Active.place_ilp probes ~candidates in
          Some
            [
              string_of_int vb_size;
              string_of_int (List.length probes);
              string_of_int (List.length t.Active.beacons);
              string_of_int (List.length g.Active.beacons);
              string_of_int (List.length i.Active.beacons);
            ]
        end)
      (List.init (Array.length routers) (fun i -> i + 1))
  in
  Table.print
    ~header:[ "|V_B|"; "probes"; "thiran"; "greedy"; "ilp" ]
    rows;
  Format.printf
    "@.The ILP never places more beacons than either greedy, and the gap@.";
  Format.printf "to the [15] baseline widens as the candidate set grows (\u{00a7}6.2).@."
