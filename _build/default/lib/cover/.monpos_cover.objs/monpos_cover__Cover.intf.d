lib/cover/cover.mli: Monpos_graph
