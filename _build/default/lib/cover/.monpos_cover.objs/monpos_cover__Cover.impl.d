lib/cover/cover.ml: Array Hashtbl List Monpos_graph Monpos_util Printf
