(** Weighted (partial) set cover.

    §4.2 of the paper proves the Passive Monitoring problem PPM(1)
    equivalent to Minimum Set Cover, and unweighted PPM(k) equivalent
    to Minimum Partial Cover. This module provides:

    - the greedy algorithm (largest uncovered weight first), whose
      [ln|S| − ln ln|S| + o(1)] guarantee (Slavik) transfers to
      passive monitoring;
    - an exact branch-and-bound solver for small/medium instances,
      used as ground truth in tests and by
      [Monpos.Passive.solve_exact];
    - both directions of the Theorem 1 reduction, in {!Reduction}.

    Items carry weights (traffic volumes); [target] expresses partial
    covers: a solution must cover at least [target] total weight
    (default: the full weight, i.e. classic set cover). *)

type instance = {
  num_items : int;  (** universe size; items are [0 .. num_items-1] *)
  item_weight : float array;
      (** weight per item (all 1. for the unweighted problem) *)
  sets : int list array;  (** [sets.(j)] = items covered by set [j] *)
}

val make : num_items:int -> ?weights:float array -> int list array -> instance
(** Build an instance; [weights] defaults to all-ones. Raises
    [Invalid_argument] on out-of-range items or negative weights. *)

val total_weight : instance -> float
(** Sum of item weights. *)

val covered_weight : instance -> int list -> float
(** Weight of the union of the chosen sets. *)

val is_cover : ?target:float -> instance -> int list -> bool
(** Whether the chosen sets cover at least [target] weight (default:
    everything, up to a 1e-9 slack). *)

val greedy : ?target:float -> instance -> int list
(** Greedy partial cover: repeatedly pick the set covering the largest
    uncovered weight, stopping once [target] is reached (default: full
    cover). Returns chosen sets in pick order; ties are broken by the
    smallest set index. Raises [Failure] if the target is
    unreachable. *)

val exact : ?target:float -> instance -> int list
(** Minimum-cardinality (partial) cover by branch and bound. Intended
    for instances up to a few dozen sets; used as the optimum oracle.
    Raises [Failure] if the target is unreachable. *)

type exact_result = {
  chosen : int list;  (** best cover found *)
  proven_optimal : bool;  (** false when the node budget was exhausted *)
  nodes : int;  (** branch-and-bound nodes explored *)
}

val exact_detailed : ?target:float -> ?node_limit:int -> instance -> exact_result
(** Same solver with an explicit node budget (default 20 million).
    When the budget runs out the incumbent (at least as good as
    greedy) is returned with [proven_optimal = false]. Raises
    [Failure] if no solution reaching [target] exists at all. *)

val greedy_guarantee : instance -> float
(** The classic [H_d] harmonic guarantee for full covers, where [d] is
    the largest set size: greedy uses at most [H_d × OPT] sets. *)

(** Theorem 1 constructions. *)
module Reduction : sig
  type monitoring = {
    graph : Monpos_graph.Graph.t;
    paths : (Monpos_graph.Graph.node list * Monpos_graph.Graph.edge list) array;
        (** one traffic (as node and edge lists) per original item *)
    edge_of_set : Monpos_graph.Graph.edge array;
        (** the graph edge standing for each original set *)
  }

  val to_monitoring : instance -> monitoring
  (** Build the monitoring instance of Theorem 1: one edge per set,
      4-cycles between intersecting sets, and one traffic per item
      routed across the edges of the sets containing it. A minimum
      set of monitored links has the same size as a minimum set
      cover. *)

  val of_monitoring :
    num_edges:int -> weights:float array -> int list array -> instance
  (** The converse direction: given, for each traffic, the list of
      edges its path uses ([paths-as-edge-lists]), build the cover
      instance whose sets are edges and items are traffics.
      [num_edges] bounds the set index space; [weights] are traffic
      volumes. *)
end
