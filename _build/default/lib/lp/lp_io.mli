(** CPLEX LP-format export.

    The paper solved its programs with CPLEX; this module writes any
    {!Model.t} in the standard LP file format so a model built here can
    be loaded into CPLEX/Gurobi/HiGHS/glpsol and cross-checked against
    our own solver — the same interoperability the original authors
    relied on. *)

val to_string : Model.t -> string
(** Render the model in LP format: objective, [Subject To],
    [Bounds], [Binaries]/[Generals] sections, [End]. Variable names
    are sanitized (LP format forbids several characters); the mapping
    is by position, so row/column order is preserved. *)

val write_file : Model.t -> string -> unit
(** [write_file m path] writes {!to_string} to [path]. *)
