let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
      | _ -> '_')
    name

(* LP format requires names not to start with a digit or 'e'/'E'
   (which reads as a number); prefix when needed. *)
let var_name m v =
  let raw = sanitize (Model.var_name m v) in
  match raw.[0] with
  | '0' .. '9' | 'e' | 'E' | '.' -> "v_" ^ raw
  | _ -> raw
  | exception Invalid_argument _ -> Printf.sprintf "v_%d" (Model.var_index v)

let term_string m first (c, vi) =
  let v = Model.var_of_index m vi in
  let name = var_name m v in
  if first then
    if c = 1.0 then name
    else if c = -1.0 then "- " ^ name
    else Printf.sprintf "%g %s" c name
  else if c >= 0.0 then Printf.sprintf "+ %g %s" c name
  else Printf.sprintf "- %g %s" (abs_float c) name

let to_string m =
  let buf = Buffer.create 1024 in
  let dir =
    match Model.direction m with
    | Model.Minimize -> "Minimize"
    | Model.Maximize -> "Maximize"
  in
  Buffer.add_string buf (Printf.sprintf "\\ %s\n%s\n obj:" (Model.name m) dir);
  let wrote = ref false in
  for vi = 0 to Model.num_vars m - 1 do
    let v = Model.var_of_index m vi in
    let c = Model.var_obj m v in
    if c <> 0.0 then begin
      Buffer.add_char buf ' ';
      Buffer.add_string buf (term_string m (not !wrote) (c, vi));
      wrote := true
    end
  done;
  if not !wrote then Buffer.add_string buf " 0 x0_dummy";
  Buffer.add_string buf "\nSubject To\n";
  Model.iter_constrs m (fun i terms sense rhs ->
      Buffer.add_string buf (Printf.sprintf " %s:" (sanitize (Model.constr_name m i)));
      (match terms with
      | [] -> Buffer.add_string buf " 0 x0_dummy"
      | first :: rest ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (term_string m true first);
        List.iter
          (fun t ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (term_string m false t))
          rest);
      let rel =
        match sense with Model.Le -> "<=" | Model.Ge -> ">=" | Model.Eq -> "="
      in
      Buffer.add_string buf (Printf.sprintf " %s %g\n" rel rhs));
  Buffer.add_string buf "Bounds\n";
  let binaries = ref [] and generals = ref [] in
  for vi = 0 to Model.num_vars m - 1 do
    let v = Model.var_of_index m vi in
    let name = var_name m v in
    let lb = Model.var_lb m v and ub = Model.var_ub m v in
    (match Model.var_kind m v with
    | Model.Binary -> binaries := name :: !binaries
    | Model.Integer -> generals := name :: !generals
    | Model.Continuous -> ());
    (* bounds lines; LP format default is [0, +inf) *)
    if lb = neg_infinity && ub = infinity then
      Buffer.add_string buf (Printf.sprintf " %s free\n" name)
    else if lb = neg_infinity then
      Buffer.add_string buf (Printf.sprintf " -inf <= %s <= %g\n" name ub)
    else if ub = infinity then begin
      if lb <> 0.0 then
        Buffer.add_string buf (Printf.sprintf " %s >= %g\n" name lb)
    end
    else Buffer.add_string buf (Printf.sprintf " %g <= %s <= %g\n" lb name ub)
  done;
  if !binaries <> [] then begin
    Buffer.add_string buf "Binaries\n";
    List.iter
      (fun nm -> Buffer.add_string buf (Printf.sprintf " %s\n" nm))
      (List.rev !binaries)
  end;
  if !generals <> [] then begin
    Buffer.add_string buf "Generals\n";
    List.iter
      (fun nm -> Buffer.add_string buf (Printf.sprintf " %s\n" nm))
      (List.rev !generals)
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let write_file m path =
  Out_channel.with_open_text path (fun oc -> output_string oc (to_string m))
