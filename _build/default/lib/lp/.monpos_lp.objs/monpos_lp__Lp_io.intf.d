lib/lp/lp_io.mli: Model
