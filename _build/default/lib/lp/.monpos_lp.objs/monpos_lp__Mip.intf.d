lib/lp/mip.mli: Model
