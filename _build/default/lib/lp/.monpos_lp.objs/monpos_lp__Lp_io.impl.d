lib/lp/lp_io.ml: Buffer List Model Out_channel Printf String
