lib/lp/model.ml: Array Float Format Hashtbl List Option Printf
