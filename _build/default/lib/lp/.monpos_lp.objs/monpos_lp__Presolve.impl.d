lib/lp/presolve.ml: Array Float List Model
