lib/lp/mip.ml: Array Float List Model Monpos_util Printf Simplex Sys
