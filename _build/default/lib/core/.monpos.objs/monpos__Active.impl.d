lib/core/active.ml: Array Fun Hashtbl List Monpos_graph Monpos_lp Option Printf
