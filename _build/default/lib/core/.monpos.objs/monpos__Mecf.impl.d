lib/core/mecf.ml: Array Fun Hashtbl Instance List Monpos_flow Monpos_graph Monpos_lp Passive Printf
