lib/core/campaign.mli: Instance Monpos_graph Monpos_lp Passive Sampling
