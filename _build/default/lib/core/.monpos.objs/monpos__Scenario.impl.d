lib/core/scenario.ml: Active Array Instance List Mecf Monpos_topo Monpos_traffic Monpos_util Passive Sampling
