lib/core/passive.ml: Array Format Fun Hashtbl Instance List Monpos_cover Monpos_graph Monpos_lp Monpos_util Option Printf
