lib/core/instance.mli: Format Monpos_cover Monpos_graph Monpos_topo Monpos_traffic
