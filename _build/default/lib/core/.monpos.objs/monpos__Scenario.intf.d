lib/core/scenario.mli:
