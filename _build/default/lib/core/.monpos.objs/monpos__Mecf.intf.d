lib/core/mecf.mli: Instance Monpos_graph Monpos_lp Passive
