lib/core/active.mli: Monpos_graph Monpos_lp
