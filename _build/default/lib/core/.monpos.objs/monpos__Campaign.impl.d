lib/core/campaign.ml: Array Hashtbl Instance List Monpos_graph Monpos_lp Monpos_traffic Option Passive Printf Sampling
