lib/core/report.ml: Active Array Instance List Monpos_graph Monpos_topo Monpos_util Passive Printf Sampling
