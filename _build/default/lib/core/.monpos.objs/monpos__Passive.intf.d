lib/core/passive.mli: Format Instance Monpos_graph Monpos_lp
