lib/core/instance.ml: Array Format List Monpos_cover Monpos_graph Monpos_topo Monpos_traffic Monpos_util
