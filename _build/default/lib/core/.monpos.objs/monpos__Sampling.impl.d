lib/core/sampling.ml: Array Format Fun Hashtbl Instance Int64 List Monpos_flow Monpos_graph Monpos_lp Monpos_traffic Monpos_util Option Printf
