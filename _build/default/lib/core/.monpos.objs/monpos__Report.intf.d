lib/core/report.mli: Active Instance Monpos_topo Passive Sampling
