lib/core/sampling.mli: Format Instance Monpos_graph Monpos_lp
