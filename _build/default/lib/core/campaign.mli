(** Measurement campaigns — the third §7 perspective.

    "We are investigating on solutions for measurement campaign, where
    the operator of a POP or an AS can modify the routing strategy in
    order to maximize the monitoring ratio, given a set of already
    installed measurement points. For this last perspective, the
    flow-based model is expected to apply perfectly."

    Given installed devices, each traffic may be re-routed onto any of
    its [k] shortest paths. Because a traffic is monitored iff its own
    path crosses a monitored link (and, with sampling, its monitored
    fraction is [min(1, Σ_{e∈p} r_e)]), the per-traffic choices are
    independent and the optimal campaign is polynomial — per-demand
    path selection. The joint problem (choose placement *and* routing
    together) is NP-hard and solved here as a MIP. *)

type reroute = {
  demand : int;  (** demand index *)
  old_edges : Monpos_graph.Graph.edge list;  (** previous route *)
  new_edges : Monpos_graph.Graph.edge list;  (** chosen route *)
  gain : float;  (** monitored volume gained by the move *)
}

type result = {
  instance : Instance.t;  (** the instance re-built on the new routes *)
  moves : reroute list;  (** demands whose route changed *)
  coverage_before : float;  (** monitored fraction before the campaign *)
  coverage_after : float;  (** monitored fraction after *)
}

val reroute_for_monitors :
  ?k_paths:int ->
  Instance.t ->
  monitors:Monpos_graph.Graph.edge list ->
  result
(** Optimal campaign for plain taps: each demand switches to a
    [k_paths]-shortest path (default 3) crossing a monitored link when
    one exists, preferring the cheapest such path; demands that cannot
    be monitored keep their shortest route. Multi-routed demands are
    collapsed onto the selected single path (the operator pins the
    route during the campaign). *)

val reroute_for_rates :
  ?k_paths:int -> Sampling.problem -> rates:float array -> result
(** Sampling-aware campaign: each demand picks the path maximizing its
    monitored fraction [min(1, Σ_{e∈p} r_e)], tie-broken by path cost.
    The result's coverages use the same fraction semantics as
    {!Sampling.coverage_with_rates}. *)

val joint_placement :
  ?k_paths:int ->
  ?coverage:float ->
  ?options:Monpos_lp.Mip.options ->
  Instance.t ->
  Passive.solution * result
(** Choose device positions and routes together: minimize the device
    count such that, with every demand free to use any of its
    [k_paths] shortest paths, the routed-and-monitored volume reaches
    [coverage] (default 1.). Returns the placement and the campaign
    realizing it. A proven-optimal joint placement never needs more
    devices than [Passive.solve_exact ~k:coverage] on the fixed
    routing. Like {!Sampling.solve_milp}, the default [options] run the
    branch and bound to a 1% gap under a 20-second budget. *)
