module Graph = Monpos_graph.Graph
module Dot = Monpos_graph.Dot
module Pop = Monpos_topo.Pop
module Table = Monpos_util.Table

let load_share inst e =
  let total = Array.fold_left ( +. ) 0.0 inst.Instance.loads in
  if total <= 0.0 then 0.0 else inst.Instance.loads.(e) /. total

let edge_flags num_edges edges =
  let a = Array.make num_edges false in
  List.iter (fun e -> a.(e) <- true) edges;
  a

let passive_dot inst (sol : Passive.solution) =
  let g = inst.Instance.graph in
  let monitored = edge_flags (Graph.num_edges g) sol.Passive.monitors in
  Dot.to_string
    ~edge_attrs:(fun e ->
      let base =
        [
          ("label", Printf.sprintf "%.1f%%" (100.0 *. load_share inst e));
          ("penwidth", Printf.sprintf "%.2f" (0.5 +. (10.0 *. load_share inst e)));
        ]
      in
      if monitored.(e) then ("color", "red") :: ("style", "bold") :: base
      else base)
    g

let sampling_dot inst (sol : Sampling.solution) =
  let g = inst.Instance.graph in
  let installed = edge_flags (Graph.num_edges g) sol.Sampling.installed in
  Dot.to_string
    ~edge_attrs:(fun e ->
      if installed.(e) then
        [
          ("color", "red");
          ("style", "bold");
          ("label", Printf.sprintf "r=%.2f" sol.Sampling.rates.(e));
        ]
      else [ ("penwidth", "0.7") ])
    g

let beacons_dot pop probes (placement : Active.placement) =
  let g = pop.Pop.graph in
  let probed = Array.make (Graph.num_edges g) false in
  List.iter
    (fun (p : Active.probe) ->
      List.iter
        (fun e -> probed.(e) <- true)
        p.Active.path.Monpos_graph.Paths.edges)
    probes;
  let beacon = Array.make (Graph.num_nodes g) false in
  List.iter (fun b -> beacon.(b) <- true) placement.Active.beacons;
  Dot.to_string
    ~node_attrs:(fun v ->
      if beacon.(v) then
        [ ("shape", "box"); ("style", "filled"); ("fillcolor", "gold") ]
      else if Pop.is_router pop v then [ ("shape", "ellipse") ]
      else [ ("shape", "point") ])
    ~edge_attrs:(fun e ->
      if probed.(e) then [ ("color", "blue") ] else [ ("style", "dashed") ])
    g

let passive_table inst (sol : Passive.solution) =
  let g = inst.Instance.graph in
  let rows =
    List.map
      (fun e ->
        [
          string_of_int e;
          Graph.edge_name g e;
          Table.float_cell inst.Instance.loads.(e);
          Table.float_cell ~decimals:1 (100.0 *. load_share inst e);
        ])
      sol.Passive.monitors
  in
  Table.render ~header:[ "link"; "name"; "load"; "% of volume" ] rows
