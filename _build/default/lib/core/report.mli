(** Rendering helpers for placements and solutions.

    Text and Graphviz views consumed by the CLI and the examples: a
    POP drawing where monitored links are highlighted (and, for
    sampling solutions, annotated with their rates), plus aligned text
    summaries. *)

val passive_dot : Instance.t -> Passive.solution -> string
(** Figure-6 style rendering with the monitored links drawn thick and
    colored; edge labels carry the load share. *)

val sampling_dot : Instance.t -> Sampling.solution -> string
(** Same, for a sampling placement: installed links are labeled with
    their sampling rate. *)

val beacons_dot :
  Monpos_topo.Pop.t -> Active.probe list -> Active.placement -> string
(** Router-level rendering: beacons are filled boxes, probe paths'
    links are highlighted. *)

val passive_table : Instance.t -> Passive.solution -> string
(** Aligned table of the monitored links with their loads and the
    share of the total volume each carries. *)
