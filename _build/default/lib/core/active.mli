(** Active monitoring beacon placement — §6.

    An active probing system sends probes (IP messages along routed
    paths) from beacon nodes; a probe between extremities [φu] and
    [φv] can be emitted by either end ("the probe from φu to φv is
    equal to the probe from φv to φu"). Following Nguyen & Thiran
    [15], the pipeline is two-phased: first compute an optimal set of
    probes [Φ] covering every coverable link from the candidate beacon
    set [V_B], then choose the fewest beacons so that every probe has
    a beacon at one of its extremities.

    The placement phase is the paper's contribution: a 0–1 ILP
    (vertex-cover style) and a max-coverage greedy, both compared
    against the original algorithm of [15] (beacons picked in
    arbitrary order). *)

type probe = {
  endpoint_a : Monpos_graph.Graph.node;
      (** always a member of the candidate set [V_B] *)
  endpoint_b : Monpos_graph.Graph.node;  (** any network node *)
  path : Monpos_graph.Paths.path;  (** the route the probe follows *)
}

val coverable_links :
  ?targets:Monpos_graph.Graph.node list ->
  Monpos_graph.Graph.t ->
  candidates:Monpos_graph.Graph.node list ->
  Monpos_graph.Graph.edge list
(** Links crossed by at least one candidate-to-target shortest-path
    probe — the set the probe computation must cover. [targets]
    defaults to every node; the §6 experiments pass the POP's routers
    so that probes exercise the router fabric (beacons diagnose
    infrastructure links, not customer tails). *)

val compute_probes :
  ?targets:Monpos_graph.Graph.node list ->
  ?redundancy:int ->
  Monpos_graph.Graph.t ->
  candidates:Monpos_graph.Graph.node list ->
  probe list
(** The [15]-style probe computation (polynomial): every coverable
    link gets up to [redundancy] designated probes crossing it
    (default 3 — multiple-failure diagnosis needs a link observed by
    several probes to disambiguate), chosen by a deterministic hash so
    the designation is reproducible but unbiased, then deduplicated as
    unordered pairs. A link failure is located through its designated
    probes; see DESIGN.md §3 for the substitution note. *)

type placement = {
  beacons : Monpos_graph.Graph.node list;  (** chosen beacons, ascending *)
  optimal : bool;  (** true when proved minimum *)
  method_name : string;  (** "thiran", "greedy" or "ilp" *)
}

val place_thiran : probe list -> candidates:Monpos_graph.Graph.node list -> placement
(** The baseline of [15]: walk the probe set in order; each probe that
    no chosen beacon can send yet promotes its own source to beacon
    (no look-ahead over the candidate list). *)

val place_greedy : probe list -> candidates:Monpos_graph.Graph.node list -> placement
(** The paper's greedy: always pick the candidate able to send the
    most not-yet-covered probes. *)

val place_ilp :
  ?options:Monpos_lp.Mip.options ->
  probe list ->
  candidates:Monpos_graph.Graph.node list ->
  placement
(** The paper's 0–1 ILP: minimize [Σ y_i] subject to
    [y_{φu} + y_{φv} >= 1] per probe and [y_i = 0] outside [V_B].
    Raises [Failure] if some probe has no candidate extremity. *)

val validate :
  probe list ->
  beacons:Monpos_graph.Graph.node list ->
  candidates:Monpos_graph.Graph.node list ->
  bool
(** Every probe has a beacon extremity, and beacons ⊆ candidates. *)

val probes_covering :
  probe list -> Monpos_graph.Graph.node -> probe list
(** Probes that the given node can send (it is one of the
    extremities). *)

type traffic_overhead = {
  messages : int;  (** probes emitted per measurement round *)
  hops : int;  (** total link traversals per round *)
  per_beacon : (Monpos_graph.Graph.node * int) list;
      (** how many probes each beacon sends, descending *)
}

val overhead :
  probe list -> beacons:Monpos_graph.Graph.node list -> traffic_overhead
(** The "volume of additional traffic" cost of a placement (§1/§3's
    other objective for active monitoring): each probe is emitted by
    one of its beacon extremities (the one with fewer assignments so
    load spreads), costing its path length in link traversals. *)
