(** POP topology generation.

    §2 of the paper models a Point of Presence as a two-level
    hierarchy: backbone routers (interconnected, carrying inter-POP and
    peering links) and access routers (each connected to one or more
    backbone routers), with customer networks attached to access
    routers. §4.4 evaluates on POPs of 10 and 15 routers (27 and 71
    links, 132 and 1980 traffics) and §6.2 on 15-, 29- and 80-router
    POPs; the paper's topologies come from Rocketfuel, which we
    substitute with this generator (see DESIGN.md §3).

    Traffic endpoints are *virtual nodes* (customers and peers), one
    access link each, exactly as the paper counts them: "the generated
    network includes some virtual nodes that represent sources and
    targets of the traffic and that are not considered as routers". *)

type role =
  | Backbone  (** core router *)
  | Access  (** access router *)
  | Customer  (** virtual customer endpoint (attached to an access router) *)
  | Peer  (** virtual peering endpoint (attached to a backbone router) *)

type t = {
  graph : Monpos_graph.Graph.t;
  roles : role array;  (** role per node id *)
  name : string;  (** e.g. "pop10" *)
}

type params = {
  backbone : int;  (** number of backbone routers (>= 1) *)
  access : int;  (** number of access routers *)
  router_links : int;
      (** total router-to-router links; must be at least
          [backbone ring + one uplink per access router] *)
  endpoints : int;  (** number of virtual traffic endpoints *)
  peers : int;  (** how many endpoints peer at backbone routers *)
}

val generate : ?name:string -> params -> seed:int -> t
(** Build a random POP: a backbone ring, at least one uplink per
    access router, random extra chords/dual-homings up to
    [router_links], then endpoint access links. The result is always
    connected. Raises [Invalid_argument] on unsatisfiable parameter
    combinations. *)

val preset : [ `Pop10 | `Pop15 | `Pop29 | `Pop80 ] -> params
(** Parameter sets matching the paper's instances:
    - [`Pop10]: 10 routers, 27 links, 12 endpoints (132 traffics);
    - [`Pop15]: 15 routers, 71 links, 45 endpoints (1980 traffics);
    - [`Pop29]: 29 routers (active-monitoring experiment of Fig. 10);
    - [`Pop80]: 80 routers (Fig. 11). *)

val preset_name : [ `Pop10 | `Pop15 | `Pop29 | `Pop80 ] -> string
(** "pop10", "pop15", ... *)

val make_preset : [ `Pop10 | `Pop15 | `Pop29 | `Pop80 ] -> seed:int -> t
(** [generate (preset p) ~seed] with the preset's name. *)

val routers : t -> Monpos_graph.Graph.node list
(** Backbone and access routers, in id order. *)

val endpoints : t -> Monpos_graph.Graph.node list
(** Customer and peer endpoints, in id order. *)

val is_router : t -> Monpos_graph.Graph.node -> bool
(** Whether the node is a (backbone or access) router. *)

val num_routers : t -> int
(** Router count (the paper's "POP with n routers"). *)

val router_link_count : t -> int
(** Number of router-to-router links. *)
