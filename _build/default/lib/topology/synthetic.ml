module Graph = Monpos_graph.Graph
module Prng = Monpos_util.Prng

let ring n =
  assert (n >= 3);
  let g = Graph.create ~num_nodes:n () in
  for i = 0 to n - 1 do
    ignore (Graph.add_edge g i ((i + 1) mod n))
  done;
  g

let grid rows cols =
  assert (rows >= 1 && cols >= 1);
  let g = Graph.create ~num_nodes:(rows * cols) () in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Graph.add_edge g (id r c) (id r (c + 1)));
      if r + 1 < rows then ignore (Graph.add_edge g (id r c) (id (r + 1) c))
    done
  done;
  g

let star n =
  assert (n >= 1);
  let g = Graph.create ~num_nodes:(n + 1) () in
  for i = 1 to n do
    ignore (Graph.add_edge g 0 i)
  done;
  g

let complete n =
  assert (n >= 1);
  let g = Graph.create ~num_nodes:n () in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      ignore (Graph.add_edge g u v)
    done
  done;
  g

let waxman ~n ~alpha ~beta ~seed =
  assert (n >= 2);
  let rng = Prng.create seed in
  let xs = Array.init n (fun _ -> Prng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Prng.float rng 1.0) in
  let dist u v = sqrt (((xs.(u) -. xs.(v)) ** 2.0) +. ((ys.(u) -. ys.(v)) ** 2.0)) in
  let g = Graph.create ~num_nodes:n () in
  (* spanning tree for connectivity: attach each node to a random
     earlier node *)
  for v = 1 to n - 1 do
    ignore (Graph.add_edge g (Prng.int rng v) v)
  done;
  let l = sqrt 2.0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if not (Graph.has_edge g u v) then begin
        let p = alpha *. exp (-.dist u v /. (beta *. l)) in
        if Prng.float rng 1.0 < p then ignore (Graph.add_edge g u v)
      end
    done
  done;
  g
