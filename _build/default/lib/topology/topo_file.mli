(** Textual POP/AS topology format.

    The paper evaluates on topologies inferred by Rocketfuel, whose
    data files are not redistributable; this module provides the
    equivalent workflow — load a measured topology from disk — with a
    small self-describing format, plus embedded sample topologies
    shaped like published ISP maps (see {!samples}).

    Format, one directive per line ([#] starts a comment):
    {v
    node <name> <role>        role: backbone | access | customer | peer
    link <name> <name>
    v}
    Node order defines node ids; links refer to declared nodes. *)

val parse : string -> (Pop.t, string) result
(** Parse a topology from its textual representation. Errors carry a
    line number and reason. The resulting {!Pop.t} has name "file"
    unless a [name <string>] directive appears. *)

val parse_file : string -> (Pop.t, string) result
(** {!parse} on a file's contents; IO errors are reported in the
    [Error] case. *)

val to_string : Pop.t -> string
(** Serialize a POP back to the format (round-trips with {!parse} up
    to comments). *)

val samples : (string * string) list
(** Embedded example topologies [(name, contents)]: a small national
    backbone ("backbone-11", 11 routers in a ladder with stubs) and a
    metro POP ("metro-7"). Both parse, are connected, and are used in
    tests and examples as stand-ins for Rocketfuel files. *)

val load_sample : string -> Pop.t
(** Parse one of {!samples} by name. Raises [Invalid_argument] on an
    unknown name (programming error: sample names are static). *)
