lib/topology/pop.mli: Monpos_graph
