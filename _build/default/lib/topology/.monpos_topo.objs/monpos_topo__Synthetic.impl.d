lib/topology/synthetic.ml: Array Monpos_graph Monpos_util
