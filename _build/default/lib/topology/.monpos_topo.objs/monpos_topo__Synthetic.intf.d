lib/topology/synthetic.mli: Monpos_graph
