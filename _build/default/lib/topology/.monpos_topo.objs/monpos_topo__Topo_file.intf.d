lib/topology/topo_file.mli: Pop
