lib/topology/topo_file.ml: Array Buffer Hashtbl In_channel List Monpos_graph Pop Printf String
