lib/topology/pop.ml: Array Fun List Monpos_graph Monpos_util Printf
