(** Synthetic test topologies.

    Simple parametric graphs used by the test suite and by ablation
    benches; they are not POPs (no roles) but plain {!Monpos_graph.Graph.t}
    values. *)

val ring : int -> Monpos_graph.Graph.t
(** Cycle on [n >= 3] nodes. *)

val grid : int -> int -> Monpos_graph.Graph.t
(** [grid rows cols] 4-neighbour mesh. *)

val star : int -> Monpos_graph.Graph.t
(** Hub node 0 with [n] leaves. *)

val complete : int -> Monpos_graph.Graph.t
(** Clique on [n] nodes. *)

val waxman :
  n:int -> alpha:float -> beta:float -> seed:int -> Monpos_graph.Graph.t
(** Waxman random graph: nodes placed uniformly in the unit square,
    edge (u,v) with probability [alpha * exp (-d(u,v) / (beta * L))].
    A spanning tree is added first so the result is always
    connected. *)
