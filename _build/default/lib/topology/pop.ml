module Graph = Monpos_graph.Graph
module Prng = Monpos_util.Prng

type role = Backbone | Access | Customer | Peer

type t = { graph : Graph.t; roles : role array; name : string }

type params = {
  backbone : int;
  access : int;
  router_links : int;
  endpoints : int;
  peers : int;
}

let ring_links backbone =
  if backbone <= 1 then 0 else if backbone = 2 then 1 else backbone

let generate ?(name = "pop") params ~seed =
  let { backbone; access; router_links; endpoints; peers } = params in
  if backbone < 1 then invalid_arg "Pop.generate: backbone < 1";
  if access < 0 || endpoints < 0 || peers < 0 || peers > endpoints then
    invalid_arg "Pop.generate: bad counts";
  let min_links = ring_links backbone + access in
  if router_links < min_links then
    invalid_arg "Pop.generate: router_links below connectivity minimum";
  let nrouters = backbone + access in
  let max_links = nrouters * (nrouters - 1) / 2 in
  if router_links > max_links then
    invalid_arg "Pop.generate: router_links above simple-graph maximum";
  let rng = Prng.create seed in
  let g = Graph.create () in
  let roles = Array.make (nrouters + endpoints) Backbone in
  for i = 0 to backbone - 1 do
    let v = Graph.add_node ~label:(Printf.sprintf "bb%d" i) g in
    roles.(v) <- Backbone
  done;
  for i = 0 to access - 1 do
    let v = Graph.add_node ~label:(Printf.sprintf "ar%d" i) g in
    roles.(v) <- Access
  done;
  (* backbone ring *)
  if backbone = 2 then ignore (Graph.add_edge g 0 1)
  else if backbone >= 3 then
    for i = 0 to backbone - 1 do
      ignore (Graph.add_edge g i ((i + 1) mod backbone))
    done;
  (* one uplink per access router *)
  for i = 0 to access - 1 do
    let ar = backbone + i in
    ignore (Graph.add_edge g ar (Prng.int rng backbone))
  done;
  (* extra router links: dual-homing (70%) or backbone chords (30%) *)
  let current = ref (ring_links backbone + access) in
  let guard = ref 0 in
  while !current < router_links && !guard < 100_000 do
    incr guard;
    let u, v =
      if access > 0 && (backbone < 2 || Prng.float rng 1.0 < 0.7) then
        (backbone + Prng.int rng access, Prng.int rng backbone)
      else if backbone >= 2 then
        (Prng.int rng backbone, Prng.int rng backbone)
      else (Prng.int rng nrouters, Prng.int rng nrouters)
    in
    if u <> v && not (Graph.has_edge g u v) then begin
      ignore (Graph.add_edge g u v);
      incr current
    end
  done;
  (* fall back to arbitrary router pairs if rejection sampling stalled *)
  if !current < router_links then begin
    for u = 0 to nrouters - 1 do
      for v = u + 1 to nrouters - 1 do
        if !current < router_links && not (Graph.has_edge g u v) then begin
          ignore (Graph.add_edge g u v);
          incr current
        end
      done
    done
  end;
  (* endpoints: peers on backbone routers, customers on access (or
     backbone when there is no access tier) *)
  for i = 0 to endpoints - 1 do
    let is_peer = i < peers in
    let label = if is_peer then Printf.sprintf "peer%d" i else Printf.sprintf "cust%d" (i - peers) in
    let v = Graph.add_node ~label g in
    roles.(v) <- (if is_peer then Peer else Customer);
    let attach =
      if is_peer || access = 0 then Prng.int rng backbone
      else backbone + Prng.int rng access
    in
    ignore (Graph.add_edge g v attach)
  done;
  { graph = g; roles; name }

let preset = function
  | `Pop10 ->
    { backbone = 4; access = 6; router_links = 15; endpoints = 12; peers = 2 }
  | `Pop15 ->
    { backbone = 5; access = 10; router_links = 26; endpoints = 45; peers = 3 }
  | `Pop29 ->
    { backbone = 8; access = 21; router_links = 55; endpoints = 30; peers = 4 }
  | `Pop80 ->
    { backbone = 20; access = 60; router_links = 160; endpoints = 60; peers = 8 }

let preset_name = function
  | `Pop10 -> "pop10"
  | `Pop15 -> "pop15"
  | `Pop29 -> "pop29"
  | `Pop80 -> "pop80"

let make_preset p ~seed = generate ~name:(preset_name p) (preset p) ~seed

let is_router t v =
  match t.roles.(v) with Backbone | Access -> true | Customer | Peer -> false

let routers t =
  List.filter (is_router t) (List.init (Graph.num_nodes t.graph) Fun.id)

let endpoints t =
  List.filter
    (fun v -> not (is_router t v))
    (List.init (Graph.num_nodes t.graph) Fun.id)

let num_routers t = List.length (routers t)

let router_link_count t =
  Graph.fold_edges
    (fun _ u v acc -> if is_router t u && is_router t v then acc + 1 else acc)
    t.graph 0
