let sum xs =
  (* Kahan summation keeps experiment aggregates stable across runs. *)
  let s = ref 0.0 and c = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    xs;
  !s

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let percentile xs p =
  assert (Array.length xs > 0);
  assert (0.0 <= p && p <= 100.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let minimum xs =
  assert (Array.length xs > 0);
  Array.fold_left min xs.(0) xs

let maximum xs =
  assert (Array.length xs > 0);
  Array.fold_left max xs.(0) xs

let mean_int xs = mean (Array.map float_of_int xs)
