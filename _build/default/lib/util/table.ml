let pad cell width = cell ^ String.make (width - String.length cell) ' '

let render ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let line cells =
    String.concat "  " (List.mapi (fun i c -> pad c widths.(i)) cells)
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let body = List.map line rows in
  String.concat "\n" ((line header :: sep :: body) @ [ "" ])

let print ~header rows = print_string (render ~header rows)

let float_cell ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
