(** Small descriptive-statistics helpers for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0. on arrays shorter than 2. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation
    between order statistics. Requires a non-empty array. *)

val minimum : float array -> float
(** Smallest value. Requires a non-empty array. *)

val maximum : float array -> float
(** Largest value. Requires a non-empty array. *)

val sum : float array -> float
(** Kahan-compensated sum. *)

val mean_int : int array -> float
(** Mean of integers; 0. on the empty array. *)
