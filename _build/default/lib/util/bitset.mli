(** Fixed-capacity bitsets over [0 .. capacity-1].

    The exact set-cover solver of {!module:Monpos_cover} enumerates
    subsets of traffics; bitsets make membership, union and popcount
    O(capacity/64). *)

type t
(** Mutable bitset with a fixed capacity chosen at creation. *)

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)]. *)

val capacity : t -> int
(** Universe size given at creation. *)

val copy : t -> t
(** Independent copy. *)

val add : t -> int -> unit
(** [add s i] inserts [i]. Requires [0 <= i < capacity s]. *)

val remove : t -> int -> unit
(** [remove s i] deletes [i] if present. *)

val mem : t -> int -> bool
(** Membership test. *)

val cardinal : t -> int
(** Number of elements (popcount). *)

val is_empty : t -> bool
(** True iff no element is set. *)

val union_into : t -> t -> unit
(** [union_into dst src] sets [dst := dst ∪ src]. Capacities must be
    equal. *)

val diff_into : t -> t -> unit
(** [diff_into dst src] sets [dst := dst \ src]. Capacities must be
    equal. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [|a ∩ b|] without allocating. *)

val subset : t -> t -> bool
(** [subset a b] is true iff [a ⊆ b]. *)

val equal : t -> t -> bool
(** Extensional equality. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over members in increasing order. *)

val elements : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n xs] is the set of [xs] over universe [\[0, n)]. *)

val fill : t -> unit
(** Sets every element of the universe. *)

val clear : t -> unit
(** Removes every element. *)
