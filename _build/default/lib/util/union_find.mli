(** Disjoint-set forest with path compression and union by rank.

    Used by the topology generators to guarantee connectivity and by
    graph algorithms (spanning-tree construction). *)

type t
(** Mutable partition of [\[0, n)]. *)

val create : int -> t
(** [create n] is the partition of [\[0, n)] into singletons. *)

val find : t -> int -> int
(** Canonical representative of the element's class. *)

val union : t -> int -> int -> bool
(** [union t a b] merges the classes of [a] and [b]. Returns [false]
    iff they were already in the same class. *)

val same : t -> int -> int -> bool
(** True iff the two elements share a class. *)

val count : t -> int
(** Current number of classes. *)
