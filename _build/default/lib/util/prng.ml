type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = bits64 g in
  { state = s }

let int g n =
  assert (n > 0);
  let mask = Int64.shift_right_logical (bits64 g) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int n))

let float g x =
  assert (x > 0.);
  (* 53 uniform bits mapped to [0, 1). *)
  let u = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  u /. 9007199254740992.0 *. x

let bool g = Int64.logand (bits64 g) 1L = 1L

let range g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let pareto g ~alpha ~xmin =
  assert (alpha > 0. && xmin > 0.);
  let u = 1.0 -. float g 1.0 in
  xmin /. (u ** (1.0 /. alpha))

let exponential g ~mean =
  assert (mean > 0.);
  let u = 1.0 -. float g 1.0 in
  -.mean *. log u

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let sample_without_replacement g m n =
  assert (0 <= m && m <= n);
  (* Floyd's algorithm keeps the draw O(m) in expectation. *)
  let module IS = Set.Make (Int) in
  let chosen = ref IS.empty in
  for j = n - m to n - 1 do
    let r = int g (j + 1) in
    if IS.mem r !chosen then chosen := IS.add j !chosen
    else chosen := IS.add r !chosen
  done;
  IS.elements !chosen
