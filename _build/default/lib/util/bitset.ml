type t = { words : int array; cap : int }

let words_for n = (n + 62) / 63

let create n =
  assert (n >= 0);
  { words = Array.make (max 1 (words_for n)) 0; cap = n }

let capacity s = s.cap

let copy s = { words = Array.copy s.words; cap = s.cap }

let check s i = assert (0 <= i && i < s.cap)

let add s i =
  check s i;
  let w = i / 63 and b = i mod 63 in
  s.words.(w) <- s.words.(w) lor (1 lsl b)

let remove s i =
  check s i;
  let w = i / 63 and b = i mod 63 in
  s.words.(w) <- s.words.(w) land lnot (1 lsl b)

let mem s i =
  check s i;
  let w = i / 63 and b = i mod 63 in
  s.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let same_cap a b = assert (a.cap = b.cap)

let union_into dst src =
  same_cap dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let diff_into dst src =
  same_cap dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let inter_cardinal a b =
  same_cap a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let subset a b =
  same_cap a b;
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let equal a b =
  same_cap a b;
  Array.for_all2 (fun x y -> x = y) a.words b.words

let iter f s =
  for i = 0 to s.cap - 1 do
    if mem s i then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let elements s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n xs =
  let s = create n in
  List.iter (add s) xs;
  s

let fill s =
  for i = 0 to s.cap - 1 do
    add s i
  done

let clear s = Array.fill s.words 0 (Array.length s.words) 0
