(** Binary min-heap keyed by floats.

    Used as the priority queue of Dijkstra-style searches and of the
    successive-shortest-path min-cost-flow solver. Elements are plain
    payloads; the heap does not support decrease-key, callers insert
    duplicates and skip stale pops (the standard lazy-deletion idiom,
    which is faster in practice for sparse graphs). *)

type 'a t
(** Mutable heap of ['a] payloads with float keys. *)

val create : unit -> 'a t
(** Fresh empty heap. *)

val is_empty : 'a t -> bool
(** [is_empty h] is true iff [h] has no element. *)

val size : 'a t -> int
(** Number of stored elements (including stale duplicates). *)

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts [v] with priority [key]. *)

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the element with the smallest key, or [None]
    if the heap is empty. Ties are broken arbitrarily. *)

val clear : 'a t -> unit
(** Removes every element. *)
