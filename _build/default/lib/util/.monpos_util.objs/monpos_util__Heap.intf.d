lib/util/heap.mli:
