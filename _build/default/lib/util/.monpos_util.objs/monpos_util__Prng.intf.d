lib/util/prng.mli:
