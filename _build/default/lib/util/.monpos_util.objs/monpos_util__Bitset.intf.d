lib/util/bitset.mli:
