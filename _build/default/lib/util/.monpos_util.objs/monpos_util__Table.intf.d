lib/util/table.mli:
