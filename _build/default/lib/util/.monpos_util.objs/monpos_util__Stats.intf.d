lib/util/stats.mli:
