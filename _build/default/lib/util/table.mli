(** Plain-text table rendering for bench and example output.

    The bench harness prints every reproduced figure as an aligned
    text table (one row per x-axis point, one column per series),
    mirroring the rows/series of the paper's plots. *)

val render : header:string list -> string list list -> string
(** [render ~header rows] lays the table out with right-padded columns
    and a separator line under the header. Rows shorter than the header
    are padded with empty cells. *)

val print : header:string list -> string list list -> unit
(** [print ~header rows] writes {!render} to standard output. *)

val float_cell : ?decimals:int -> float -> string
(** Fixed-point rendering used for volume/ratio columns (2 decimals by
    default). *)
