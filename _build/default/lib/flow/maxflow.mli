(** Maximum flow (Dinic's algorithm) on directed networks with float
    capacities.

    Used by tests as an independent oracle (max-flow/min-cut checks on
    the MECF auxiliary graph) and available to flow-based placement
    heuristics. *)

type t
(** Mutable flow network. *)

type arc
(** Handle on a directed arc (identifies the forward copy). *)

val create : int -> t
(** [create n] is an empty network on nodes [0 .. n-1]. *)

val add_arc : t -> src:int -> dst:int -> capacity:float -> arc
(** Append a directed arc. Capacity must be non-negative
    ([infinity] allowed). *)

val solve : t -> source:int -> sink:int -> float
(** Compute a maximum [source]->[sink] flow and return its value.
    Can be called repeatedly; flows are reset on each call. *)

val flow : t -> arc -> float
(** Flow carried by the arc after the last {!solve}. *)

val min_cut_side : t -> source:int -> bool array
(** After {!solve}: nodes still reachable from the source in the
    residual network (the source side of a minimum cut). *)
