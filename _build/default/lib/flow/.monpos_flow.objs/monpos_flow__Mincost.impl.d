lib/flow/mincost.ml: Array Hashtbl List Queue
