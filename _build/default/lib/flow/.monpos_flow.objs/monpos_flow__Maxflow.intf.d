lib/flow/maxflow.mli:
