lib/flow/mincost.mli:
