(** Minimum-cost flow with per-arc lower bounds.

    This is the polynomial engine behind two pieces of the paper:
    the MECF view of PPM(k) in its linearly-relaxed form (the greedy
    heuristics "are" a min-cost flow with costs 1/load, §4.3), and the
    PPME*(x,h,k) re-optimization of sampling rates when device
    positions are fixed (§5.4), which the paper notes "can be expressed
    as a minimum cost flow problem".

    Algorithm: successive shortest augmenting paths with node
    potentials (Dijkstra on reduced costs); negative arc costs are
    handled by an initial Bellman–Ford pass. Lower bounds are removed
    by the standard supply transformation. *)

type t
(** Mutable network. *)

type arc
(** Handle on a directed arc. *)

type status =
  | Optimal  (** all supplies routed at minimum cost *)
  | Infeasible  (** supplies/lower bounds cannot be routed *)

val create : int -> t
(** [create n] is an empty network on nodes [0 .. n-1]. *)

val add_arc :
  ?lower:float -> t -> src:int -> dst:int -> capacity:float -> cost:float -> arc
(** Append a directed arc with flow bounds [\[lower, capacity\]]
    (default [lower = 0.]) and per-unit [cost]. Requires
    [0. <= lower <= capacity]. *)

val set_supply : t -> int -> float -> unit
(** [set_supply t v b] makes node [v] a source of [b] units ([b > 0.])
    or a sink of [-b] units ([b < 0.]). Supplies must globally sum to
    zero for the instance to be feasible. Overwrites any previous
    supply of [v]. *)

val solve : t -> status
(** Route all supplies at minimum cost. May be called repeatedly after
    modifying supplies. *)

val flow : t -> arc -> float
(** Flow on the arc after the last {!solve} (includes its lower
    bound). *)

val total_cost : t -> float
(** Cost of the last computed flow (sum over arcs of flow × cost). *)
