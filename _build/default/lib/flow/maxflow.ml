(* Dinic with arc pairs: arc 2k is forward, 2k+1 its residual twin. *)

type t = {
  n : int;
  mutable head : int array; (* arc -> dst *)
  mutable cap : float array;
  mutable next : int array; (* arc -> next arc of same origin *)
  mutable first : int array; (* node -> first arc *)
  mutable narcs : int;
  mutable level : int array;
  mutable iter : int array;
  mutable orig_cap : float array option;
}

type arc = int

let create n =
  {
    n;
    head = Array.make 16 0;
    cap = Array.make 16 0.0;
    next = Array.make 16 (-1);
    first = Array.make (max 1 n) (-1);
    narcs = 0;
    level = Array.make (max 1 n) (-1);
    iter = Array.make (max 1 n) (-1);
    orig_cap = None;
  }

let grow t =
  let capn = Array.length t.head in
  if t.narcs + 2 > capn then begin
    let extend a fill =
      let b = Array.make (2 * capn) fill in
      Array.blit a 0 b 0 t.narcs;
      b
    in
    t.head <- extend t.head 0;
    t.cap <- extend t.cap 0.0;
    t.next <- extend t.next (-1)
  end

let raw_add t u v c =
  grow t;
  let a = t.narcs in
  t.head.(a) <- v;
  t.cap.(a) <- c;
  t.next.(a) <- t.first.(u);
  t.first.(u) <- a;
  t.narcs <- t.narcs + 1;
  a

let add_arc t ~src ~dst ~capacity =
  assert (capacity >= 0.0);
  assert (0 <= src && src < t.n && 0 <= dst && dst < t.n);
  let a = raw_add t src dst capacity in
  let _ = raw_add t dst src 0.0 in
  t.orig_cap <- None;
  a

let snapshot t =
  match t.orig_cap with
  | Some s -> s
  | None ->
    let s = Array.sub t.cap 0 t.narcs in
    t.orig_cap <- Some s;
    s

let bfs t source sink =
  Array.fill t.level 0 t.n (-1);
  t.level.(source) <- 0;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let a = ref t.first.(u) in
    while !a <> -1 do
      let v = t.head.(!a) in
      if t.cap.(!a) > 1e-12 && t.level.(v) = -1 then begin
        t.level.(v) <- t.level.(u) + 1;
        Queue.add v q
      end;
      a := t.next.(!a)
    done
  done;
  t.level.(sink) <> -1

let rec dfs t u sink pushed =
  if u = sink then pushed
  else begin
    let result = ref 0.0 in
    while !result = 0.0 && t.iter.(u) <> -1 do
      let a = t.iter.(u) in
      let v = t.head.(a) in
      if t.cap.(a) > 1e-12 && t.level.(v) = t.level.(u) + 1 then begin
        let d = dfs t v sink (min pushed t.cap.(a)) in
        if d > 0.0 then begin
          t.cap.(a) <- t.cap.(a) -. d;
          t.cap.(a lxor 1) <- t.cap.(a lxor 1) +. d;
          result := d
        end
        else t.iter.(u) <- t.next.(a)
      end
      else t.iter.(u) <- t.next.(a)
    done;
    !result
  end

let solve t ~source ~sink =
  assert (source <> sink);
  (* restore capacities so solve is repeatable *)
  let s = snapshot t in
  Array.blit s 0 t.cap 0 t.narcs;
  let total = ref 0.0 in
  while bfs t source sink do
    Array.blit t.first 0 t.iter 0 t.n;
    let rec push () =
      let d = dfs t source sink infinity in
      if d > 0.0 then begin
        total := !total +. d;
        push ()
      end
    in
    push ()
  done;
  !total

let flow t a =
  let s = snapshot t in
  s.(a) -. t.cap.(a)

let min_cut_side t ~source =
  let side = Array.make t.n false in
  let q = Queue.create () in
  side.(source) <- true;
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let a = ref t.first.(u) in
    while !a <> -1 do
      let v = t.head.(!a) in
      if t.cap.(!a) > 1e-12 && not side.(v) then begin
        side.(v) <- true;
        Queue.add v q
      end;
      a := t.next.(!a)
    done
  done;
  side
