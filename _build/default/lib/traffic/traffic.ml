module Graph = Monpos_graph.Graph
module Paths = Monpos_graph.Paths
module Prng = Monpos_util.Prng

type route = { path : Paths.path; volume : float }

type demand = {
  src : Graph.node;
  dst : Graph.node;
  volume : float;
  routes : route list;
}

type matrix = demand array

type gen_params = {
  hot_pairs : int;
  hot_factor : float;
  pareto_alpha : float;
  base_volume : float;
  max_ecmp_paths : int;
}

let default_gen =
  {
    hot_pairs = 4;
    hot_factor = 20.0;
    pareto_alpha = 1.3;
    base_volume = 1.0;
    max_ecmp_paths = 1;
  }

let unit_weight _ = 1.0

let generate_pairs ?(params = default_gen) g ~pairs ~seed =
  let rng = Prng.create seed in
  let pairs = Array.of_list pairs in
  let npairs = Array.length pairs in
  (* preferred high-traffic pairs *)
  let hot = Array.make npairs false in
  if params.hot_pairs > 0 && npairs > 0 then
    List.iter
      (fun i -> hot.(i) <- true)
      (Prng.sample_without_replacement rng (min params.hot_pairs npairs) npairs);
  let demands = ref [] in
  Array.iteri
    (fun i (src, dst) ->
      let volume =
        let v = Prng.pareto rng ~alpha:params.pareto_alpha ~xmin:params.base_volume in
        if hot.(i) then v *. params.hot_factor else v
      in
      let routes =
        if params.max_ecmp_paths <= 1 then
          match Paths.shortest_path g ~weight:unit_weight src dst with
          | None -> []
          | Some p -> [ { path = p; volume } ]
        else begin
          let ps =
            Paths.all_shortest_paths g ~weight:unit_weight
              ~max_paths:params.max_ecmp_paths src dst
          in
          let k = List.length ps in
          if k = 0 then []
          else begin
            let share = volume /. float_of_int k in
            List.map (fun p -> { path = p; volume = share }) ps
          end
        end
      in
      if routes <> [] then demands := { src; dst; volume; routes } :: !demands)
    pairs;
  Array.of_list (List.rev !demands)

let generate ?params g ~endpoints ~seed =
  let pairs =
    List.concat_map
      (fun s -> List.filter_map (fun t -> if s <> t then Some (s, t) else None) endpoints)
      endpoints
  in
  generate_pairs ?params g ~pairs ~seed

let generate_gravity ?(pareto_alpha = 1.2) ?(total_volume = 1000.0)
    ?(max_ecmp_paths = 1) g ~endpoints ~seed =
  let rng = Prng.create seed in
  let eps = Array.of_list endpoints in
  let masses =
    Array.map (fun _ -> Prng.pareto rng ~alpha:pareto_alpha ~xmin:1.0) eps
  in
  let total_mass = Monpos_util.Stats.sum masses in
  let demands = ref [] in
  Array.iteri
    (fun i src ->
      Array.iteri
        (fun j dst ->
          if i <> j then begin
            let volume =
              total_volume *. masses.(i) *. masses.(j)
              /. (total_mass *. total_mass)
            in
            let routes =
              if max_ecmp_paths <= 1 then
                match Paths.shortest_path g ~weight:unit_weight src dst with
                | None -> []
                | Some p -> [ { path = p; volume } ]
              else begin
                let ps =
                  Paths.all_shortest_paths g ~weight:unit_weight
                    ~max_paths:max_ecmp_paths src dst
                in
                let k = List.length ps in
                if k = 0 then []
                else begin
                  let share = volume /. float_of_int k in
                  List.map (fun p -> { path = p; volume = share }) ps
                end
              end
            in
            if routes <> [] && volume > 0.0 then
              demands := { src; dst; volume; routes } :: !demands
          end)
        eps)
    eps;
  Array.of_list (List.rev !demands)

let total_volume m = Monpos_util.Stats.sum (Array.map (fun d -> d.volume) m)

let loads g m =
  let loads = Array.make (Graph.num_edges g) 0.0 in
  Array.iter
    (fun d ->
      List.iter
        (fun (r : route) ->
          List.iter
            (fun e -> loads.(e) <- loads.(e) +. r.volume)
            r.path.Paths.edges)
        d.routes)
    m;
  loads

let demand_edges d =
  List.concat_map (fun r -> r.path.Paths.edges) d.routes
  |> List.sort_uniq compare

let scale_volumes m ~factor =
  Array.mapi
    (fun i d ->
      let f = factor i in
      {
        d with
        volume = d.volume *. f;
        routes =
          List.map (fun (r : route) -> { r with volume = r.volume *. f }) d.routes;
      })
    m

let drift m ~seed ~sigma =
  let rng = Prng.create seed in
  let factors =
    Array.init (Array.length m) (fun _ ->
        (* Irwin-Hall(12) - 6 approximates a standard normal *)
        let z = ref (-6.0) in
        for _ = 1 to 12 do
          z := !z +. Prng.float rng 1.0
        done;
        exp (sigma *. !z))
  in
  scale_volumes m ~factor:(fun i -> factors.(i))
