(** Traffic demands and matrix generation.

    A *traffic* in the paper is a weighted path (§4.1) — or, with
    multi-routing (§5), a set of weighted paths between the same
    source/destination pair. This module generates the random traffic
    matrices of §4.4: volumes between all ordered endpoint pairs,
    heavy-tailed, with a few "preferred pairs of high traffic" so the
    distribution is deliberately non-uniform, routed on (possibly
    asymmetric) shortest paths. *)

type route = {
  path : Monpos_graph.Paths.path;  (** the links the traffic crosses *)
  volume : float;  (** bandwidth routed along this path *)
}

type demand = {
  src : Monpos_graph.Graph.node;
  dst : Monpos_graph.Graph.node;
  volume : float;  (** total bandwidth of the traffic *)
  routes : route list;
      (** singleton for single-path routing; several equal-cost routes
          under ECMP multi-routing (volumes sum to [volume]) *)
}

type matrix = demand array
(** One demand per (ordered) traffic pair. *)

type gen_params = {
  hot_pairs : int;  (** number of preferred high-traffic pairs *)
  hot_factor : float;  (** volume multiplier on preferred pairs *)
  pareto_alpha : float;  (** tail index of the volume distribution *)
  base_volume : float;  (** minimum volume (Pareto scale) *)
  max_ecmp_paths : int;  (** 1 = single-path routing; >1 enables ECMP *)
}

val default_gen : gen_params
(** hot_pairs = 4, hot_factor = 20., pareto_alpha = 1.3,
    base_volume = 1., max_ecmp_paths = 1. *)

val generate :
  ?params:gen_params ->
  Monpos_graph.Graph.t ->
  endpoints:Monpos_graph.Graph.node list ->
  seed:int ->
  matrix
(** Demands between every ordered pair of [endpoints], routed on
    hop-count shortest paths (ties broken deterministically; forward
    and reverse routes are computed independently, so routing may be
    asymmetric as in §4.4). Unreachable pairs are skipped. *)

val generate_gravity :
  ?pareto_alpha:float ->
  ?total_volume:float ->
  ?max_ecmp_paths:int ->
  Monpos_graph.Graph.t ->
  endpoints:Monpos_graph.Graph.node list ->
  seed:int ->
  matrix
(** Gravity-model matrix (the standard alternative to hot-pair
    boosting, cf. the backbone traffic analyses the paper cites):
    every endpoint gets a heavy-tailed mass [m_i]; the demand from
    [i] to [j] is [total_volume · m_i m_j / (Σm)²]. Defaults:
    [pareto_alpha = 1.2], [total_volume = 1000.], single-path
    routing. *)

val generate_pairs :
  ?params:gen_params ->
  Monpos_graph.Graph.t ->
  pairs:(Monpos_graph.Graph.node * Monpos_graph.Graph.node) list ->
  seed:int ->
  matrix
(** Same, for an explicit pair list. *)

val total_volume : matrix -> float
(** Sum of demand volumes. *)

val loads : Monpos_graph.Graph.t -> matrix -> float array
(** Per-edge load: the sum of route volumes crossing each link (§4.1's
    "load of a link"). *)

val demand_edges : demand -> Monpos_graph.Graph.edge list
(** Deduplicated set of edges used by any route of the demand. *)

val scale_volumes : matrix -> factor:(int -> float) -> matrix
(** [scale_volumes m ~factor] multiplies demand [i]'s volume (and its
    routes') by [factor i]. Used by the §5.4 dynamic-traffic drift
    model. *)

val drift : matrix -> seed:int -> sigma:float -> matrix
(** Multiplicative log-normal-ish volume noise: each demand's volume is
    multiplied by [exp (sigma * z)] with [z] standard-normal-ish
    (sum of uniforms), keeping routes and paths fixed. Models the
    traffic evolution of §5.4 between re-optimizations. *)
