lib/traffic/traffic.mli: Monpos_graph
