lib/traffic/traffic.ml: Array List Monpos_graph Monpos_util
