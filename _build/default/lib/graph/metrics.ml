let all_pairs_hops g =
  Array.init (Graph.num_nodes g) (fun s -> Paths.bfs_distances g s)

let diameter g =
  let d = all_pairs_hops g in
  Array.fold_left
    (fun acc row -> Array.fold_left (fun acc x -> max acc x) acc row)
    0 d

(* Brandes' algorithm adapted to accumulate on edges, unweighted. *)
let edge_betweenness g =
  let n = Graph.num_nodes g in
  let ne = Graph.num_edges g in
  let score = Array.make ne 0.0 in
  let dist = Array.make n (-1) in
  let sigma = Array.make n 0.0 in
  let delta = Array.make n 0.0 in
  let preds = Array.make n [] in
  for s = 0 to n - 1 do
    Array.fill dist 0 n (-1);
    Array.fill sigma 0 n 0.0;
    Array.fill delta 0 n 0.0;
    Array.fill preds 0 n [];
    dist.(s) <- 0;
    sigma.(s) <- 1.0;
    let order = ref [] in
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      order := u :: !order;
      List.iter
        (fun (v, e) ->
          if dist.(v) = -1 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end;
          if dist.(v) = dist.(u) + 1 then begin
            sigma.(v) <- sigma.(v) +. sigma.(u);
            preds.(v) <- (u, e) :: preds.(v)
          end)
        (Graph.neighbors g u)
    done;
    (* accumulate in reverse BFS order *)
    List.iter
      (fun w ->
        List.iter
          (fun (u, e) ->
            let share = sigma.(u) /. sigma.(w) *. (1.0 +. delta.(w)) in
            delta.(u) <- delta.(u) +. share;
            score.(e) <- score.(e) +. share)
          preds.(w))
      !order
  done;
  score

(* Tarjan bridges/articulation points via iterative DFS. *)
let low_link g =
  let n = Graph.num_nodes g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let parent_edge = Array.make n (-1) in
  let bridges = ref [] in
  let artics = Array.make n false in
  let timer = ref 0 in
  for root = 0 to n - 1 do
    if disc.(root) = -1 then begin
      (* iterative DFS with an explicit stack of (node, remaining adj) *)
      let stack = Stack.create () in
      disc.(root) <- !timer;
      low.(root) <- !timer;
      incr timer;
      Stack.push (root, ref (Graph.neighbors g root)) stack;
      let root_children = ref 0 in
      while not (Stack.is_empty stack) do
        let u, rest = Stack.top stack in
        match !rest with
        | [] ->
          ignore (Stack.pop stack);
          if not (Stack.is_empty stack) then begin
            let p, _ = Stack.top stack in
            low.(p) <- min low.(p) low.(u);
            if p <> root && low.(u) >= disc.(p) then artics.(p) <- true;
            if low.(u) > disc.(p) then
              bridges := parent_edge.(u) :: !bridges
          end
        | (v, e) :: tl ->
          rest := tl;
          if disc.(v) = -1 then begin
            disc.(v) <- !timer;
            low.(v) <- !timer;
            incr timer;
            parent_edge.(v) <- e;
            if u = root then incr root_children;
            Stack.push (v, ref (Graph.neighbors g v)) stack
          end
          else if e <> parent_edge.(u) then
            low.(u) <- min low.(u) disc.(v)
      done;
      if !root_children >= 2 then artics.(root) <- true
    end
  done;
  (List.sort compare !bridges, artics)

let bridges g = fst (low_link g)

let articulation_points g =
  let _, artics = low_link g in
  List.filter (fun v -> artics.(v)) (List.init (Graph.num_nodes g) Fun.id)
