(** Graphviz export.

    Reproduces the Figure 6 exhibit of the paper: a POP drawing where
    edge thickness encodes the share of traffic carried by the link. *)

val to_string :
  ?graph_name:string ->
  ?node_attrs:(Graph.node -> (string * string) list) ->
  ?edge_attrs:(Graph.edge -> (string * string) list) ->
  Graph.t ->
  string
(** Render an undirected graph in dot syntax. Attribute callbacks may
    add per-node / per-edge settings (e.g. [("penwidth", "3")]). *)

val with_loads : Graph.t -> loads:float array -> string
(** Figure-6 style rendering: edges scaled and labeled by their share
    of the total carried volume ([loads] is indexed by edge id). *)
