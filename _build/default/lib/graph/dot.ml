let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
      (List.init (String.length s) (String.get s)))

let attrs_to_string = function
  | [] -> ""
  | attrs ->
    let body =
      String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v)) attrs)
    in
    Printf.sprintf " [%s]" body

let to_string ?(graph_name = "pop") ?(node_attrs = fun _ -> [])
    ?(edge_attrs = fun _ -> []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" graph_name);
  for u = 0 to Graph.num_nodes g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  %d [label=\"%s\"%s];\n" u
         (escape (Graph.label g u))
         (match node_attrs u with
         | [] -> ""
         | attrs ->
           ", "
           ^ String.concat ", "
               (List.map
                  (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape v))
                  attrs)))
  done;
  Graph.iter_edges
    (fun e u v ->
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d%s;\n" u v (attrs_to_string (edge_attrs e))))
    g;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let with_loads g ~loads =
  let total = Array.fold_left ( +. ) 0.0 loads in
  let total = if total <= 0.0 then 1.0 else total in
  to_string
    ~edge_attrs:(fun e ->
      let share = loads.(e) /. total in
      [
        ("penwidth", Printf.sprintf "%.2f" (0.5 +. (12.0 *. share)));
        ("label", Printf.sprintf "%.1f%%" (100.0 *. share));
      ])
    g
