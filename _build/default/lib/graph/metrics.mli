(** Structural graph metrics.

    Used for placement insight (which links/nodes are structurally
    load-bearing), for the hot-pair selection of gravity-style traffic
    models, and by tests as independent oracles: e.g., a bridge whose
    removal separates traffic endpoints must appear in any full
    monitoring cover of traffics crossing it. *)

val all_pairs_hops : Graph.t -> int array array
(** [all_pairs_hops g] is the hop-distance matrix ([-1] when
    unreachable). O(n·(n+m)). *)

val diameter : Graph.t -> int
(** Largest finite hop distance (0 for graphs with ≤ 1 node). *)

val edge_betweenness : Graph.t -> float array
(** Brandes-style betweenness per edge under unit weights: the number
    of shortest paths crossing each edge, summed over all ordered
    pairs and split equally among equal-cost shortest paths. Links
    with high betweenness are the natural "most loaded" candidates of
    §4.3 under uniform traffic. *)

val bridges : Graph.t -> Graph.edge list
(** Edges whose removal disconnects their component (Tarjan low-link),
    ascending. Parallel edges are never bridges. *)

val articulation_points : Graph.t -> Graph.node list
(** Nodes whose removal disconnects their component, ascending. *)
