type node = int

type edge = int

type t = {
  mutable src : int array;
  mutable dst : int array;
  mutable nedges : int;
  mutable adj : (int * int) list array; (* (neighbor, edge) per node *)
  mutable labels : string option array;
  mutable nnodes : int;
}

let create ?(num_nodes = 0) () =
  {
    src = Array.make 16 0;
    dst = Array.make 16 0;
    nedges = 0;
    adj = Array.make (max 16 num_nodes) [];
    labels = Array.make (max 16 num_nodes) None;
    nnodes = num_nodes;
  }

let num_nodes g = g.nnodes

let num_edges g = g.nedges

let grow_nodes g =
  let cap = Array.length g.adj in
  if g.nnodes >= cap then begin
    let adj = Array.make (2 * cap) [] in
    Array.blit g.adj 0 adj 0 g.nnodes;
    g.adj <- adj;
    let labels = Array.make (2 * cap) None in
    Array.blit g.labels 0 labels 0 g.nnodes;
    g.labels <- labels
  end

let add_node ?label g =
  grow_nodes g;
  let i = g.nnodes in
  g.labels.(i) <- label;
  g.nnodes <- g.nnodes + 1;
  i

let check_node g u = assert (0 <= u && u < g.nnodes)

let check_edge g e = assert (0 <= e && e < g.nedges)

let add_edge g u v =
  check_node g u;
  check_node g v;
  let cap = Array.length g.src in
  if g.nedges >= cap then begin
    let src = Array.make (2 * cap) 0 in
    Array.blit g.src 0 src 0 g.nedges;
    g.src <- src;
    let dst = Array.make (2 * cap) 0 in
    Array.blit g.dst 0 dst 0 g.nedges;
    g.dst <- dst
  end;
  let e = g.nedges in
  g.src.(e) <- u;
  g.dst.(e) <- v;
  g.nedges <- g.nedges + 1;
  g.adj.(u) <- (v, e) :: g.adj.(u);
  if u <> v then g.adj.(v) <- (u, e) :: g.adj.(v);
  e

let endpoints g e =
  check_edge g e;
  (g.src.(e), g.dst.(e))

let other_end g e u =
  let a, b = endpoints g e in
  if a = u then b
  else begin
    assert (b = u);
    a
  end

let neighbors g u =
  check_node g u;
  g.adj.(u)

let degree g u =
  List.fold_left
    (fun acc (v, _) -> if v = u then acc + 2 else acc + 1)
    0 (neighbors g u)

let find_edge g u v =
  check_node g u;
  check_node g v;
  List.find_map (fun (w, e) -> if w = v then Some e else None) g.adj.(u)

let has_edge g u v = Option.is_some (find_edge g u v)

let fold_edges f g init =
  let acc = ref init in
  for e = 0 to g.nedges - 1 do
    acc := f e g.src.(e) g.dst.(e) !acc
  done;
  !acc

let iter_edges f g =
  for e = 0 to g.nedges - 1 do
    f e g.src.(e) g.dst.(e)
  done

let set_label g u s =
  check_node g u;
  g.labels.(u) <- Some s

let label g u =
  check_node g u;
  match g.labels.(u) with Some s -> s | None -> Printf.sprintf "n%d" u

let edge_name g e =
  let u, v = endpoints g e in
  Printf.sprintf "(%s--%s)" (label g u) (label g v)

let copy g =
  {
    src = Array.copy g.src;
    dst = Array.copy g.dst;
    nedges = g.nedges;
    adj = Array.map (fun l -> l) (Array.copy g.adj);
    labels = Array.copy g.labels;
    nnodes = g.nnodes;
  }
