(** Shortest-path machinery over {!Graph.t}.

    The paper routes each traffic on a shortest path computed by the
    ISP's interior routing (§4.4), possibly asymmetric, and §5
    considers multi-routed traffics (several equal-cost paths used for
    load balancing). This module provides deterministic Dijkstra,
    equal-cost multipath enumeration, Yen's k-shortest paths and
    connectivity helpers. *)

type path = {
  nodes : Graph.node list;  (** visited nodes, source first *)
  edges : Graph.edge list;  (** traversed edges, in order; length = nodes-1 *)
  cost : float;  (** sum of edge weights *)
}

val path_contains_edge : path -> Graph.edge -> bool
(** Membership of an edge in the path. *)

val pp_path : Graph.t -> Format.formatter -> path -> unit
(** Renders "a -> b -> c (cost w)". *)

val bfs_distances : Graph.t -> Graph.node -> int array
(** Hop distance from the source to every node; [-1] when
    unreachable. *)

val dijkstra :
  Graph.t ->
  weight:(Graph.edge -> float) ->
  Graph.node ->
  float array * Graph.edge option array
(** [dijkstra g ~weight s] returns (distances, parent edge toward [s]).
    Distances are [infinity] for unreachable nodes. Weights must be
    non-negative. Ties are resolved deterministically (first settled
    predecessor wins), so routing is reproducible across runs. *)

val shortest_path :
  Graph.t -> weight:(Graph.edge -> float) -> Graph.node -> Graph.node -> path option
(** Shortest path between two nodes, [None] when disconnected.
    [Some] with empty edges when source = target. *)

val all_shortest_paths :
  Graph.t ->
  weight:(Graph.edge -> float) ->
  max_paths:int ->
  Graph.node ->
  Graph.node ->
  path list
(** Every distinct minimum-cost path (the ECMP set), truncated to
    [max_paths]. Used for the multi-routed traffics of §5. *)

val k_shortest_paths :
  Graph.t ->
  weight:(Graph.edge -> float) ->
  k:int ->
  Graph.node ->
  Graph.node ->
  path list
(** Yen's algorithm: up to [k] loopless paths by increasing cost.
    Supports the measurement-campaign extension (§7) where the
    operator re-routes traffic to improve monitorability. *)

val connected_components : Graph.t -> int array * int
(** (component id per node, number of components). *)

val is_connected : Graph.t -> bool
(** True iff the graph has at most one component (and is non-empty or
    empty-trivially true). *)
