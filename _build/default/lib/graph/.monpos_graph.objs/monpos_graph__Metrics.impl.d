lib/graph/metrics.ml: Array Fun Graph List Paths Queue Stack
