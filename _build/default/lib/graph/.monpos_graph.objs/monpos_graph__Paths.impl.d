lib/graph/paths.ml: Array Format Graph Hashtbl List Monpos_util Queue Stack String
