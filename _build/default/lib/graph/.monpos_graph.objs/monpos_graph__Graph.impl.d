lib/graph/graph.ml: Array List Option Printf
