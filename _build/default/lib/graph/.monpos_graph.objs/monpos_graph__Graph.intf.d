lib/graph/graph.mli:
