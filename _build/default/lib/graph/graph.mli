(** Undirected multigraph with dense integer node and edge identifiers.

    POP topologies (§2 of the paper) are modeled on this type: nodes
    are routers (or virtual traffic endpoints), edges are communication
    links. Nodes and edges are identified by their creation index,
    which every other layer (traffics, placements, MIP variables) uses
    as array offsets. *)

type t
(** Mutable graph. *)

type node = int
(** Node identifier: [0 .. num_nodes-1]. *)

type edge = int
(** Edge identifier: [0 .. num_edges-1]. *)

val create : ?num_nodes:int -> unit -> t
(** [create ~num_nodes ()] makes a graph with [num_nodes] isolated
    nodes (default 0). *)

val add_node : ?label:string -> t -> node
(** Append a node and return its id. *)

val add_edge : t -> node -> node -> edge
(** [add_edge g u v] appends an undirected edge. Self-loops and
    parallel edges are allowed (the POP generators never create them,
    but reductions may). *)

val num_nodes : t -> int
(** Number of nodes. *)

val num_edges : t -> int
(** Number of edges. *)

val endpoints : t -> edge -> node * node
(** Endpoints in creation order. *)

val other_end : t -> edge -> node -> node
(** [other_end g e u] is the endpoint of [e] that is not [u]. For a
    self-loop it returns [u]. Requires [u] to be an endpoint. *)

val neighbors : t -> node -> (node * edge) list
(** Adjacent (node, via-edge) pairs, most recently added first. *)

val degree : t -> node -> int
(** Number of incident edges (self-loops count twice). *)

val find_edge : t -> node -> node -> edge option
(** Some edge joining the two nodes, if any. *)

val has_edge : t -> node -> node -> bool
(** Whether the two nodes are adjacent. *)

val fold_edges : (edge -> node -> node -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over edges in creation order. *)

val iter_edges : (edge -> node -> node -> unit) -> t -> unit
(** Iterate over edges in creation order. *)

val set_label : t -> node -> string -> unit
(** Attach a display label to a node. *)

val label : t -> node -> string
(** Display label; defaults to ["n<i>"]. *)

val edge_name : t -> edge -> string
(** Readable edge description "(labelU--labelV)". *)

val copy : t -> t
(** Deep copy. *)
