type path = { nodes : Graph.node list; edges : Graph.edge list; cost : float }

let path_contains_edge p e = List.mem e p.edges

let pp_path g ppf p =
  Format.fprintf ppf "%s (cost %g)"
    (String.concat " -> " (List.map (Graph.label g) p.nodes))
    p.cost

let bfs_distances g s =
  let n = Graph.num_nodes g in
  let dist = Array.make n (-1) in
  dist.(s) <- 0;
  let q = Queue.create () in
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun (v, _) ->
        if dist.(v) = -1 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      (Graph.neighbors g u)
  done;
  dist

let dijkstra g ~weight s =
  let n = Graph.num_nodes g in
  let dist = Array.make n infinity in
  let parent = Array.make n None in
  let settled = Array.make n false in
  let heap = Monpos_util.Heap.create () in
  dist.(s) <- 0.0;
  Monpos_util.Heap.push heap 0.0 s;
  let rec loop () =
    match Monpos_util.Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        List.iter
          (fun (v, e) ->
            let w = weight e in
            assert (w >= 0.0);
            let nd = d +. w in
            if nd < dist.(v) -. 1e-12 then begin
              dist.(v) <- nd;
              parent.(v) <- Some e;
              Monpos_util.Heap.push heap nd v
            end)
          (Graph.neighbors g u)
      end;
      loop ()
  in
  loop ();
  (dist, parent)

let extract_path g parent s t =
  let rec go node acc_nodes acc_edges =
    if node = s then (node :: acc_nodes, acc_edges)
    else
      match parent.(node) with
      | None -> assert false
      | Some e ->
        let prev = Graph.other_end g e node in
        go prev (node :: acc_nodes) (e :: acc_edges)
  in
  go t [] []

let shortest_path g ~weight s t =
  if s = t then Some { nodes = [ s ]; edges = []; cost = 0.0 }
  else begin
    let dist, parent = dijkstra g ~weight s in
    if dist.(t) = infinity then None
    else begin
      let nodes, edges = extract_path g parent s t in
      Some { nodes; edges; cost = dist.(t) }
    end
  end

let all_shortest_paths g ~weight ~max_paths s t =
  if s = t then [ { nodes = [ s ]; edges = []; cost = 0.0 } ]
  else begin
    let dist, _ = dijkstra g ~weight s in
    if dist.(t) = infinity then []
    else begin
      (* walk back from t along tight edges, enumerating the DAG *)
      let results = ref [] and count = ref 0 in
      let rec go node acc_nodes acc_edges =
        if !count < max_paths then
          if node = s then begin
            incr count;
            results :=
              { nodes = node :: acc_nodes; edges = acc_edges; cost = dist.(t) }
              :: !results
          end
          else begin
            (* deterministic order: sort predecessors by (node, edge) *)
            let preds =
              List.filter
                (fun (v, e) ->
                  abs_float (dist.(v) +. weight e -. dist.(node)) <= 1e-9)
                (Graph.neighbors g node)
              |> List.sort compare
            in
            List.iter
              (fun (v, e) ->
                if !count < max_paths then
                  go v (node :: acc_nodes) (e :: acc_edges))
              preds
          end
      in
      go t [] [];
      List.rev !results
    end
  end

(* Dijkstra restricted by banned nodes/edges, for Yen's spur paths. *)
let shortest_path_filtered g ~weight ~banned_nodes ~banned_edges s t =
  if banned_nodes.(s) || banned_nodes.(t) then None
  else if s = t then Some { nodes = [ s ]; edges = []; cost = 0.0 }
  else begin
    let n = Graph.num_nodes g in
    let dist = Array.make n infinity in
    let parent = Array.make n None in
    let settled = Array.make n false in
    let heap = Monpos_util.Heap.create () in
    dist.(s) <- 0.0;
    Monpos_util.Heap.push heap 0.0 s;
    let rec loop () =
      match Monpos_util.Heap.pop_min heap with
      | None -> ()
      | Some (d, u) ->
        if not settled.(u) then begin
          settled.(u) <- true;
          List.iter
            (fun (v, e) ->
              if (not banned_nodes.(v)) && not banned_edges.(e) then begin
                let nd = d +. weight e in
                if nd < dist.(v) -. 1e-12 then begin
                  dist.(v) <- nd;
                  parent.(v) <- Some e;
                  Monpos_util.Heap.push heap nd v
                end
              end)
            (Graph.neighbors g u)
        end;
        loop ()
    in
    loop ();
    if dist.(t) = infinity then None
    else begin
      let nodes, edges = extract_path g parent s t in
      Some { nodes; edges; cost = dist.(t) }
    end
  end

let path_key p = (p.edges, p.nodes)

let k_shortest_paths g ~weight ~k s t =
  match shortest_path g ~weight s t with
  | None -> []
  | Some first ->
    if k <= 1 then [ first ]
    else begin
      let n = Graph.num_nodes g in
      let ne = Graph.num_edges g in
      let accepted = ref [ first ] in
      let candidates = ref [] in
      let seen = Hashtbl.create 16 in
      Hashtbl.replace seen (path_key first) ();
      let add_candidate p =
        if not (Hashtbl.mem seen (path_key p)) then begin
          Hashtbl.replace seen (path_key p) ();
          candidates := p :: !candidates
        end
      in
      let rec fill () =
        if List.length !accepted < k then begin
          let last = List.hd !accepted in
          let prev_nodes = Array.of_list last.nodes in
          let prev_edges = Array.of_list last.edges in
          (* spur from every node of the previous path except t *)
          for i = 0 to Array.length prev_edges - 1 do
            let spur = prev_nodes.(i) in
            let banned_nodes = Array.make n false in
            let banned_edges = Array.make ne false in
            (* root = prefix up to spur node *)
            for j = 0 to i - 1 do
              banned_nodes.(prev_nodes.(j)) <- true
            done;
            (* ban edges used after this root by any accepted path
               sharing the root *)
            let root_edges = Array.sub prev_edges 0 i in
            List.iter
              (fun p ->
                let pe = Array.of_list p.edges in
                if
                  Array.length pe > i
                  && Array.for_all2 ( = ) (Array.sub pe 0 i) root_edges
                then banned_edges.(pe.(i)) <- true)
              !accepted;
            match
              shortest_path_filtered g ~weight ~banned_nodes ~banned_edges spur
                t
            with
            | None -> ()
            | Some tail ->
              let root_cost = ref 0.0 in
              Array.iter (fun e -> root_cost := !root_cost +. weight e) root_edges;
              let nodes =
                Array.to_list (Array.sub prev_nodes 0 i) @ tail.nodes
              in
              let edges = Array.to_list root_edges @ tail.edges in
              add_candidate { nodes; edges; cost = !root_cost +. tail.cost }
          done;
          match List.sort (fun a b -> compare a.cost b.cost) !candidates with
          | [] -> ()
          | best :: rest ->
            candidates := rest;
            accepted := best :: !accepted;
            fill ()
        end
      in
      fill ();
      List.sort (fun a b -> compare a.cost b.cost) !accepted
    end

let connected_components g =
  let n = Graph.num_nodes g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for s = 0 to n - 1 do
    if comp.(s) = -1 then begin
      let id = !next in
      incr next;
      let stack = Stack.create () in
      Stack.push s stack;
      comp.(s) <- id;
      while not (Stack.is_empty stack) do
        let u = Stack.pop stack in
        List.iter
          (fun (v, _) ->
            if comp.(v) = -1 then begin
              comp.(v) <- id;
              Stack.push v stack
            end)
          (Graph.neighbors g u)
      done
    end
  done;
  (comp, !next)

let is_connected g =
  let _, k = connected_components g in
  k <= 1
