(* Resilience-layer tests: typed error taxonomy, deadlines, the
   chaos-seeded degradation ladder (deterministic per seed, feasible
   on every rung, greedy within its Theorem 1 guarantee), located
   parse errors, and the 0.2s wall-clock regression for the deadline
   threading through presolve and simplex. *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Sampling = Monpos.Sampling
module Active = Monpos.Active
module Resilient = Monpos.Resilient
module Cover = Monpos_cover.Cover
module Pop = Monpos_topo.Pop
module Topo_file = Monpos_topo.Topo_file
module Graph = Monpos_graph.Graph
module Mip = Monpos_lp.Mip
module Clock = Monpos_obs.Clock
module Error = Monpos_resilience.Error
module Deadline = Monpos_resilience.Deadline
module Chaos = Monpos_resilience.Chaos

(* Chaos seeds are process-global state: every test that installs one
   must clear it on the way out so the rest of the suite runs clean. *)
let with_chaos seed f =
  let saved = Chaos.seed () in
  Chaos.set_seed (Some seed);
  Fun.protect ~finally:(fun () -> Chaos.set_seed saved) f

(* ---------- error taxonomy ---------- *)

let test_exit_codes () =
  let check what expected e =
    Alcotest.(check int) what expected (Error.exit_code e)
  in
  check "parse -> 2" 2 (Error.Parse_error { file = "f"; line = 3; msg = "m" });
  check "infeasible -> 2" 2 (Error.Infeasible_model { what = "w" });
  check "deadline -> 3" 3
    (Error.Deadline_exceeded { phase = "p"; elapsed = 1.0 });
  check "numerical -> 4" 4 (Error.Numerical { stage = "s"; detail = "d" });
  check "internal -> 4" 4 (Error.Internal "m")

let test_error_rendering () =
  let s =
    Error.to_string (Error.Parse_error { file = "x.topo"; line = 7; msg = "m" })
  in
  Alcotest.(check bool) "names file" true (Astring.String.is_infix ~affix:"x.topo" s);
  Alcotest.(check bool) "names line" true (Astring.String.is_infix ~affix:"7" s)

(* ---------- deadlines ---------- *)

let test_deadline_basics () =
  Alcotest.(check bool) "none never expires" false (Deadline.expired Deadline.none);
  Alcotest.(check bool) "is_none" true (Deadline.is_none Deadline.none);
  let d = Deadline.of_budget 0.0 in
  Alcotest.(check bool) "zero budget expired" true (Deadline.expired d);
  Alcotest.(check bool) "check raises typed" true
    (try
       Deadline.check d ~phase:"test";
       false
     with Error.Error (Error.Deadline_exceeded { phase; _ }) -> phase = "test")

(* The acceptance bar for the deadline threading: a 0.2s budget on the
   largest seed MIP (pop15, 71 links, 1980 traffics) must return
   within 2x the budget. Before the deadline reached presolve's
   probing loops this took 6.6s. The fixed 0.5s on top of the
   proportional bound absorbs scheduler noise on loaded CI runners —
   the regressions this guards against (unbounded LP rungs, unpolled
   probing loops) overshoot by seconds, not tenths. The ladder always
   answers, so this also checks the degraded result is a real
   cover. *)
let test_deadline_wall_clock () =
  let inst = Instance.of_pop (Pop.make_preset `Pop15 ~seed:2) ~seed:6 in
  let budget = 0.2 in
  let options = { Mip.default_options with Mip.time_limit = budget } in
  let t0 = Clock.now () in
  let o = Resilient.solve_ppm ~k:1.0 ~formulation:`Lp2 ~options inst in
  let elapsed = Clock.now () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "returned in %.3fs <= 2x budget + slack" elapsed)
    true
    (elapsed <= (2.0 *. budget) +. 0.5);
  Alcotest.(check bool) "degraded answer still covers" true
    (Passive.validate ~k:1.0 inst o.Resilient.value.Passive.monitors)

(* ---------- chaos lottery ---------- *)

let test_chaos_scoping () =
  with_chaos 7 (fun () ->
      (* scoped sites only fire inside a protect region *)
      let outside = ref false in
      for _ = 1 to 200 do
        if Chaos.fire ~site:"test.scoped" ~p:1.0 () then outside := true
      done;
      Alcotest.(check bool) "scoped site silent outside protect" false !outside;
      let inside = Chaos.protect (fun () -> Chaos.fire ~site:"test.scoped" ~p:1.0 ()) in
      Alcotest.(check bool) "fires under protect" true inside;
      let suppressed =
        Chaos.protect (fun () ->
            Chaos.suppress (fun () -> Chaos.fire ~site:"test.scoped" ~p:1.0 ()))
      in
      Alcotest.(check bool) "suppress overrides protect" false suppressed)

let test_chaos_replay () =
  let draw_run () =
    with_chaos 99 (fun () ->
        Chaos.protect (fun () ->
            List.init 64 (fun _ ->
                (Chaos.fire ~site:"test.replay" ~p:0.3 (), Chaos.draw ~site:"test.draw" 1000))))
  in
  Alcotest.(check bool) "same seed, same stream" true (draw_run () = draw_run ())

(* ---------- degradation ladder under chaos ---------- *)

let outcome_key o =
  (o.Resilient.rung, List.map (fun d -> d.Resilient.from_rung) o.Resilient.descents)

(* Same seed -> same faults -> same rung, same descents, same
   placement. *)
let test_ladder_deterministic () =
  let solve () =
    with_chaos 1234 (fun () ->
        let inst = Instance.figure3 () in
        Resilient.solve_ppm ~k:1.0 ~formulation:`Lp2 inst)
  in
  let a = solve () and b = solve () in
  Alcotest.(check bool) "same rung and descents" true
    (outcome_key a = outcome_key b);
  Alcotest.(check bool) "same placement" true
    (a.Resilient.value.Passive.monitors = b.Resilient.value.Passive.monitors)

(* Whatever rung answers, the placement must be feasible — across a
   spread of chaos seeds so different fault schedules hit different
   rungs. *)
let test_ladder_feasible_under_chaos () =
  let inst = Instance.of_pop (Pop.make_preset `Pop10 ~seed:1) ~seed:3 in
  List.iter
    (fun seed ->
      with_chaos seed (fun () ->
          let o = Resilient.solve_ppm ~k:1.0 inst in
          Alcotest.(check bool)
            (Printf.sprintf "ppm feasible (chaos seed %d, rung %s)" seed
               o.Resilient.rung)
            true
            (Passive.validate ~k:1.0 inst o.Resilient.value.Passive.monitors)))
    [ 1; 2; 3; 5; 8; 13; 21; 42 ]

let test_ppme_ladder_under_chaos () =
  let inst = Instance.figure3 () in
  let pb = Sampling.make_problem ~k:0.5 inst in
  List.iter
    (fun seed ->
      with_chaos seed (fun () ->
          let o = Resilient.solve_ppme pb in
          let s = o.Resilient.value in
          Alcotest.(check bool)
            (Printf.sprintf "ppme rates in range (seed %d, rung %s)" seed
               o.Resilient.rung)
            true
            (Array.for_all (fun r -> r >= -1e-9 && r <= 1.0 +. 1e-9)
               s.Sampling.rates);
          Alcotest.(check bool) "devices are real edges" true
            (List.for_all
               (fun e -> e >= 0 && e < Graph.num_edges inst.Instance.graph)
               s.Sampling.installed)))
    [ 4; 9; 16; 25 ]

let test_beacon_ladder_under_chaos () =
  let pop = Pop.make_preset `Pop10 ~seed:5 in
  let g = pop.Pop.graph in
  let candidates = Pop.routers pop in
  let probes = Active.compute_probes g ~candidates in
  List.iter
    (fun seed ->
      with_chaos seed (fun () ->
          let o = Resilient.place_beacons probes ~candidates in
          Alcotest.(check bool)
            (Printf.sprintf "beacons valid (seed %d, rung %s)" seed
               o.Resilient.rung)
            true
            (Active.validate probes ~beacons:o.Resilient.value.Active.beacons
               ~candidates)))
    [ 3; 11; 27 ]

(* Theorem 1: the terminal greedy rung inherits the set-cover
   guarantee, so even the worst degradation stays within H_d of the
   optimum. figure3 is small enough to compare against the exact
   solve. *)
let test_greedy_rung_guarantee () =
  let inst = Instance.figure3 () in
  let opt = Passive.solve_mip ~k:1.0 inst in
  let g = Passive.greedy ~k:1.0 inst in
  let guarantee = Cover.greedy_guarantee (Instance.cover_view inst) in
  Alcotest.(check bool) "greedy within guarantee" true
    (float_of_int g.Passive.count
    <= (guarantee *. float_of_int opt.Passive.count) +. 1e-9);
  Alcotest.(check bool) "greedy covers" true
    (Passive.validate ~k:1.0 inst g.Passive.monitors)

(* Infeasible_model must escape the ladder: degrading cannot repair an
   unreachable target. *)
let test_ladder_propagates_infeasible () =
  let inst = Instance.figure3 () in
  let pb = Sampling.make_problem ~k:0.9 inst in
  (* pin the ladder's degraded rungs onto a hopeless placement by
     exercising reoptimize directly through the same typed channel *)
  Alcotest.(check bool) "typed infeasible" true
    (try
       ignore (Sampling.reoptimize pb ~installed:[ 3 ]);
       false
     with Error.Error (Error.Infeasible_model _) -> true)

(* ---------- located parse errors ---------- *)

let test_demands_parse_errors () =
  let pop = Topo_file.load_sample "backbone-11" in
  let check_err text fragment =
    match Instance.parse_demands ~file:"t.dem" pop text with
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
    | Error (Error.Parse_error { file; line; msg }) ->
      Alcotest.(check string) "file" "t.dem" file;
      Alcotest.(check bool) "line located" true (line >= 1);
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" msg fragment)
        true
        (Astring.String.is_infix ~affix:fragment msg)
    | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)
  in
  check_err "demand nosuch lax 5.0" "nosuch";
  check_err "demand nyc nyc 5.0" "nyc";
  check_err "demand nyc lax lots" "lots";
  check_err "demand nyc lax -2.0" "-2.0";
  check_err "frobnicate nyc lax" "frobnicate"

let test_demands_parse_ok () =
  let pop = Topo_file.load_sample "backbone-11" in
  match
    Instance.parse_demands pop
      "# comment\ndemand nyc lax 5.0\ndemand bos mia 2.5\n"
  with
  | Ok inst ->
    Alcotest.(check bool) "has traffics" true (Instance.num_traffics inst > 0);
    Alcotest.(check (float 1e-9)) "volume" 7.5 inst.Instance.total_volume
  | Error e -> Alcotest.failf "parse failed: %s" (Error.to_string e)

(* Chaos site parse.truncate: a truncated read must surface as a typed
   Parse_error (or parse by luck), never an uncaught exception. *)
let test_truncated_read_is_typed () =
  let path = Filename.temp_file "monpos_test" ".topo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "node a backbone\nnode b backbone\nnode c backbone\n\
         link a b 10.0\nlink b c 2.0\nlink c a 2.0\n";
      close_out oc;
      for seed = 1 to 20 do
        with_chaos seed (fun () ->
            Chaos.protect (fun () ->
                match Topo_file.parse_file path with
                | Ok _ -> ()
                | Error (Error.Parse_error { file; _ }) ->
                  Alcotest.(check string)
                    (Printf.sprintf "error names file (seed %d)" seed)
                    path file
                | Error e ->
                  Alcotest.failf "unexpected error class: %s"
                    (Error.to_string e)))
      done)

let suite =
  [
    Alcotest.test_case "exit codes" `Quick test_exit_codes;
    Alcotest.test_case "error rendering" `Quick test_error_rendering;
    Alcotest.test_case "deadline basics" `Quick test_deadline_basics;
    Alcotest.test_case "0.2s budget returns within 2x" `Slow
      test_deadline_wall_clock;
    Alcotest.test_case "chaos scoping" `Quick test_chaos_scoping;
    Alcotest.test_case "chaos replay determinism" `Quick test_chaos_replay;
    Alcotest.test_case "ladder deterministic per seed" `Quick
      test_ladder_deterministic;
    Alcotest.test_case "ppm ladder feasible under chaos" `Slow
      test_ladder_feasible_under_chaos;
    Alcotest.test_case "ppme ladder under chaos" `Quick
      test_ppme_ladder_under_chaos;
    Alcotest.test_case "beacon ladder under chaos" `Quick
      test_beacon_ladder_under_chaos;
    Alcotest.test_case "greedy rung within guarantee" `Quick
      test_greedy_rung_guarantee;
    Alcotest.test_case "ladder propagates infeasible" `Quick
      test_ladder_propagates_infeasible;
    Alcotest.test_case "demands parse errors located" `Quick
      test_demands_parse_errors;
    Alcotest.test_case "demands parse ok" `Quick test_demands_parse_ok;
    Alcotest.test_case "truncated read is typed" `Quick
      test_truncated_read_is_typed;
  ]
