(* Branch-and-bound tests: exact agreement with brute force on random
   0-1 programs, statuses, and integer (non-binary) variables. *)

module Model = Monpos_lp.Model
module Mip = Monpos_lp.Mip

let check_float = Alcotest.(check (float 1e-6))

let status_name = function
  | Mip.Optimal -> "optimal"
  | Mip.Feasible -> "feasible"
  | Mip.Infeasible -> "infeasible"
  | Mip.Unbounded -> "unbounded"
  | Mip.No_solution -> "no_solution"

let check_status expected got =
  Alcotest.(check string) "status" (status_name expected) (status_name got)

let test_knapsack () =
  (* classic: values 60,100,120 weights 10,20,30 cap 50 -> 220 *)
  let m = Model.create Model.Maximize in
  let x1 = Model.add_var m ~obj:60.0 Model.Binary in
  let x2 = Model.add_var m ~obj:100.0 Model.Binary in
  let x3 = Model.add_var m ~obj:120.0 Model.Binary in
  Model.add_constr m [ (10.0, x1); (20.0, x2); (30.0, x3) ] Model.Le 50.0;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 220.0 r.objective;
  let sol = Option.get r.solution in
  check_float "x1" 0.0 sol.(0);
  check_float "x2" 1.0 sol.(1);
  check_float "x3" 1.0 sol.(2)

let test_integer_rounding_is_not_enough () =
  (* LP relaxation optimum rounds to an infeasible point; B&B must
     still find the true optimum. max x + y st -2x + 2y >= 1,
     2x + 2y <= 7, ints -> LP opt (1.5, 2) ; MIP opt (1, 2) -> 3 *)
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1.0 ~ub:10.0 Model.Integer in
  let y = Model.add_var m ~obj:1.0 ~ub:10.0 Model.Integer in
  Model.add_constr m [ (-2.0, x); (2.0, y) ] Model.Ge 1.0;
  Model.add_constr m [ (2.0, x); (2.0, y) ] Model.Le 7.0;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 3.0 r.objective

let test_infeasible_integer () =
  (* 2x = 1 has no integer solution *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 ~ub:10.0 Model.Integer in
  Model.add_constr m [ (2.0, x) ] Model.Eq 1.0;
  let r = Mip.solve m in
  check_status Mip.Infeasible r.status

let test_unbounded_integer () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1.0 Model.Integer in
  ignore x;
  let r = Mip.solve m in
  check_status Mip.Unbounded r.status

let test_mixed_integer_continuous () =
  (* min 3b + y st y >= 2.5 - 10 b, y >= 0, b binary.
     b=0 -> y=2.5 cost 2.5 ; b=1 -> y=0 cost 3. Optimum 2.5. *)
  let m = Model.create Model.Minimize in
  let b = Model.add_var m ~obj:3.0 Model.Binary in
  let y = Model.add_var m ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, y); (10.0, b) ] Model.Ge 2.5;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 2.5 r.objective

let test_equality_binary () =
  (* exactly 2 of 4 picked, minimize weighted sum *)
  let m = Model.create Model.Minimize in
  let costs = [| 5.0; 1.0; 3.0; 2.0 |] in
  let xs = Array.map (fun c -> Model.add_var m ~obj:c Model.Binary) costs in
  Model.add_constr m (Array.to_list (Array.map (fun x -> (1.0, x)) xs)) Model.Eq 2.0;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 3.0 r.objective

let test_vertex_cover_c5 () =
  (* minimum vertex cover of a 5-cycle is 3 *)
  let m = Model.create Model.Minimize in
  let xs = Array.init 5 (fun _ -> Model.add_var m ~obj:1.0 Model.Binary) in
  for i = 0 to 4 do
    Model.add_constr m [ (1.0, xs.(i)); (1.0, xs.((i + 1) mod 5)) ] Model.Ge 1.0
  done;
  let r = Mip.solve m in
  check_status Mip.Optimal r.status;
  check_float "obj" 3.0 r.objective

let test_solve_or_fail () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 ~lb:2.0 ~ub:9.0 Model.Integer in
  ignore x;
  let sol, obj = Mip.solve_or_fail m in
  check_float "obj" 2.0 obj;
  check_float "x" 2.0 sol.(0)

(* Brute force a random 0-1 program and compare. *)
let brute_force_binary model n =
  let best = ref None in
  let x = Array.make n 0.0 in
  let rec go i =
    if i = n then begin
      if Model.value_feasible model x then begin
        let v = Model.objective_value model x in
        let better =
          match (!best, Model.direction model) with
          | None, _ -> true
          | Some b, Model.Minimize -> v < b -. 1e-12
          | Some b, Model.Maximize -> v > b +. 1e-12
        in
        if better then best := Some v
      end
    end
    else begin
      x.(i) <- 0.0;
      go (i + 1);
      x.(i) <- 1.0;
      go (i + 1);
      x.(i) <- 0.0
    end
  in
  go 0;
  !best

let prop_matches_brute_force =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"mip matches brute force on random 0-1 programs"
    ~count:80 gen (fun seed ->
      let rng = Monpos_util.Prng.create seed in
      let n = 3 + Monpos_util.Prng.int rng 6 in
      let rows = 1 + Monpos_util.Prng.int rng 5 in
      let dir =
        if Monpos_util.Prng.bool rng then Model.Minimize else Model.Maximize
      in
      let m = Model.create dir in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~obj:(float_of_int (Monpos_util.Prng.range rng (-10) 10))
              Model.Binary)
      in
      for _ = 1 to rows do
        let terms =
          Array.to_list
            (Array.map
               (fun x -> (float_of_int (Monpos_util.Prng.range rng (-5) 5), x))
               xs)
        in
        let sense =
          match Monpos_util.Prng.int rng 3 with
          | 0 -> Model.Le
          | 1 -> Model.Ge
          | _ -> Model.Le
        in
        let rhs = float_of_int (Monpos_util.Prng.range rng (-6) 12) in
        Model.add_constr m terms sense rhs
      done;
      let r = Mip.solve m in
      match brute_force_binary m n with
      | None -> r.status = Mip.Infeasible
      | Some best ->
        r.status = Mip.Optimal && abs_float (r.objective -. best) < 1e-6)

let prop_solution_is_feasible =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"mip incumbents are feasible and integral" ~count:80
    gen (fun seed ->
      let rng = Monpos_util.Prng.create seed in
      let n = 2 + Monpos_util.Prng.int rng 8 in
      let m = Model.create Model.Maximize in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~obj:(1.0 +. Monpos_util.Prng.float rng 9.0)
              Model.Binary)
      in
      let weights = Array.map (fun _ -> 1.0 +. Monpos_util.Prng.float rng 9.0) xs in
      let cap = 1.0 +. Monpos_util.Prng.float rng (float_of_int n *. 4.0) in
      Model.add_constr m
        (List.init n (fun i -> (weights.(i), xs.(i))))
        Model.Le cap;
      let r = Mip.solve m in
      match (r.status, r.solution) with
      | Mip.Optimal, Some x -> Model.value_feasible m x
      | _ -> false)

let prop_branching_rules_agree =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"pseudocost and most-fractional find the same optimum"
    ~count:40 gen (fun seed ->
      let rng = Monpos_util.Prng.create seed in
      let n = 3 + Monpos_util.Prng.int rng 6 in
      let m = Model.create Model.Minimize in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~obj:(1.0 +. Monpos_util.Prng.float rng 9.0)
              Model.Binary)
      in
      (* covering constraints *)
      for _ = 1 to 2 + Monpos_util.Prng.int rng 4 do
        let terms =
          Array.to_list
            (Array.map
               (fun x ->
                 ((if Monpos_util.Prng.bool rng then 1.0 else 0.0), x))
               xs)
        in
        if List.exists (fun (c, _) -> c > 0.0) terms then
          Model.add_constr m terms Model.Ge 1.0
      done;
      let a =
        Mip.solve ~options:{ Mip.default_options with Mip.branching = Mip.Pseudocost } m
      in
      let b =
        Mip.solve
          ~options:{ Mip.default_options with Mip.branching = Mip.Most_fractional }
          m
      in
      match (a.Mip.status, b.Mip.status) with
      | Mip.Infeasible, Mip.Infeasible -> true
      | Mip.Optimal, Mip.Optimal -> abs_float (a.Mip.objective -. b.Mip.objective) < 1e-6
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* warm-start determinism on the paper's seed instances                *)

module Pop = Monpos_topo.Pop
module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Sampling = Monpos.Sampling
module Active = Monpos.Active

(* Warm starts must be a pure accelerator: on the seed PPM, PPME and
   beacon instances the solve with warm starts on and off must agree
   on status and objective (device count, coverage, cost), and each
   configuration must reproduce its own selected sets exactly when
   re-run. The two configurations may legitimately return different
   optimal vertices when alternative optima exist (they explore
   different trees), so cross-configuration set identity is asserted
   on the objective-defining quantities and on the independent
   validity of both sets, not on the raw index lists. *)
let test_warm_start_determinism () =
  let opts warm = { Mip.default_options with Mip.warm_start = warm } in
  let pop = Pop.make_preset `Pop10 ~seed:1 in
  let inst = Instance.of_pop pop ~seed:131 in
  (* under MONPOS_CHAOS the unscoped singular-pivot site draws from a
     per-seed stream; rewinding it before each solve makes the fault
     schedule part of the reproducibility contract instead of noise *)
  let module Chaos = Monpos_resilience.Chaos in
  let solve ~k ~options =
    Chaos.set_seed (Chaos.seed ());
    Passive.solve_mip ~k ~options inst
  in
  (* PPM(1) and PPM(0.8) through Linear program 2 *)
  List.iter
    (fun k ->
      let cold = solve ~k ~options:(opts false) in
      let warm = solve ~k ~options:(opts true) in
      let warm' = solve ~k ~options:(opts true) in
      let name tag = Printf.sprintf "ppm k=%.1f %s" k tag in
      Alcotest.(check bool) (name "optimal") cold.Passive.optimal warm.Passive.optimal;
      (* the MIP objective is the device count; coverage beyond k is
         incidental and may differ between alternative optima *)
      Alcotest.(check int) (name "devices") cold.Passive.count warm.Passive.count;
      (* re-running the same configuration reproduces the edge set *)
      Alcotest.(check (list int))
        (name "warm edge set reproducible")
        (List.sort compare warm.Passive.monitors)
        (List.sort compare warm'.Passive.monitors);
      (* both edge sets independently reach the coverage target *)
      List.iter
        (fun (tag, (sol : Passive.solution)) ->
          Alcotest.(check bool)
            (name (tag ^ " meets target"))
            true
            (Instance.coverage_fraction inst sol.Passive.monitors
             >= (k *. (1.0 -. 1e-9)) -. 1e-9))
        [ ("cold", cold); ("warm", warm) ])
    [ 1.0; 0.8 ];
  (* PPME through LP3, solved to proof quality so the comparison is
     not at the mercy of a wall-clock budget *)
  let milp warm =
    {
      Sampling.default_milp_options with
      Mip.warm_start = warm;
      gap_tolerance = 1e-9;
      time_limit = 120.0;
    }
  in
  let pb = Sampling.make_problem ~k:0.9 inst in
  let cold = Sampling.solve_milp ~options:(milp false) pb in
  let warm = Sampling.solve_milp ~options:(milp true) pb in
  let warm' = Sampling.solve_milp ~options:(milp true) pb in
  Alcotest.(check bool) "ppme optimal" cold.Sampling.optimal warm.Sampling.optimal;
  check_float "ppme total cost" cold.Sampling.total_cost warm.Sampling.total_cost;
  check_float "ppme coverage" cold.Sampling.fraction warm.Sampling.fraction;
  Alcotest.(check (list int))
    "ppme edge set reproducible"
    (List.sort compare warm.Sampling.installed)
    (List.sort compare warm'.Sampling.installed);
  (* beacon placement ILP *)
  let pop15 = Pop.make_preset `Pop15 ~seed:1 in
  let routers = Array.of_list (Pop.routers pop15) in
  let rng = Monpos_util.Prng.create 7 in
  Monpos_util.Prng.shuffle rng routers;
  let vb = List.sort compare (Array.to_list (Array.sub routers 0 10)) in
  let probes = Active.compute_probes ~targets:vb pop15.Pop.graph ~candidates:vb in
  let cold = Active.place_ilp ~options:(opts false) probes ~candidates:vb in
  let warm = Active.place_ilp ~options:(opts true) probes ~candidates:vb in
  let warm' = Active.place_ilp ~options:(opts true) probes ~candidates:vb in
  Alcotest.(check int) "beacon count"
    (List.length cold.Active.beacons)
    (List.length warm.Active.beacons);
  Alcotest.(check (list int))
    "beacon set reproducible"
    (List.sort compare warm.Active.beacons)
    (List.sort compare warm'.Active.beacons);
  List.iter
    (fun (tag, (placement : Active.placement)) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s beacons valid" tag)
        true
        (Active.validate probes ~beacons:placement.Active.beacons
           ~candidates:vb))
    [ ("cold", cold); ("warm", warm) ]

(* ------------------------------------------------------------------ *)
(* kernel agreement on the paper's seed instances                      *)

(* The linear-algebra kernel must be invisible in the answers: the
   dense explicit-inverse and sparse LU + eta-file kernels must agree
   on the objective-defining quantities of the seed PPM, PPME and
   beacon solves — with warm starts on, so the eta file and the
   warm-basis factorization path are both exercised. As with warm
   starts, alternative optima may differ in the raw index sets. *)
let test_kernel_agreement () =
  let opts kernel = { Mip.default_options with Mip.kernel } in
  let pop = Pop.make_preset `Pop10 ~seed:1 in
  let inst = Instance.of_pop pop ~seed:131 in
  List.iter
    (fun k ->
      let dense =
        Passive.solve_mip ~k ~options:(opts Monpos_lp.Simplex.Dense) inst
      in
      let sparse =
        Passive.solve_mip ~k ~options:(opts Monpos_lp.Simplex.Sparse_lu) inst
      in
      let name tag = Printf.sprintf "ppm k=%.1f kernels %s" k tag in
      Alcotest.(check bool) (name "optimal") dense.Passive.optimal
        sparse.Passive.optimal;
      Alcotest.(check int) (name "devices") dense.Passive.count
        sparse.Passive.count;
      (* the LP relaxation bound must agree too, not only the MIP *)
      check_float (name "lp bound")
        (Passive.lp_bound ~k ~kernel:Monpos_lp.Simplex.Dense inst)
        (Passive.lp_bound ~k ~kernel:Monpos_lp.Simplex.Sparse_lu inst))
    [ 1.0; 0.8 ];
  let milp kernel =
    {
      Sampling.default_milp_options with
      Mip.kernel;
      gap_tolerance = 1e-9;
      time_limit = 120.0;
    }
  in
  let pb = Sampling.make_problem ~k:0.9 inst in
  let dense = Sampling.solve_milp ~options:(milp Monpos_lp.Simplex.Dense) pb in
  let sparse =
    Sampling.solve_milp ~options:(milp Monpos_lp.Simplex.Sparse_lu) pb
  in
  Alcotest.(check bool) "ppme kernels optimal" dense.Sampling.optimal
    sparse.Sampling.optimal;
  check_float "ppme kernels total cost" dense.Sampling.total_cost
    sparse.Sampling.total_cost;
  check_float "ppme kernels coverage" dense.Sampling.fraction
    sparse.Sampling.fraction;
  let pop15 = Pop.make_preset `Pop15 ~seed:1 in
  let routers = Array.of_list (Pop.routers pop15) in
  let rng = Monpos_util.Prng.create 7 in
  Monpos_util.Prng.shuffle rng routers;
  let vb = List.sort compare (Array.to_list (Array.sub routers 0 10)) in
  let probes =
    Active.compute_probes ~targets:vb pop15.Pop.graph ~candidates:vb
  in
  let dense =
    Active.place_ilp ~options:(opts Monpos_lp.Simplex.Dense) probes
      ~candidates:vb
  in
  let sparse =
    Active.place_ilp ~options:(opts Monpos_lp.Simplex.Sparse_lu) probes
      ~candidates:vb
  in
  Alcotest.(check int) "beacon count kernels"
    (List.length dense.Active.beacons)
    (List.length sparse.Active.beacons)

(* ------------------------------------------------------------------ *)
(* loosened integrality tolerance (pseudocost denominator clamp)       *)

(* With the default tolerance the fractional part recorded at a branch
   always sits in (itol, 1 - itol); loosening the tolerance pushes it
   toward the clamp. The solver must stay finite and sane: incumbents
   are re-checked feasible before acceptance, so any claimed optimum
   is a genuinely feasible point at least as bad as the true one. *)
let test_loose_integrality_tol () =
  (* deterministic case first: the classic knapsack must survive a
     loose tolerance intact (its LP corners round to feasible points) *)
  let loose =
    {
      Mip.default_options with
      Mip.integrality_tol = 0.2;
      branching = Mip.Pseudocost;
    }
  in
  let m = Model.create Model.Maximize in
  let x1 = Model.add_var m ~obj:60.0 Model.Binary in
  let x2 = Model.add_var m ~obj:100.0 Model.Binary in
  let x3 = Model.add_var m ~obj:120.0 Model.Binary in
  Model.add_constr m [ (10.0, x1); (20.0, x2); (30.0, x3) ] Model.Le 50.0;
  let r = Mip.solve ~options:loose m in
  check_status Mip.Optimal r.status;
  check_float "knapsack obj under loose tol" 220.0 r.objective;
  (* random covering programs: every incumbent must be feasible and no
     claimed objective may beat the brute-force optimum *)
  for seed = 1 to 25 do
    let rng = Monpos_util.Prng.create (seed * 2_654_435) in
    let n = 3 + Monpos_util.Prng.int rng 5 in
    let m = Model.create Model.Minimize in
    let xs =
      Array.init n (fun _ ->
          Model.add_var m
            ~obj:(1.0 +. Monpos_util.Prng.float rng 9.0)
            Model.Binary)
    in
    for _ = 1 to 2 + Monpos_util.Prng.int rng 4 do
      let terms =
        Array.to_list
          (Array.map
             (fun x -> ((if Monpos_util.Prng.bool rng then 1.0 else 0.0), x))
             xs)
      in
      if List.exists (fun (c, _) -> c > 0.0) terms then
        Model.add_constr m terms Model.Ge 1.0
    done;
    let r = Mip.solve ~options:loose m in
    (match (r.Mip.status, r.Mip.solution) with
    | (Mip.Optimal | Mip.Feasible), Some x ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: loose-tol incumbent feasible" seed)
        true
        (Model.value_feasible m x);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: objective is finite" seed)
        true
        (Float.is_finite r.Mip.objective);
      (match brute_force_binary m n with
      | Some best ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: no better than brute force" seed)
          true
          (r.Mip.objective >= best -. 1e-6)
      | None -> Alcotest.failf "seed %d: brute force found nothing" seed)
    | Mip.Infeasible, _ ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: infeasible confirmed" seed)
        true
        (brute_force_binary m n = None)
    | _ -> Alcotest.failf "seed %d: unexpected loose-tol outcome" seed)
  done

let suite =
  [
    Alcotest.test_case "knapsack" `Quick test_knapsack;
    Alcotest.test_case "rounding not enough" `Quick test_integer_rounding_is_not_enough;
    Alcotest.test_case "infeasible integer" `Quick test_infeasible_integer;
    Alcotest.test_case "unbounded integer" `Quick test_unbounded_integer;
    Alcotest.test_case "mixed integer continuous" `Quick test_mixed_integer_continuous;
    Alcotest.test_case "equality on binaries" `Quick test_equality_binary;
    Alcotest.test_case "vertex cover C5" `Quick test_vertex_cover_c5;
    Alcotest.test_case "solve_or_fail" `Quick test_solve_or_fail;
    Alcotest.test_case "warm-start determinism (seed instances)" `Quick
      test_warm_start_determinism;
    Alcotest.test_case "kernel agreement (seed instances)" `Quick
      test_kernel_agreement;
    Alcotest.test_case "loosened integrality tolerance stays sane" `Quick
      test_loose_integrality_tol;
    QCheck_alcotest.to_alcotest prop_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_branching_rules_agree;
    QCheck_alcotest.to_alcotest prop_solution_is_feasible;
  ]
