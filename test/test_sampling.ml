(* Sampling (PPME) tests: LP3 solutions respect every constraint
   family, PPME* re-optimization, cost ordering, dynamic loop. *)

module Instance = Monpos.Instance
module Sampling = Monpos.Sampling
module Passive = Monpos.Passive
module Pop = Monpos_topo.Pop
module Graph = Monpos_graph.Graph
module Prng = Monpos_util.Prng
module Mincost = Monpos_flow.Mincost
module Chaos = Monpos_resilience.Chaos

let pop10_instance seed =
  Instance.of_pop (Pop.make_preset `Pop10 ~seed) ~seed:(seed * 3)

(* Chaos seeds are process-global state: every test that installs one
   must restore the previous value on the way out. *)
let with_chaos seed f =
  let saved = Chaos.seed () in
  Chaos.set_seed (Some seed);
  Fun.protect ~finally:(fun () -> Chaos.set_seed saved) f

(* test-time MILP budget: a 2-second anytime solve is plenty to check
   feasibility invariants *)
let fast_options =
  {
    Monpos_lp.Mip.default_options with
    Monpos_lp.Mip.time_limit = 2.0;
    gap_tolerance = 0.02;
  }

let check_solution_feasible pb (s : Sampling.solution) =
  let inst = pb.Sampling.instance in
  (* rates only where installed, all within [0,1] *)
  Array.iteri
    (fun e r ->
      Alcotest.(check bool) "rate in [0,1]" true (r >= -1e-9 && r <= 1.0 +. 1e-9);
      if r > 1e-9 then
        Alcotest.(check bool) "rate implies installed" true
          (List.mem e s.Sampling.installed))
    s.Sampling.rates;
  (* delta_p <= sum of rates along p *)
  Array.iteri
    (fun p tr ->
      let sum =
        List.fold_left
          (fun acc e -> acc +. s.Sampling.rates.(e))
          0.0 tr.Instance.t_edges
      in
      Alcotest.(check bool) "delta within cascade" true
        (s.Sampling.path_fractions.(p) <= sum +. 1e-6))
    inst.Instance.traffics;
  (* global coverage *)
  Alcotest.(check bool) "global k reached" true
    (s.Sampling.fraction >= pb.Sampling.k -. 1e-6);
  (* per-demand floors *)
  let ndemands = Array.length inst.Instance.demands in
  let monitored = Array.make ndemands 0.0 in
  let volume = Array.make ndemands 0.0 in
  Array.iteri
    (fun p tr ->
      let d = tr.Instance.t_demand in
      monitored.(d) <-
        monitored.(d) +. (s.Sampling.path_fractions.(p) *. tr.Instance.t_volume);
      volume.(d) <- volume.(d) +. tr.Instance.t_volume)
    inst.Instance.traffics;
  Array.iteri
    (fun d h ->
      if volume.(d) > 0.0 then
        Alcotest.(check bool) "per-demand floor" true
          (monitored.(d) >= (h *. volume.(d)) -. 1e-6))
    pb.Sampling.h

let test_milp_figure3 () =
  let inst = Instance.figure3 () in
  let pb = Sampling.make_problem ~k:0.9 inst in
  let s = Sampling.solve_milp pb in
  Alcotest.(check bool) "optimal" true s.Sampling.optimal;
  check_solution_feasible pb s;
  (* uniform costs: install dominates, so the device count matches the
     budget-free passive optimum for k = 0.9 *)
  let e = Passive.solve_exact ~k:0.9 inst in
  Alcotest.(check int) "device count matches passive optimum"
    e.Passive.count
    (List.length s.Sampling.installed)

let test_milp_pop10 () =
  let inst = pop10_instance 1 in
  let pb = Sampling.make_problem ~k:0.85 inst in
  let s = Sampling.solve_milp ~options:fast_options pb in
  check_solution_feasible pb s

let test_milp_with_demand_floors () =
  let inst = Instance.figure3 () in
  let h = Array.make (Array.length inst.Instance.demands) 0.5 in
  let pb = Sampling.make_problem ~k:0.6 ~h inst in
  let s = Sampling.solve_milp pb in
  check_solution_feasible pb s

let test_sampling_cheaper_than_full_monitoring () =
  (* with expensive exploitation, sampling at k=0.8 must cost no more
     than full-rate monitoring of the same links *)
  let inst = pop10_instance 2 in
  let costs = Sampling.uniform_costs ~install:5.0 ~exploit:10.0 () in
  let pb = Sampling.make_problem ~k:0.8 ~costs inst in
  let s = Sampling.solve_milp ~options:fast_options pb in
  let full_rate_cost =
    List.fold_left
      (fun acc e -> acc +. 5.0 +. (10.0 *. 1.0) +. (0.0 *. float_of_int e))
      0.0 s.Sampling.installed
  in
  Alcotest.(check bool) "cheaper than running flat out" true
    (s.Sampling.total_cost <= full_rate_cost +. 1e-6)

let test_reoptimize_fixed_placement () =
  let inst = Instance.figure3 () in
  let pb = Sampling.make_problem ~k:0.9 inst in
  (* fix devices on the two load-3 links: they can reach k = 0.9 *)
  let s = Sampling.reoptimize pb ~installed:[ 1; 2 ] in
  Alcotest.(check bool) "optimal LP" true s.Sampling.optimal;
  check_solution_feasible pb s;
  Alcotest.(check bool) "no new devices" true
    (List.for_all (fun e -> List.mem e [ 1; 2 ]) s.Sampling.installed)

let test_reoptimize_infeasible () =
  let inst = Instance.figure3 () in
  let pb = Sampling.make_problem ~k:0.9 inst in
  (* one light link cannot reach 90% even at rate 1 *)
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sampling.reoptimize pb ~installed:[ 3 ]);
       false
     with
    | Monpos_resilience.Error.Error (Monpos_resilience.Error.Infeasible_model _)
      ->
      true)

let test_reoptimize_cost_not_above_milp () =
  (* PPME* on the MILP's own placement can only reduce or match the
     exploitation cost (the MILP already optimized rates) *)
  let inst = pop10_instance 3 in
  let pb = Sampling.make_problem ~k:0.85 inst in
  let milp = Sampling.solve_milp ~options:fast_options pb in
  let re = Sampling.reoptimize pb ~installed:milp.Sampling.installed in
  Alcotest.(check bool) "exploit cost no worse" true
    (re.Sampling.exploit_cost <= milp.Sampling.exploit_cost +. 1e-6)

let test_reoptimize_flow_figure3 () =
  let inst = Instance.figure3 () in
  let pb = Sampling.make_problem ~k:0.9 inst in
  let s = Sampling.reoptimize_flow pb ~installed:[ 1; 2 ] in
  Alcotest.(check bool) "meets k" true (s.Sampling.fraction >= 0.9 -. 1e-6);
  Alcotest.(check bool) "rates within bounds" true
    (Array.for_all (fun r -> r >= -1e-9 && r <= 1.0 +. 1e-9) s.Sampling.rates);
  Alcotest.(check bool) "only installed links" true
    (List.for_all (fun e -> List.mem e [ 1; 2 ]) s.Sampling.installed)

let test_reoptimize_flow_cost_bounds_lp () =
  (* the per-path-ratio flow relaxation can only be cheaper than the
     uniform-rate LP, and both meet the target *)
  List.iter
    (fun seed ->
      let inst = pop10_instance seed in
      let pb =
        Sampling.make_problem ~k:0.85
          ~costs:(Sampling.load_scaled_costs inst ())
          inst
      in
      let installed = (Passive.greedy ~k:0.95 inst).Passive.monitors in
      let lp = Sampling.reoptimize pb ~installed in
      let fl = Sampling.reoptimize_flow pb ~installed in
      Alcotest.(check bool) "flow <= lp cost" true
        (fl.Sampling.exploit_cost <= lp.Sampling.exploit_cost +. 1e-6);
      Alcotest.(check bool) "flow cost positive" true
        (fl.Sampling.exploit_cost > 0.0))
    [ 1; 2; 3 ]

let test_reoptimize_flow_demand_floors () =
  let inst = pop10_instance 6 in
  let ndemands = Array.length inst.Instance.demands in
  let h = Array.make ndemands 0.3 in
  let pb = Sampling.make_problem ~k:0.8 ~h inst in
  let all_edges =
    List.filter
      (fun e -> inst.Instance.loads.(e) > 0.0)
      (List.init (Graph.num_edges inst.Instance.graph) Fun.id)
  in
  let s = Sampling.reoptimize_flow pb ~installed:all_edges in
  Alcotest.(check bool) "meets global" true (s.Sampling.fraction >= 0.8 -. 1e-6)

let test_reoptimize_flow_infeasible () =
  let inst = Instance.figure3 () in
  let pb = Sampling.make_problem ~k:0.9 inst in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Sampling.reoptimize_flow pb ~installed:[ 3 ]);
       false
     with
    | Monpos_resilience.Error.Error (Monpos_resilience.Error.Infeasible_model _)
      ->
      true)

(* All three flow backends — SSP, a cold network simplex and a
   warm-started one — solve the same relaxation, and with uniform
   costs the per-edge flow costs 1/load(e) are generically distinct,
   so they must return the same rates, coverage and cost. *)
let check_same_solution name (a : Sampling.solution) (b : Sampling.solution) =
  Alcotest.(check (float 1e-6))
    (name ^ ": exploit cost")
    a.Sampling.exploit_cost b.Sampling.exploit_cost;
  Alcotest.(check (float 1e-9)) (name ^ ": coverage") a.Sampling.fraction
    b.Sampling.fraction;
  Array.iteri
    (fun e r ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "%s: rate on link %d" name e)
        r b.Sampling.rates.(e))
    a.Sampling.rates

let test_flow_kernels_identical () =
  List.iter
    (fun seed ->
      let inst = pop10_instance seed in
      let pb = Sampling.make_problem ~k:0.85 inst in
      let installed = (Passive.greedy ~k:0.95 inst).Passive.monitors in
      let ssp = Sampling.reoptimize_flow ~algo:Mincost.Ssp pb ~installed in
      let ns =
        Sampling.reoptimize_flow ~algo:Mincost.Net_simplex pb ~installed
      in
      let rp = Sampling.reopt_create ~algo:Mincost.Net_simplex pb ~installed in
      let warm1 = Sampling.reopt_solve rp pb in
      let warm2 = Sampling.reopt_solve rp pb (* warm replay, same basis *) in
      check_same_solution "ssp vs netsimplex" ssp ns;
      check_same_solution "cold vs persistent" ns warm1;
      check_same_solution "warm replay" warm1 warm2)
    [ 1; 2; 3 ]

(* §5.4 determinism: the control loop's tick stream is a pure function
   of (problem, placement, seed) whatever flow kernel re-optimizes —
   warm-started network simplex included. *)
let test_dynamic_flow_kernels_agree () =
  let inst = pop10_instance 4 in
  let pb = Sampling.make_problem ~k:0.85 inst in
  let placement = Sampling.solve_milp ~options:fast_options pb in
  let installed = placement.Sampling.installed in
  let run kernel =
    (* rewind the chaos site streams (a no-op when chaos is disarmed)
       so every kernel replays the same fault schedule *)
    Chaos.set_seed (Chaos.seed ());
    Sampling.run_dynamic ~kernel pb ~installed ~threshold:0.8 ~steps:15
      ~sigma:0.25 ~seed:9
  in
  let ssp = run (Sampling.Flow Mincost.Ssp) in
  let ns = run (Sampling.Flow Mincost.Net_simplex) in
  let ns_again = run (Sampling.Flow Mincost.Net_simplex) in
  Alcotest.(check int) "same tick count" (List.length ssp) (List.length ns);
  List.iter2
    (fun (a : Sampling.tick) (b : Sampling.tick) ->
      Alcotest.(check bool) "same reopt decision" a.Sampling.reoptimized
        b.Sampling.reoptimized;
      Alcotest.(check (float 1e-6)) "same coverage before"
        a.Sampling.fraction_before b.Sampling.fraction_before;
      Alcotest.(check (float 1e-6)) "same coverage after"
        a.Sampling.fraction_after b.Sampling.fraction_after;
      Alcotest.(check (float 1e-6)) "same exploit cost"
        a.Sampling.exploit_cost b.Sampling.exploit_cost)
    ssp ns;
  List.iter2
    (fun (a : Sampling.tick) (b : Sampling.tick) ->
      Alcotest.(check (float 0.0)) "bit-identical replay"
        a.Sampling.fraction_after b.Sampling.fraction_after)
    ns ns_again

(* Chaos-seeded §5.4 loop with the flow kernel active: injected
   re-optimization faults must descend the PR 5 ladder (stale ticks,
   previous rates kept in service), never crash or corrupt the
   persistent flow network. *)
let test_dynamic_flow_kernel_under_chaos () =
  let inst = pop10_instance 5 in
  let pb = Sampling.make_problem ~k:0.9 inst in
  let placement = Sampling.solve_milp ~options:fast_options pb in
  let any_stale = ref false in
  List.iter
    (fun chaos_seed ->
      with_chaos chaos_seed (fun () ->
          let ticks =
            Sampling.run_dynamic
              ~kernel:(Sampling.Flow Mincost.Net_simplex) pb
              ~installed:placement.Sampling.installed ~threshold:0.9 ~steps:40
              ~sigma:0.4 ~seed:77
          in
          Alcotest.(check int)
            (Printf.sprintf "all ticks served (chaos seed %d)" chaos_seed)
            40 (List.length ticks);
          List.iter
            (fun (t : Sampling.tick) ->
              if t.Sampling.stale then begin
                any_stale := true;
                Alcotest.(check bool) "stale implies reoptimized" true
                  t.Sampling.reoptimized
              end;
              Alcotest.(check bool) "coverage in range" true
                (t.Sampling.fraction_after >= -1e-9
                && t.Sampling.fraction_after <= 1.0 +. 1e-9))
            ticks))
    [ 7; 19; 23 ];
  Alcotest.(check bool) "some fault actually hit the reopt site" true
    !any_stale

let test_coverage_with_rates () =
  let inst = Instance.figure3 () in
  let pb = Sampling.make_problem ~k:0.5 inst in
  let rates = Array.make (Graph.num_edges inst.Instance.graph) 0.0 in
  rates.(0) <- 0.5 (* central link at 50% -> covers 2 of 6 units *);
  Alcotest.(check (float 1e-9)) "half of heavy traffics" (2.0 /. 6.0)
    (Sampling.coverage_with_rates pb ~rates);
  rates.(0) <- 1.0;
  Alcotest.(check (float 1e-9)) "full central" (4.0 /. 6.0)
    (Sampling.coverage_with_rates pb ~rates);
  (* cascade: two links on one path cap at 1 *)
  rates.(0) <- 0.8;
  rates.(1) <- 0.8;
  let c = Sampling.coverage_with_rates pb ~rates in
  Alcotest.(check bool) "capped at path volume" true (c <= 1.0 +. 1e-9)

let test_dynamic_loop_maintains_threshold () =
  let inst = pop10_instance 4 in
  let pb =
    Sampling.make_problem ~k:0.85
      ~costs:(Sampling.load_scaled_costs inst ())
      inst
  in
  let placement = Sampling.solve_milp ~options:fast_options pb in
  let ticks =
    Sampling.run_dynamic pb ~installed:placement.Sampling.installed
      ~threshold:0.8 ~steps:20 ~sigma:0.2 ~seed:9
  in
  Alcotest.(check int) "20 ticks" 20 (List.length ticks);
  List.iter
    (fun (t : Sampling.tick) ->
      (* after a re-optimization, coverage is back above k or rates
         saturated; without one, coverage stayed above the threshold *)
      if t.Sampling.reoptimized then
        Alcotest.(check bool) "reopt improves or saturates" true
          (t.Sampling.fraction_after >= t.Sampling.fraction_before -. 1e-9)
      else
        Alcotest.(check bool) "no reopt above threshold" true
          (t.Sampling.fraction_before >= 0.8 -. 1e-9))
    ticks

let test_dynamic_loop_reoptimizes_sometimes () =
  let inst = pop10_instance 5 in
  let pb = Sampling.make_problem ~k:0.9 inst in
  let placement = Sampling.solve_milp ~options:fast_options pb in
  let ticks =
    Sampling.run_dynamic pb ~installed:placement.Sampling.installed
      ~threshold:0.9 ~steps:60 ~sigma:0.5 ~seed:77
  in
  Alcotest.(check bool) "at least one reoptimization" true
    (List.exists (fun (t : Sampling.tick) -> t.Sampling.reoptimized) ticks)

let prop_milp_feasible_random =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"LP3 solutions satisfy all constraint families"
    ~count:6 gen (fun seed ->
      let inst = pop10_instance (1 + (seed mod 7)) in
      let rng = Prng.create seed in
      let k = 0.6 +. Prng.float rng 0.35 in
      let h =
        Array.map
          (fun _ -> Prng.float rng (k /. 2.0))
          (Array.make (Array.length inst.Instance.demands) 0)
      in
      let pb = Sampling.make_problem ~k ~h inst in
      let s = Sampling.solve_milp ~options:fast_options pb in
      s.Sampling.fraction >= k -. 1e-6
      && Array.for_all (fun r -> r >= -1e-9 && r <= 1.0 +. 1e-9) s.Sampling.rates)

let suite =
  [
    Alcotest.test_case "milp figure3" `Quick test_milp_figure3;
    Alcotest.test_case "milp pop10" `Quick test_milp_pop10;
    Alcotest.test_case "milp demand floors" `Quick test_milp_with_demand_floors;
    Alcotest.test_case "sampling cheaper" `Quick test_sampling_cheaper_than_full_monitoring;
    Alcotest.test_case "reoptimize fixed" `Quick test_reoptimize_fixed_placement;
    Alcotest.test_case "reoptimize infeasible" `Quick test_reoptimize_infeasible;
    Alcotest.test_case "reoptimize cost" `Quick test_reoptimize_cost_not_above_milp;
    Alcotest.test_case "flow reopt figure3" `Quick test_reoptimize_flow_figure3;
    Alcotest.test_case "flow reopt cost bound" `Quick test_reoptimize_flow_cost_bounds_lp;
    Alcotest.test_case "flow reopt demand floors" `Quick test_reoptimize_flow_demand_floors;
    Alcotest.test_case "flow reopt infeasible" `Quick test_reoptimize_flow_infeasible;
    Alcotest.test_case "flow kernels identical" `Quick test_flow_kernels_identical;
    Alcotest.test_case "dynamic flow kernels agree" `Quick test_dynamic_flow_kernels_agree;
    Alcotest.test_case "dynamic flow kernel chaos" `Quick test_dynamic_flow_kernel_under_chaos;
    Alcotest.test_case "coverage with rates" `Quick test_coverage_with_rates;
    Alcotest.test_case "dynamic maintains threshold" `Quick test_dynamic_loop_maintains_threshold;
    Alcotest.test_case "dynamic reoptimizes" `Quick test_dynamic_loop_reoptimizes_sometimes;
    QCheck_alcotest.to_alcotest prop_milp_feasible_random;
  ]
