let () =
  Alcotest.run "monpos"
    [
      ("util", Test_util.suite);
      ("lp.simplex", Test_lp.suite);
      ("lp.simplex_prop", Test_simplex_prop.suite);
      ("lp.mip", Test_mip.suite);
      ("lp.parallel", Test_parallel.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("obs", Test_obs.suite);
      ("obs.reader", Test_obs_reader.suite);
      ("obs.prom", Test_prom.suite);
      ("obs.diff", Test_diff.suite);
      ("obs.flight", Test_flight.suite);
      ("graph", Test_graph.suite);
      ("flow", Test_flow.suite);
      ("flow.prop", Test_flow_prop.suite);
      ("cover", Test_cover.suite);
      ("topology", Test_topology.suite);
      ("traffic", Test_traffic.suite);
      ("instance", Test_instance.suite);
      ("passive", Test_passive.suite);
      ("campaign", Test_campaign.suite);
      ("mecf", Test_mecf.suite);
      ("sampling", Test_sampling.suite);
      ("active", Test_active.suite);
      ("resilience", Test_resilience.suite);
      ("scenario", Test_scenario.suite);
    ]
