(* Cross-run trace diffing: joining two synthetic traces by span and
   solver, the per-class thresholds (one-sided wall time and
   allocation, exact counts), disappearing metrics, and the
   tolerate-but-report convention for chaos runs. *)

module Trace = Monpos_obs.Trace
module Reader = Monpos_obs.Trace_reader
module Diff = Monpos_obs.Diff

let r event = { Reader.ts = 0.0; domain = 0; event }

let gc_words minor =
  {
    Trace.minor_words = minor;
    major_words = 0.0;
    promoted_words = 0.0;
    major_collections = 0;
    top_heap_words = 0;
  }

(* one complete span with optional allocation accounting *)
let span ?alloc name seconds =
  [
    r (Reader.Span_open { name; depth = 0 });
    r
      (Reader.Span_close
         { name; depth = 0; seconds; gc = Option.map gc_words alloc; sampled_of = 1 });
  ]

let bb_nodes solver n =
  List.init n (fun i ->
      r (Reader.Bb_node { solver; node = i; depth = 0; bound = None; sampled_of = 1 }))

let pivots n = [ r (Reader.Simplex_phase { phase = 2; iterations = n; outcome = "optimal"; sampled_of = 1 }) ]

let chaos_manifest seed =
  [
    r
      (Reader.Run_info
         {
           run_id = "run-chaotic";
           git_rev = None;
           ocaml_version = None;
           hostname = None;
           chaos_seed = seed;
           argv = [];
         });
  ]

let read records = { Reader.records; malformed = 0; unknown = 0; truncated = false }

let baseline () =
  read
    (span "mip.solve" 1.0 ~alloc:100_000.0
    @ span "lu_factor" 0.2
    @ bb_nodes "mip" 10 @ pivots 500)

let find_row report key =
  match List.find_opt (fun (row : Diff.row) -> row.Diff.key = key) report.Diff.rows with
  | Some row -> row
  | None ->
    Alcotest.failf "no row for %s (have: %s)" key
      (String.concat ", "
         (List.map (fun (row : Diff.row) -> row.Diff.key) report.Diff.rows))

let test_identical_runs_pass () =
  let report = Diff.of_traces ~a:(baseline ()) ~b:(baseline ()) in
  Alcotest.(check int) "no regressions" 0 report.Diff.regressions;
  Alcotest.(check int) "nothing tolerated" 0 report.Diff.tolerated;
  Alcotest.(check bool) "compared several metrics" true (report.Diff.compared >= 6);
  List.iter
    (fun (row : Diff.row) ->
      Alcotest.(check bool) (row.Diff.key ^ " ok") false row.Diff.regressed)
    report.Diff.rows;
  (* the bench gate's phrasing *)
  Alcotest.(check bool) "render says OK" true
    (let rendered = Diff.render report in
     let ok = "within thresholds: OK" in
     let n = String.length rendered and m = String.length ok in
     let rec has i = i + m <= n && (String.sub rendered i m = ok || has (i + 1)) in
     has 0)

let test_wall_time_regression_gates () =
  let b =
    read
      (span "mip.solve" 2.5 ~alloc:100_000.0
      @ span "lu_factor" 0.2
      @ bb_nodes "mip" 10 @ pivots 500)
  in
  let report = Diff.of_traces ~a:(baseline ()) ~b in
  Alcotest.(check int) "one regression" 1 report.Diff.regressions;
  let row = find_row report "span.mip.solve.seconds" in
  Alcotest.(check bool) "time row regressed" true row.Diff.regressed;
  Alcotest.(check bool) "limit names the band" true (row.Diff.limit <> "")

let test_time_tolerance_is_one_sided () =
  (* +40% is inside the +50% band; a speedup is never a regression *)
  let faster =
    read
      (span "mip.solve" 0.4 ~alloc:100_000.0
      @ span "lu_factor" 0.05
      @ bb_nodes "mip" 10 @ pivots 500)
  in
  let report = Diff.of_traces ~a:(baseline ()) ~b:faster in
  Alcotest.(check int) "speedup passes" 0 report.Diff.regressions;
  let within =
    read
      (span "mip.solve" 1.35 ~alloc:100_000.0
      @ span "lu_factor" 0.25
      @ bb_nodes "mip" 10 @ pivots 500)
  in
  let report = Diff.of_traces ~a:(baseline ()) ~b:within in
  Alcotest.(check int) "+35% within the band" 0 report.Diff.regressions

let test_count_drift_gates () =
  let b =
    read
      (span "mip.solve" 1.0 ~alloc:100_000.0
      @ span "lu_factor" 0.2
      @ bb_nodes "mip" 10 @ pivots 520)
  in
  let report = Diff.of_traces ~a:(baseline ()) ~b in
  Alcotest.(check int) "pivot drift regresses" 1 report.Diff.regressions;
  Alcotest.(check bool) "pivot row regressed" true
    (find_row report "simplex.pivots").Diff.regressed

let test_allocation_regression_gates () =
  let b =
    read
      (span "mip.solve" 1.0 ~alloc:250_000.0
      @ span "lu_factor" 0.2
      @ bb_nodes "mip" 10 @ pivots 500)
  in
  let report = Diff.of_traces ~a:(baseline ()) ~b in
  Alcotest.(check int) "alloc regresses" 1 report.Diff.regressions;
  Alcotest.(check bool) "alloc row regressed" true
    (find_row report "span.mip.solve.alloc_words").Diff.regressed

let test_missing_metric_gates () =
  let b =
    read (span "mip.solve" 1.0 ~alloc:100_000.0 @ bb_nodes "mip" 10 @ pivots 500)
  in
  let report = Diff.of_traces ~a:(baseline ()) ~b in
  let row = find_row report "span.lu_factor.seconds" in
  Alcotest.(check bool) "missing regresses" true row.Diff.regressed;
  Alcotest.(check bool) "b is absent" true (row.Diff.b = None)

let test_chaos_runs_tolerated () =
  let b =
    read
      (chaos_manifest (Some 7)
      @ span "mip.solve" 5.0 ~alloc:100_000.0
      @ span "lu_factor" 0.2
      @ bb_nodes "mip" 14 @ pivots 900)
  in
  let report = Diff.of_traces ~a:(baseline ()) ~b in
  Alcotest.(check int) "chaos does not gate" 0 report.Diff.regressions;
  Alcotest.(check bool) "violations still reported" true
    (report.Diff.tolerated >= 2);
  Alcotest.(check bool) "render says TOLERATED" true
    (let rendered = Diff.render report in
     let t = "TOLERATED" in
     let n = String.length rendered and m = String.length t in
     let rec has i = i + m <= n && (String.sub rendered i m = t || has (i + 1)) in
     has 0)

let test_b_only_metric_noted () =
  let b =
    read
      (span "mip.solve" 1.0 ~alloc:100_000.0
      @ span "lu_factor" 0.2 @ span "greedy.cover" 0.05 @ bb_nodes "mip" 10
      @ pivots 500)
  in
  let report = Diff.of_traces ~a:(baseline ()) ~b in
  Alcotest.(check int) "new metric is not a regression" 0 report.Diff.regressions;
  Alcotest.(check bool) "but it is noted" true
    (List.exists
       (fun note ->
         let k = "greedy.cover" in
         let n = String.length note and m = String.length k in
         let rec has i = i + m <= n && (String.sub note i m = k || has (i + 1)) in
         has 0)
       report.Diff.notes)

let suite =
  [
    Alcotest.test_case "identical runs pass" `Quick test_identical_runs_pass;
    Alcotest.test_case "wall-time regression gates" `Quick
      test_wall_time_regression_gates;
    Alcotest.test_case "time tolerance is one-sided" `Quick
      test_time_tolerance_is_one_sided;
    Alcotest.test_case "count drift gates" `Quick test_count_drift_gates;
    Alcotest.test_case "allocation regression gates" `Quick
      test_allocation_regression_gates;
    Alcotest.test_case "missing metric gates" `Quick test_missing_metric_gates;
    Alcotest.test_case "chaos runs tolerated" `Quick test_chaos_runs_tolerated;
    Alcotest.test_case "run-B-only metrics noted" `Quick test_b_only_metric_noted;
  ]
