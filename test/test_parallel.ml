(* Parallel branch-and-bound tests: the deterministic mode's
   jobs-invariance contract (same incumbent, objective, bound, node
   count and gap for any worker-domain count) on random models and on
   the paper's seed MIPs, the chaos degradation ladder under parallel
   solves, and the shared incumbent cell under a multi-domain
   hammer. *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Sampling = Monpos.Sampling
module Active = Monpos.Active
module Resilient = Monpos.Resilient
module Pop = Monpos_topo.Pop
module Model = Monpos_lp.Model
module Mip = Monpos_lp.Mip
module Prng = Monpos_util.Prng
module Chaos = Monpos_resilience.Chaos

let jobs_list = [ 1; 2; 4 ]

let opts ?(wave = 16) jobs =
  { Mip.default_options with Mip.jobs; deterministic = true; wave }

let check_float = Alcotest.(check (float 1e-12))

(* exact-equality check over full results: the contract is "identical
   for every jobs value", not "within tolerance" *)
let check_same_result what (a : Mip.result) (b : Mip.result) =
  Alcotest.(check bool) (what ^ ": status") true (a.Mip.status = b.Mip.status);
  check_float (what ^ ": objective") a.Mip.objective b.Mip.objective;
  check_float (what ^ ": bound") a.Mip.bound b.Mip.bound;
  Alcotest.(check int) (what ^ ": nodes") a.Mip.nodes b.Mip.nodes;
  check_float (what ^ ": gap") a.Mip.gap b.Mip.gap;
  match (a.Mip.solution, b.Mip.solution) with
  | None, None -> ()
  | Some xa, Some xb ->
    Alcotest.(check (array (float 1e-12))) (what ^ ": solution") xa xb
  | _ -> Alcotest.fail (what ^ ": one run has a solution, the other not")

(* random 0-1 programs in the style of the brute-force mip tests:
   enough structure to branch a few dozen times *)
let random_model rng =
  let n = 8 + Prng.int rng 4 in
  let m = Model.create Model.Minimize in
  let vars =
    List.init n (fun i ->
        let obj = 1.0 +. Prng.float rng 9.0 in
        Model.add_var m ~name:(Printf.sprintf "x%d" i) ~obj Model.Binary)
  in
  let nconstr = 4 + Prng.int rng 3 in
  for c = 0 to nconstr - 1 do
    let terms =
      List.filter_map
        (fun v ->
          if Prng.bool rng then Some (1.0 +. Prng.float rng 4.0, v) else None)
        vars
    in
    if terms <> [] then begin
      let slack = 1.0 +. Prng.float rng (float_of_int (List.length terms)) in
      Model.add_constr m ~name:(Printf.sprintf "c%d" c) terms Model.Ge slack
    end
  done;
  m

let test_random_models_jobs_invariant () =
  let rng = Prng.create 4242 in
  for trial = 1 to 8 do
    let m = random_model rng in
    let results = List.map (fun jobs -> Mip.solve ~options:(opts jobs) m) jobs_list in
    match results with
    | reference :: rest ->
      List.iteri
        (fun i r ->
          check_same_result
            (Printf.sprintf "trial %d, jobs %d" trial (List.nth jobs_list (i + 1)))
            reference r)
        rest
    | [] -> ()
  done

let test_wave_size_changes_tree_not_correctness () =
  (* the wave size may change which tree is explored, but for a fixed
     wave the result is identical across jobs, and every wave agrees
     on the optimum *)
  let rng = Prng.create 777 in
  let m = random_model rng in
  let base = Mip.solve ~options:(opts 1) m in
  List.iter
    (fun wave ->
      let a = Mip.solve ~options:(opts ~wave 1) m in
      let b = Mip.solve ~options:(opts ~wave 4) m in
      check_same_result (Printf.sprintf "wave %d" wave) a b;
      check_float (Printf.sprintf "wave %d optimum" wave) base.Mip.objective
        a.Mip.objective)
    [ 1; 4; 64 ]

(* ---------- the seed MIPs of the paper ---------- *)

let test_ppm_jobs_invariant () =
  let pop = Pop.make_preset `Pop10 ~seed:3 in
  let inst = Instance.of_pop pop ~seed:(3 * 131) in
  let runs =
    List.map
      (fun jobs -> Passive.solve_mip ~k:0.9 ~options:(opts jobs) inst)
      jobs_list
  in
  match runs with
  | r1 :: rest ->
    List.iter
      (fun (r : Passive.solution) ->
        Alcotest.(check int) "devices" r1.Passive.count r.Passive.count;
        Alcotest.(check (list int)) "monitors" r1.Passive.monitors
          r.Passive.monitors;
        check_float "coverage" r1.Passive.fraction r.Passive.fraction;
        Alcotest.(check bool) "proved" r1.Passive.optimal r.Passive.optimal)
      rest
  | [] -> ()

let test_ppme_jobs_invariant () =
  let pop = Pop.make_preset `Pop10 ~seed:1 in
  let inst = Instance.of_pop pop ~seed:131 in
  let costs = Sampling.load_scaled_costs inst ~install:8.0 () in
  let pb = Sampling.make_problem ~k:0.9 ~costs inst in
  let runs =
    List.map
      (fun jobs ->
        let options =
          { Sampling.default_milp_options with Mip.jobs; deterministic = true }
        in
        Sampling.solve_milp ~options pb)
      jobs_list
  in
  match runs with
  | r1 :: rest ->
    List.iter
      (fun (r : Sampling.solution) ->
        Alcotest.(check (list int)) "installed" r1.Sampling.installed
          r.Sampling.installed;
        check_float "install cost" r1.Sampling.install_cost
          r.Sampling.install_cost;
        check_float "exploit cost" r1.Sampling.exploit_cost
          r.Sampling.exploit_cost;
        check_float "coverage" r1.Sampling.fraction r.Sampling.fraction)
      rest
  | [] -> ()

let test_beacon_jobs_invariant () =
  let pop = Pop.make_preset `Pop15 ~seed:1 in
  let routers = Array.of_list (Pop.routers pop) in
  let rng = Prng.create 7 in
  Prng.shuffle rng routers;
  let vb = List.sort compare (Array.to_list (Array.sub routers 0 10)) in
  let probes = Active.compute_probes ~targets:vb pop.Pop.graph ~candidates:vb in
  let runs =
    List.map
      (fun jobs -> Active.place_ilp ~options:(opts jobs) probes ~candidates:vb)
      jobs_list
  in
  match runs with
  | r1 :: rest ->
    List.iter
      (fun (r : Active.placement) ->
        Alcotest.(check (list int)) "beacons" r1.Active.beacons r.Active.beacons)
      rest
  | [] -> ()

(* ---------- chaos ladder under parallel solves ---------- *)

let with_chaos seed f =
  let saved = Chaos.seed () in
  Chaos.set_seed (Some seed);
  Fun.protect ~finally:(fun () -> Chaos.set_seed saved) f

let test_chaos_ladder_jobs_invariant () =
  (* the degradation ladder must land on the same rung with the same
     answer whatever the domain count: deterministic mode pins the
     chaos draws that feed the solver (deadline compression at solve
     entry, per-node cost corruption at merge) to scheduling-
     independent points *)
  let pop = Pop.make_preset `Pop10 ~seed:2 in
  let inst = Instance.of_pop pop ~seed:(2 * 131) in
  let outcomes =
    List.map
      (fun jobs ->
        with_chaos 1305 (fun () ->
            let o = Resilient.solve_ppm ~k:1.0 ~options:(opts jobs) inst in
            (o.Resilient.rung, o.Resilient.value.Passive.monitors)))
      jobs_list
  in
  match outcomes with
  | (rung1, mon1) :: rest ->
    List.iter
      (fun (rung, mon) ->
        Alcotest.(check string) "rung" rung1 rung;
        Alcotest.(check (list int)) "monitors" mon1 mon)
      rest
  | [] -> ()

(* ---------- the shared incumbent cell ---------- *)

let test_incumbent_stress () =
  (* 8 domains race to publish pre-drawn candidates; whatever the
     interleaving, the cell must converge to the global minimum under
     the exact (score, key) order — the property the deterministic
     mode's incumbent filtering rests on *)
  let domains = 8 in
  let per_domain = 10_000 in
  let parent = Prng.create 9090 in
  let batches =
    Array.init domains (fun _ ->
        let rng = Prng.split parent in
        Array.init per_domain (fun i ->
            {
              Mip.Incumbent.score = float_of_int (Prng.int rng 500);
              key = (Prng.int rng 1000, i land 1);
              x = [| float_of_int i |];
            }))
  in
  let expected =
    Array.fold_left
      (fun acc batch ->
        Array.fold_left
          (fun acc c ->
            match acc with
            | None -> Some c
            | Some best ->
              if Mip.Incumbent.better c best then Some c else Some best)
          acc batch)
      None batches
  in
  let cell = Mip.Incumbent.create () in
  let workers =
    Array.map
      (fun batch ->
        Domain.spawn (fun () ->
            Array.iter
              (fun c -> ignore (Mip.Incumbent.publish cell c))
              batch))
      batches
  in
  Array.iter Domain.join workers;
  match (Mip.Incumbent.get cell, expected) with
  | Some got, Some want ->
    check_float "minimum score" want.Mip.Incumbent.score
      got.Mip.Incumbent.score;
    Alcotest.(check (pair int int)) "minimum key" want.Mip.Incumbent.key
      got.Mip.Incumbent.key
  | None, _ -> Alcotest.fail "cell empty after publishes"
  | _, None -> Alcotest.fail "no candidates drawn"

let suite =
  [
    Alcotest.test_case "random models jobs-invariant" `Quick
      test_random_models_jobs_invariant;
    Alcotest.test_case "wave size orthogonal to jobs" `Quick
      test_wave_size_changes_tree_not_correctness;
    Alcotest.test_case "ppm jobs-invariant" `Quick test_ppm_jobs_invariant;
    Alcotest.test_case "ppme jobs-invariant" `Quick test_ppme_jobs_invariant;
    Alcotest.test_case "beacon ilp jobs-invariant" `Quick
      test_beacon_jobs_invariant;
    Alcotest.test_case "chaos ladder jobs-invariant" `Quick
      test_chaos_ladder_jobs_invariant;
    Alcotest.test_case "incumbent cell 8-domain stress" `Quick
      test_incumbent_stress;
  ]
