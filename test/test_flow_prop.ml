(* Randomized differential harness for the min-cost-flow kernels.

   Generates small random MCF instances (mixed multi-node supplies,
   lower bounds, negative costs on DAGs, deliberately starved
   infeasible families) with the deterministic Monpos_util.Prng and
   checks, instance by instance, that

   - the successive-shortest-paths kernel, the network simplex kernel
     and the LP formulation of the same instance agree on status and
     objective within 1e-6 relative,
   - on every Optimal network simplex result the complementary
     slackness certificate holds for the exposed node potentials
     (reduced cost >= 0 on arcs at their lower bound, <= 0 on
     saturated arcs, ~ 0 strictly in between),
   - after perturbing capacities, costs and supplies in place the
     warm-started network simplex re-solve agrees with cold SSP,
     cold network simplex and the LP on the perturbed instance,
   - the raw Netsimplex warm start actually reuses the basis (flag
     set, zero pivots on an unchanged replay) and never changes
     answers.

   Negative costs are confined to DAG instances: SSP never cancels
   cycles, so on a general digraph with negative arcs it would not be
   an oracle. The base seed comes from MONPOS_PROP_SEED (default 1) so
   CI can replay the same 200 instances under several seeds. *)

module Mincost = Monpos_flow.Mincost
module Netsimplex = Monpos_flow.Netsimplex
module Model = Monpos_lp.Model
module Simplex = Monpos_lp.Simplex
module Prng = Monpos_util.Prng

let prop_seed =
  match Sys.getenv_opt "MONPOS_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 1)
  | None -> 1

let cases = 200

type inst = {
  n : int;
  arcs : (int * int * float * float * float) array;
      (* src, dst, lower, capacity, cost *)
  supply : float array;
}

(* families rotate with [case mod 5]:
   0 - general digraph, costs >= 0, one source/sink pair
   1 - DAG, mixed-sign costs, one source/sink pair
   2 - general digraph, costs >= 0, lower bounds on ~1/3 of the arcs
   3 - DAG, mixed-sign costs, lower bounds, multiple supply pairs
   4 - starved: tiny backbone capacities under a large demand, so a
       good share of instances is infeasible (all solvers must agree
       either way) *)
let random_instance rng mode =
  let n = 3 + Prng.int rng 5 in
  let dag = mode = 1 || mode = 3 in
  let with_lower = mode >= 2 in
  let cost () =
    if dag then Prng.float rng 8.0 -. 4.0 else Prng.float rng 4.0
  in
  let arcs = ref [] in
  let add u v cap =
    let lower =
      if with_lower && Prng.int rng 3 = 0 then Prng.float rng (cap *. 0.5)
      else 0.0
    in
    arcs := (u, v, lower, cap, cost ()) :: !arcs
  in
  (* backbone 0 -> 1 -> ... -> n-1 keeps most instances connected *)
  for v = 0 to n - 2 do
    let cap =
      if mode = 4 then 0.2 +. Prng.float rng 0.5 else 2.0 +. Prng.float rng 6.0
    in
    add v (v + 1) cap
  done;
  let extra = n + Prng.int rng (2 * n) in
  for _ = 1 to extra do
    if dag then begin
      let u = Prng.int rng (n - 1) in
      let v = u + 1 + Prng.int rng (n - 1 - u) in
      add u v (Prng.float rng 8.0)
    end
    else begin
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v then add u v (Prng.float rng 8.0)
    end
  done;
  let supply = Array.make n 0.0 in
  let demand () =
    if mode = 4 then 5.0 +. Prng.float rng 5.0 else 1.0 +. Prng.float rng 3.0
  in
  if mode = 3 then
    for _ = 1 to 2 do
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v then begin
        let d = demand () in
        supply.(u) <- supply.(u) +. d;
        supply.(v) <- supply.(v) -. d
      end
    done
  else begin
    let d = demand () in
    supply.(0) <- supply.(0) +. d;
    supply.(n - 1) <- supply.(n - 1) -. d
  end;
  { n; arcs = Array.of_list (List.rev !arcs); supply }

(* ------------------------------------------------------------------ *)

let build_mincost inst =
  let net = Mincost.create inst.n in
  let handles =
    Array.map
      (fun (u, v, lower, cap, cost) ->
        Mincost.add_arc net ~lower ~src:u ~dst:v ~capacity:cap ~cost)
      inst.arcs
  in
  Array.iteri
    (fun v b -> if b <> 0.0 then Mincost.set_supply net v b)
    inst.supply;
  (net, handles)

let solve_lp inst =
  let m = Model.create Model.Minimize in
  let xs =
    Array.map
      (fun (_, _, lower, cap, cost) ->
        Model.add_var m ~lb:lower ~ub:cap ~obj:cost Model.Continuous)
      inst.arcs
  in
  for v = 0 to inst.n - 1 do
    let terms = ref [] in
    Array.iteri
      (fun i (u, w, _, _, _) ->
        if u = v then terms := (1.0, xs.(i)) :: !terms;
        if w = v then terms := (-1.0, xs.(i)) :: !terms)
      inst.arcs;
    if !terms <> [] then Model.add_constr m !terms Model.Eq inst.supply.(v)
    else if inst.supply.(v) <> 0.0 then
      Model.add_constr m [] Model.Eq inst.supply.(v)
  done;
  let sol = Simplex.solve_model m in
  match sol.Simplex.status with
  | Simplex.Optimal -> (Mincost.Optimal, sol.Simplex.objective)
  | Simplex.Infeasible -> (Mincost.Infeasible, nan)
  | st ->
    Alcotest.failf "LP oracle returned %s"
      (match st with
      | Simplex.Unbounded -> "unbounded"
      | Simplex.Iteration_limit -> "iteration_limit"
      | Simplex.Deadline_reached -> "deadline_reached"
      | _ -> "?")

let status_name = function
  | Mincost.Optimal -> "optimal"
  | Mincost.Infeasible -> "infeasible"

let check_three_way ~case ~what (st_ssp, c_ssp) (st_ns, c_ns) (st_lp, c_lp) =
  if st_ssp <> st_ns || st_ssp <> st_lp then
    Alcotest.failf "case %d (%s): status ssp=%s netsimplex=%s lp=%s" case what
      (status_name st_ssp) (status_name st_ns) (status_name st_lp);
  if st_ssp = Mincost.Optimal then begin
    let scale = 1.0 +. abs_float c_lp in
    if abs_float (c_ssp -. c_lp) > 1e-6 *. scale then
      Alcotest.failf "case %d (%s): objective ssp=%.9f lp=%.9f" case what c_ssp
        c_lp;
    if abs_float (c_ns -. c_lp) > 1e-6 *. scale then
      Alcotest.failf "case %d (%s): objective netsimplex=%.9f lp=%.9f" case
        what c_ns c_lp
  end

(* complementary slackness of the exposed potentials on the user arcs *)
let check_certificate ~case ~what inst net handles =
  match Mincost.potentials net with
  | None -> Alcotest.failf "case %d (%s): no potentials after Optimal" case what
  | Some pi ->
    let maxc =
      Array.fold_left
        (fun acc (_, _, _, _, c) -> max acc (abs_float c))
        0.0 inst.arcs
    in
    let ctol = 1e-6 *. (1.0 +. maxc) in
    let ftol = 1e-6 in
    Array.iteri
      (fun i (u, v, lower, cap, cost) ->
        let f = Mincost.flow net handles.(i) in
        let rc = cost +. pi.(u) -. pi.(v) in
        let at_lo = f <= lower +. ftol in
        let at_cap = f >= cap -. ftol in
        if at_lo && at_cap then () (* fixed arc: any reduced cost is fine *)
        else if at_lo then begin
          if rc < -.ctol then
            Alcotest.failf
              "case %d (%s): arc %d at lower bound with reduced cost %.9f"
              case what i rc
        end
        else if at_cap then begin
          if rc > ctol then
            Alcotest.failf
              "case %d (%s): arc %d saturated with reduced cost %.9f" case
              what i rc
        end
        else if abs_float rc > ctol then
          Alcotest.failf
            "case %d (%s): arc %d interior with reduced cost %.9f" case what i
            rc)
      inst.arcs

(* in-place perturbation: drift-tick shaped (bounds, costs and
   supplies all move, network shape fixed) *)
let perturb rng inst =
  let arcs =
    Array.map
      (fun (u, v, lower, cap, cost) ->
        let f = 0.8 +. Prng.float rng 0.5 in
        let cap' = lower +. ((cap -. lower) *. f) in
        let cost' = cost +. (Prng.float rng 0.4 -. 0.2) in
        (u, v, lower, cap', cost'))
      inst.arcs
  in
  let g = 0.7 +. Prng.float rng 0.6 in
  let supply = Array.map (fun b -> b *. g) inst.supply in
  { inst with arcs; supply }

let test_differential () =
  let optimal = ref 0 in
  let infeasible = ref 0 in
  let negative_cost = ref 0 in
  let lower_bounded = ref 0 in
  let warm_resolves = ref 0 in
  for case = 0 to cases - 1 do
    let rng = Prng.create ((prop_seed * 2_000_003) + case) in
    let inst = random_instance rng (case mod 5) in
    if Array.exists (fun (_, _, _, _, c) -> c < 0.0) inst.arcs then
      incr negative_cost;
    if Array.exists (fun (_, _, l, _, _) -> l > 0.0) inst.arcs then
      incr lower_bounded;
    let net_ssp, _ = build_mincost inst in
    let net_ns, handles = build_mincost inst in
    let st_ssp = Mincost.solve ~algo:Mincost.Ssp net_ssp in
    let st_ns = Mincost.solve ~algo:Mincost.Net_simplex net_ns in
    let lp = solve_lp inst in
    check_three_way ~case ~what:"cold"
      (st_ssp, Mincost.total_cost net_ssp)
      (st_ns, Mincost.total_cost net_ns)
      lp;
    (match st_ns with
    | Mincost.Optimal ->
      incr optimal;
      check_certificate ~case ~what:"cold" inst net_ns handles
    | Mincost.Infeasible -> incr infeasible);
    (* perturb the same network in place; the netsimplex instance
       keeps its basis, so this re-solve exercises the warm path *)
    let inst' = perturb rng inst in
    Array.iteri
      (fun i (_, _, lower, cap, cost) ->
        Mincost.update_arc ~lower ~capacity:cap ~cost net_ns handles.(i);
        Mincost.update_arc ~lower ~capacity:cap ~cost net_ssp handles.(i))
      inst'.arcs;
    Array.iteri
      (fun v b ->
        if b <> 0.0 || inst.supply.(v) <> 0.0 then begin
          Mincost.set_supply net_ns v b;
          Mincost.set_supply net_ssp v b
        end)
      inst'.supply;
    let st_ssp' = Mincost.solve ~algo:Mincost.Ssp net_ssp in
    let st_warm = Mincost.solve ~algo:Mincost.Net_simplex net_ns in
    let lp' = solve_lp inst' in
    incr warm_resolves;
    check_three_way ~case ~what:"perturbed"
      (st_ssp', Mincost.total_cost net_ssp)
      (st_warm, Mincost.total_cost net_ns)
      lp';
    if st_warm = Mincost.Optimal then
      check_certificate ~case ~what:"perturbed" inst' net_ns handles
  done;
  (* the harness must actually exercise the machinery it tests *)
  Alcotest.(check bool)
    (Printf.sprintf "enough optimal instances (%d)" !optimal)
    true
    (!optimal > cases / 4);
  Alcotest.(check bool)
    (Printf.sprintf "enough infeasible instances (%d)" !infeasible)
    true
    (!infeasible > cases / 20);
  Alcotest.(check bool)
    (Printf.sprintf "enough negative-cost instances (%d)" !negative_cost)
    true
    (!negative_cost > cases / 8);
  Alcotest.(check bool)
    (Printf.sprintf "enough lower-bounded instances (%d)" !lower_bounded)
    true
    (!lower_bounded > cases / 8);
  Alcotest.(check bool)
    (Printf.sprintf "warm re-solves ran (%d)" !warm_resolves)
    true
    (!warm_resolves = cases)

(* The raw kernel warm start: an unchanged replay must reuse the basis
   and pivot zero times; perturbed re-solves must keep agreeing with a
   cold solve of the same data. *)
let test_netsimplex_warm_basis () =
  let warm_hits = ref 0 in
  for case = 0 to 49 do
    let rng = Prng.create ((prop_seed * 4_111_141) + case) in
    let inst = random_instance rng (case mod 4) in
    let build () =
      let ns = Netsimplex.create inst.n in
      Array.iter
        (fun (u, v, lower, cap, cost) ->
          ignore
            (Netsimplex.add_arc ns ~lower ~src:u ~dst:v ~capacity:cap ~cost))
        inst.arcs;
      Array.iteri (fun v b -> Netsimplex.set_supply ns v b) inst.supply;
      ns
    in
    let ns = build () in
    let st = Netsimplex.solve ns in
    Alcotest.(check bool)
      (Printf.sprintf "case %d: first solve is cold" case)
      false
      (Netsimplex.warm_started ns);
    (* unchanged replay: warm, and already optimal *)
    let st2 = Netsimplex.solve ns in
    Alcotest.(check bool)
      (Printf.sprintf "case %d: replay status agrees" case)
      true (st = st2);
    if Netsimplex.warm_started ns then begin
      incr warm_hits;
      Alcotest.(check int)
        (Printf.sprintf "case %d: warm replay needs no pivots" case)
        0 (Netsimplex.pivots ns)
    end;
    if st = Netsimplex.Optimal then begin
      (* perturb costs only: the old basis stays primal feasible, so
         the warm start must survive and agree with a cold solve of
         the same perturbed data *)
      let new_costs =
        Array.map
          (fun (_, _, _, _, cost) -> cost +. (Prng.float rng 1.0 -. 0.5))
          inst.arcs
      in
      Array.iteri (fun i c -> Netsimplex.set_arc ns i ~cost:c) new_costs;
      let st_warm = Netsimplex.solve ns in
      let cold = build () in
      Array.iteri (fun i c -> Netsimplex.set_arc cold i ~cost:c) new_costs;
      let st_cold = Netsimplex.solve ~warm:false cold in
      Alcotest.(check bool)
        (Printf.sprintf "case %d: warm vs cold status after cost drift" case)
        true (st_warm = st_cold);
      if st_cold = Netsimplex.Optimal then begin
        let scale = 1.0 +. abs_float (Netsimplex.objective cold) in
        Alcotest.(check bool)
          (Printf.sprintf "case %d: warm vs cold objective after cost drift"
             case)
          true
          (abs_float (Netsimplex.objective ns -. Netsimplex.objective cold)
          <= 1e-6 *. scale)
      end
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "warm starts actually happened (%d)" !warm_hits)
    true (!warm_hits > 25)

let suite =
  [
    Alcotest.test_case
      (Printf.sprintf "ssp vs netsimplex vs lp differential (seed %d)"
         prop_seed)
      `Quick test_differential;
    Alcotest.test_case
      (Printf.sprintf "netsimplex warm basis reuse (seed %d)" prop_seed)
      `Quick test_netsimplex_warm_basis;
  ]
