(* Simplex solver tests: textbook LPs with known optima, boundary
   statuses, duals, and randomized feasibility/optimality properties. *)

module Model = Monpos_lp.Model
module Simplex = Monpos_lp.Simplex

let check_float = Alcotest.(check (float 1e-6))

let status_name = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iteration_limit"
  | Simplex.Deadline_reached -> "deadline_reached"

let check_status expected got =
  Alcotest.(check string) "status" (status_name expected) (status_name got)

(* max 3x + 5y st x <= 4; 2y <= 12; 3x + 2y <= 18 -> 36 at (2, 6) *)
let test_textbook_max () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:3.0 Model.Continuous in
  let y = Model.add_var m ~obj:5.0 Model.Continuous in
  Model.add_constr m [ (1.0, x) ] Model.Le 4.0;
  Model.add_constr m [ (2.0, y) ] Model.Le 12.0;
  Model.add_constr m [ (3.0, x); (2.0, y) ] Model.Le 18.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" 36.0 sol.objective;
  check_float "x" 2.0 sol.primal.(Model.var_index x);
  check_float "y" 6.0 sol.primal.(Model.var_index y)

(* min 2x + 3y st x + y >= 10 -> 20 at (10, 0) *)
let test_textbook_min () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:2.0 Model.Continuous in
  let y = Model.add_var m ~obj:3.0 Model.Continuous in
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Ge 10.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" 20.0 sol.objective;
  check_float "x" 10.0 sol.primal.(Model.var_index x)

let test_equality () =
  (* min x + y st x + 2y = 6; x - y = 0 -> x = y = 2, obj 4 *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 Model.Continuous in
  let y = Model.add_var m ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, x); (2.0, y) ] Model.Eq 6.0;
  Model.add_constr m [ (1.0, x); (-1.0, y) ] Model.Eq 0.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" 4.0 sol.objective;
  check_float "x" 2.0 sol.primal.(0);
  check_float "y" 2.0 sol.primal.(1)

let test_infeasible () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, x) ] Model.Ge 5.0;
  Model.add_constr m [ (1.0, x) ] Model.Le 3.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Infeasible sol.status

let test_unbounded () =
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (-1.0, x) ] Model.Le 0.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Unbounded sol.status

let test_bounded_vars () =
  (* max x + y, x in [0,2], y in [0,3], x + y <= 4 -> 4 *)
  let m = Model.create Model.Maximize in
  let x = Model.add_var m ~ub:2.0 ~obj:1.0 Model.Continuous in
  let y = Model.add_var m ~ub:3.0 ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Le 4.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" 4.0 sol.objective

let test_negative_lower_bounds () =
  (* min x with x in [-5, 5] and x + y >= -2, y in [0, 1] -> x = -3 *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:(-5.0) ~ub:5.0 ~obj:1.0 Model.Continuous in
  let y = Model.add_var m ~ub:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Ge (-2.0);
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" (-3.0) sol.objective

let test_free_variable () =
  (* min y st y >= x - 4, y >= -x + 2, x free -> y = -1 at x = 3 *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:neg_infinity ~ub:infinity Model.Continuous in
  let y = Model.add_var m ~lb:neg_infinity ~ub:infinity ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, y); (-1.0, x) ] Model.Ge (-4.0);
  Model.add_constr m [ (1.0, y); (1.0, x) ] Model.Ge 2.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" (-1.0) sol.objective

let test_fixed_variable () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 Model.Continuous in
  let y = Model.add_var m ~obj:1.0 Model.Continuous in
  Model.fix m x 3.0;
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Ge 5.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" 5.0 sol.objective;
  check_float "x" 3.0 sol.primal.(0);
  check_float "y" 2.0 sol.primal.(1)

let test_degenerate () =
  (* Klee-Minty-flavoured degenerate corner; checks anti-cycling. *)
  let m = Model.create Model.Maximize in
  let x1 = Model.add_var m ~obj:100.0 Model.Continuous in
  let x2 = Model.add_var m ~obj:10.0 Model.Continuous in
  let x3 = Model.add_var m ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, x1) ] Model.Le 1.0;
  Model.add_constr m [ (20.0, x1); (1.0, x2) ] Model.Le 100.0;
  Model.add_constr m [ (200.0, x1); (20.0, x2); (1.0, x3) ] Model.Le 10000.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" 10000.0 sol.objective

let test_duals_weak_duality () =
  (* min c.x st Ax >= b, x >= 0: any dual y >= 0 gives y.b <= c.x. At
     the optimum, strong duality holds. *)
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:12.0 Model.Continuous in
  let y = Model.add_var m ~obj:16.0 Model.Continuous in
  Model.add_constr m [ (1.0, x); (2.0, y) ] Model.Ge 40.0;
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Ge 30.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  let dual_obj = (sol.duals.(0) *. 40.0) +. (sol.duals.(1) *. 30.0) in
  check_float "strong duality" sol.objective dual_obj;
  Alcotest.(check bool) "dual signs" true (sol.duals.(0) >= -1e-9 && sol.duals.(1) >= -1e-9)

let test_zero_constraints () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~lb:2.0 ~ub:7.0 ~obj:3.0 Model.Continuous in
  ignore x;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" 6.0 sol.objective

let test_redundant_rows () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 Model.Continuous in
  for _ = 1 to 5 do
    Model.add_constr m [ (1.0, x) ] Model.Ge 2.0
  done;
  Model.add_constr m [ (2.0, x) ] Model.Ge 4.0;
  let sol = Simplex.solve_model m in
  check_status Simplex.Optimal sol.status;
  check_float "obj" 2.0 sol.objective

(* Randomized: continuous knapsack-style LPs where a greedy solution is
   provably optimal; the simplex must match it. *)
let prop_fractional_knapsack =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 1 12 in
      let* values = list_repeat n (int_range 1 50) in
      let* weights = list_repeat n (int_range 1 20) in
      let* cap = int_range 5 80 in
      return (values, weights, cap))
  in
  QCheck2.Test.make ~name:"simplex matches greedy on fractional knapsack"
    ~count:200 gen (fun (values, weights, cap) ->
      let n = List.length values in
      let values = Array.of_list (List.map float_of_int values) in
      let weights = Array.of_list (List.map float_of_int weights) in
      let cap = float_of_int cap in
      (* greedy by density *)
      let order = Array.init n (fun i -> i) in
      Array.sort
        (fun a b ->
          compare (values.(b) /. weights.(b)) (values.(a) /. weights.(a)))
        order;
      let remaining = ref cap and greedy = ref 0.0 in
      Array.iter
        (fun i ->
          let take = min 1.0 (!remaining /. weights.(i)) in
          if take > 0.0 then begin
            greedy := !greedy +. (take *. values.(i));
            remaining := !remaining -. (take *. weights.(i))
          end)
        order;
      let m = Model.create Model.Maximize in
      let xs =
        Array.init n (fun i ->
            Model.add_var m ~ub:1.0 ~obj:values.(i) Model.Continuous)
      in
      Model.add_constr m
        (List.init n (fun i -> (weights.(i), xs.(i))))
        Model.Le cap;
      let sol = Simplex.solve_model m in
      sol.status = Simplex.Optimal && abs_float (sol.objective -. !greedy) < 1e-6)

(* Randomized: optimal solutions are feasible and no sampled feasible
   point beats them. *)
let prop_optimal_dominates_samples =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"simplex optimum dominates random feasible points"
    ~count:120 gen (fun seed ->
      let rng = Monpos_util.Prng.create seed in
      let n = 2 + Monpos_util.Prng.int rng 4 in
      let rows = 1 + Monpos_util.Prng.int rng 5 in
      let m = Model.create Model.Maximize in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~ub:(1.0 +. Monpos_util.Prng.float rng 9.0)
              ~obj:(Monpos_util.Prng.float rng 10.0)
              Model.Continuous)
      in
      let coef = Array.make_matrix rows n 0.0 in
      for r = 0 to rows - 1 do
        let terms = ref [] in
        for i = 0 to n - 1 do
          let c = Monpos_util.Prng.float rng 5.0 in
          coef.(r).(i) <- c;
          terms := (c, xs.(i)) :: !terms
        done;
        Model.add_constr m !terms Model.Le (5.0 +. Monpos_util.Prng.float rng 20.0)
      done;
      let sol = Simplex.solve_model m in
      if sol.status <> Simplex.Optimal then false
      else begin
        if not (Model.value_feasible m sol.primal) then false
        else begin
          (* rejection-sample feasible points; none may beat optimum *)
          let ok = ref true in
          for _ = 1 to 200 do
            let pt =
              Array.init n (fun i ->
                  Monpos_util.Prng.float rng
                    (max 1e-9 (Model.var_ub m (Model.var_of_index m i))))
            in
            let feasible = Model.value_feasible m pt in
            if feasible then begin
              let v = Model.objective_value m pt in
              if v > sol.objective +. 1e-6 then ok := false
            end
          done;
          !ok
        end
      end)

let test_model_rejects_bad_data () =
  let m = Model.create Model.Minimize in
  Alcotest.check_raises "nan objective"
    (Invalid_argument "Model: NaN objective coefficient") (fun () ->
      ignore (Model.add_var m ~obj:Float.nan Model.Continuous));
  Alcotest.check_raises "infinite objective"
    (Invalid_argument "Model: infinite objective coefficient") (fun () ->
      ignore (Model.add_var m ~obj:infinity Model.Continuous));
  let x = Model.add_var m ~obj:1.0 Model.Continuous in
  Alcotest.check_raises "nan rhs" (Invalid_argument "Model: NaN right-hand side")
    (fun () -> Model.add_constr m [ (1.0, x) ] Model.Le Float.nan);
  Alcotest.check_raises "nan coefficient"
    (Invalid_argument "Model: NaN constraint coefficient") (fun () ->
      Model.add_constr m [ (Float.nan, x) ] Model.Le 1.0);
  Alcotest.check_raises "infinite coefficient"
    (Invalid_argument "Model: infinite constraint coefficient") (fun () ->
      Model.add_constr m [ (infinity, x) ] Model.Le 1.0);
  (* infinite bounds remain legal *)
  ignore (Model.add_var m ~lb:neg_infinity ~ub:infinity Model.Continuous)

let test_duplicate_terms_merged () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, x); (2.0, x); (-3.0, x); (1.0, x) ] Model.Ge 2.0;
  Alcotest.(check (list (pair (float 1e-12) int))) "merged to 1x"
    [ (1.0, Model.var_index x) ]
    (Model.constr_terms m 0)

(* Internal consistency of the simplex certificates: with reduced
   costs d = c - y A (minimization form), the identity
   c.x = y.b - y.s + d.x holds (s = row slacks), and complementary
   slackness links nonzero multipliers to tight rows and nonzero
   reduced costs to variables at their bounds. *)
let prop_duality_certificates =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"simplex certificates: duality identity + slackness"
    ~count:80 gen (fun seed ->
      let rng = Monpos_util.Prng.create seed in
      let n = 2 + Monpos_util.Prng.int rng 4 in
      let rows = 1 + Monpos_util.Prng.int rng 4 in
      let m = Model.create Model.Minimize in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~ub:(1.0 +. Monpos_util.Prng.float rng 9.0)
              ~obj:(Monpos_util.Prng.float rng 10.0 -. 3.0)
              Model.Continuous)
      in
      let coefs = Array.make_matrix rows n 0.0 in
      let rhs = Array.make rows 0.0 in
      let senses = Array.make rows Model.Le in
      for r = 0 to rows - 1 do
        let terms = ref [] in
        for i = 0 to n - 1 do
          let c = Monpos_util.Prng.float rng 4.0 in
          coefs.(r).(i) <- c;
          terms := (c, xs.(i)) :: !terms
        done;
        rhs.(r) <- 2.0 +. Monpos_util.Prng.float rng 15.0;
        senses.(r) <- (if Monpos_util.Prng.bool rng then Model.Le else Model.Ge);
        (* keep Ge rows satisfiable: x=ub gives max lhs *)
        if senses.(r) = Model.Ge then begin
          let max_lhs = ref 0.0 in
          for i = 0 to n - 1 do
            max_lhs := !max_lhs +. (coefs.(r).(i) *. Model.var_ub m xs.(i))
          done;
          rhs.(r) <- min rhs.(r) (0.8 *. !max_lhs)
        end;
        Model.add_constr m !terms senses.(r) rhs.(r)
      done;
      let sol = Simplex.solve_model m in
      match sol.Simplex.status with
      | Simplex.Infeasible -> true (* nothing to certify *)
      | Simplex.Unbounded | Simplex.Iteration_limit
      | Simplex.Deadline_reached ->
        false
      | Simplex.Optimal ->
        let x = sol.Simplex.primal in
        let y = sol.Simplex.duals in
        let d = sol.Simplex.reduced_costs in
        (* row activities and slacks *)
        let ok = ref true in
        let ys_dot_slack = ref 0.0 in
        for r = 0 to rows - 1 do
          let lhs = ref 0.0 in
          for i = 0 to n - 1 do
            lhs := !lhs +. (coefs.(r).(i) *. x.(i))
          done;
          let slack = rhs.(r) -. !lhs in
          ys_dot_slack := !ys_dot_slack +. (y.(r) *. slack);
          (* complementary slackness: nonzero dual => tight row *)
          if abs_float y.(r) > 1e-6 && abs_float slack > 1e-5 then ok := false
        done;
        (* nonzero reduced cost => variable at a bound *)
        for i = 0 to n - 1 do
          if abs_float d.(i) > 1e-6 then begin
            let lb = Model.var_lb m xs.(i) and ub = Model.var_ub m xs.(i) in
            if abs_float (x.(i) -. lb) > 1e-5 && abs_float (x.(i) -. ub) > 1e-5
            then ok := false
          end
        done;
        (* duality identity: c.x = y.b - y.s + d.x *)
        let cx = Model.objective_value m x in
        let yb = ref 0.0 in
        for r = 0 to rows - 1 do
          yb := !yb +. (y.(r) *. rhs.(r))
        done;
        let dx = ref 0.0 in
        for i = 0 to n - 1 do
          dx := !dx +. (d.(i) *. x.(i))
        done;
        !ok
        && abs_float (cx -. (!yb -. !ys_dot_slack +. !dx))
           < 1e-5 *. (1.0 +. abs_float cx))

(* Full certificate check in the model's own direction, for Minimize
   and Maximize alike. With y the reported row duals, d the reported
   reduced costs (minimization form, per the interface) and sgn = +1
   for Minimize / -1 for Maximize:

   - recomputing d from scratch as c_min - y_min A (with c_min, y_min
     the minimization-form cost vector and multipliers) must
     reproduce [reduced_costs];
   - complementary slackness: |y_r| > 0 forces row r tight, |d_j| > 0
     forces x_j onto a bound;
   - the dual objective y_min.b + sum_j d_j * (bound x_j sits on)
     equals the minimization-form optimum — i.e. duals and reduced
     costs certify the objective, weak duality holding with equality
     at the optimum. *)
let prop_certificates_both_directions =
  let gen =
    QCheck2.Gen.(pair bool (int_range 0 1_000_000))
  in
  QCheck2.Test.make
    ~name:"duality certificates hold for Minimize and Maximize" ~count:120 gen
    (fun (maximize, seed) ->
      let rng = Monpos_util.Prng.create seed in
      let n = 2 + Monpos_util.Prng.int rng 4 in
      let rows = 1 + Monpos_util.Prng.int rng 4 in
      let m =
        Model.create (if maximize then Model.Maximize else Model.Minimize)
      in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~ub:(1.0 +. Monpos_util.Prng.float rng 9.0)
              ~obj:(Monpos_util.Prng.float rng 10.0 -. 4.0)
              Model.Continuous)
      in
      let coefs = Array.make_matrix rows n 0.0 in
      let rhs = Array.make rows 0.0 in
      let senses = Array.make rows Model.Le in
      for r = 0 to rows - 1 do
        let terms = ref [] in
        for i = 0 to n - 1 do
          let c = Monpos_util.Prng.float rng 4.0 in
          coefs.(r).(i) <- c;
          terms := (c, xs.(i)) :: !terms
        done;
        rhs.(r) <- 2.0 +. Monpos_util.Prng.float rng 15.0;
        senses.(r) <- (if Monpos_util.Prng.bool rng then Model.Le else Model.Ge);
        if senses.(r) = Model.Ge then begin
          (* keep Ge rows satisfiable: x = ub maximizes the lhs *)
          let max_lhs = ref 0.0 in
          for i = 0 to n - 1 do
            max_lhs := !max_lhs +. (coefs.(r).(i) *. Model.var_ub m xs.(i))
          done;
          rhs.(r) <- min rhs.(r) (0.8 *. !max_lhs)
        end;
        Model.add_constr m !terms senses.(r) rhs.(r)
      done;
      let sol = Simplex.solve_model m in
      match sol.Simplex.status with
      | Simplex.Infeasible -> true (* nothing to certify *)
      | Simplex.Unbounded | Simplex.Iteration_limit
      | Simplex.Deadline_reached ->
        false (* impossible: boxed variables, satisfiable Ge rows *)
      | Simplex.Optimal ->
        let sgn = if maximize then -1.0 else 1.0 in
        let x = sol.Simplex.primal in
        let d = sol.Simplex.reduced_costs in
        (* minimization-form multipliers and costs *)
        let y_min = Array.map (fun y -> sgn *. y) sol.Simplex.duals in
        let ok = ref true in
        (* 1. reduced costs recompute from the multipliers *)
        for j = 0 to n - 1 do
          let c_min = sgn *. Model.var_obj m xs.(j) in
          let d_hat = ref c_min in
          for r = 0 to rows - 1 do
            d_hat := !d_hat -. (y_min.(r) *. coefs.(r).(j))
          done;
          if abs_float (!d_hat -. d.(j)) > 1e-5 *. (1.0 +. abs_float !d_hat)
          then ok := false
        done;
        (* 2. complementary slackness + multiplier signs (min form:
           y <= 0 on Le rows, y >= 0 on Ge rows) *)
        for r = 0 to rows - 1 do
          let lhs = ref 0.0 in
          for j = 0 to n - 1 do
            lhs := !lhs +. (coefs.(r).(j) *. x.(j))
          done;
          let slack = rhs.(r) -. !lhs in
          if abs_float y_min.(r) > 1e-6 && abs_float slack > 1e-5 then
            ok := false;
          (match senses.(r) with
          | Model.Le -> if y_min.(r) > 1e-6 then ok := false
          | Model.Ge -> if y_min.(r) < -1e-6 then ok := false
          | Model.Eq -> ())
        done;
        (* 3. the certificate prices the optimum: dual objective =
           y_min.b + d . (active bounds) = minimization optimum *)
        let obj_min = sgn *. sol.Simplex.objective in
        let dual_obj = ref 0.0 in
        for r = 0 to rows - 1 do
          dual_obj := !dual_obj +. (y_min.(r) *. rhs.(r))
        done;
        for j = 0 to n - 1 do
          if d.(j) > 1e-6 then
            dual_obj := !dual_obj +. (d.(j) *. Model.var_lb m xs.(j))
          else if d.(j) < -1e-6 then
            dual_obj := !dual_obj +. (d.(j) *. Model.var_ub m xs.(j))
        done;
        !ok && abs_float (!dual_obj -. obj_min) < 1e-5 *. (1.0 +. abs_float obj_min))

let test_lp_format_export () =
  let m = Model.create ~name:"demo" Model.Minimize in
  let x = Model.add_var m ~name:"x" ~obj:2.0 Model.Binary in
  let y = Model.add_var m ~name:"y!" ~lb:1.0 ~obj:(-1.5) Model.Integer in
  let z = Model.add_var m ~name:"3z" ~lb:neg_infinity ~ub:infinity Model.Continuous in
  Model.add_constr m ~name:"c one" [ (1.0, x); (2.0, y); (-1.0, z) ] Model.Le 4.0;
  Model.add_constr m [ (1.0, y) ] Model.Ge 1.0;
  let text = Monpos_lp.Lp_io.to_string m in
  let has affix = Astring.String.is_infix ~affix text in
  Alcotest.(check bool) "minimize" true (has "Minimize");
  Alcotest.(check bool) "subject to" true (has "Subject To");
  Alcotest.(check bool) "binaries" true (has "Binaries");
  Alcotest.(check bool) "generals" true (has "Generals");
  Alcotest.(check bool) "end" true (has "End");
  Alcotest.(check bool) "sanitized y" true (has "y_");
  Alcotest.(check bool) "digit prefixed" true (has "v_3z");
  Alcotest.(check bool) "free variable" true (has "free");
  Alcotest.(check bool) "le row" true (has "<= 4");
  Alcotest.(check bool) "constraint name sanitized" true (has "c_one:")

module Presolve = Monpos_lp.Presolve

let test_presolve_singleton_rows () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 Model.Continuous in
  let y = Model.add_var m ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (2.0, x) ] Model.Ge 6.0;
  Model.add_constr m [ (1.0, y) ] Model.Le 4.0;
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Ge 5.0;
  let reduced, info = Presolve.reduce m in
  Alcotest.(check bool) "feasible" false info.Presolve.infeasible;
  Alcotest.(check int) "two singleton rows dropped" 2 info.Presolve.rows_dropped;
  Alcotest.(check (float 1e-9)) "x lb tightened" 3.0
    (Model.var_lb reduced (Model.var_of_index reduced 0));
  Alcotest.(check (float 1e-9)) "y ub tightened" 4.0
    (Model.var_ub reduced (Model.var_of_index reduced 1));
  (* same optimum *)
  let a = Simplex.solve_model m and b = Simplex.solve_model reduced in
  Alcotest.(check (float 1e-6)) "same optimum" a.Simplex.objective
    b.Simplex.objective

let test_presolve_detects_infeasible () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~ub:2.0 ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1.0, x) ] Model.Ge 5.0;
  let _, info = Presolve.reduce m in
  Alcotest.(check bool) "infeasible" true info.Presolve.infeasible

let test_presolve_drops_redundant_rows () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~ub:1.0 ~obj:1.0 Model.Continuous in
  let y = Model.add_var m ~ub:1.0 ~obj:1.0 Model.Continuous in
  (* x + y <= 5 can never bind with ub 1 each *)
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Le 5.0;
  Model.add_constr m [ (1.0, x); (1.0, y) ] Model.Ge 1.0;
  let reduced, info = Presolve.reduce m in
  Alcotest.(check bool) "dropped the slack row" true (info.Presolve.rows_dropped >= 1);
  Alcotest.(check int) "kept the binding row" 1 (Model.num_constrs reduced)

let test_presolve_integer_rounding () =
  let m = Model.create Model.Minimize in
  let x = Model.add_var m ~obj:1.0 ~ub:10.0 Model.Integer in
  Model.add_constr m [ (2.0, x) ] Model.Ge 5.0;
  let reduced, _ = Presolve.reduce m in
  (* 2x >= 5 -> x >= 2.5 -> x >= 3 for integers *)
  Alcotest.(check (float 1e-9)) "integer lb rounds up" 3.0
    (Model.var_lb reduced (Model.var_of_index reduced 0))

let prop_presolve_preserves_optimum =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"presolve preserves the LP optimum" ~count:120 gen
    (fun seed ->
      let rng = Monpos_util.Prng.create seed in
      let n = 2 + Monpos_util.Prng.int rng 5 in
      let rows = 1 + Monpos_util.Prng.int rng 6 in
      let m = Model.create Model.Minimize in
      let xs =
        Array.init n (fun _ ->
            Model.add_var m
              ~ub:(1.0 +. Monpos_util.Prng.float rng 9.0)
              ~obj:(Monpos_util.Prng.float rng 10.0 -. 2.0)
              Model.Continuous)
      in
      for _ = 1 to rows do
        let nterms = 1 + Monpos_util.Prng.int rng n in
        let terms =
          List.init nterms (fun _ ->
              ( Monpos_util.Prng.float rng 6.0 -. 1.0,
                xs.(Monpos_util.Prng.int rng n) ))
        in
        let sense = if Monpos_util.Prng.bool rng then Model.Le else Model.Ge in
        Model.add_constr m terms sense (Monpos_util.Prng.float rng 12.0 -. 2.0)
      done;
      let reduced, info = Presolve.reduce m in
      let a = Simplex.solve_model m in
      if info.Presolve.infeasible then a.Simplex.status = Simplex.Infeasible
      else begin
        let b = Simplex.solve_model reduced in
        match (a.Simplex.status, b.Simplex.status) with
        | Simplex.Infeasible, Simplex.Infeasible -> true
        | Simplex.Unbounded, Simplex.Unbounded -> true
        | Simplex.Optimal, Simplex.Optimal ->
          abs_float (a.Simplex.objective -. b.Simplex.objective)
          < 1e-6 *. (1.0 +. abs_float a.Simplex.objective)
        | _ -> false
      end)

let suite =
  [
    Alcotest.test_case "textbook max" `Quick test_textbook_max;
    Alcotest.test_case "textbook min" `Quick test_textbook_min;
    Alcotest.test_case "equality rows" `Quick test_equality;
    Alcotest.test_case "infeasible" `Quick test_infeasible;
    Alcotest.test_case "unbounded" `Quick test_unbounded;
    Alcotest.test_case "bounded vars" `Quick test_bounded_vars;
    Alcotest.test_case "negative lower bounds" `Quick test_negative_lower_bounds;
    Alcotest.test_case "free variable" `Quick test_free_variable;
    Alcotest.test_case "fixed variable" `Quick test_fixed_variable;
    Alcotest.test_case "degenerate corner" `Quick test_degenerate;
    Alcotest.test_case "strong duality" `Quick test_duals_weak_duality;
    Alcotest.test_case "no constraints" `Quick test_zero_constraints;
    Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
    Alcotest.test_case "model validation" `Quick test_model_rejects_bad_data;
    Alcotest.test_case "duplicate terms merged" `Quick test_duplicate_terms_merged;
    Alcotest.test_case "lp format export" `Quick test_lp_format_export;
    Alcotest.test_case "presolve singleton rows" `Quick test_presolve_singleton_rows;
    Alcotest.test_case "presolve infeasible" `Quick test_presolve_detects_infeasible;
    Alcotest.test_case "presolve redundant rows" `Quick test_presolve_drops_redundant_rows;
    Alcotest.test_case "presolve integer rounding" `Quick test_presolve_integer_rounding;
    QCheck_alcotest.to_alcotest prop_presolve_preserves_optimum;
    QCheck_alcotest.to_alcotest prop_fractional_knapsack;
    QCheck_alcotest.to_alcotest prop_duality_certificates;
    QCheck_alcotest.to_alcotest prop_certificates_both_directions;
    QCheck_alcotest.to_alcotest prop_optimal_dominates_samples;
  ]
