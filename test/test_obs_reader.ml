(* Read side of the observability layer: JSON parser round-trips, the
   typed trace reader's tolerance contract, profile / convergence
   reconstruction, histogram percentile estimation, the buffered file
   sink, the bench regression gate — and an end-to-end check that
   analyzing a real solver trace reproduces the solver's own
   accounting exactly. *)

module Metrics = Monpos_obs.Metrics
module Trace = Monpos_obs.Trace
module Span = Monpos_obs.Span
module Json = Monpos_obs.Json
module Reader = Monpos_obs.Trace_reader
module Profile = Monpos_obs.Profile
module Converge = Monpos_obs.Converge
module Bench_check = Monpos_obs.Bench_check
module Stats = Monpos_util.Stats
module Pop = Monpos_topo.Pop
module Instance = Monpos.Instance
module Passive = Monpos.Passive

let json : Json.t Alcotest.testable =
  Alcotest.testable (fun ppf v -> Format.pp_print_string ppf (Json.to_string v)) ( = )

let check_float = Alcotest.(check (float 1e-9))

(* exact: reconstructed sums must be the very same float additions *)
let check_exact = Alcotest.(check (float 0.0))

(* ------------------------------------------------------------------ *)
(* json parser *)

let roundtrip name v =
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.check json name v v'
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_json_roundtrip () =
  roundtrip "escapes"
    (Json.String "quote \" backslash \\ newline \n tab \t ctrl \000\001\031");
  roundtrip "unicode passthrough" (Json.String "héllo 日本 ünïcode");
  roundtrip "nested"
    (Json.Obj
       [
         ("a", Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
         ("b", Json.Obj [ ("c", Json.String "d"); ("e", Json.List []) ]);
         ("empty", Json.Obj []);
       ]);
  roundtrip "floats"
    (Json.List [ Json.Float 0.1; Json.Float (-2.5e-3); Json.Float 1e100 ]);
  roundtrip "ints" (Json.List [ Json.Int 0; Json.Int (-42); Json.Int max_int ]);
  (* the writer renders non-finite floats as null; parsing the result
     yields Null, the documented normalization *)
  match Json.parse (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ])) with
  | Ok v -> Alcotest.check json "non-finite -> null" (Json.List [ Json.Null; Json.Null ]) v
  | Error e -> Alcotest.fail e

let test_json_unicode_escapes () =
  (match Json.parse {|"Aé日"|} with
  | Ok (Json.String s) -> Alcotest.(check string) "bmp escapes" "A\xc3\xa9\xe6\x97\xa5" s
  | _ -> Alcotest.fail "bmp escapes did not parse");
  match Json.parse {|"😀"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair did not parse"

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    [ ""; "{"; "tru"; "1 2"; "[1,]"; {|{"a":}|}; {|"unterminated|}; "nan" ]

let test_json_parse_lines () =
  let rs = Json.parse_lines "{\"a\":1}\n\n  \n[1,2]\n{oops\n" in
  match rs with
  | [ Ok a; Ok b; Error _ ] ->
    Alcotest.check json "first" (Json.Obj [ ("a", Json.Int 1) ]) a;
    Alcotest.check json "second" (Json.List [ Json.Int 1; Json.Int 2 ]) b
  | _ -> Alcotest.fail "expected two Ok lines and one Error, blanks skipped"

(* ------------------------------------------------------------------ *)
(* trace reader *)

let trace_to_string f =
  let path = Filename.temp_file "monpos_reader" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let sink = Trace.open_file path in
      Fun.protect ~finally:(fun () -> Trace.close sink) (fun () -> f sink);
      In_channel.with_open_bin path In_channel.input_all)

let test_reader_typed_decode () =
  let s =
    trace_to_string (fun sink ->
        Trace.bb_node sink ~solver:"mip" ~node:1 ~depth:0 ~bound:1.5 ();
        Trace.bb_node sink ~solver:"mip" ~node:2 ~depth:1 ();
        Trace.incumbent sink ~solver:"mip" ~node:2 ~objective:4.0;
        Trace.bound_pruned sink ~solver:"mip" ~node:3 ~bound:nan ~incumbent:4.0;
        Trace.warm_start sink ~dual_feasible:true ~iterations:7 ~kernel:"sparse_lu"
          ~outcome:"reoptimal";
        Trace.simplex_phase sink ~phase:2 ~iterations:17 ~outcome:"optimal" ();
        Trace.greedy_pick sink ~pick:9 ~gain:0.25 ~covered:0.75;
        Trace.flow_augmentation sink ~amount:1.0 ~path_cost:3.0 ~routed:1.0 ();
        Trace.flow_solve sink ~algo:"netsimplex" ~pivots:42 ~warm:true
          ~status:"optimal";
        Trace.presolve_reduction sink ~rows_dropped:2 ~bounds_tightened:1
          ~fixed_vars:0)
  in
  let r = Reader.read_string s in
  Alcotest.(check int) "no malformed" 0 r.Reader.malformed;
  Alcotest.(check bool) "not truncated" false r.Reader.truncated;
  match List.map (fun rec_ -> rec_.Reader.event) r.Reader.records with
  | [
   Reader.Bb_node { solver = "mip"; node = 1; depth = 0; bound = Some 1.5; sampled_of = 1 };
   Reader.Bb_node { solver = "mip"; node = 2; depth = 1; bound = None; sampled_of = 1 };
   Reader.Incumbent { solver = "mip"; node = 2; objective = 4.0 };
   Reader.Bound_pruned { solver = "mip"; node = 3; bound = None; incumbent = Some 4.0 };
   Reader.Warm_start
     { dual_feasible = true; iterations = 7; kernel = "sparse_lu"; outcome = "reoptimal" };
   Reader.Simplex_phase { phase = 2; iterations = 17; outcome = "optimal"; sampled_of = 1 };
   Reader.Greedy_pick { pick = 9; gain = 0.25; covered = 0.75 };
   Reader.Flow_augmentation { amount = 1.0; path_cost = 3.0; routed = 1.0; sampled_of = 1 };
   Reader.Flow_solve
     { algo = "netsimplex"; pivots = 42; warm = true; status = "optimal" };
   Reader.Presolve_reduction { rows_dropped = 2; bounds_tightened = 1; fixed_vars = 0 };
  ] ->
    ()
  | evs ->
    Alcotest.fail
      ("decode mismatch: "
      ^ String.concat ", " (List.map Reader.event_name evs))

let test_reader_tolerance () =
  (* unknown event names, extra fields, missing required fields: the
     read succeeds and degrades to Unknown where it must *)
  let s =
    String.concat "\n"
      [
        {|{"ev":"custom_probe","ts":0.1,"payload":[1,2]}|};
        {|{"ev":"incumbent","ts":0.2,"solver":"mip","node":3,"objective":4.5,"extra":true}|};
        {|{"ev":"incumbent","ts":0.3,"solver":"mip"}|};
        {|{"ev":"bb_node","ts":0.4,"solver":"mip","node":"five","depth":0}|};
        {|{"ts":0.5,"noise":1}|};
      ]
  in
  let r = Reader.read_string s in
  Alcotest.(check int) "no-ev line is malformed" 1 r.Reader.malformed;
  Alcotest.(check bool) "not truncated" false r.Reader.truncated;
  match List.map (fun rec_ -> rec_.Reader.event) r.Reader.records with
  | [
   Reader.Unknown "custom_probe";
   Reader.Incumbent { objective = 4.5; _ };
   Reader.Unknown "incumbent";
   Reader.Unknown "bb_node";
  ] ->
    ()
  | evs ->
    Alcotest.fail
      ("tolerance mismatch: "
      ^ String.concat ", " (List.map Reader.event_name evs))

let test_reader_truncated_and_malformed () =
  let good = {|{"ev":"span_open","ts":0.0,"name":"a","depth":0}|} in
  (* garbage mid-file counts as malformed; a broken final line (an
     interrupted write) is flagged as truncation instead *)
  let r =
    Reader.read_string
      (good ^ "\nnot json at all\n" ^ good ^ "\n" ^ {|{"ev":"span_cl|})
  in
  Alcotest.(check int) "records kept" 2 (List.length r.Reader.records);
  Alcotest.(check int) "mid-file garbage" 1 r.Reader.malformed;
  Alcotest.(check bool) "final line truncated" true r.Reader.truncated;
  let clean = Reader.read_string (good ^ "\n" ^ good ^ "\n") in
  Alcotest.(check bool) "clean file not truncated" false clean.Reader.truncated

(* ------------------------------------------------------------------ *)
(* profile reconstruction *)

let span_records spans =
  List.map
    (fun (ts, ev) -> { Reader.ts; domain = 0; event = ev })
    spans

let test_profile_tree () =
  (* outer(5s) with two inner(1s) invocations: outer self = 3s *)
  let records =
    span_records
      [
        (0.0, Reader.Span_open { name = "outer"; depth = 0 });
        (0.1, Reader.Span_open { name = "inner"; depth = 1 });
        (1.1, Reader.Span_close { name = "inner"; depth = 1; seconds = 1.0; gc = None; sampled_of = 1 });
        (1.2, Reader.Span_open { name = "inner"; depth = 1 });
        (2.2, Reader.Span_close { name = "inner"; depth = 1; seconds = 1.0; gc = None; sampled_of = 1 });
        (5.0, Reader.Span_close { name = "outer"; depth = 0; seconds = 5.0; gc = None; sampled_of = 1 });
      ]
  in
  let p = Profile.of_records records in
  Alcotest.(check int) "no unmatched" 0 p.Profile.unmatched;
  check_exact "grand total" 5.0 (Profile.grand_total p);
  (match p.Profile.roots with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.Profile.name;
    Alcotest.(check int) "root calls" 1 outer.Profile.calls;
    check_exact "root total" 5.0 outer.Profile.total;
    check_exact "root self" 3.0 outer.Profile.self;
    (match outer.Profile.children with
    | [ inner ] ->
      Alcotest.(check int) "inner merged calls" 2 inner.Profile.calls;
      check_exact "inner total" 2.0 inner.Profile.total;
      check_exact "inner self" 2.0 inner.Profile.self
    | _ -> Alcotest.fail "expected one merged inner child")
  | _ -> Alcotest.fail "expected a single root");
  match Profile.totals p with
  | [ ("outer", (1, 5.0, 3.0)); ("inner", (2, 2.0, 2.0)) ] -> ()
  | _ -> Alcotest.fail "flat totals mismatch"

let test_profile_unmatched () =
  let p =
    Profile.of_records
      (span_records
         [
           (0.0, Reader.Span_open { name = "a"; depth = 0 });
           (0.1, Reader.Span_open { name = "b"; depth = 1 });
         ])
  in
  Alcotest.(check int) "two dangling opens" 2 p.Profile.unmatched;
  (* rendering a pathological profile must not raise *)
  Alcotest.(check bool) "renders" true (String.length (Profile.render p) >= 0)

(* ------------------------------------------------------------------ *)
(* convergence reconstruction *)

let test_converge () =
  let r event ts = { Reader.ts; domain = 0; event } in
  let records =
    [
      r (Reader.Bb_node { solver = "mip"; node = 1; depth = 0; bound = Some 10.0; sampled_of = 1 }) 0.1;
      r (Reader.Incumbent { solver = "mip"; node = 1; objective = 8.0 }) 0.2;
      r (Reader.Warm_start
           { dual_feasible = true; iterations = 5; kernel = "sparse_lu"; outcome = "reoptimal" })
        0.25;
      r (Reader.Bb_node { solver = "mip"; node = 2; depth = 1; bound = Some 9.0; sampled_of = 1 }) 0.3;
      r (Reader.Bound_pruned
           { solver = "mip"; node = 2; bound = Some 9.0; incumbent = Some 8.0 })
        0.4;
      r (Reader.Simplex_phase { phase = 2; iterations = 11; outcome = "optimal"; sampled_of = 1 }) 0.45;
      r (Reader.Bb_node { solver = "cover"; node = 1; depth = 0; bound = None; sampled_of = 1 }) 0.5;
      r (Reader.Incumbent { solver = "cover"; node = 1; objective = 3.0 }) 0.6;
    ]
  in
  let c = Converge.of_records records in
  Alcotest.(check int) "events" 8 c.Converge.events;
  match c.Converge.solvers with
  | [ mip; cover ] ->
    Alcotest.(check string) "first solver" "mip" mip.Converge.solver;
    Alcotest.(check int) "mip nodes" 2 mip.Converge.nodes;
    Alcotest.(check int) "mip prunes" 1 mip.Converge.prunes;
    Alcotest.(check int) "mip max depth" 1 mip.Converge.max_depth;
    (match mip.Converge.final_incumbent with
    | Some v -> check_float "final incumbent" 8.0 v
    | None -> Alcotest.fail "no final incumbent");
    (match mip.Converge.final_gap with
    | Some g -> check_float "gap |8-9|/8" 0.125 g
    | None -> Alcotest.fail "no final gap");
    (* solver-less events attach to the solver of the last bb_node *)
    Alcotest.(check (list (pair string int)))
      "warm starts on mip" [ ("reoptimal", 1) ] mip.Converge.warm_starts;
    Alcotest.(check int) "warm pivots" 5 mip.Converge.warm_dual_pivots;
    (match mip.Converge.simplex_phases with
    | [ (2, 1, 11) ] -> ()
    | _ -> Alcotest.fail "simplex phase totals mismatch");
    Alcotest.(check int) "cover nodes" 1 cover.Converge.nodes;
    Alcotest.(check (list (pair string int)))
      "no warm starts on cover" [] cover.Converge.warm_starts;
    (* rendering exercises the trajectory table *)
    Alcotest.(check bool) "renders" true (String.length (Converge.render c) > 0)
  | ss ->
    Alcotest.fail
      (Printf.sprintf "expected 2 solvers, got %d" (List.length ss))

(* ------------------------------------------------------------------ *)
(* percentile estimation *)

let test_percentile_buckets () =
  (* buckets (1;2;4;overflow], observations 0.5 1.0 1.5 3.0 100.0 *)
  let upper = [| 1.0; 2.0; 4.0 |] and counts = [| 2; 1; 1; 1 |] in
  let p q = Stats.percentile_buckets ~upper ~counts q in
  let check_some name expected = function
    | Some v -> check_float name expected v
    | None -> Alcotest.fail (name ^ " unexpectedly in overflow")
  in
  (* rank = q/100 * (n-1), linear interpolation inside the bucket *)
  check_some "p50" 1.0 (p 50.0);
  check_some "p90" 3.2 (p 90.0);
  check_some "p99" 3.92 (p 99.0);
  check_some "p0 at lower edge" 0.0 (p 0.0);
  Alcotest.(check (option (float 1e-9))) "empty" None
    (Stats.percentile_buckets ~upper ~counts:[| 0; 0; 0; 0 |] 50.0);
  (* everything past the last bound: the estimate is unknowable *)
  Alcotest.(check (option (float 1e-9))) "overflow" None
    (Stats.percentile_buckets ~upper ~counts:[| 0; 0; 0; 3 |] 50.0)

let test_metrics_percentile_rendering () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] r "test.hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
  let ovf = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] r "test.ovf" in
  List.iter (Metrics.observe ovf) [ 5.0; 6.0; 7.0 ];
  let table = Metrics.render_table (Metrics.snapshot r) in
  let has sub =
    let n = String.length sub and m = String.length table in
    let rec go i = i + n <= m && (String.sub table i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "p50 cell" true (has "p50=1 ");
  Alcotest.(check bool) "p90 cell" true (has "p90=3.2 ");
  Alcotest.(check bool) "p99 cell" true (has "p99=3.92");
  Alcotest.(check bool) "overflow prints >last_bound" true (has "p50=>4 ");
  (* json: overflow percentiles are null, in-range ones are numbers *)
  match Metrics.to_json (Metrics.snapshot r) with
  | Json.Obj kvs ->
    let member name k =
      match List.assoc name kvs with
      | Json.Obj fields -> List.assoc k fields
      | _ -> Alcotest.fail (name ^ " is not an object")
    in
    Alcotest.check json "hist p50" (Json.Float 1.0) (member "test.hist" "p50");
    Alcotest.check json "ovf p99 null" Json.Null (member "test.ovf" "p99")
  | _ -> Alcotest.fail "snapshot json is not an object"

(* ------------------------------------------------------------------ *)
(* buffered file sink *)

let test_buffered_sink () =
  let path = Filename.temp_file "monpos_buf" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let sink = Trace.open_file path in
      for i = 1 to 10 do
        Trace.emit sink "tick" [ ("i", Json.Int i) ]
      done;
      (* below the flush threshold nothing has reached the file yet *)
      Alcotest.(check int) "buffered, file empty" 0
        (In_channel.with_open_bin path In_channel.length |> Int64.to_int);
      Alcotest.(check int) "events counted while buffered" 10
        (Trace.events_written sink);
      for i = 11 to 70 do
        Trace.emit sink "tick" [ ("i", Json.Int i) ]
      done;
      (* crossing the threshold flushed at least one batch *)
      Alcotest.(check bool) "flushed past threshold" true
        (In_channel.with_open_bin path In_channel.length > 0L);
      Trace.close sink;
      Alcotest.(check int) "exact count" 70 (Trace.events_written sink);
      let r = Reader.read_file path in
      Alcotest.(check int) "all events on disk after close" 70
        (List.length r.Reader.records);
      Alcotest.(check bool) "complete final line" false r.Reader.truncated)

(* ------------------------------------------------------------------ *)
(* bench regression gate *)

let bench_doc ?(mode = "default") ?chaos_seed phases =
  Json.Obj
    [
      ("schema", Json.String "monpos-bench/1");
      ("mode", Json.String mode);
      ( "chaos_seed",
        match chaos_seed with Some s -> Json.Int s | None -> Json.Null );
      ( "phases",
        Json.List
          (List.map
             (fun (name, seconds, extras) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("seconds", Json.Float seconds);
                   ("extras", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) extras));
                 ])
             phases) );
    ]

let test_bench_check () =
  let baseline =
    bench_doc
      [
        ("warmstart", 1.0, [ ("pivots", 100.0); ("speedup", 2.0) ]);
        ("kernelscale", 2.0, [ ("devices", 6.0) ]);
      ]
  in
  (* identical reports pass *)
  (match Bench_check.compare_reports ~baseline ~current:baseline with
  | Ok r ->
    Alcotest.(check int) "self-compare count" 5 r.Bench_check.compared;
    Alcotest.(check int) "self-compare clean" 0 (List.length r.Bench_check.findings)
  | Error e -> Alcotest.fail e);
  (* per-class thresholds: a tolerable drift does not regress, a real
     one does, and a vanished metric always does *)
  let current =
    bench_doc
      [
        (* seconds 1.0 -> 1.4: within +50%+0.1s. pivots 100 -> 102:
           beyond the 1% exact tolerance. speedup 2.0 -> 0.9: below
           half the baseline. *)
        ("warmstart", 1.4, [ ("pivots", 102.0); ("speedup", 0.9) ]);
        ("kernelscale", 10.0, []);
      ]
  in
  (match Bench_check.compare_reports ~baseline ~current with
  | Ok r ->
    let keys =
      List.map (fun f -> (f.Bench_check.phase, f.Bench_check.key)) r.Bench_check.findings
    in
    Alcotest.(check (list (pair string string)))
      "findings"
      [
        ("warmstart", "extras.pivots");
        ("warmstart", "extras.speedup");
        ("kernelscale", "seconds");
        ("kernelscale", "extras.devices");
      ]
      keys;
    (match
       List.find_opt (fun f -> f.Bench_check.key = "extras.devices") r.Bench_check.findings
     with
    | Some f -> Alcotest.(check bool) "vanished metric" true (f.Bench_check.current = None)
    | None -> Alcotest.fail "missing-metric finding absent");
    Alcotest.(check bool) "render mentions REGRESSED" true
      (let s = Bench_check.render r in
       let n = String.length "REGRESSED" and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = "REGRESSED" || go (i + 1)) in
       go 0)
  | Error e -> Alcotest.fail e);
  (* a phase the current run skipped is noted, not failed *)
  (match
     Bench_check.compare_reports ~baseline
       ~current:(bench_doc [ ("warmstart", 1.0, [ ("pivots", 100.0); ("speedup", 2.0) ]) ])
   with
  | Ok r ->
    Alcotest.(check (list string)) "missing phase" [ "kernelscale" ] r.Bench_check.missing_phases;
    Alcotest.(check int) "no findings" 0 (List.length r.Bench_check.findings)
  | Error e -> Alcotest.fail e);
  (* schema and mode guards are hard errors *)
  (match Bench_check.compare_reports ~baseline ~current:(Json.Obj [ ("bogus", Json.Int 1) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schemaless report accepted");
  (match Bench_check.compare_reports ~baseline ~current:(bench_doc ~mode:"full" []) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cross-mode comparison accepted");
  (* a chaotic current run: violations are reported but tolerated *)
  let chaotic =
    bench_doc ~chaos_seed:7
      [
        ("warmstart", 1.4, [ ("pivots", 150.0); ("speedup", 2.0) ]);
        ("kernelscale", 2.0, [ ("devices", 7.0) ]);
      ]
  in
  match Bench_check.compare_reports ~baseline ~current:chaotic with
  | Ok r ->
    Alcotest.(check int) "chaos: nothing gates" 0 (List.length r.Bench_check.findings);
    Alcotest.(check (list (pair string string)))
      "chaos: drifts tolerated"
      [ ("warmstart", "extras.pivots"); ("kernelscale", "extras.devices") ]
      (List.map (fun f -> (f.Bench_check.phase, f.Bench_check.key)) r.Bench_check.tolerated);
    Alcotest.(check (option int)) "chaos seed surfaced" (Some 7) r.Bench_check.chaos_seed;
    Alcotest.(check bool) "render mentions TOLERATED" true
      (Astring.String.is_infix ~affix:"TOLERATED" (Bench_check.render r))
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* end to end: a real solve, traced, then analyzed — the analyzers
   must reproduce the solver's own accounting exactly *)

let test_analyze_roundtrip_pop10 () =
  Metrics.reset Metrics.default;
  let pop = Pop.make_preset `Pop10 ~seed:1 in
  let inst = Instance.of_pop pop ~seed:131 in
  let path = Filename.temp_file "monpos_e2e" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let sol = ref None in
      let sink = Trace.open_file path in
      Fun.protect
        ~finally:(fun () -> Trace.close sink)
        (fun () ->
          Trace.with_current sink (fun () ->
              sol := Some (Passive.solve_mip ~k:0.9 inst)));
      let sol = Option.get !sol in
      let snap = Metrics.snapshot Metrics.default in
      let counter name =
        match Metrics.find snap name with
        | Some (Metrics.Counter_value n) -> n
        | _ -> Alcotest.fail (name ^ " counter missing")
      in
      let r = Reader.read_file path in
      Alcotest.(check int) "clean trace" 0 r.Reader.malformed;
      Alcotest.(check bool) "complete trace" false r.Reader.truncated;
      (* convergence: node count and final incumbent match the solver *)
      let c = Converge.of_records r.Reader.records in
      let mip =
        match List.find_opt (fun s -> s.Converge.solver = "mip") c.Converge.solvers with
        | Some s -> s
        | None -> Alcotest.fail "no mip solver in trace"
      in
      Alcotest.(check int) "bb_node events = mip.nodes counter"
        (counter "mip.nodes") mip.Converge.nodes;
      (match mip.Converge.final_incumbent with
      | Some v -> check_float "final incumbent = device count" (float_of_int sol.Passive.count) v
      | None -> Alcotest.fail "no incumbent in trace");
      (* profile: per-name totals equal the span.seconds{span=name}
         histogram sums bit for bit (same additions in the same order) *)
      let p = Profile.of_records r.Reader.records in
      Alcotest.(check int) "all spans paired" 0 p.Profile.unmatched;
      let totals = Profile.totals p in
      Alcotest.(check bool) "spans present" true (totals <> []);
      List.iter
        (fun (name, (calls, total_s, _self)) ->
          match Metrics.find ~labels:[ ("span", name) ] snap "span.seconds" with
          | Some (Metrics.Histogram_value { count; sum; _ }) ->
            Alcotest.(check int) (name ^ " calls") count calls;
            check_exact (name ^ " seconds") sum total_s
          | _ -> Alcotest.fail ("span.seconds{" ^ name ^ "} histogram missing"))
        totals)

(* ------------------------------------------------------------------ *)
(* run manifests *)

let test_run_info_roundtrip () =
  let module Runinfo = Monpos_obs.Runinfo in
  let manifest =
    {
      Runinfo.run_id = "run-test-1";
      git_rev = Some "abc123";
      ocaml_version = "5.1.1";
      hostname = "boxen";
      chaos_seed = Some 42;
      jobs = Some 4;
      scheduler = Some "wave";
      argv = [ "monitorctl"; "passive"; "--trace"; "t.jsonl" ];
    }
  in
  let s = trace_to_string (fun sink -> Runinfo.emit sink manifest) in
  match (Reader.read_string s).Reader.records with
  | [ { Reader.event = Reader.Run_info r; _ } ] ->
    Alcotest.(check string) "run_id" "run-test-1" r.run_id;
    Alcotest.(check (option string)) "git_rev" (Some "abc123") r.git_rev;
    Alcotest.(check (option string)) "ocaml" (Some "5.1.1") r.ocaml_version;
    Alcotest.(check (option string)) "hostname" (Some "boxen") r.hostname;
    Alcotest.(check (option int)) "chaos_seed" (Some 42) r.chaos_seed;
    Alcotest.(check (list string)) "argv" manifest.Runinfo.argv r.argv
  | evs ->
    Alcotest.failf "expected one run_info, got %d record(s)" (List.length evs)

let test_run_info_capture_defaults () =
  let module Runinfo = Monpos_obs.Runinfo in
  let m = Runinfo.capture () in
  Alcotest.(check string) "ocaml version" Sys.ocaml_version m.Runinfo.ocaml_version;
  Alcotest.(check bool) "run id non-empty" true (m.Runinfo.run_id <> "");
  Alcotest.(check (option int)) "no chaos seed" None m.Runinfo.chaos_seed;
  let m2 = Runinfo.capture () in
  Alcotest.(check bool) "ids unique per capture" true
    (m.Runinfo.run_id <> m2.Runinfo.run_id)

(* ------------------------------------------------------------------ *)
(* GC accounting on spans *)

let test_span_gc_deltas () =
  let s =
    trace_to_string (fun sink ->
        Trace.with_current sink (fun () ->
            Span.run "outer" (fun () ->
                let junk =
                  Span.run "inner" (fun () -> Array.init 50_000 string_of_int)
                in
                ignore (Sys.opaque_identity junk))))
  in
  let closes =
    List.filter_map
      (fun r ->
        match r.Reader.event with
        | Reader.Span_close { name; gc; _ } -> Some (name, gc)
        | _ -> None)
      (Reader.read_string s).Reader.records
  in
  let gc_of name =
    match List.assoc_opt name closes with
    | Some (Some gc) -> gc
    | Some None -> Alcotest.failf "span %s closed without gc fields" name
    | None -> Alcotest.failf "span %s has no close event" name
  in
  let inner = gc_of "inner" and outer = gc_of "outer" in
  let non_negative name (gc : Trace.gc_delta) =
    Alcotest.(check bool) (name ^ " minor >= 0") true (gc.Trace.minor_words >= 0.0);
    Alcotest.(check bool) (name ^ " major >= 0") true (gc.Trace.major_words >= 0.0);
    Alcotest.(check bool) (name ^ " promoted >= 0") true
      (gc.Trace.promoted_words >= 0.0);
    Alcotest.(check bool) (name ^ " majors >= 0") true
      (gc.Trace.major_collections >= 0);
    Alcotest.(check bool) (name ^ " top heap >= 0") true
      (gc.Trace.top_heap_words >= 0)
  in
  non_negative "inner" inner;
  non_negative "outer" outer;
  (* the deltas are differences of monotone GC counters, so an
     enclosing span dominates its children *)
  Alcotest.(check bool) "inner allocated something" true
    (inner.Trace.minor_words +. inner.Trace.major_words > 0.0);
  Alcotest.(check bool) "outer minor >= inner minor" true
    (outer.Trace.minor_words >= inner.Trace.minor_words);
  Alcotest.(check bool) "outer major >= inner major" true
    (outer.Trace.major_words >= inner.Trace.major_words);
  (* and the profile surfaces them as per-span allocation totals *)
  let p = Profile.of_records (Reader.read_string s).Reader.records in
  let alloc = Profile.alloc_totals p in
  Alcotest.(check bool) "profile reports outer alloc" true
    (match List.assoc_opt "outer" alloc with
    | Some w -> w > 0.0
    | None -> false)

let suite =
  [
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json unicode escapes" `Quick test_json_unicode_escapes;
    Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
    Alcotest.test_case "json parse lines" `Quick test_json_parse_lines;
    Alcotest.test_case "reader typed decode" `Quick test_reader_typed_decode;
    Alcotest.test_case "reader skip-unknown tolerance" `Quick test_reader_tolerance;
    Alcotest.test_case "reader truncated and malformed lines" `Quick
      test_reader_truncated_and_malformed;
    Alcotest.test_case "profile span tree" `Quick test_profile_tree;
    Alcotest.test_case "profile unmatched spans" `Quick test_profile_unmatched;
    Alcotest.test_case "convergence reconstruction" `Quick test_converge;
    Alcotest.test_case "bucket percentiles" `Quick test_percentile_buckets;
    Alcotest.test_case "metrics percentile rendering" `Quick
      test_metrics_percentile_rendering;
    Alcotest.test_case "buffered file sink" `Quick test_buffered_sink;
    Alcotest.test_case "bench regression gate" `Quick test_bench_check;
    Alcotest.test_case "analyze round trip on pop10" `Quick
      test_analyze_roundtrip_pop10;
    Alcotest.test_case "run_info round trip" `Quick test_run_info_roundtrip;
    Alcotest.test_case "run_info capture defaults" `Quick
      test_run_info_capture_defaults;
    Alcotest.test_case "span gc deltas" `Quick test_span_gc_deltas;
  ]
