(* Flight recorder + adaptive trace sampler.

   The recorder tests drive Flightrec.record with controlled
   timestamps (the sink path ends in [record]), so dump bodies are
   fully deterministic and can be compared byte-for-byte; the
   multi-domain tests spawn real domains so ring registration and the
   timestamp merge are exercised across domain-local rings. The
   sampler tests check the decide contract directly: determinism,
   per-class independence, and the sampled_of weights rescaling back
   to the true event count. *)

module Ring = Monpos_obs.Ring
module Flightrec = Monpos_obs.Flightrec
module Sampler = Monpos_obs.Sampler
module Trace = Monpos_obs.Trace
module Reader = Monpos_obs.Trace_reader
module Converge = Monpos_obs.Converge
module Json = Monpos_obs.Json

(* ------------------------------------------------------------------ *)
(* ring *)

let test_ring_ordering () =
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Ring.create 0));
  let r = Ring.create 4 in
  Alcotest.(check int) "empty length" 0 (Ring.length r);
  Alcotest.(check (list int)) "empty list" [] (Ring.to_list r);
  List.iter (Ring.push r) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "before wrap, oldest first" [ 1; 2; 3 ]
    (Ring.to_list r);
  List.iter (Ring.push r) [ 4; 5; 6 ];
  Alcotest.(check int) "length capped" 4 (Ring.length r);
  Alcotest.(check (list int)) "retains the most recent, oldest first"
    [ 3; 4; 5; 6 ] (Ring.to_list r);
  Alcotest.(check int) "pushed counts everything" 6 (Ring.pushed r);
  Alcotest.(check int) "dropped = pushed - retained" 2 (Ring.dropped r);
  Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Ring.length r);
  Alcotest.(check int) "clear resets the drop count" 0 (Ring.dropped r);
  Ring.push r 7;
  Alcotest.(check (list int)) "usable after clear" [ 7 ] (Ring.to_list r)

(* ------------------------------------------------------------------ *)
(* recorder *)

(* [record] stores fields verbatim (the domain stamp is the emit
   path's job), so the schedule carries explicit logical domain ids —
   deterministic where real domain ids vary between spawns *)
let bb_fields ?(dom = 0) node =
  [
    ("solver", Json.String "mip");
    ("node", Json.Int node);
    ("depth", Json.Int 1);
    ("bound", Json.Float 3.0);
    ("domain", Json.Int dom);
  ]

(* one recorder fed the same deterministic three-domain schedule:
   [main] records as logical domain 0, two spawned domains interleave
   their timestamps with it *)
let feed_schedule t =
  Flightrec.record t ~ts:1.0 ~ev:"bb_node" (bb_fields 1);
  Flightrec.record t ~ts:5.0 ~ev:"bb_node" (bb_fields 5);
  let worker dom lo =
    Domain.spawn (fun () ->
        Flightrec.record t ~ts:lo ~ev:"bb_node"
          (bb_fields ~dom (int_of_float lo));
        Flightrec.record t ~ts:(lo +. 4.0) ~ev:"bb_node"
          (bb_fields ~dom (int_of_float lo + 4)))
  in
  Domain.join (worker 2 2.0);
  Domain.join (worker 3 3.0);
  Flightrec.record t ~ts:9.0 ~ev:"bb_node" (bb_fields 9)

let test_multi_domain_merge () =
  let t = Flightrec.create ~capacity:8 () in
  feed_schedule t;
  Alcotest.(check int) "events seen" 7 (Flightrec.events_seen t);
  Alcotest.(check int) "one ring per domain" 3
    (List.length (Flightrec.stats t));
  let read = Reader.read_string (Flightrec.render t) in
  Alcotest.(check int) "no malformed lines" 0 read.Reader.malformed;
  Alcotest.(check int) "no unknown events" 0 read.Reader.unknown;
  let ts = List.map (fun r -> r.Reader.ts) read.Reader.records in
  Alcotest.(check (list (float 0.0)))
    "merged across rings in timestamp order"
    [ 1.0; 2.0; 3.0; 5.0; 6.0; 7.0; 9.0 ] ts;
  (* the domain stamp distinguishes the rings' events *)
  let domains = List.sort_uniq compare (List.map (fun r -> r.Reader.domain) read.Reader.records) in
  Alcotest.(check int) "three distinct domain stamps" 3 (List.length domains)

let test_deterministic_replay_is_byte_identical () =
  let run () =
    let t = Flightrec.create ~capacity:8 () in
    Flightrec.set_manifest t
      [ ("run_id", Json.String "replay"); ("jobs", Json.Int 3) ];
    feed_schedule t;
    Flightrec.render t
  in
  let a = run () and b = run () in
  Alcotest.(check string) "same schedule, byte-identical dump body" a b;
  (* and the body leads with the manifest as an ordinary run_info *)
  let read = Reader.read_string a in
  (match read.Reader.records with
  | { Reader.event = Reader.Run_info _; _ } :: _ -> ()
  | _ -> Alcotest.fail "dump body must lead with run_info");
  Alcotest.(check int) "manifest + 7 events" 8
    (List.length read.Reader.records)

let test_capacity_overwrites_oldest () =
  let t = Flightrec.create ~capacity:2 () in
  for i = 1 to 5 do
    Flightrec.record t ~ts:(float_of_int i) ~ev:"bb_node" (bb_fields i)
  done;
  (match Flightrec.stats t with
  | [ (_, retained, dropped) ] ->
    Alcotest.(check int) "retained = capacity" 2 retained;
    Alcotest.(check int) "dropped the rest" 3 dropped
  | l -> Alcotest.failf "expected one ring, got %d" (List.length l));
  let read = Reader.read_string (Flightrec.render t) in
  Alcotest.(check (list (float 0.0)))
    "only the most recent window remains" [ 4.0; 5.0 ]
    (List.map (fun r -> r.Reader.ts) read.Reader.records)

(* temp dump directories, unique per test invocation *)
let dump_dir_counter = ref 0

let fresh_dir () =
  incr dump_dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "monpos-flight-%d-%d" (Unix.getpid ())
         !dump_dir_counter)
  in
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_trigger_dumps_and_caps () =
  let dir = fresh_dir () in
  let t = Flightrec.install ~capacity:8 ~dir () in
  Fun.protect
    ~finally:(fun () ->
      Flightrec.uninstall ();
      if Sys.file_exists dir then rm_rf dir)
  @@ fun () ->
  Flightrec.set_manifest t [ ("run_id", Json.String "trigger") ];
  Flightrec.record t ~ts:1.0 ~ev:"bb_node" (bb_fields 1);
  (* two triggers on unchanged rings: two files, identical bodies,
     sequence-numbered names carrying the sanitized reason *)
  Flightrec.trigger ~reason:"deadline_exceeded";
  Flightrec.trigger ~reason:"chaos_lp/solve";
  let files = List.sort compare (Array.to_list (Sys.readdir dir)) in
  Alcotest.(check (list string))
    "dump files named by sequence and sanitized reason"
    [ "flight-0001-deadline_exceeded.jsonl"; "flight-0002-chaos_lp_solve.jsonl" ]
    files;
  let body f = read_file (Filename.concat dir f) in
  Alcotest.(check string) "same rings, same bytes" (body (List.nth files 0))
    (body (List.nth files 1));
  (* a dump reads back through the ordinary reader *)
  let read = Reader.read_string (body (List.nth files 0)) in
  Alcotest.(check int) "run_info + recorded event" 2
    (List.length read.Reader.records);
  (* the per-process cap stops a trigger storm from flooding the
     directory *)
  for _ = 1 to 20 do
    Flightrec.trigger ~reason:"storm"
  done;
  Alcotest.(check bool) "cap reached" true (Flightrec.dumps_taken () >= 8);
  let after = Array.length (Sys.readdir dir) in
  Alcotest.(check bool)
    (Printf.sprintf "at most 8 dumps on disk (got %d)" after)
    true (after <= 8);
  Flightrec.trigger ~reason:"storm";
  Alcotest.(check int) "capped: no further files" after
    (Array.length (Sys.readdir dir))

let test_trigger_inert_without_install () =
  (* the library-level trigger sites (deadline, ladder, chaos) run in
     every test process; with no armed recorder they must cost nothing
     and write nothing *)
  Flightrec.uninstall ();
  let before = Flightrec.dumps_taken () in
  Flightrec.trigger ~reason:"deadline_exceeded";
  Alcotest.(check int) "no budget consumed" before (Flightrec.dumps_taken ())

(* ------------------------------------------------------------------ *)
(* sampler *)

let with_sampler threshold f =
  Sampler.reset ();
  Sampler.configure ~threshold;
  Fun.protect
    ~finally:(fun () ->
      Sampler.disable ();
      Sampler.reset ())
    f

let test_sampler_off_is_identity () =
  Sampler.reset ();
  Sampler.disable ();
  for _ = 1 to 100 do
    Alcotest.(check int) "disabled decide is 1" 1
      (Sampler.decide Sampler.Bb_node)
  done

let test_sampler_rescales_exactly () =
  with_sampler 16 @@ fun () ->
  let n = 20_000 in
  let kept = ref 0 and weight_sum = ref 0 and max_w = ref 1 in
  for _ = 1 to n do
    let w = Sampler.decide Sampler.Bb_node in
    if w > 0 then begin
      incr kept;
      weight_sum := !weight_sum + w;
      if w > !max_w then max_w := w
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "stream compressed (%d kept of %d)" !kept n)
    true
    (!kept < n / 10);
  Alcotest.(check bool)
    (Printf.sprintf "stride capped at 4096 (max weight %d)" !max_w)
    true (!max_w <= 4096);
  (* sum of sampled_of weights over kept events tracks the true count
     to within one block (the final stride) *)
  Alcotest.(check bool)
    (Printf.sprintf "weights rescale: sum %d vs true %d" !weight_sum n)
    true
    (abs (n - !weight_sum) <= !max_w)

let test_sampler_deterministic_and_per_class () =
  let replay () =
    with_sampler 4 @@ fun () ->
    List.init 500 (fun _ -> Sampler.decide Sampler.Bb_node)
  in
  Alcotest.(check (list int)) "pure function of the class ordinal"
    (replay ()) (replay ());
  with_sampler 4 @@ fun () ->
  (* burning one class's head must not consume another's *)
  for _ = 1 to 400 do
    ignore (Sampler.decide Sampler.Bb_node)
  done;
  for i = 1 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "fresh class passes head event %d unsampled" i)
      1
      (Sampler.decide (Sampler.Span "lu_factor"))
  done

let test_converge_rescales_sampled_nodes () =
  (* the reader-side contract: a kept event stands for sampled_of
     occurrences, so convergence node counts recover the true total *)
  let record ts node sampled_of =
    {
      Reader.ts;
      domain = 0;
      event =
        Reader.Bb_node
          { solver = "mip"; node; depth = 1; bound = Some 3.0; sampled_of };
    }
  in
  let c =
    Converge.of_records [ record 1.0 0 1; record 2.0 8 8; record 3.0 16 8 ]
  in
  match c.Converge.solvers with
  | [ s ] -> Alcotest.(check int) "1 + 8 + 8 nodes" 17 s.Converge.nodes
  | l -> Alcotest.failf "expected one solver, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "ring: overwrite-oldest ordering" `Quick
      test_ring_ordering;
    Alcotest.test_case "recorder: multi-domain timestamp merge" `Quick
      test_multi_domain_merge;
    Alcotest.test_case "recorder: deterministic replay is byte-identical"
      `Quick test_deterministic_replay_is_byte_identical;
    Alcotest.test_case "recorder: capacity window" `Quick
      test_capacity_overwrites_oldest;
    Alcotest.test_case "trigger: dumps, filenames, per-process cap" `Quick
      test_trigger_dumps_and_caps;
    Alcotest.test_case "trigger: inert without an armed recorder" `Quick
      test_trigger_inert_without_install;
    Alcotest.test_case "sampler: disabled is identity" `Quick
      test_sampler_off_is_identity;
    Alcotest.test_case "sampler: weights rescale to the true count" `Quick
      test_sampler_rescales_exactly;
    Alcotest.test_case "sampler: deterministic, per-class streams" `Quick
      test_sampler_deterministic_and_per_class;
    Alcotest.test_case "converge: sampled bb_node counts rescale" `Quick
      test_converge_rescales_sampled_nodes;
  ]
