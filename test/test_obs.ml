(* Observability layer: metrics registry semantics, nested span
   timing, JSON escaping, the no-op trace sink, and agreement between
   the JSONL trace and the solver's own accounting. *)

module Metrics = Monpos_obs.Metrics
module Trace = Monpos_obs.Trace
module Span = Monpos_obs.Span
module Json = Monpos_obs.Json
module Model = Monpos_lp.Model
module Mip = Monpos_lp.Mip

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* a tiny JSON reader, for validating what the writer produced. Only
   what the trace emits: objects of null/bool/int/float/string. *)

exception Bad_json of string

let parse_json (s : string) : (string * string) list =
  (* Returns the top-level object as name -> raw token text. *)
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d in %s" msg !pos s)) in
  let peek () = if !pos < n then s.[!pos] else fail "eof" in
  let advance () = incr pos in
  let expect c = if peek () <> c then fail (Printf.sprintf "expected %c" c) else advance () in
  let skip_ws () = while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do advance () done in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 'b' -> Buffer.add_char b '\b'; advance ()
        | 'f' -> Buffer.add_char b '\012'; advance ()
        | 'u' ->
          advance ();
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          Buffer.add_char b (Char.chr (int_of_string ("0x" ^ hex)))
        | c -> fail (Printf.sprintf "bad escape %c" c));
        go ()
      | c when Char.code c < 0x20 -> fail "unescaped control char"
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_scalar () =
    if peek () = '"' then "\"" ^ parse_string () ^ "\""
    else begin
      let start = !pos in
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | 'a' .. 'z' -> true (* null, true, false *)
        | _ -> false
      do
        advance ()
      done;
      if !pos = start then fail "empty scalar";
      let tok = String.sub s start (!pos - start) in
      (match tok with
      | "null" | "true" | "false" -> ()
      | _ ->
        if Float.is_nan (float_of_string tok) then fail "nan literal");
      tok
    end
  in
  skip_ws ();
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = '}' then advance ()
  else begin
    let rec members () =
      skip_ws ();
      let key = parse_string () in
      skip_ws ();
      expect ':';
      skip_ws ();
      let v = parse_scalar () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | ',' -> advance (); members ()
      | '}' -> advance ()
      | _ -> fail "expected , or }"
    in
    members ()
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let read_lines path =
  In_channel.with_open_text path (fun ic ->
      let rec go acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some l -> go (l :: acc)
      in
      go [])

let with_trace_file f =
  let path = Filename.temp_file "monpos_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let sink = Trace.open_file path in
      Fun.protect
        ~finally:(fun () -> Trace.close sink)
        (fun () -> f sink);
      read_lines path)

(* ------------------------------------------------------------------ *)
(* metrics registry *)

let test_counter () =
  let r = Metrics.create () in
  let c = Metrics.counter r "test.counter" in
  Alcotest.(check int) "fresh" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "after incr+add" 7 (Metrics.counter_value c);
  (* re-registration returns the same instrument *)
  let c' = Metrics.counter r "test.counter" in
  Metrics.incr c';
  Alcotest.(check int) "aliased" 8 (Metrics.counter_value c);
  (* reset zeroes values but handles stay valid *)
  Metrics.reset r;
  Alcotest.(check int) "reset" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int) "usable after reset" 1 (Metrics.counter_value c);
  (* name collision across kinds is a programming error *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Metrics: \"test.counter\" is already registered with another kind")
    (fun () -> ignore (Metrics.gauge r "test.counter"))

let test_gauge () =
  let r = Metrics.create () in
  let g = Metrics.gauge r "test.gauge" in
  check_float "fresh" 0.0 (Metrics.gauge_value g);
  Metrics.set g 3.5;
  Metrics.set g (-1.25);
  check_float "last write wins" (-1.25) (Metrics.gauge_value g);
  Metrics.reset r;
  check_float "reset" 0.0 (Metrics.gauge_value g)

let test_histogram () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0 |] r "test.hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 3.0; 100.0 ];
  match Metrics.find (Metrics.snapshot r) "test.hist" with
  | Some (Metrics.Histogram_value { upper; counts; count; sum }) ->
    Alcotest.(check (array (float 0.0))) "bounds" [| 1.0; 2.0; 4.0 |] upper;
    (* cumulative-free per-bucket counts, with the 100.0 in overflow *)
    Alcotest.(check (array int)) "counts" [| 2; 1; 1; 1 |] counts;
    Alcotest.(check int) "count" 5 count;
    check_float "sum" 106.0 sum
  | _ -> Alcotest.fail "histogram entry missing"

let test_histogram_bad_buckets () =
  let r = Metrics.create () in
  List.iter
    (fun buckets ->
      match Metrics.histogram ~buckets r "test.bad" with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "non-ascending buckets accepted")
    [ [||]; [| 2.0; 1.0 |]; [| 1.0; 1.0 |] ]

let test_snapshot_order_and_json () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter r "b.second");
  Metrics.set (Metrics.gauge r "a.first") 2.0;
  let snap = Metrics.snapshot r in
  Alcotest.(check (list string))
    "registration order" [ "b.second"; "a.first" ]
    (List.map (fun (s, _) -> Metrics.series_key s) snap);
  Alcotest.(check string)
    "json" {|{"b.second":1,"a.first":2}|}
    (Json.to_string (Metrics.to_json snap))

(* ------------------------------------------------------------------ *)
(* spans *)

let test_nested_spans () =
  let r = Metrics.create () in
  let inner_dt = ref nan in
  let (), outer_dt =
    Span.time ~metrics:r "outer" (fun () ->
        let (), dt = Span.time ~metrics:r "inner" (fun () -> Sys.opaque_identity (ignore (Array.init 1000 Fun.id))) in
        inner_dt := dt)
  in
  Alcotest.(check bool) "inner non-negative" true (!inner_dt >= 0.0);
  Alcotest.(check bool)
    "outer dominates inner" true
    (outer_dt >= !inner_dt);
  (* both spans landed in their histograms *)
  let snap = Metrics.snapshot r in
  List.iter
    (fun name ->
      match Metrics.find ~labels:[ ("span", name) ] snap "span.seconds" with
      | Some (Metrics.Histogram_value { count; _ }) ->
        Alcotest.(check int) (name ^ " observed") 1 count
      | _ -> Alcotest.fail ("span.seconds{" ^ name ^ "} missing"))
    [ "outer"; "inner" ]

let test_span_depths_in_trace () =
  let r = Metrics.create () in
  let lines =
    with_trace_file (fun sink ->
        Span.run ~metrics:r ~sink "outer" (fun () ->
            Span.run ~metrics:r ~sink "inner" (fun () -> ())))
  in
  let events = List.map parse_json lines in
  let depth_of name ev =
    match
      List.find_opt
        (fun fields ->
          List.assoc_opt "ev" fields = Some ("\"" ^ ev ^ "\"")
          && List.assoc_opt "name" fields = Some ("\"" ^ name ^ "\""))
        events
    with
    | Some fields -> int_of_string (List.assoc "depth" fields)
    | None -> Alcotest.fail (ev ^ " for " ^ name ^ " not emitted")
  in
  Alcotest.(check int) "outer open depth" 0 (depth_of "outer" "span_open");
  Alcotest.(check int) "inner open depth" 1 (depth_of "inner" "span_open");
  Alcotest.(check int) "inner close depth" 1 (depth_of "inner" "span_close");
  Alcotest.(check int) "outer close depth" 0 (depth_of "outer" "span_close")

let test_span_unwind_two_levels () =
  (* an exception thrown from a doubly-nested span unwinds through two
     finish handlers; the depth counter must land back exactly where
     each enclosing span left it, so a later sibling opens at the same
     depth the failed subtree did and the outer close stays at 0 *)
  let r = Metrics.create () in
  let lines =
    with_trace_file (fun sink ->
        Span.run ~metrics:r ~sink "outer" (fun () ->
            (match
               Span.run ~metrics:r ~sink "mid" (fun () ->
                   Span.run ~metrics:r ~sink "deep" (fun () -> failwith "boom"))
             with
            | exception Failure _ -> ()
            | _ -> Alcotest.fail "exception swallowed");
            Span.run ~metrics:r ~sink "sibling" (fun () -> ())))
  in
  let events = List.map parse_json lines in
  let depth_of name ev =
    match
      List.find_opt
        (fun fields ->
          List.assoc_opt "ev" fields = Some ("\"" ^ ev ^ "\"")
          && List.assoc_opt "name" fields = Some ("\"" ^ name ^ "\""))
        events
    with
    | Some fields -> int_of_string (List.assoc "depth" fields)
    | None -> Alcotest.fail (ev ^ " for " ^ name ^ " not emitted")
  in
  Alcotest.(check int) "deep open depth" 2 (depth_of "deep" "span_open");
  Alcotest.(check int) "deep close depth" 2 (depth_of "deep" "span_close");
  Alcotest.(check int) "mid close depth" 1 (depth_of "mid" "span_close");
  Alcotest.(check int) "sibling opens where mid did" 1
    (depth_of "sibling" "span_open");
  Alcotest.(check int) "outer close depth" 0 (depth_of "outer" "span_close");
  (* every span, including the two that unwound, landed in its histogram *)
  let snap = Metrics.snapshot r in
  List.iter
    (fun name ->
      match Metrics.find ~labels:[ ("span", name) ] snap "span.seconds" with
      | Some (Metrics.Histogram_value { count; _ }) ->
        Alcotest.(check int) (name ^ " observed") 1 count
      | _ -> Alcotest.fail ("span.seconds{" ^ name ^ "} missing"))
    [ "outer"; "mid"; "deep"; "sibling" ]

let test_span_closes_on_raise () =
  let r = Metrics.create () in
  (match Span.run ~metrics:r ~sink:Trace.null "boom" (fun () -> failwith "x") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "exception swallowed");
  match
    Metrics.find ~labels:[ ("span", "boom") ] (Metrics.snapshot r)
      "span.seconds"
  with
  | Some (Metrics.Histogram_value { count; _ }) ->
    Alcotest.(check int) "closed despite raise" 1 count
  | _ -> Alcotest.fail "span.seconds{boom} missing"

(* ------------------------------------------------------------------ *)
(* json writer *)

let test_json_escaping () =
  let check name expected v =
    Alcotest.(check string) name expected (Json.to_string v)
  in
  check "specials" {|"quote \" backslash \\ newline \n tab \t"|}
    (Json.String "quote \" backslash \\ newline \n tab \t");
  check "control chars" "\"\\u0000\\u0001\\u001f\""
    (Json.String "\000\001\031");
  check "nan is null" {|[null,null,null]|}
    (Json.List [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity ]);
  check "round trip float" {|0.1|} (Json.Float 0.1);
  check "nested" {|{"a":[1,true,null],"b":{"c":"d"}}|}
    (Json.Obj
       [
         ("a", Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
         ("b", Json.Obj [ ("c", Json.String "d") ]);
       ])

let test_trace_lines_parse () =
  let lines =
    with_trace_file (fun sink ->
        Trace.bb_node sink ~solver:"mip" ~node:1 ~depth:0 ~bound:1.5 ();
        Trace.bb_node sink ~solver:"mip" ~node:2 ~depth:1 ();
        Trace.incumbent sink ~solver:"cover" ~node:2 ~objective:4.0;
        Trace.bound_pruned sink ~solver:"mip" ~node:3 ~bound:nan ~incumbent:4.0;
        Trace.simplex_phase sink ~phase:2 ~iterations:17 ~outcome:"optimal" ();
        Trace.greedy_pick sink ~pick:9 ~gain:0.25 ~covered:0.75;
        Trace.flow_augmentation sink ~amount:1.0 ~path_cost:3.0 ~routed:1.0 ();
        Trace.presolve_reduction sink ~rows_dropped:2 ~bounds_tightened:1
          ~fixed_vars:0;
        Trace.emit sink "custom" [ ("weird", Json.String "a\"b\nc") ])
  in
  Alcotest.(check int) "one line per event" 9 (List.length lines);
  List.iter
    (fun line ->
      let fields = parse_json line in
      Alcotest.(check bool) "has ev" true (List.mem_assoc "ev" fields);
      Alcotest.(check bool) "has ts" true (List.mem_assoc "ts" fields))
    lines;
  (* the non-finite bound rendered as null, not as an invalid token *)
  let pruned =
    List.find (fun l -> List.assoc "ev" (parse_json l) = {|"bound_pruned"|}) lines
  in
  Alcotest.(check string) "nan -> null" "null"
    (List.assoc "bound" (parse_json pruned))

let test_null_sink_emits_nothing () =
  let s = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled s);
  Trace.bb_node s ~solver:"mip" ~node:1 ~depth:0 ~bound:1.0 ();
  Trace.incumbent s ~solver:"mip" ~node:1 ~objective:0.0;
  Trace.span_open s ~name:"x" ~depth:0;
  Trace.span_close s ~name:"x" ~depth:0 ~seconds:0.0 ();
  Trace.emit s "custom" [];
  Alcotest.(check int) "nothing written" 0 (Trace.events_written s);
  (* the ambient default is the null sink *)
  Alcotest.(check bool) "ambient default off" false
    (Trace.enabled (Trace.current ()))

(* ------------------------------------------------------------------ *)
(* solver agreement: the trace tells the same story as the result *)

let test_mip_trace_matches_node_count () =
  (* a knapsack the LP relaxation does not solve outright, so B&B
     explores several nodes *)
  let m = Model.create Model.Maximize in
  let xs =
    Array.init 6 (fun i ->
        Model.add_var m ~obj:(float_of_int (7 + (3 * i mod 5))) Model.Binary)
  in
  Model.add_constr m
    (Array.to_list (Array.mapi (fun i x -> (float_of_int (3 + (2 * i mod 4)), x)) xs))
    Model.Le 8.0;
  let result = ref None in
  let lines =
    with_trace_file (fun sink ->
        Trace.with_current sink (fun () -> result := Some (Mip.solve m)))
  in
  let r = Option.get !result in
  let count ev solver =
    List.length
      (List.filter
         (fun l ->
           let fields = parse_json l in
           List.assoc_opt "ev" fields = Some ("\"" ^ ev ^ "\"")
           && List.assoc_opt "solver" fields = Some ("\"" ^ solver ^ "\""))
         lines)
  in
  Alcotest.(check bool) "solved" true (r.Mip.status = Mip.Optimal);
  Alcotest.(check int) "bb_node events = result.nodes" r.Mip.nodes
    (count "bb_node" "mip");
  Alcotest.(check bool) "incumbent emitted" true (count "incumbent" "mip" >= 1)

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "gauge semantics" `Quick test_gauge;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "histogram rejects bad buckets" `Quick
      test_histogram_bad_buckets;
    Alcotest.test_case "snapshot order and json" `Quick
      test_snapshot_order_and_json;
    Alcotest.test_case "nested span monotonicity" `Quick test_nested_spans;
    Alcotest.test_case "span depths in trace" `Quick test_span_depths_in_trace;
    Alcotest.test_case "span closes on raise" `Quick test_span_closes_on_raise;
    Alcotest.test_case "span depth survives two-level unwind" `Quick
      test_span_unwind_two_levels;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "trace lines parse" `Quick test_trace_lines_parse;
    Alcotest.test_case "null sink emits nothing" `Quick
      test_null_sink_emits_nothing;
    Alcotest.test_case "mip trace matches node count" `Quick
      test_mip_trace_matches_node_count;
  ]
