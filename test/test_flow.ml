(* Flow substrate tests: Dinic max-flow against known values and
   min-cut duality; min-cost flow against brute-force LP solutions and
   structural properties (lower bounds, negative costs, infeasibility). *)

module Maxflow = Monpos_flow.Maxflow
module Mincost = Monpos_flow.Mincost
module Model = Monpos_lp.Model
module Simplex = Monpos_lp.Simplex
module Prng = Monpos_util.Prng

let test_maxflow_textbook () =
  (* CLRS-style: s=0, t=5, max flow 23 *)
  let t = Maxflow.create 6 in
  let add u v c = ignore (Maxflow.add_arc t ~src:u ~dst:v ~capacity:c) in
  add 0 1 16.0;
  add 0 2 13.0;
  add 1 2 10.0;
  add 2 1 4.0;
  add 1 3 12.0;
  add 3 2 9.0;
  add 2 4 14.0;
  add 4 3 7.0;
  add 3 5 20.0;
  add 4 5 4.0;
  let v = Maxflow.solve t ~source:0 ~sink:5 in
  Alcotest.(check (float 1e-9)) "max flow" 23.0 v

let test_maxflow_disconnected () =
  let t = Maxflow.create 4 in
  ignore (Maxflow.add_arc t ~src:0 ~dst:1 ~capacity:5.0);
  ignore (Maxflow.add_arc t ~src:2 ~dst:3 ~capacity:5.0);
  Alcotest.(check (float 1e-9)) "zero" 0.0 (Maxflow.solve t ~source:0 ~sink:3)

let test_maxflow_repeat_solve () =
  let t = Maxflow.create 3 in
  let a = Maxflow.add_arc t ~src:0 ~dst:1 ~capacity:3.0 in
  ignore (Maxflow.add_arc t ~src:1 ~dst:2 ~capacity:2.0);
  let v1 = Maxflow.solve t ~source:0 ~sink:2 in
  let v2 = Maxflow.solve t ~source:0 ~sink:2 in
  Alcotest.(check (float 1e-9)) "repeatable" v1 v2;
  Alcotest.(check (float 1e-9)) "bottleneck" 2.0 v2;
  Alcotest.(check (float 1e-9)) "arc flow" 2.0 (Maxflow.flow t a)

let test_maxflow_min_cut () =
  let t = Maxflow.create 4 in
  ignore (Maxflow.add_arc t ~src:0 ~dst:1 ~capacity:1.0);
  ignore (Maxflow.add_arc t ~src:0 ~dst:2 ~capacity:10.0);
  ignore (Maxflow.add_arc t ~src:1 ~dst:3 ~capacity:10.0);
  ignore (Maxflow.add_arc t ~src:2 ~dst:3 ~capacity:1.0);
  let v = Maxflow.solve t ~source:0 ~sink:3 in
  Alcotest.(check (float 1e-9)) "flow 2" 2.0 v;
  let side = Maxflow.min_cut_side t ~source:0 in
  Alcotest.(check bool) "source in" true side.(0);
  Alcotest.(check bool) "sink out" false side.(3)

let test_mincost_simple () =
  (* two parallel routes, cheap one saturates first *)
  let t = Mincost.create 2 in
  let cheap = Mincost.add_arc t ~src:0 ~dst:1 ~capacity:5.0 ~cost:1.0 in
  let costly = Mincost.add_arc t ~src:0 ~dst:1 ~capacity:10.0 ~cost:3.0 in
  Mincost.set_supply t 0 8.0;
  Mincost.set_supply t 1 (-8.0);
  Alcotest.(check bool) "optimal" true (Mincost.solve t = Mincost.Optimal);
  Alcotest.(check (float 1e-9)) "cheap full" 5.0 (Mincost.flow t cheap);
  Alcotest.(check (float 1e-9)) "rest costly" 3.0 (Mincost.flow t costly);
  Alcotest.(check (float 1e-9)) "cost" 14.0 (Mincost.total_cost t)

let test_mincost_prefers_cheap_path () =
  (* 0 -> 1 -> 3 cost 2, 0 -> 2 -> 3 cost 5; capacity forces split *)
  let t = Mincost.create 4 in
  let a01 = Mincost.add_arc t ~src:0 ~dst:1 ~capacity:4.0 ~cost:1.0 in
  let _a13 = Mincost.add_arc t ~src:1 ~dst:3 ~capacity:4.0 ~cost:1.0 in
  let a02 = Mincost.add_arc t ~src:0 ~dst:2 ~capacity:10.0 ~cost:2.0 in
  let _a23 = Mincost.add_arc t ~src:2 ~dst:3 ~capacity:10.0 ~cost:3.0 in
  Mincost.set_supply t 0 6.0;
  Mincost.set_supply t 3 (-6.0);
  Alcotest.(check bool) "optimal" true (Mincost.solve t = Mincost.Optimal);
  Alcotest.(check (float 1e-9)) "cheap route" 4.0 (Mincost.flow t a01);
  Alcotest.(check (float 1e-9)) "overflow route" 2.0 (Mincost.flow t a02);
  Alcotest.(check (float 1e-9)) "cost" (8.0 +. 10.0) (Mincost.total_cost t)

let test_mincost_lower_bounds () =
  (* force 3 units over the expensive arc via a lower bound *)
  let t = Mincost.create 2 in
  let cheap = Mincost.add_arc t ~src:0 ~dst:1 ~capacity:10.0 ~cost:1.0 in
  let forced =
    Mincost.add_arc ~lower:3.0 t ~src:0 ~dst:1 ~capacity:10.0 ~cost:5.0
  in
  Mincost.set_supply t 0 8.0;
  Mincost.set_supply t 1 (-8.0);
  Alcotest.(check bool) "optimal" true (Mincost.solve t = Mincost.Optimal);
  Alcotest.(check (float 1e-9)) "forced at lower" 3.0 (Mincost.flow t forced);
  Alcotest.(check (float 1e-9)) "cheap rest" 5.0 (Mincost.flow t cheap);
  Alcotest.(check (float 1e-9)) "cost" 20.0 (Mincost.total_cost t)

let test_mincost_infeasible_capacity () =
  let t = Mincost.create 2 in
  ignore (Mincost.add_arc t ~src:0 ~dst:1 ~capacity:2.0 ~cost:1.0);
  Mincost.set_supply t 0 5.0;
  Mincost.set_supply t 1 (-5.0);
  Alcotest.(check bool) "infeasible" true (Mincost.solve t = Mincost.Infeasible)

let test_mincost_infeasible_lower_bound () =
  (* lower bound with no way to route it back *)
  let t = Mincost.create 3 in
  ignore (Mincost.add_arc ~lower:2.0 t ~src:0 ~dst:1 ~capacity:5.0 ~cost:1.0);
  (* node 1 must forward 2 units but has no outgoing arc and no demand *)
  Mincost.set_supply t 0 0.0;
  Alcotest.(check bool) "infeasible" true (Mincost.solve t = Mincost.Infeasible)

let test_mincost_negative_cost () =
  (* a negative-cost arc should be used even if a zero-cost route exists *)
  let t = Mincost.create 3 in
  let neg = Mincost.add_arc t ~src:0 ~dst:1 ~capacity:4.0 ~cost:(-2.0) in
  let _mid = Mincost.add_arc t ~src:1 ~dst:2 ~capacity:4.0 ~cost:1.0 in
  let direct = Mincost.add_arc t ~src:0 ~dst:2 ~capacity:4.0 ~cost:0.0 in
  Mincost.set_supply t 0 4.0;
  Mincost.set_supply t 2 (-4.0);
  Alcotest.(check bool) "optimal" true (Mincost.solve t = Mincost.Optimal);
  Alcotest.(check (float 1e-9)) "neg arc used" 4.0 (Mincost.flow t neg);
  Alcotest.(check (float 1e-9)) "direct unused" 0.0 (Mincost.flow t direct);
  Alcotest.(check (float 1e-9)) "cost" (-4.0) (Mincost.total_cost t)

(* Regression: the lower-bound/supply transformation combined with
   negative arc costs. The shift moves supply off the endpoints of the
   bounded arc, and the path search must still price the negative arcs
   correctly (the SPFA/Bellman-Ford initialization path); run under
   both kernels so they pin each other down. *)
let both_algos f =
  List.iter
    (fun (name, algo) -> f name algo)
    [ ("ssp", Mincost.Ssp); ("netsimplex", Mincost.Net_simplex) ]

let test_mincost_lower_bound_negative_cost () =
  both_algos (fun name algo ->
      let t = Mincost.create 3 in
      let neg =
        Mincost.add_arc ~lower:2.0 t ~src:0 ~dst:1 ~capacity:6.0 ~cost:(-3.0)
      in
      let alt = Mincost.add_arc t ~src:0 ~dst:1 ~capacity:5.0 ~cost:1.0 in
      let mid = Mincost.add_arc t ~src:1 ~dst:2 ~capacity:10.0 ~cost:0.5 in
      Mincost.set_supply t 0 4.0;
      Mincost.set_supply t 2 (-4.0);
      Alcotest.(check bool)
        (name ^ ": optimal") true
        (Mincost.solve ~algo t = Mincost.Optimal);
      (* all 4 units take the negative arc: 4*(-3) + 4*0.5 = -10 *)
      Alcotest.(check (float 1e-9)) (name ^ ": neg arc") 4.0 (Mincost.flow t neg);
      Alcotest.(check (float 1e-9)) (name ^ ": alt unused") 0.0 (Mincost.flow t alt);
      Alcotest.(check (float 1e-9)) (name ^ ": mid") 4.0 (Mincost.flow t mid);
      Alcotest.(check (float 1e-9)) (name ^ ": cost") (-10.0) (Mincost.total_cost t))

let test_mincost_lower_bound_negative_cost_diamond () =
  (* diamond DAG: the bounded branch is also the one ending in a
     negative arc, so the shifted supplies ride on negative costs *)
  both_algos (fun name algo ->
      let t = Mincost.create 4 in
      let a = Mincost.add_arc t ~src:0 ~dst:1 ~capacity:10.0 ~cost:2.0 in
      let _b = Mincost.add_arc t ~src:1 ~dst:3 ~capacity:10.0 ~cost:0.0 in
      let c =
        Mincost.add_arc ~lower:3.0 t ~src:0 ~dst:2 ~capacity:10.0 ~cost:1.0
      in
      let d = Mincost.add_arc t ~src:2 ~dst:3 ~capacity:10.0 ~cost:(-2.0) in
      Mincost.set_supply t 0 5.0;
      Mincost.set_supply t 3 (-5.0);
      Alcotest.(check bool)
        (name ^ ": optimal") true
        (Mincost.solve ~algo t = Mincost.Optimal);
      (* branch via 2 costs -1/unit vs 2/unit via 1: everything takes it *)
      Alcotest.(check (float 1e-9)) (name ^ ": top unused") 0.0 (Mincost.flow t a);
      Alcotest.(check (float 1e-9)) (name ^ ": bounded branch") 5.0 (Mincost.flow t c);
      Alcotest.(check (float 1e-9)) (name ^ ": neg arc") 5.0 (Mincost.flow t d);
      Alcotest.(check (float 1e-9)) (name ^ ": cost") (-5.0) (Mincost.total_cost t))

let test_mincost_lower_bound_overcommits_infeasible () =
  (* the lower bound alone exceeds what conservation allows: any flow
     assignment needs a negative value on the parallel arc *)
  both_algos (fun name algo ->
      let t = Mincost.create 2 in
      ignore
        (Mincost.add_arc ~lower:3.0 t ~src:0 ~dst:1 ~capacity:6.0 ~cost:(-1.0));
      ignore (Mincost.add_arc t ~src:0 ~dst:1 ~capacity:5.0 ~cost:1.0);
      Mincost.set_supply t 0 2.0;
      Mincost.set_supply t 1 (-2.0);
      Alcotest.(check bool)
        (name ^ ": infeasible") true
        (Mincost.solve ~algo t = Mincost.Infeasible))

let test_mincost_potentials_exposure () =
  (* potentials are a Net_simplex-only certificate *)
  let t = Mincost.create 2 in
  ignore (Mincost.add_arc t ~src:0 ~dst:1 ~capacity:5.0 ~cost:1.0);
  Mincost.set_supply t 0 2.0;
  Mincost.set_supply t 1 (-2.0);
  Alcotest.(check bool)
    "ssp optimal" true
    (Mincost.solve ~algo:Mincost.Ssp t = Mincost.Optimal);
  Alcotest.(check bool) "no potentials after ssp" true (Mincost.potentials t = None);
  Alcotest.(check bool)
    "netsimplex optimal" true
    (Mincost.solve ~algo:Mincost.Net_simplex t = Mincost.Optimal);
  match Mincost.potentials t with
  | None -> Alcotest.fail "potentials missing after netsimplex"
  | Some pi ->
    Alcotest.(check int) "one per node" 2 (Array.length pi);
    (* the arc carries interior flow, so its reduced cost vanishes *)
    Alcotest.(check (float 1e-9)) "tight arc prices out" 0.0 (1.0 +. pi.(0) -. pi.(1))

(* Cross-check: min-cost flow equals the LP optimum computed by our
   simplex on the node-arc incidence formulation. *)
let prop_mincost_matches_lp =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"min-cost flow matches LP optimum" ~count:60 gen
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 4 in
      let arcs = ref [] in
      (* random arcs; ensure a 0 -> n-1 backbone exists *)
      for v = 0 to n - 2 do
        arcs := (v, v + 1, 2.0 +. Prng.float rng 6.0, Prng.float rng 4.0) :: !arcs
      done;
      for _ = 1 to n do
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v then
          arcs := (u, v, Prng.float rng 8.0, Prng.float rng 4.0) :: !arcs
      done;
      let arcs = List.rev !arcs in
      let demand = 1.0 +. Prng.float rng 2.0 in
      (* mincost solver *)
      let net = Mincost.create n in
      let handles =
        List.map
          (fun (u, v, cap, cost) ->
            Mincost.add_arc net ~src:u ~dst:v ~capacity:cap ~cost)
          arcs
      in
      ignore handles;
      Mincost.set_supply net 0 demand;
      Mincost.set_supply net (n - 1) (-.demand);
      let st = Mincost.solve net in
      (* LP formulation *)
      let m = Model.create Model.Minimize in
      let xs =
        List.map
          (fun (_, _, cap, cost) -> Model.add_var m ~ub:cap ~obj:cost Model.Continuous)
          arcs
      in
      let pairs = List.combine arcs xs in
      for v = 0 to n - 1 do
        let terms =
          List.concat_map
            (fun ((u, w, _, _), x) ->
              (if u = v then [ (1.0, x) ] else [])
              @ if w = v then [ (-1.0, x) ] else [])
            pairs
        in
        let rhs = if v = 0 then demand else if v = n - 1 then -.demand else 0.0 in
        if terms <> [] then Model.add_constr m terms Model.Eq rhs
        else if rhs <> 0.0 then Model.add_constr m [] Model.Eq rhs
      done;
      let lp = Simplex.solve_model m in
      match (st, lp.Simplex.status) with
      | Mincost.Infeasible, Simplex.Infeasible -> true
      | Mincost.Optimal, Simplex.Optimal ->
        abs_float (Mincost.total_cost net -. lp.Simplex.objective) < 1e-6
      | _ -> false)

(* Flow conservation holds on every solved instance. *)
let prop_flow_conservation =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"min-cost flow conserves flow" ~count:60 gen
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 5 in
      let net = Mincost.create n in
      let arcs = ref [] in
      for v = 0 to n - 2 do
        let cap = 3.0 +. Prng.float rng 5.0 in
        let h = Mincost.add_arc net ~src:v ~dst:(v + 1) ~capacity:cap ~cost:(Prng.float rng 3.0) in
        arcs := (v, v + 1, h) :: !arcs
      done;
      for _ = 1 to n do
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v then begin
          let h =
            Mincost.add_arc net ~src:u ~dst:v ~capacity:(Prng.float rng 5.0)
              ~cost:(Prng.float rng 3.0)
          in
          arcs := (u, v, h) :: !arcs
        end
      done;
      let demand = 1.0 +. Prng.float rng 2.0 in
      Mincost.set_supply net 0 demand;
      Mincost.set_supply net (n - 1) (-.demand);
      match Mincost.solve net with
      | Mincost.Infeasible -> true
      | Mincost.Optimal ->
        let balance = Array.make n 0.0 in
        List.iter
          (fun (u, v, h) ->
            let f = Mincost.flow net h in
            balance.(u) <- balance.(u) -. f;
            balance.(v) <- balance.(v) +. f)
          !arcs;
        let ok = ref true in
        for v = 0 to n - 1 do
          let expected =
            if v = 0 then -.demand else if v = n - 1 then demand else 0.0
          in
          if abs_float (balance.(v) -. expected) > 1e-6 then ok := false
        done;
        !ok)

let suite =
  [
    Alcotest.test_case "maxflow textbook" `Quick test_maxflow_textbook;
    Alcotest.test_case "maxflow disconnected" `Quick test_maxflow_disconnected;
    Alcotest.test_case "maxflow repeat solve" `Quick test_maxflow_repeat_solve;
    Alcotest.test_case "maxflow min cut" `Quick test_maxflow_min_cut;
    Alcotest.test_case "mincost simple" `Quick test_mincost_simple;
    Alcotest.test_case "mincost cheap path" `Quick test_mincost_prefers_cheap_path;
    Alcotest.test_case "mincost lower bounds" `Quick test_mincost_lower_bounds;
    Alcotest.test_case "mincost infeasible capacity" `Quick test_mincost_infeasible_capacity;
    Alcotest.test_case "mincost infeasible lower bound" `Quick test_mincost_infeasible_lower_bound;
    Alcotest.test_case "mincost negative cost" `Quick test_mincost_negative_cost;
    Alcotest.test_case "mincost lower bound + negative cost" `Quick
      test_mincost_lower_bound_negative_cost;
    Alcotest.test_case "mincost lower bound + negative cost diamond" `Quick
      test_mincost_lower_bound_negative_cost_diamond;
    Alcotest.test_case "mincost overcommitted lower bound infeasible" `Quick
      test_mincost_lower_bound_overcommits_infeasible;
    Alcotest.test_case "mincost potentials exposure" `Quick
      test_mincost_potentials_exposure;
    QCheck_alcotest.to_alcotest prop_mincost_matches_lp;
    QCheck_alcotest.to_alcotest prop_flow_conservation;
  ]
