(* Topology generator tests: paper-sized presets, structural
   invariants (two-level hierarchy, connectivity), synthetic graphs. *)

module Pop = Monpos_topo.Pop
module Synthetic = Monpos_topo.Synthetic
module Graph = Monpos_graph.Graph
module Paths = Monpos_graph.Paths
module Prng = Monpos_util.Prng

let test_pop10_counts () =
  let pop = Pop.make_preset `Pop10 ~seed:1 in
  Alcotest.(check int) "routers" 10 (Pop.num_routers pop);
  Alcotest.(check int) "links" 27 (Graph.num_edges pop.Pop.graph);
  Alcotest.(check int) "router links" 15 (Pop.router_link_count pop);
  Alcotest.(check int) "endpoints" 12 (List.length (Pop.endpoints pop))

let test_pop15_counts () =
  let pop = Pop.make_preset `Pop15 ~seed:1 in
  Alcotest.(check int) "routers" 15 (Pop.num_routers pop);
  Alcotest.(check int) "links" 71 (Graph.num_edges pop.Pop.graph);
  Alcotest.(check int) "endpoints" 45 (List.length (Pop.endpoints pop))

let test_pop29_pop80_router_counts () =
  let p29 = Pop.make_preset `Pop29 ~seed:1 in
  let p80 = Pop.make_preset `Pop80 ~seed:1 in
  Alcotest.(check int) "29 routers" 29 (Pop.num_routers p29);
  Alcotest.(check int) "80 routers" 80 (Pop.num_routers p80)

let test_connectivity_across_seeds () =
  List.iter
    (fun seed ->
      List.iter
        (fun p ->
          let pop = Pop.make_preset p ~seed in
          Alcotest.(check bool) "connected" true
            (Paths.is_connected pop.Pop.graph))
        [ `Pop10; `Pop15; `Pop29; `Pop80 ])
    [ 1; 2; 3; 42; 1000 ]

let test_two_level_structure () =
  let pop = Pop.make_preset `Pop15 ~seed:7 in
  let g = pop.Pop.graph in
  (* endpoints have degree exactly 1 *)
  List.iter
    (fun v -> Alcotest.(check int) "endpoint degree" 1 (Graph.degree g v))
    (Pop.endpoints pop);
  (* customers attach to access routers, peers to backbone routers *)
  Graph.iter_edges
    (fun _ u v ->
      let check a b =
        match (pop.Pop.roles.(a), pop.Pop.roles.(b)) with
        | Pop.Customer, r ->
          Alcotest.(check bool) "customer on access" true (r = Pop.Access)
        | Pop.Peer, r ->
          Alcotest.(check bool) "peer on backbone" true (r = Pop.Backbone)
        | _ -> ()
      in
      check u v;
      check v u)
    g;
  (* no access-access links: extra links are chords or dual homings *)
  Graph.iter_edges
    (fun _ u v ->
      match (pop.Pop.roles.(u), pop.Pop.roles.(v)) with
      | Pop.Access, Pop.Access ->
        Alcotest.fail "access-access link generated"
      | _ -> ())
    g

let test_deterministic_generation () =
  let a = Pop.make_preset `Pop10 ~seed:5 in
  let b = Pop.make_preset `Pop10 ~seed:5 in
  Alcotest.(check int) "same edges" (Graph.num_edges a.Pop.graph)
    (Graph.num_edges b.Pop.graph);
  Graph.iter_edges
    (fun e u v ->
      let u', v' = Graph.endpoints b.Pop.graph e in
      Alcotest.(check (pair int int)) "edge match" (u, v) (u', v'))
    a.Pop.graph

let test_invalid_params () =
  Alcotest.check_raises "too few links"
    (Invalid_argument "Pop.generate: router_links below connectivity minimum")
    (fun () ->
      ignore
        (Pop.generate
           { Pop.backbone = 4; access = 6; router_links = 5; endpoints = 0; peers = 0 }
           ~seed:1))

let test_synthetic_ring () =
  let g = Synthetic.ring 5 in
  Alcotest.(check int) "nodes" 5 (Graph.num_nodes g);
  Alcotest.(check int) "edges" 5 (Graph.num_edges g);
  for v = 0 to 4 do
    Alcotest.(check int) "degree 2" 2 (Graph.degree g v)
  done

let test_synthetic_grid () =
  let g = Synthetic.grid 3 4 in
  Alcotest.(check int) "nodes" 12 (Graph.num_nodes g);
  Alcotest.(check int) "edges" ((3 * 3) + (2 * 4)) (Graph.num_edges g);
  Alcotest.(check bool) "connected" true (Paths.is_connected g)

let test_synthetic_star_complete () =
  let s = Synthetic.star 6 in
  Alcotest.(check int) "star edges" 6 (Graph.num_edges s);
  Alcotest.(check int) "hub degree" 6 (Graph.degree s 0);
  let k = Synthetic.complete 5 in
  Alcotest.(check int) "K5 edges" 10 (Graph.num_edges k)

let prop_waxman_connected =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"waxman graphs are connected and simple" ~count:50
    gen (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 30 in
      let g = Synthetic.waxman ~n ~alpha:0.4 ~beta:0.3 ~seed in
      Paths.is_connected g
      &&
      (* no self loops *)
      Graph.fold_edges (fun _ u v acc -> acc && u <> v) g true)

let prop_pop_generation_valid =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"random pops are connected with correct counts"
    ~count:50 gen (fun seed ->
      let rng = Prng.create seed in
      let backbone = 2 + Prng.int rng 6 in
      let access = Prng.int rng 10 in
      let nrouters = backbone + access in
      let min_links = (if backbone = 2 then 1 else backbone) + access in
      let max_links = nrouters * (nrouters - 1) / 2 in
      let router_links = min max_links (min_links + Prng.int rng 10) in
      let endpoints = Prng.int rng 10 in
      let peers = if endpoints = 0 then 0 else Prng.int rng (endpoints + 1) in
      let pop =
        Pop.generate
          { Pop.backbone; access; router_links; endpoints; peers }
          ~seed
      in
      Paths.is_connected pop.Pop.graph
      && Pop.num_routers pop = nrouters
      && List.length (Pop.endpoints pop) = endpoints
      && Pop.router_link_count pop = router_links
      && Graph.num_edges pop.Pop.graph = router_links + endpoints)

module Topo_file = Monpos_topo.Topo_file
module Rerror = Monpos_resilience.Error

let test_parse_samples () =
  List.iter
    (fun (name, text) ->
      match Topo_file.parse text with
      | Error e -> Alcotest.fail (name ^ ": " ^ Rerror.to_string e)
      | Ok pop ->
        Alcotest.(check bool) (name ^ " connected") true
          (Paths.is_connected pop.Pop.graph);
        Alcotest.(check bool) (name ^ " has routers") true
          (Pop.num_routers pop > 0))
    Topo_file.samples

let test_load_sample_counts () =
  let pop = Topo_file.load_sample "metro-7" in
  Alcotest.(check int) "routers" 7 (Pop.num_routers pop);
  Alcotest.(check int) "endpoints" 6 (List.length (Pop.endpoints pop));
  Alcotest.(check string) "name" "metro-7" pop.Pop.name;
  let b11 = Topo_file.load_sample "backbone-11" in
  Alcotest.(check int) "backbone-11 routers" 11 (Pop.num_routers b11)

let test_round_trip () =
  let pop = Pop.make_preset `Pop10 ~seed:4 in
  match Topo_file.parse (Topo_file.to_string pop) with
  | Error e -> Alcotest.fail (Rerror.to_string e)
  | Ok pop' ->
    Alcotest.(check int) "nodes" (Graph.num_nodes pop.Pop.graph)
      (Graph.num_nodes pop'.Pop.graph);
    Alcotest.(check int) "edges" (Graph.num_edges pop.Pop.graph)
      (Graph.num_edges pop'.Pop.graph);
    Graph.iter_edges
      (fun e u v ->
        let u', v' = Graph.endpoints pop'.Pop.graph e in
        Alcotest.(check (pair int int)) "edge" (u, v) (u', v'))
      pop.Pop.graph;
    Array.iteri
      (fun v r -> Alcotest.(check bool) "role" true (pop'.Pop.roles.(v) = r))
      pop.Pop.roles

let test_parse_errors () =
  let check_err text fragment =
    match Topo_file.parse ~file:"bad.topo" text with
    | Ok _ -> Alcotest.fail ("expected error for: " ^ text)
    | Error (Rerror.Parse_error { file; line; msg } as e) ->
      Alcotest.(check string) "error names the input" "bad.topo" file;
      Alcotest.(check bool) "line located" true (line >= 0);
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" (Rerror.to_string e) fragment)
        true
        (Astring.String.is_infix ~affix:fragment msg)
    | Error e ->
      Alcotest.fail ("expected a parse error, got " ^ Rerror.to_string e)
  in
  check_err "node a wizard
" "unknown role";
  check_err "node a backbone
node a backbone
" "duplicate";
  check_err "link a b
" "unknown node";
  check_err "node a backbone
link a a
" "self-loop";
  check_err "frobnicate
" "unknown directive";
  check_err "node a backbone
node c customer
link a c
node d customer
"
    "exactly one link"

let test_parse_comments_and_blanks () =
  let text = "# header

name t
node a backbone # trailing
node b backbone
link a b
" in
  match Topo_file.parse text with
  | Error e -> Alcotest.fail (Rerror.to_string e)
  | Ok pop ->
    Alcotest.(check string) "name" "t" pop.Pop.name;
    Alcotest.(check int) "edges" 1 (Graph.num_edges pop.Pop.graph)

let suite =
  [
    Alcotest.test_case "pop10 counts" `Quick test_pop10_counts;
    Alcotest.test_case "pop15 counts" `Quick test_pop15_counts;
    Alcotest.test_case "pop29/pop80 routers" `Quick test_pop29_pop80_router_counts;
    Alcotest.test_case "connectivity" `Quick test_connectivity_across_seeds;
    Alcotest.test_case "two-level structure" `Quick test_two_level_structure;
    Alcotest.test_case "deterministic" `Quick test_deterministic_generation;
    Alcotest.test_case "invalid params" `Quick test_invalid_params;
    Alcotest.test_case "ring" `Quick test_synthetic_ring;
    Alcotest.test_case "grid" `Quick test_synthetic_grid;
    Alcotest.test_case "star/complete" `Quick test_synthetic_star_complete;
    Alcotest.test_case "parse samples" `Quick test_parse_samples;
    Alcotest.test_case "sample counts" `Quick test_load_sample_counts;
    Alcotest.test_case "file round trip" `Quick test_round_trip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
    QCheck_alcotest.to_alcotest prop_waxman_connected;
    QCheck_alcotest.to_alcotest prop_pop_generation_valid;
  ]
