(* Set-cover tests: greedy vs exact vs brute force, partial covers,
   the Figure 3 greedy counterexample pattern, and both Theorem 1
   reductions. *)

module Cover = Monpos_cover.Cover
module Graph = Monpos_graph.Graph
module Prng = Monpos_util.Prng

let mk ?weights sets = Cover.make ~num_items:(
    1 + List.fold_left (fun acc s -> List.fold_left max acc s) 0
          (Array.to_list sets))
    ?weights sets

let test_basic_cover () =
  let inst = mk [| [ 0; 1 ]; [ 2; 3 ]; [ 0; 2 ]; [ 1; 3 ] |] in
  let g = Cover.greedy inst in
  Alcotest.(check bool) "greedy covers" true (Cover.is_cover inst g);
  let e = Cover.exact inst in
  Alcotest.(check bool) "exact covers" true (Cover.is_cover inst e);
  Alcotest.(check int) "optimum 2" 2 (List.length e)

let test_greedy_suboptimal_classic () =
  (* classic lnN counterexample: greedy picks the big set first and
     needs 3 sets where 2 suffice *)
  let inst =
    mk [| [ 0; 1; 3; 4 ]; [ 0; 1; 2 ]; [ 3; 4; 5 ] |]
  in
  let g = Cover.greedy inst in
  let e = Cover.exact inst in
  Alcotest.(check int) "greedy 3" 3 (List.length g);
  Alcotest.(check int) "exact 2" 2 (List.length e)

let test_figure3_counterexample () =
  (* The paper's Figure 3: four traffics, two of weight 2 and two of
     weight 1. The greedy takes the load-4 link first and ends with 3
     monitors; the optimum uses the two load-3 links.
     Sets(=links): l0 covers {t0,t1} (the two weight-2 traffics),
     l1 covers {t0,t2}, l2 covers {t1,t3}, l3 covers {t2}, l4 covers
     {t3}. *)
  let weights = [| 2.0; 2.0; 1.0; 1.0 |] in
  let inst =
    Cover.make ~num_items:4 ~weights
      [| [ 0; 1 ]; [ 0; 2 ]; [ 1; 3 ]; [ 2 ]; [ 3 ] |]
  in
  let g = Cover.greedy inst in
  let e = Cover.exact inst in
  Alcotest.(check int) "greedy uses 3" 3 (List.length g);
  Alcotest.(check int) "optimum is 2" 2 (List.length e);
  Alcotest.(check bool) "greedy starts with the heaviest link" true
    (List.hd g = 0)

let test_partial_cover () =
  let weights = [| 10.0; 5.0; 1.0 |] in
  let inst = Cover.make ~num_items:3 ~weights [| [ 0 ]; [ 1 ]; [ 2 ] |] in
  (* covering 14/16 of the weight needs the two big singletons *)
  let g = Cover.greedy ~target:14.0 inst in
  Alcotest.(check int) "greedy picks 2" 2 (List.length g);
  let e = Cover.exact ~target:14.0 inst in
  Alcotest.(check int) "exact picks 2" 2 (List.length e);
  Alcotest.(check bool) "partial cover ok" true
    (Cover.is_cover ~target:14.0 inst e);
  Alcotest.(check bool) "not full cover" false (Cover.is_cover inst e)

let test_unreachable_target () =
  let inst = Cover.make ~num_items:2 [| [ 0 ] |] in
  Alcotest.(check bool) "greedy raises Infeasible_model" true
    (try
       ignore (Cover.greedy inst);
       false
     with
    | Monpos_resilience.Error.Error (Monpos_resilience.Error.Infeasible_model _)
      ->
      true)

let test_guarantee_value () =
  let inst = mk [| [ 0; 1; 2 ]; [ 0 ] |] in
  Alcotest.(check (float 1e-9)) "H_3" (1.0 +. 0.5 +. (1.0 /. 3.0))
    (Cover.greedy_guarantee inst)

let brute_force_cover ?target inst =
  let nsets = Array.length inst.Cover.sets in
  let best = ref None in
  for mask = 0 to (1 lsl nsets) - 1 do
    let chosen =
      List.filter (fun j -> mask land (1 lsl j) <> 0) (List.init nsets Fun.id)
    in
    if Cover.is_cover ?target inst chosen then
      match !best with
      | Some b when List.length b <= List.length chosen -> ()
      | _ -> best := Some chosen
  done;
  !best

let prop_exact_matches_brute_force =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"exact cover matches brute force" ~count:100 gen
    (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 8 in
      let nsets = 1 + Prng.int rng 9 in
      let sets =
        Array.init nsets (fun _ ->
            List.filter (fun _ -> Prng.bool rng) (List.init n Fun.id))
      in
      let weights = Array.init n (fun _ -> 0.5 +. Prng.float rng 4.5) in
      let inst = Cover.make ~num_items:n ~weights sets in
      let target =
        if Prng.bool rng then None
        else Some (Prng.float rng (Cover.total_weight inst))
      in
      match brute_force_cover ?target inst with
      | None -> (
        try
          ignore (Cover.exact ?target inst);
          false
        with
        | Monpos_resilience.Error.Error
            (Monpos_resilience.Error.Infeasible_model _) ->
          true)
      | Some bf ->
        let e = Cover.exact ?target inst in
        List.length e = List.length bf && Cover.is_cover ?target inst e)

let prop_greedy_feasible_and_bounded =
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"greedy is feasible and within its guarantee"
    ~count:100 gen (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 8 in
      let nsets = 2 + Prng.int rng 8 in
      let sets =
        Array.init nsets (fun j ->
            if j = 0 then List.init n Fun.id (* ensure coverable *)
            else List.filter (fun _ -> Prng.bool rng) (List.init n Fun.id))
      in
      let inst = Cover.make ~num_items:n sets in
      let g = Cover.greedy inst in
      let e = Cover.exact inst in
      Cover.is_cover inst g
      && float_of_int (List.length g)
         <= (Cover.greedy_guarantee inst *. float_of_int (List.length e)) +. 1e-9)

let test_exact_detailed_node_limit () =
  (* a tiny node budget must still return a feasible cover, flagged as
     unproven *)
  let g = Monpos_util.Prng.create 3 in
  let n = 40 and nsets = 25 in
  let sets =
    Array.init nsets (fun j ->
        if j = 0 then List.init n Fun.id
        else List.filter (fun _ -> Monpos_util.Prng.bool g) (List.init n Fun.id))
  in
  let inst = Cover.make ~num_items:n sets in
  (* a zero budget trips before the first node: the greedy/local-search
     incumbent comes back feasible but unproven *)
  let r = Cover.exact_detailed ~node_limit:0 inst in
  Alcotest.(check bool) "feasible" true (Cover.is_cover inst r.Cover.chosen);
  Alcotest.(check bool) "not proven" false r.Cover.proven_optimal;
  (* with a generous budget the same instance proves *)
  let r2 = Cover.exact_detailed inst in
  Alcotest.(check bool) "proven" true r2.Cover.proven_optimal;
  Alcotest.(check bool) "no worse" true
    (List.length r2.Cover.chosen <= List.length r.Cover.chosen)

let test_reduction_to_monitoring_structure () =
  (* Figure 4 example shape: items covered by overlapping sets *)
  let inst = mk [| [ 0; 1 ]; [ 1; 2 ]; [ 2; 3 ] |] in
  let red = Cover.Reduction.to_monitoring inst in
  (* 2 nodes per set; edges: one per set + 2 per intersecting pair *)
  Alcotest.(check int) "nodes" 6 (Graph.num_nodes red.Cover.Reduction.graph);
  Alcotest.(check int) "edges" (3 + 4) (Graph.num_edges red.Cover.Reduction.graph);
  (* every item's path visits exactly the edges of its containing sets *)
  Array.iteri
    (fun u (_, edges) ->
      let expected =
        List.filter
          (fun j -> List.mem u inst.Cover.sets.(j))
          (List.init 3 Fun.id)
        |> List.map (fun j -> red.Cover.Reduction.edge_of_set.(j))
      in
      let set_edges =
        List.filter
          (fun e -> Array.exists (( = ) e) red.Cover.Reduction.edge_of_set)
          edges
      in
      Alcotest.(check (list int)) "set edges on path" expected set_edges)
    red.Cover.Reduction.paths

let test_reduction_paths_are_walks () =
  let inst = mk [| [ 0; 1; 2 ]; [ 0; 2 ]; [ 1; 2; 3 ]; [ 3 ] |] in
  let red = Cover.Reduction.to_monitoring inst in
  let g = red.Cover.Reduction.graph in
  Array.iter
    (fun (nodes, edges) ->
      Alcotest.(check int) "lengths" (List.length nodes) (List.length edges + 1);
      let rec walk ns es =
        match (ns, es) with
        | [ _ ], [] -> true
        | u :: (v :: _ as rest), e :: etl ->
          let a, b = Graph.endpoints g e in
          ((a = u && b = v) || (a = v && b = u)) && walk rest etl
        | _ -> false
      in
      Alcotest.(check bool) "valid walk" true (walk nodes edges))
    red.Cover.Reduction.paths

let prop_reduction_preserves_optimum =
  (* Theorem 1: minimum monitored-link count on the reduced instance
     equals the minimum set cover size. *)
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"theorem 1 reduction preserves the optimum"
    ~count:60 gen (fun seed ->
      let rng = Prng.create seed in
      let n = 2 + Prng.int rng 5 in
      let nsets = 2 + Prng.int rng 5 in
      let sets =
        Array.init nsets (fun j ->
            if j = 0 then List.init n Fun.id
            else List.filter (fun _ -> Prng.bool rng) (List.init n Fun.id))
      in
      let inst = Cover.make ~num_items:n sets in
      let msc_opt = List.length (Cover.exact inst) in
      let red = Cover.Reduction.to_monitoring inst in
      (* monitoring instance as cover: sets = all graph edges *)
      let mon =
        Cover.Reduction.of_monitoring
          ~num_edges:(Graph.num_edges red.Cover.Reduction.graph)
          ~weights:(Array.make n 1.0)
          (Array.map snd red.Cover.Reduction.paths)
      in
      let mon_opt = List.length (Cover.exact mon) in
      msc_opt = mon_opt)

let prop_round_trip_of_monitoring =
  (* of_monitoring builds the cover whose greedy equals monitoring
     greedy by construction *)
  let gen = QCheck2.Gen.int_range 0 1_000_000 in
  QCheck2.Test.make ~name:"of_monitoring sets mirror path membership"
    ~count:100 gen (fun seed ->
      let rng = Prng.create seed in
      let ntraffics = 1 + Prng.int rng 6 in
      let nedges = 2 + Prng.int rng 6 in
      let paths =
        Array.init ntraffics (fun _ ->
            List.sort_uniq compare
              (List.init (1 + Prng.int rng 4) (fun _ -> Prng.int rng nedges)))
      in
      let weights = Array.make ntraffics 1.0 in
      let inst = Cover.Reduction.of_monitoring ~num_edges:nedges ~weights paths in
      Array.length inst.Cover.sets = nedges
      && Array.for_all
           (fun s -> List.for_all (fun t -> t >= 0 && t < ntraffics) s)
           inst.Cover.sets
      &&
      (* membership agrees *)
      List.for_all
        (fun e ->
          List.for_all
            (fun t ->
              List.mem t inst.Cover.sets.(e) = List.mem e paths.(t))
            (List.init ntraffics Fun.id))
        (List.init nedges Fun.id))

let suite =
  [
    Alcotest.test_case "basic cover" `Quick test_basic_cover;
    Alcotest.test_case "greedy suboptimal classic" `Quick test_greedy_suboptimal_classic;
    Alcotest.test_case "figure 3 counterexample" `Quick test_figure3_counterexample;
    Alcotest.test_case "partial cover" `Quick test_partial_cover;
    Alcotest.test_case "unreachable target" `Quick test_unreachable_target;
    Alcotest.test_case "guarantee value" `Quick test_guarantee_value;
    Alcotest.test_case "node limit behavior" `Quick test_exact_detailed_node_limit;
    Alcotest.test_case "reduction structure" `Quick test_reduction_to_monitoring_structure;
    Alcotest.test_case "reduction paths are walks" `Quick test_reduction_paths_are_walks;
    QCheck_alcotest.to_alcotest prop_exact_matches_brute_force;
    QCheck_alcotest.to_alcotest prop_greedy_feasible_and_bounded;
    QCheck_alcotest.to_alcotest prop_reduction_preserves_optimum;
    QCheck_alcotest.to_alcotest prop_round_trip_of_monitoring;
  ]
