(* Prometheus exposition: the labeled-series data model, label-value
   escaping, cumulative histogram buckets against the registry's own
   snapshot, the promtool-style lint, and a real scrape through the
   Unix-socket responder. *)

module Metrics = Monpos_obs.Metrics
module Prom = Monpos_obs.Prom

let lines s = String.split_on_char '\n' s

let contains_line text l = List.mem l (lines text)

let check_line text l =
  Alcotest.(check bool) (Printf.sprintf "exposition has %S" l) true
    (contains_line text l)

let check_lint text =
  match Prom.lint text with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "lint rejects writer output: %s" (String.concat "; " errs)

(* ------------------------------------------------------------------ *)
(* labeled-series data model *)

let test_series_key () =
  Alcotest.(check string) "bare" "simplex.solves"
    (Metrics.series_key { Metrics.name = "simplex.solves"; labels = [] });
  Alcotest.(check string) "labeled"
    "simplex.iterations{phase=\"dual\",kernel=\"sparse_lu\"}"
    (Metrics.series_key
       {
         Metrics.name = "simplex.iterations";
         labels = [ ("phase", "dual"); ("kernel", "sparse_lu") ];
       });
  (* backslash, quote and newline in values escape like the exposition *)
  Alcotest.(check string) "escaped"
    "m{p=\"a\\\\b\\\"c\\nd\"}"
    (Metrics.series_key
       { Metrics.name = "m"; labels = [ ("p", "a\\b\"c\nd") ] })

let test_one_kind_per_name () =
  let t = Metrics.create () in
  let c = Metrics.counter ~labels:[ ("solver", "ppm") ] t "family.metric" in
  Metrics.incr c;
  (* same name, same kind, other label set: fine *)
  let c2 = Metrics.counter ~labels:[ ("solver", "ppme") ] t "family.metric" in
  Metrics.add c2 2;
  (* same name, different kind: rejected even on a fresh label set *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Metrics: \"family.metric\" is already registered with another kind")
    (fun () ->
      ignore (Metrics.histogram ~labels:[ ("solver", "mecf") ] t "family.metric"));
  Alcotest.(check int) "family total" 3
    (Metrics.sum_counter (Metrics.snapshot t) "family.metric")

let test_find_by_labels () =
  let t = Metrics.create () in
  Metrics.add (Metrics.counter ~labels:[ ("a", "1") ] t "m") 7;
  let snap = Metrics.snapshot t in
  (match Metrics.find ~labels:[ ("a", "1") ] snap "m" with
  | Some (Metrics.Counter_value 7) -> ()
  | _ -> Alcotest.fail "labeled lookup failed");
  Alcotest.(check bool) "unlabeled series absent" true
    (Metrics.find snap "m" = None)

(* ------------------------------------------------------------------ *)
(* exposition *)

let test_escaping () =
  let t = Metrics.create () in
  Metrics.incr (Metrics.counter ~labels:[ ("path", "a\\b\"c\nd") ] t "weird.series");
  let text = Prom.to_prometheus (Metrics.snapshot t) in
  check_line text "monpos_weird_series_total{path=\"a\\\\b\\\"c\\nd\"} 1";
  check_lint text

let test_counter_and_gauge_lines () =
  let t = Metrics.create () in
  Metrics.add (Metrics.counter ~labels:[ ("solver", "ppm") ] t "mip.solves") 3;
  Metrics.set (Metrics.gauge t "lp.objective") 12.5;
  let text = Prom.to_prometheus (Metrics.snapshot t) in
  check_line text "# TYPE monpos_mip_solves_total counter";
  check_line text "monpos_mip_solves_total{solver=\"ppm\"} 3";
  check_line text "# TYPE monpos_lp_objective gauge";
  check_line text "monpos_lp_objective 12.5";
  check_lint text

let test_cumulative_buckets_match_snapshot () =
  let t = Metrics.create () in
  let h =
    Metrics.histogram
      ~buckets:[| 0.1; 1.0; 10.0 |]
      ~labels:[ ("span", "x") ]
      t "lat.seconds"
  in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 0.6; 5.0; 50.0 ];
  let snap = Metrics.snapshot t in
  let upper, counts, count, sum =
    match Metrics.find ~labels:[ ("span", "x") ] snap "lat.seconds" with
    | Some (Metrics.Histogram_value { upper; counts; count; sum }) ->
      (upper, counts, count, sum)
    | _ -> Alcotest.fail "histogram series missing"
  in
  let text = Prom.to_prometheus snap in
  check_lint text;
  (* per-bound cumulative counts must equal the snapshot's prefix sums *)
  let running = ref 0 in
  Array.iteri
    (fun i bound ->
      running := !running + counts.(i);
      check_line text
        (Printf.sprintf "monpos_lat_seconds_bucket{span=\"x\",le=\"%g\"} %d"
           bound !running))
    upper;
  check_line text
    (Printf.sprintf "monpos_lat_seconds_bucket{span=\"x\",le=\"+Inf\"} %d" count);
  check_line text (Printf.sprintf "monpos_lat_seconds_count{span=\"x\"} %d" count);
  check_line text (Printf.sprintf "monpos_lat_seconds_sum{span=\"x\"} %g" sum);
  (* cumulative counts never decrease *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if
          String.length l > 0
          && String.length l >= 26
          && String.sub l 0 26 = "monpos_lat_seconds_bucket{"
        then
          match String.rindex_opt l ' ' with
          | Some i ->
            int_of_string_opt
              (String.sub l (i + 1) (String.length l - i - 1))
          | None -> None
        else None)
      (lines text)
  in
  Alcotest.(check int) "one line per bound plus +Inf"
    (Array.length upper + 1)
    (List.length bucket_counts);
  ignore
    (List.fold_left
       (fun prev c ->
         Alcotest.(check bool) "buckets cumulative" true (c >= prev);
         c)
       0 bucket_counts)

let test_sanitize_name () =
  Alcotest.(check string) "dots" "monpos_simplex_iterations"
    (Prom.sanitize_name "simplex.iterations");
  Alcotest.(check string) "no namespace" "alloc_minor_words"
    (Prom.sanitize_name ~namespace:"" "alloc.minor_words");
  Alcotest.(check string) "leading digit" "_9lives"
    (Prom.sanitize_name ~namespace:"" "9lives")

(* ------------------------------------------------------------------ *)
(* lint *)

let expect_reject name text =
  match Prom.lint text with
  | Ok () -> Alcotest.failf "%s: lint accepted bad exposition" name
  | Error errs ->
    Alcotest.(check bool) (name ^ ": has errors") true (errs <> [])

let test_lint_rejects () =
  expect_reject "no trailing newline" "# TYPE m counter\nm 1";
  expect_reject "sample without TYPE" "m_total 1\n";
  expect_reject "bad value" "# TYPE m gauge\nm fast\n";
  expect_reject "duplicate series"
    "# TYPE m counter\nm_total 1\nm_total 2\n";
  expect_reject "bad metric name" "# TYPE m-x counter\nm-x 1\n";
  expect_reject "non-cumulative buckets"
    ("# TYPE h histogram\n" ^ "h_bucket{le=\"1\"} 5\n"
   ^ "h_bucket{le=\"+Inf\"} 3\n" ^ "h_sum 1\n" ^ "h_count 3\n")

let test_lint_accepts_empty_registry () =
  check_lint (Prom.to_prometheus (Metrics.snapshot (Metrics.create ())))

(* ------------------------------------------------------------------ *)
(* scrape endpoint *)

let read_all fd =
  let b = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents b
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
  in
  go ()

let http_get port path =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.1\r\nHost: test\r\n\r\n" path in
      ignore (Unix.write_substring sock req 0 (String.length req));
      read_all sock)

(* locate the blank line separating headers from body *)
let header_body resp =
  let sep = "\r\n\r\n" in
  let n = String.length resp and m = String.length sep in
  let rec find i =
    if i + m > n then Alcotest.fail "no header/body separator"
    else if String.sub resp i m = sep then i
    else find (i + 1)
  in
  let i = find 0 in
  (String.sub resp 0 i, String.sub resp (i + m) (n - i - m))

let test_serve_scrape () =
  let t = Metrics.create () in
  Metrics.add (Metrics.counter ~labels:[ ("solver", "ppm") ] t "scrape.hits") 5;
  let fd = Prom.listen "127.0.0.1:0" in
  let port = Prom.bound_port fd in
  let server =
    Domain.spawn (fun () -> ignore (Prom.serve ~max_requests:2 ~registry:t fd : int))
  in
  let resp = http_get port "/metrics" in
  let missing = http_get port "/nope" in
  Domain.join server;
  Unix.close fd;
  let headers, body = header_body resp in
  Alcotest.(check bool) "200" true
    (String.length headers >= 15 && String.sub headers 0 15 = "HTTP/1.1 200 OK");
  Alcotest.(check bool) "content type" true
    (let ct = "text/plain; version=0.0.4; charset=utf-8" in
     let rec has i =
       i + String.length ct <= String.length headers
       && (String.sub headers i (String.length ct) = ct || has (i + 1))
     in
     has 0);
  check_lint body;
  check_line body "monpos_scrape_hits_total{solver=\"ppm\"} 5";
  Alcotest.(check bool) "404 elsewhere" true
    (String.length missing >= 12 && String.sub missing 0 12 = "HTTP/1.1 404")

let contains text needle = Astring.String.is_infix ~affix:needle text

let test_build_info_on_every_exposition () =
  (* the constant-gauge build-identity idiom: value 1, identity in the
     labels, present even on an empty registry, and lint-clean *)
  let text = Prom.to_prometheus (Metrics.snapshot (Metrics.create ())) in
  check_lint text;
  Alcotest.(check bool) "build_info with the release version" true
    (contains text
       (Printf.sprintf "monpos_build_info{version=\"%s\",git_rev=\""
          Monpos_obs.Runinfo.version));
  Alcotest.(check bool) "carries the compiler version" true
    (contains text (Printf.sprintf "ocaml=\"%s\"} 1" Sys.ocaml_version));
  (* follows the exposition's namespace *)
  let ns =
    Prom.to_prometheus ~namespace:"acme"
      (Metrics.snapshot (Metrics.create ()))
  in
  check_lint ns;
  Alcotest.(check bool) "namespaced build_info" true
    (contains ns "acme_build_info{version=")

let test_serve_health_and_status () =
  let t = Metrics.create () in
  Metrics.set (Metrics.gauge t "mip.incumbent") 7.0;
  let fd = Prom.listen "127.0.0.1:0" in
  let port = Prom.bound_port fd in
  let server =
    Domain.spawn (fun () -> ignore (Prom.serve ~max_requests:2 ~registry:t fd : int))
  in
  let health = http_get port "/healthz" in
  let status = http_get port "/statusz" in
  Domain.join server;
  Unix.close fd;
  let hh, hbody = header_body health in
  Alcotest.(check bool) "healthz is 200" true
    (String.length hh >= 15 && String.sub hh 0 15 = "HTTP/1.1 200 OK");
  Alcotest.(check string) "healthz body" "ok\n" hbody;
  let sh, sbody = header_body status in
  Alcotest.(check bool) "statusz is 200" true
    (String.length sh >= 15 && String.sub sh 0 15 = "HTTP/1.1 200 OK");
  Alcotest.(check bool) "statusz is json" true (contains sh "application/json");
  match Monpos_obs.Json.parse sbody with
  | Error msg -> Alcotest.failf "statusz does not parse: %s" msg
  | Ok (Monpos_obs.Json.Obj fields) ->
    List.iter
      (fun k ->
        Alcotest.(check bool) (Printf.sprintf "statusz has %S" k) true
          (List.mem_assoc k fields))
      [ "uptime_seconds"; "phase"; "solver"; "obs" ];
    (* watermark gauges of the scraped registry surface in the
       document *)
    Alcotest.(check bool) "statusz carries the incumbent watermark" true
      (contains sbody "\"incumbent\":7")
  | Ok _ -> Alcotest.fail "statusz must be a json object"

let test_serve_should_stop () =
  (* the graceful-shutdown hook: the loop polls should_stop before
     every accept, so a flag that flips after the first request ends
     the loop without any max_requests budget — this is how
     metrics-serve turns SIGINT/SIGTERM into a clean exit 0. The
     callback runs on the server domain; counting its own calls keeps
     the test deterministic (no cross-domain flag race). *)
  let t = Metrics.create () in
  let fd = Prom.listen "127.0.0.1:0" in
  let port = Prom.bound_port fd in
  let server =
    Domain.spawn (fun () ->
        let calls = ref 0 in
        let should_stop () =
          incr calls;
          !calls > 1
        in
        Prom.serve ~should_stop ~registry:t fd)
  in
  let health = http_get port "/healthz" in
  let served = Domain.join server in
  Unix.close fd;
  let hh, _ = header_body health in
  Alcotest.(check bool) "request before the stop answered" true
    (String.length hh >= 15 && String.sub hh 0 15 = "HTTP/1.1 200 OK");
  Alcotest.(check int) "served count returned at shutdown" 1 served

let test_listen_rejects_garbage () =
  Alcotest.(check bool) "no port" true
    (match Prom.listen "localhost" with
    | exception Invalid_argument _ -> true
    | fd ->
      Unix.close fd;
      false)

let suite =
  [
    Alcotest.test_case "series key rendering" `Quick test_series_key;
    Alcotest.test_case "one kind per family" `Quick test_one_kind_per_name;
    Alcotest.test_case "find by labels" `Quick test_find_by_labels;
    Alcotest.test_case "label value escaping" `Quick test_escaping;
    Alcotest.test_case "counter and gauge exposition" `Quick
      test_counter_and_gauge_lines;
    Alcotest.test_case "cumulative buckets match snapshot" `Quick
      test_cumulative_buckets_match_snapshot;
    Alcotest.test_case "name sanitization" `Quick test_sanitize_name;
    Alcotest.test_case "lint rejects malformed expositions" `Quick
      test_lint_rejects;
    Alcotest.test_case "lint accepts empty registry" `Quick
      test_lint_accepts_empty_registry;
    Alcotest.test_case "serve answers a scrape" `Quick test_serve_scrape;
    Alcotest.test_case "build_info heads every exposition" `Quick
      test_build_info_on_every_exposition;
    Alcotest.test_case "serve answers /healthz and /statusz" `Quick
      test_serve_health_and_status;
    Alcotest.test_case "serve stops when should_stop flips" `Quick
      test_serve_should_stop;
    Alcotest.test_case "listen rejects bad specs" `Quick
      test_listen_rejects_garbage;
  ]
