(* Randomized differential harness for the dual-simplex warm starts.

   Generates small random LPs (mixed <=/>=/= rows; boxed, one-sided
   and free variables) with the deterministic Monpos_util.Prng and
   checks, instance by instance, that

   - re-solving from the final basis with unchanged bounds reproduces
     the cold solve,
   - after random branching-style bound flips the warm-started
     re-solve (dual simplex from the parent basis) agrees with a cold
     primal solve on status and objective within 1e-6,
   - a malformed warm basis silently degrades to the cold answer.

   The base seed comes from MONPOS_PROP_SEED (default 1) so CI can run
   the same 200 instances under several seeds. *)

module Model = Monpos_lp.Model
module Simplex = Monpos_lp.Simplex
module Prng = Monpos_util.Prng

let prop_seed =
  match Sys.getenv_opt "MONPOS_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 1)
  | None -> 1

let cases = 200

let status_name = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iteration_limit"

(* random LP: 2-6 structural variables of every bound shape, 1-5 rows
   of every sense, signed coefficients and objective *)
let random_model rng =
  let n = 2 + Prng.int rng 5 in
  let rows = 1 + Prng.int rng 5 in
  let dir = if Prng.bool rng then Model.Minimize else Model.Maximize in
  let m = Model.create dir in
  let xs =
    Array.init n (fun _ ->
        (* boxed most of the time so a useful share of instances is
           bounded and optimal; every shape still appears *)
        let lb, ub =
          match Prng.int rng 8 with
          | 0 | 1 | 2 | 3 | 4 -> (0.0, 1.0 +. Prng.float rng 9.0)
          | 5 -> (0.0, infinity)
          | 6 -> (neg_infinity, Prng.float rng 10.0)
          | _ -> (neg_infinity, infinity)
        in
        Model.add_var m ~lb ~ub
          ~obj:(Prng.float rng 10.0 -. 5.0)
          Model.Continuous)
  in
  for _ = 1 to rows do
    let nterms = 1 + Prng.int rng n in
    let terms =
      List.init nterms (fun _ ->
          (Prng.float rng 8.0 -. 4.0, xs.(Prng.int rng n)))
    in
    let sense =
      match Prng.int rng 5 with
      | 0 | 1 -> Model.Le
      | 2 | 3 -> Model.Ge
      | _ -> Model.Eq
    in
    Model.add_constr m terms sense (Prng.float rng 16.0 -. 8.0)
  done;
  m

let check_agree ~case ~what model cold warm =
  if cold.Simplex.status <> warm.Simplex.status then
    Alcotest.failf "case %d (%s): status cold=%s warm=%s" case what
      (status_name cold.Simplex.status)
      (status_name warm.Simplex.status);
  if cold.Simplex.status = Simplex.Optimal then begin
    let scale = 1.0 +. abs_float cold.Simplex.objective in
    if
      abs_float (cold.Simplex.objective -. warm.Simplex.objective)
      > 1e-6 *. scale
    then
      Alcotest.failf "case %d (%s): objective cold=%.9f warm=%.9f" case what
        cold.Simplex.objective warm.Simplex.objective;
    (* each reported objective must be the objective of its own primal
       point (guards against a stale objective riding on a warm basis) *)
    List.iter
      (fun (name, (sol : Simplex.solution)) ->
        let v = Model.objective_value model sol.Simplex.primal in
        if abs_float (v -. sol.Simplex.objective) > 1e-5 *. scale then
          Alcotest.failf "case %d (%s): %s objective %.9f but primal scores %.9f"
            case what name sol.Simplex.objective v)
      [ ("cold", cold); ("warm", warm) ]
  end

(* branching-style flips: tighten a bound to cut off the current
   optimal value of a random variable, one to three times *)
let flip_bounds rng (cold : Simplex.solution) lower upper =
  let n = Array.length lower in
  let flips = 1 + Prng.int rng 2 in
  for _ = 1 to flips do
    let v = Prng.int rng n in
    let x = cold.Simplex.primal.(v) in
    if Prng.bool rng then begin
      let new_ub = x -. (0.1 +. Prng.float rng 2.0) in
      if new_ub >= lower.(v) then upper.(v) <- min upper.(v) new_ub
    end
    else begin
      let new_lb = x +. (0.1 +. Prng.float rng 2.0) in
      if new_lb <= upper.(v) then lower.(v) <- max lower.(v) new_lb
    end
  done

let test_differential () =
  let bound_flip_cases = ref 0 in
  let dual_pivots = ref 0 in
  for case = 0 to cases - 1 do
    let rng = Prng.create ((prop_seed * 1_000_003) + case) in
    let m = random_model rng in
    let p = Simplex.of_model m in
    let n = Simplex.num_structural p in
    let cold = Simplex.solve p in
    (* same bounds, final basis back in: nothing may change *)
    let replay = Simplex.solve ~basis:cold.Simplex.basis p in
    check_agree ~case ~what:"replay" m cold replay;
    if cold.Simplex.status = Simplex.Optimal then begin
      let lower =
        Array.init n (fun v -> Model.var_lb m (Model.var_of_index m v))
      in
      let upper =
        Array.init n (fun v -> Model.var_ub m (Model.var_of_index m v))
      in
      flip_bounds rng cold lower upper;
      let cold2 = Simplex.solve ~lower ~upper p in
      let warm2 = Simplex.solve ~lower ~upper ~basis:cold.Simplex.basis p in
      incr bound_flip_cases;
      dual_pivots := !dual_pivots + warm2.Simplex.dual_iterations;
      check_agree ~case ~what:"bound flip" m cold2 warm2
    end
  done;
  (* the harness must actually exercise the machinery it tests *)
  Alcotest.(check bool)
    (Printf.sprintf "enough optimal instances (%d)" !bound_flip_cases)
    true
    (!bound_flip_cases > cases / 8);
  Alcotest.(check bool)
    (Printf.sprintf "dual simplex pivoted (%d pivots)" !dual_pivots)
    true (!dual_pivots > 0)

let test_malformed_basis_degrades () =
  for case = 0 to 29 do
    let rng = Prng.create ((prop_seed * 7_368_787) + case) in
    let m = random_model rng in
    let p = Simplex.of_model m in
    let rows = Simplex.num_rows p in
    let cold = Simplex.solve p in
    let garbage =
      [
        [||];
        Array.make rows 0 (* duplicates *);
        Array.init rows (fun r -> r * 1_000_000) (* out of range *);
        Array.init (rows + 3) (fun r -> r) (* wrong length *);
      ]
    in
    List.iter
      (fun basis ->
        let warm = Simplex.solve ~basis p in
        check_agree ~case ~what:"malformed basis" m cold warm)
      garbage
  done

(* the slack basis passed explicitly must behave exactly like the
   implicit cold start *)
let test_explicit_slack_basis () =
  for case = 0 to 29 do
    let rng = Prng.create ((prop_seed * 15_485_863) + case) in
    let m = random_model rng in
    let p = Simplex.of_model m in
    let slack =
      Array.init (Simplex.num_rows p) (fun r -> Simplex.num_structural p + r)
    in
    let cold = Simplex.solve p in
    let warm = Simplex.solve ~basis:slack p in
    check_agree ~case ~what:"slack basis" m cold warm
  done

let suite =
  [
    Alcotest.test_case
      (Printf.sprintf "warm vs cold differential (seed %d)" prop_seed)
      `Quick test_differential;
    Alcotest.test_case "malformed basis degrades to cold" `Quick
      test_malformed_basis_degrades;
    Alcotest.test_case "explicit slack basis = cold start" `Quick
      test_explicit_slack_basis;
  ]
