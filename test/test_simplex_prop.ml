(* Randomized differential harness for the dual-simplex warm starts
   and for the two linear-algebra kernels.

   Generates small random LPs (mixed <=/>=/= rows; boxed, one-sided
   and free variables) with the deterministic Monpos_util.Prng and
   checks, instance by instance, that

   - re-solving from the final basis with unchanged bounds reproduces
     the cold solve,
   - after random branching-style bound flips the warm-started
     re-solve (dual simplex from the parent basis) agrees with a cold
     primal solve on status and objective within 1e-6,
   - a malformed warm basis silently degrades to the cold answer,
   - the dense explicit-inverse kernel and the sparse LU + eta-file
     kernel agree on status and objective on every instance (cold and
     warm-started), and on the final basis itself whenever the
     instance's optimum is non-degenerate (unique basis),
   - a singular or ill-conditioned warm basis never crashes the LU
     kernel: it either factorizes stably or falls back to the cold
     slack start, same answer either way.

   The base seed comes from MONPOS_PROP_SEED (default 1) so CI can run
   the same 200 instances under several seeds. *)

module Model = Monpos_lp.Model
module Simplex = Monpos_lp.Simplex
module Prng = Monpos_util.Prng

let prop_seed =
  match Sys.getenv_opt "MONPOS_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 1)
  | None -> 1

let cases = 200

let status_name = function
  | Simplex.Optimal -> "optimal"
  | Simplex.Infeasible -> "infeasible"
  | Simplex.Unbounded -> "unbounded"
  | Simplex.Iteration_limit -> "iteration_limit"
  | Simplex.Deadline_reached -> "deadline_reached"

(* random LP: 2-6 structural variables of every bound shape, 1-5 rows
   of every sense, signed coefficients and objective *)
let random_model rng =
  let n = 2 + Prng.int rng 5 in
  let rows = 1 + Prng.int rng 5 in
  let dir = if Prng.bool rng then Model.Minimize else Model.Maximize in
  let m = Model.create dir in
  let xs =
    Array.init n (fun _ ->
        (* boxed most of the time so a useful share of instances is
           bounded and optimal; every shape still appears *)
        let lb, ub =
          match Prng.int rng 8 with
          | 0 | 1 | 2 | 3 | 4 -> (0.0, 1.0 +. Prng.float rng 9.0)
          | 5 -> (0.0, infinity)
          | 6 -> (neg_infinity, Prng.float rng 10.0)
          | _ -> (neg_infinity, infinity)
        in
        Model.add_var m ~lb ~ub
          ~obj:(Prng.float rng 10.0 -. 5.0)
          Model.Continuous)
  in
  for _ = 1 to rows do
    let nterms = 1 + Prng.int rng n in
    let terms =
      List.init nterms (fun _ ->
          (Prng.float rng 8.0 -. 4.0, xs.(Prng.int rng n)))
    in
    let sense =
      match Prng.int rng 5 with
      | 0 | 1 -> Model.Le
      | 2 | 3 -> Model.Ge
      | _ -> Model.Eq
    in
    Model.add_constr m terms sense (Prng.float rng 16.0 -. 8.0)
  done;
  m

let check_agree ~case ~what model cold warm =
  if cold.Simplex.status <> warm.Simplex.status then
    Alcotest.failf "case %d (%s): status cold=%s warm=%s" case what
      (status_name cold.Simplex.status)
      (status_name warm.Simplex.status);
  if cold.Simplex.status = Simplex.Optimal then begin
    let scale = 1.0 +. abs_float cold.Simplex.objective in
    if
      abs_float (cold.Simplex.objective -. warm.Simplex.objective)
      > 1e-6 *. scale
    then
      Alcotest.failf "case %d (%s): objective cold=%.9f warm=%.9f" case what
        cold.Simplex.objective warm.Simplex.objective;
    (* each reported objective must be the objective of its own primal
       point (guards against a stale objective riding on a warm basis) *)
    List.iter
      (fun (name, (sol : Simplex.solution)) ->
        let v = Model.objective_value model sol.Simplex.primal in
        if abs_float (v -. sol.Simplex.objective) > 1e-5 *. scale then
          Alcotest.failf "case %d (%s): %s objective %.9f but primal scores %.9f"
            case what name sol.Simplex.objective v)
      [ ("cold", cold); ("warm", warm) ]
  end

(* branching-style flips: tighten a bound to cut off the current
   optimal value of a random variable, one to three times *)
let flip_bounds rng (cold : Simplex.solution) lower upper =
  let n = Array.length lower in
  let flips = 1 + Prng.int rng 2 in
  for _ = 1 to flips do
    let v = Prng.int rng n in
    let x = cold.Simplex.primal.(v) in
    if Prng.bool rng then begin
      let new_ub = x -. (0.1 +. Prng.float rng 2.0) in
      if new_ub >= lower.(v) then upper.(v) <- min upper.(v) new_ub
    end
    else begin
      let new_lb = x +. (0.1 +. Prng.float rng 2.0) in
      if new_lb <= upper.(v) then lower.(v) <- max lower.(v) new_lb
    end
  done

let test_differential () =
  let bound_flip_cases = ref 0 in
  let dual_pivots = ref 0 in
  for case = 0 to cases - 1 do
    let rng = Prng.create ((prop_seed * 1_000_003) + case) in
    let m = random_model rng in
    let p = Simplex.of_model m in
    let n = Simplex.num_structural p in
    let cold = Simplex.solve p in
    (* same bounds, final basis back in: nothing may change *)
    let replay = Simplex.solve ~basis:cold.Simplex.basis p in
    check_agree ~case ~what:"replay" m cold replay;
    if cold.Simplex.status = Simplex.Optimal then begin
      let lower =
        Array.init n (fun v -> Model.var_lb m (Model.var_of_index m v))
      in
      let upper =
        Array.init n (fun v -> Model.var_ub m (Model.var_of_index m v))
      in
      flip_bounds rng cold lower upper;
      let cold2 = Simplex.solve ~lower ~upper p in
      let warm2 = Simplex.solve ~lower ~upper ~basis:cold.Simplex.basis p in
      incr bound_flip_cases;
      dual_pivots := !dual_pivots + warm2.Simplex.dual_iterations;
      check_agree ~case ~what:"bound flip" m cold2 warm2
    end
  done;
  (* the harness must actually exercise the machinery it tests *)
  Alcotest.(check bool)
    (Printf.sprintf "enough optimal instances (%d)" !bound_flip_cases)
    true
    (!bound_flip_cases > cases / 8);
  Alcotest.(check bool)
    (Printf.sprintf "dual simplex pivoted (%d pivots)" !dual_pivots)
    true (!dual_pivots > 0)

let test_malformed_basis_degrades () =
  for case = 0 to 29 do
    let rng = Prng.create ((prop_seed * 7_368_787) + case) in
    let m = random_model rng in
    let p = Simplex.of_model m in
    let rows = Simplex.num_rows p in
    let cold = Simplex.solve p in
    let garbage =
      [
        [||];
        Array.make rows 0 (* duplicates *);
        Array.init rows (fun r -> r * 1_000_000) (* out of range *);
        Array.init (rows + 3) (fun r -> r) (* wrong length *);
      ]
    in
    List.iter
      (fun basis ->
        let warm = Simplex.solve ~basis p in
        check_agree ~case ~what:"malformed basis" m cold warm)
      garbage
  done

(* the slack basis passed explicitly must behave exactly like the
   implicit cold start *)
let test_explicit_slack_basis () =
  for case = 0 to 29 do
    let rng = Prng.create ((prop_seed * 15_485_863) + case) in
    let m = random_model rng in
    let p = Simplex.of_model m in
    let slack =
      Array.init (Simplex.num_rows p) (fun r -> Simplex.num_structural p + r)
    in
    let cold = Simplex.solve p in
    let warm = Simplex.solve ~basis:slack p in
    check_agree ~case ~what:"slack basis" m cold warm
  done

(* ------------------------------------------------------------------ *)
(* dense vs sparse-LU kernel differential                              *)

let dense_opts = { Simplex.default_options with Simplex.kernel = Simplex.Dense }

let sparse_opts =
  { Simplex.default_options with Simplex.kernel = Simplex.Sparse_lu }

(* A basic solution is non-degenerate when every basic variable sits
   strictly inside its bounds and every nonbasic variable has a
   strictly nonzero reduced cost (for a slack, its row's dual). Then
   the optimal basis is unique and both kernels must land on the same
   basic set; degenerate optima legitimately admit several. *)
let non_degenerate model (sol : Simplex.solution) =
  let margin = 1e-5 in
  let n = Model.num_vars model in
  let rows = Model.num_constrs model in
  let in_basis = Array.make (n + rows) false in
  Array.iter (fun j -> in_basis.(j) <- true) sol.Simplex.basis;
  let interior x lb ub =
    (lb = neg_infinity || x -. lb > margin)
    && (ub = infinity || ub -. x > margin)
  in
  let ok = ref true in
  for j = 0 to n - 1 do
    let v = Model.var_of_index model j in
    if in_basis.(j) then begin
      if
        not
          (interior sol.Simplex.primal.(j) (Model.var_lb model v)
             (Model.var_ub model v))
      then ok := false
    end
    else if abs_float sol.Simplex.reduced_costs.(j) <= margin then ok := false
  done;
  Model.iter_constrs model (fun r terms sense rhs ->
      let lhs =
        List.fold_left
          (fun acc (c, v) -> acc +. (c *. sol.Simplex.primal.(v)))
          0.0 terms
      in
      let slack = rhs -. lhs in
      if in_basis.(n + r) then begin
        match sense with
        | Model.Le -> if slack <= margin then ok := false
        | Model.Ge -> if slack >= -.margin then ok := false
        | Model.Eq -> ok := false (* Eq slack basic at 0 is degenerate *)
      end
      else if abs_float sol.Simplex.duals.(r) <= margin then ok := false);
  !ok

let sorted_basis (sol : Simplex.solution) =
  let b = Array.copy sol.Simplex.basis in
  Array.sort compare b;
  b

let test_kernel_differential () =
  let basis_checks = ref 0 in
  let warm_checks = ref 0 in
  for case = 0 to cases - 1 do
    (* same instance stream as the warm-start differential *)
    let rng = Prng.create ((prop_seed * 1_000_003) + case) in
    let m = random_model rng in
    let p = Simplex.of_model m in
    let n = Simplex.num_structural p in
    let dense = Simplex.solve ~options:dense_opts p in
    let sparse = Simplex.solve ~options:sparse_opts p in
    check_agree ~case ~what:"kernel cold" m dense sparse;
    if
      dense.Simplex.status = Simplex.Optimal
      && non_degenerate m dense && non_degenerate m sparse
    then begin
      incr basis_checks;
      if sorted_basis dense <> sorted_basis sparse then
        Alcotest.failf
          "case %d: non-degenerate optimum but kernels disagree on the basis"
          case
    end;
    if dense.Simplex.status = Simplex.Optimal then begin
      (* warm-started re-solve after bound flips, once per kernel,
         cross-checked against the other kernel's cold re-solve *)
      let lower =
        Array.init n (fun v -> Model.var_lb m (Model.var_of_index m v))
      in
      let upper =
        Array.init n (fun v -> Model.var_ub m (Model.var_of_index m v))
      in
      flip_bounds rng dense lower upper;
      let cold_d = Simplex.solve ~lower ~upper ~options:dense_opts p in
      let warm_s =
        Simplex.solve ~lower ~upper ~basis:sparse.Simplex.basis
          ~options:sparse_opts p
      in
      let warm_d =
        Simplex.solve ~lower ~upper ~basis:dense.Simplex.basis
          ~options:dense_opts p
      in
      incr warm_checks;
      check_agree ~case ~what:"kernel warm sparse" m cold_d warm_s;
      check_agree ~case ~what:"kernel warm dense" m cold_d warm_d
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough non-degenerate basis comparisons (%d)"
       !basis_checks)
    true
    (!basis_checks > cases / 16);
  Alcotest.(check bool)
    (Printf.sprintf "enough warm-start cross-checks (%d)" !warm_checks)
    true
    (!warm_checks > cases / 8)

(* A structurally singular warm basis (two identical columns) must be
   rejected by the factorization of either kernel and degrade to the
   cold answer. *)
let test_singular_basis_fallback () =
  let m = Model.create Model.Minimize in
  let x0 = Model.add_var m ~lb:0.0 ~ub:10.0 ~obj:1.0 Model.Continuous in
  let x1 = Model.add_var m ~lb:0.0 ~ub:10.0 ~obj:2.0 Model.Continuous in
  (* both rows use both variables with coefficient 1, so the columns
     of x0 and x1 are identical: basis [x0; x1] is singular *)
  Model.add_constr m [ (1.0, x0); (1.0, x1) ] Model.Le 4.0;
  Model.add_constr m [ (1.0, x0); (1.0, x1) ] Model.Ge 1.0;
  let p = Simplex.of_model m in
  let singular = [| Model.var_index x0; Model.var_index x1 |] in
  List.iter
    (fun (what, options) ->
      let cold = Simplex.solve ~options p in
      let warm = Simplex.solve ~basis:singular ~options p in
      check_agree ~case:0 ~what m cold warm;
      Alcotest.(check bool)
        (what ^ ": solved to optimality")
        true
        (cold.Simplex.status = Simplex.Optimal))
    [ ("singular dense", dense_opts); ("singular sparse", sparse_opts) ]

(* Nearly dependent columns and wild coefficient scales: the LU's
   threshold pivoting must either factorize stably or raise internally
   and fall back — never return a wrong optimum. *)
let test_ill_conditioned_basis () =
  let eps_list = [ 1e-6; 1e-9; 1e-11; 1e-13 ] in
  List.iter
    (fun eps ->
      let m = Model.create Model.Minimize in
      let x0 = Model.add_var m ~lb:0.0 ~ub:100.0 ~obj:1.0 Model.Continuous in
      let x1 = Model.add_var m ~lb:0.0 ~ub:100.0 ~obj:1.0 Model.Continuous in
      Model.add_constr m [ (1.0, x0); (1.0, x1) ] Model.Ge 2.0;
      Model.add_constr m [ (1.0, x0); (1.0 +. eps, x1) ] Model.Le 50.0;
      let p = Simplex.of_model m in
      let near_singular = [| Model.var_index x0; Model.var_index x1 |] in
      List.iter
        (fun (what, options) ->
          let cold = Simplex.solve ~options p in
          let warm = Simplex.solve ~basis:near_singular ~options p in
          check_agree ~case:0 ~what m cold warm)
        [
          (Printf.sprintf "ill-conditioned dense eps=%g" eps, dense_opts);
          (Printf.sprintf "ill-conditioned sparse eps=%g" eps, sparse_opts);
        ])
    eps_list;
  (* mixed huge/tiny coefficients in one basis *)
  let m = Model.create Model.Maximize in
  let x0 = Model.add_var m ~lb:0.0 ~ub:1e6 ~obj:1.0 Model.Continuous in
  let x1 = Model.add_var m ~lb:0.0 ~ub:1e6 ~obj:1.0 Model.Continuous in
  Model.add_constr m [ (1e8, x0); (1e-8, x1) ] Model.Le 1e8;
  Model.add_constr m [ (1e-8, x0); (1e8, x1) ] Model.Le 1e8;
  let p = Simplex.of_model m in
  let basis = [| Model.var_index x0; Model.var_index x1 |] in
  let dense = Simplex.solve ~basis ~options:dense_opts p in
  let sparse = Simplex.solve ~basis ~options:sparse_opts p in
  check_agree ~case:0 ~what:"mixed scales" m dense sparse

let suite =
  [
    Alcotest.test_case
      (Printf.sprintf "warm vs cold differential (seed %d)" prop_seed)
      `Quick test_differential;
    Alcotest.test_case "malformed basis degrades to cold" `Quick
      test_malformed_basis_degrades;
    Alcotest.test_case "explicit slack basis = cold start" `Quick
      test_explicit_slack_basis;
    Alcotest.test_case
      (Printf.sprintf "dense vs sparse-LU kernel differential (seed %d)"
         prop_seed)
      `Quick test_kernel_differential;
    Alcotest.test_case "singular warm basis falls back (both kernels)" `Quick
      test_singular_basis_fallback;
    Alcotest.test_case "ill-conditioned bases stay exact (both kernels)" `Quick
      test_ill_conditioned_basis;
  ]
