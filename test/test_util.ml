(* Utility substrate tests: PRNG determinism and distributions, heap
   ordering, bitset algebra, union-find, stats. *)

module Prng = Monpos_util.Prng
module Heap = Monpos_util.Heap
module Bitset = Monpos_util.Bitset
module Stats = Monpos_util.Stats
module Union_find = Monpos_util.Union_find

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_int_range () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    Alcotest.(check bool) "in range" true (0 <= x && x < 10)
  done

let test_prng_uniformity () =
  let g = Prng.create 11 in
  let counts = Array.make 8 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let x = Prng.int g 8 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 8 in
      Alcotest.(check bool) "within 10%" true
        (abs (c - expected) < expected / 10))
    counts

let test_prng_float_range () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.float g 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (0.0 <= x && x < 2.5)
  done

let test_prng_pareto_tail () =
  let g = Prng.create 5 in
  let n = 20_000 in
  let above = ref 0 in
  for _ = 1 to n do
    let x = Prng.pareto g ~alpha:1.5 ~xmin:1.0 in
    Alcotest.(check bool) "above xmin" true (x >= 1.0);
    if x > 4.0 then incr above
  done;
  (* P(X > 4) = 4^-1.5 = 0.125; allow generous slack *)
  let frac = float_of_int !above /. float_of_int n in
  Alcotest.(check bool) "tail mass plausible" true (frac > 0.09 && frac < 0.16)

let test_prng_sample_without_replacement () =
  let g = Prng.create 9 in
  for _ = 1 to 100 do
    let xs = Prng.sample_without_replacement g 5 12 in
    Alcotest.(check int) "five draws" 5 (List.length xs);
    let sorted = List.sort_uniq compare xs in
    Alcotest.(check int) "distinct" 5 (List.length sorted);
    List.iter
      (fun x -> Alcotest.(check bool) "in range" true (0 <= x && x < 12))
      xs
  done

let test_prng_shuffle_permutation () =
  let g = Prng.create 13 in
  let a = Array.init 20 (fun i -> i) in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_heap_sorts () =
  let h = Heap.create () in
  let g = Prng.create 17 in
  let keys = Array.init 500 (fun _ -> Prng.float g 100.0) in
  Array.iter (fun k -> Heap.push h k k) keys;
  let out = ref [] in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (k, _) ->
      out := k :: !out;
      drain ()
  in
  drain ();
  let popped = Array.of_list (List.rev !out) in
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Alcotest.(check (array (float 0.0))) "heap sort" sorted popped

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop_min h = None);
  Heap.push h 1.0 "x";
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_bitset_ops () =
  let a = Bitset.of_list 100 [ 1; 5; 64; 99 ] in
  let b = Bitset.of_list 100 [ 5; 63; 64 ] in
  Alcotest.(check int) "cardinal a" 4 (Bitset.cardinal a);
  Alcotest.(check bool) "mem" true (Bitset.mem a 64);
  Alcotest.(check bool) "not mem" false (Bitset.mem a 63);
  Alcotest.(check int) "inter" 2 (Bitset.inter_cardinal a b);
  let c = Bitset.copy a in
  Bitset.union_into c b;
  Alcotest.(check (list int)) "union" [ 1; 5; 63; 64; 99 ] (Bitset.elements c);
  Bitset.diff_into c b;
  Alcotest.(check (list int)) "diff" [ 1; 99 ] (Bitset.elements c);
  Alcotest.(check bool) "subset" true (Bitset.subset c a);
  Alcotest.(check bool) "not subset" false (Bitset.subset a c)

let test_bitset_fill_clear () =
  let s = Bitset.create 70 in
  Bitset.fill s;
  Alcotest.(check int) "full" 70 (Bitset.cardinal s);
  Bitset.clear s;
  Alcotest.(check bool) "empty" true (Bitset.is_empty s)

let test_bitset_word_boundary () =
  let s = Bitset.create 64 in
  Bitset.add s 62;
  Bitset.add s 63;
  Alcotest.(check (list int)) "boundary" [ 62; 63 ] (Bitset.elements s);
  Bitset.remove s 63;
  Alcotest.(check (list int)) "removed" [ 62 ] (Bitset.elements s)

let test_union_find () =
  let u = Union_find.create 10 in
  Alcotest.(check int) "initial classes" 10 (Union_find.count u);
  Alcotest.(check bool) "union new" true (Union_find.union u 0 1);
  Alcotest.(check bool) "union again" false (Union_find.union u 1 0);
  ignore (Union_find.union u 2 3);
  ignore (Union_find.union u 1 3);
  Alcotest.(check bool) "same" true (Union_find.same u 0 2);
  Alcotest.(check bool) "not same" false (Union_find.same u 0 9);
  Alcotest.(check int) "classes" 7 (Union_find.count u)

let test_stats () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "sum" 10.0 (Stats.sum xs);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum xs);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.maximum xs);
  Alcotest.(check (float 1e-9)) "p50" 2.5 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt 1.25) (Stats.stddev xs)

let test_table_render () =
  let s =
    Monpos_util.Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  Alcotest.(check bool) "pads short rows" true
    (List.length (String.split_on_char '\n' s) = 5)

(* ---------- Prng.split stream derivation ---------- *)

let test_prng_split_replay () =
  (* splitting is deterministic: replaying the parent seed replays
     every child stream, which is what makes per-domain streams
     reproducible *)
  let children seed =
    let parent = Prng.create seed in
    List.init 4 (fun _ -> Prng.split parent)
  in
  let a = children 99 and b = children 99 in
  List.iter2
    (fun ga gb ->
      for _ = 1 to 50 do
        Alcotest.(check int64) "replayed child stream" (Prng.bits64 ga)
          (Prng.bits64 gb)
      done)
    a b

let test_prng_split_non_overlap () =
  (* parent and children must not walk the same state sequence: their
     output prefixes are pairwise disjoint (deterministic check under
     a fixed seed; a collision would mean correlated solver streams) *)
  let parent = Prng.create 1234 in
  let kids = List.init 4 (fun _ -> Prng.split parent) in
  let streams = parent :: kids in
  let prefixes =
    List.map (fun g -> Array.init 1000 (fun _ -> Prng.bits64 g)) streams
  in
  let seen = Hashtbl.create 4096 in
  List.iteri
    (fun i prefix ->
      Array.iter
        (fun v ->
          (match Hashtbl.find_opt seen v with
          | Some j when j <> i ->
            Alcotest.failf "streams %d and %d share output %Ld" j i v
          | _ -> ());
          Hashtbl.replace seen v i)
        prefix)
    prefixes

let test_prng_split_children_differ () =
  let parent = Prng.create 7 in
  let a = Prng.split parent and b = Prng.split parent in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "sibling streams differ" true !differs

(* ---------- work-stealing deque ---------- *)

module Wsdeque = Monpos_util.Wsdeque

let test_wsdeque_lifo_fifo () =
  let d = Wsdeque.create () in
  List.iter (Wsdeque.push d) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "size" 4 (Wsdeque.size d);
  (* owner pops the newest... *)
  Alcotest.(check (option int)) "pop bottom" (Some 4) (Wsdeque.pop d);
  (* ...thieves steal the oldest *)
  Alcotest.(check (option int)) "steal top" (Some 1) (Wsdeque.steal d);
  Alcotest.(check (option int)) "steal next" (Some 2) (Wsdeque.steal d);
  Alcotest.(check (option int)) "pop last" (Some 3) (Wsdeque.pop d);
  Alcotest.(check (option int)) "pop empty" None (Wsdeque.pop d);
  Alcotest.(check (option int)) "steal empty" None (Wsdeque.steal d)

let test_wsdeque_drain () =
  let d = Wsdeque.create () in
  List.iter (Wsdeque.push d) [ 10; 20; 30 ];
  Alcotest.(check (list int)) "drain bottom-first" [ 30; 20; 10 ]
    (Wsdeque.drain d);
  Alcotest.(check int) "empty after drain" 0 (Wsdeque.size d)

let test_wsdeque_stress () =
  (* one owner pushing/popping, three thieves stealing: every pushed
     item is consumed exactly once *)
  let d = Wsdeque.create () in
  let n = 20_000 in
  let thieves = 3 in
  let stop = Atomic.make false in
  let stolen =
    Array.init thieves (fun _ ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            while not (Atomic.get stop) do
              match Wsdeque.steal d with
              | Some v -> acc := v :: !acc
              | None -> Domain.cpu_relax ()
            done;
            (* sweep the leftovers so nothing is lost at shutdown *)
            let rec sweep () =
              match Wsdeque.steal d with
              | Some v ->
                acc := v :: !acc;
                sweep ()
              | None -> ()
            in
            sweep ();
            !acc))
  in
  let popped = ref [] in
  for i = 1 to n do
    Wsdeque.push d i;
    if i mod 3 = 0 then
      match Wsdeque.pop d with
      | Some v -> popped := v :: !popped
      | None -> ()
  done;
  Atomic.set stop true;
  let stolen = Array.to_list (Array.map Domain.join stolen) in
  let all = List.concat (!popped :: stolen) in
  let sorted = List.sort compare all in
  Alcotest.(check int) "every item consumed once" n (List.length sorted);
  List.iteri
    (fun i v -> if v <> i + 1 then Alcotest.failf "item %d seen as %d" (i + 1) v)
    sorted

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng split replay" `Quick test_prng_split_replay;
    Alcotest.test_case "prng split non-overlap" `Quick test_prng_split_non_overlap;
    Alcotest.test_case "prng split siblings differ" `Quick
      test_prng_split_children_differ;
    Alcotest.test_case "wsdeque lifo/fifo" `Quick test_wsdeque_lifo_fifo;
    Alcotest.test_case "wsdeque drain" `Quick test_wsdeque_drain;
    Alcotest.test_case "wsdeque owner/thief stress" `Quick test_wsdeque_stress;
    Alcotest.test_case "prng seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng int range" `Quick test_prng_int_range;
    Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
    Alcotest.test_case "prng float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng pareto tail" `Quick test_prng_pareto_tail;
    Alcotest.test_case "prng sampling" `Quick test_prng_sample_without_replacement;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "heap sorts" `Quick test_heap_sorts;
    Alcotest.test_case "heap empty" `Quick test_heap_empty;
    Alcotest.test_case "bitset ops" `Quick test_bitset_ops;
    Alcotest.test_case "bitset fill/clear" `Quick test_bitset_fill_clear;
    Alcotest.test_case "bitset word boundary" `Quick test_bitset_word_boundary;
    Alcotest.test_case "union find" `Quick test_union_find;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table render" `Quick test_table_render;
  ]
