(* Crash-safe solving tests: the checkpoint container (atomic replace,
   checksum, corruption detection), kill-at-a-random-wave + resume
   bit-identity on random models and on the paper's seed MIPs across
   jobs counts, cooperative preemption, the supervised worker domains,
   and the Prom serve loop's should_stop shutdown hook. *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Sampling = Monpos.Sampling
module Active = Monpos.Active
module Pop = Monpos_topo.Pop
module Model = Monpos_lp.Model
module Mip = Monpos_lp.Mip
module Prng = Monpos_util.Prng
module Heap = Monpos_util.Heap
module Metrics = Monpos_obs.Metrics
module Chaos = Monpos_resilience.Chaos
module Ckpt = Monpos_resilience.Checkpoint
module Preempt = Monpos_resilience.Preempt
module Rerror = Monpos_resilience.Error

let check_float = Alcotest.(check (float 1e-12))

let check_same_result what (a : Mip.result) (b : Mip.result) =
  Alcotest.(check bool) (what ^ ": status") true (a.Mip.status = b.Mip.status);
  check_float (what ^ ": objective") a.Mip.objective b.Mip.objective;
  check_float (what ^ ": bound") a.Mip.bound b.Mip.bound;
  Alcotest.(check int) (what ^ ": nodes") a.Mip.nodes b.Mip.nodes;
  check_float (what ^ ": gap") a.Mip.gap b.Mip.gap;
  match (a.Mip.solution, b.Mip.solution) with
  | None, None -> ()
  | Some xa, Some xb ->
    Alcotest.(check (array (float 1e-12))) (what ^ ": solution") xa xb
  | _ -> Alcotest.fail (what ^ ": one run has a solution, the other not")

let tmp name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "monpos-test-%d-%s" (Unix.getpid ()) name)

let cleanup path = try Sys.remove path with Sys_error _ -> ()

let with_chaos seed f =
  let saved = Chaos.seed () in
  Chaos.set_seed (Some seed);
  Fun.protect ~finally:(fun () -> Chaos.set_seed saved) f

(* ---------- the generic container ---------- *)

let test_container_roundtrip () =
  let path = tmp "container.ckpt" in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let lines = [ "alpha 1 2 3"; ""; "omega -0x1.8p+1 infinity" ] in
  Ckpt.write ~path ~magic:"monpos-test" ~version:7 lines;
  let version, body = Ckpt.load ~path ~magic:"monpos-test" in
  Alcotest.(check int) "version" 7 version;
  Alcotest.(check (list string)) "body" lines body;
  Alcotest.(check bool) "no tmp file left" false
    (Sys.file_exists (path ^ ".tmp"))

let test_container_replaces_atomically () =
  let path = tmp "replace.ckpt" in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  Ckpt.write ~path ~magic:"monpos-test" ~version:1 [ "first" ];
  Ckpt.write ~path ~magic:"monpos-test" ~version:1 [ "second" ];
  let _, body = Ckpt.load ~path ~magic:"monpos-test" in
  Alcotest.(check (list string)) "latest write wins" [ "second" ] body

let expect_parse_error what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected a Parse_error")
  | exception Rerror.Error (Rerror.Parse_error _) -> ()

let expect_io_error what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": expected an Io_error")
  | exception Rerror.Error (Rerror.Io_error _) -> ()

let read_all path = In_channel.with_open_bin path In_channel.input_all

let write_all path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_container_detects_corruption () =
  let path = tmp "corrupt.ckpt" in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let lines = [ "state 42 17"; "inc none" ] in
  Ckpt.write ~path ~magic:"monpos-test" ~version:1 lines;
  let original = read_all path in
  (* flipped byte in the body: checksum mismatch *)
  let flipped = Bytes.of_string original in
  let i = String.index original '4' in
  Bytes.set flipped i '9';
  write_all path (Bytes.to_string flipped);
  expect_parse_error "byte flip" (fun () ->
      Ckpt.load ~path ~magic:"monpos-test");
  (* truncated before the trailer *)
  let no_trailer =
    String.concat "\n"
      (List.filteri
         (fun i _ -> i < 2)
         (String.split_on_char '\n' original))
  in
  write_all path (no_trailer ^ "\n");
  expect_parse_error "truncation" (fun () ->
      Ckpt.load ~path ~magic:"monpos-test");
  (* wrong magic *)
  write_all path original;
  expect_parse_error "magic" (fun () -> Ckpt.load ~path ~magic:"other-magic");
  (* missing file *)
  cleanup path;
  expect_io_error "missing file" (fun () ->
      Ckpt.load ~path ~magic:"monpos-test")

(* ---------- util round-trips the checkpoint format rests on ---------- *)

let test_heap_snapshot_restore () =
  let rng = Prng.create 55 in
  let h = Heap.create () in
  for i = 0 to 199 do
    (* coarse keys force ties, the case snapshot/restore must preserve *)
    Heap.push h (float_of_int (Prng.int rng 8)) i
  done;
  let keys, data = Heap.snapshot h in
  let h2 = Heap.create () in
  Heap.restore h2 keys data;
  let drain h =
    let rec go acc =
      match Heap.pop_min h with
      | None -> List.rev acc
      | Some kv -> go (kv :: acc)
    in
    go []
  in
  let a = drain h and b = drain h2 in
  Alcotest.(check int) "lengths" (List.length a) (List.length b);
  List.iter2
    (fun (ka, va) (kb, vb) ->
      check_float "key order" ka kb;
      Alcotest.(check int) "payload order (ties included)" va vb)
    a b

let test_prng_state_roundtrip () =
  let g = Prng.create 1234 in
  for _ = 1 to 57 do
    ignore (Prng.int g 1000)
  done;
  let g' = Prng.of_state (Prng.state g) in
  for i = 1 to 100 do
    Alcotest.(check int)
      (Printf.sprintf "draw %d" i)
      (Prng.int g 1_000_000) (Prng.int g' 1_000_000)
  done

(* ---------- kill at a random wave + resume, random models ---------- *)

let random_model rng =
  let n = 8 + Prng.int rng 4 in
  let m = Model.create Model.Minimize in
  let vars =
    List.init n (fun i ->
        let obj = 1.0 +. Prng.float rng 9.0 in
        Model.add_var m ~name:(Printf.sprintf "x%d" i) ~obj Model.Binary)
  in
  let nconstr = 4 + Prng.int rng 3 in
  for c = 0 to nconstr - 1 do
    let terms =
      List.filter_map
        (fun v ->
          if Prng.bool rng then Some (1.0 +. Prng.float rng 4.0, v) else None)
        vars
    in
    if terms <> [] then begin
      let slack = 1.0 +. Prng.float rng (float_of_int (List.length terms)) in
      Model.add_constr m ~name:(Printf.sprintf "c%d" c) terms Model.Ge slack
    end
  done;
  m

let opts ?(wave = 16) ?checkpoint ?(checkpoint_every = 60.0)
    ?(max_nodes = 200_000) jobs =
  {
    Mip.default_options with
    Mip.jobs;
    deterministic = true;
    wave;
    checkpoint;
    checkpoint_every;
    max_nodes;
  }

(* Interrupt a solve of [model] after [k] nodes (the checkpoint armed,
   every wave), then resume the final checkpoint to completion.

   The bit-identity contract covers interruptions at wave barriers —
   which is what a real SIGKILL leaves behind, because periodic
   checkpoints are only written there. A [max_nodes] cut stops the
   dispatch mid-wave, so to make every cut point a barrier these
   exact-identity drills run with [wave = 1]; the mid-wave case is
   covered separately by {!test_midwave_cut_same_optimum}. *)
let interrupted_then_resumed ~what ~path ~jobs_cut ~jobs_resume ~k model =
  let cut =
    Mip.solve
      ~options:(opts ~wave:1 ~checkpoint:path ~checkpoint_every:0.0
                  ~max_nodes:k jobs_cut)
      model
  in
  Alcotest.(check bool)
    (what ^ ": cut run stopped early")
    true
    (cut.Mip.nodes <= k && Sys.file_exists path);
  Mip.resume ~options:(opts ~checkpoint:path jobs_resume) path

let test_random_kill_resume_identity () =
  let rng = Prng.create 20260808 in
  let path = tmp "random.ckpt" in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  for trial = 1 to 6 do
    let model = random_model rng in
    let reference = Mip.solve ~options:(opts ~wave:1 1) model in
    if reference.Mip.nodes >= 2 then begin
      let k = 1 + Prng.int rng (reference.Mip.nodes - 1) in
      List.iter
        (fun (jobs_cut, jobs_resume) ->
          let what =
            Printf.sprintf "trial %d, cut at %d, jobs %d->%d" trial k jobs_cut
              jobs_resume
          in
          let resumed =
            interrupted_then_resumed ~what ~path ~jobs_cut ~jobs_resume ~k
              model
          in
          check_same_result what reference resumed)
        [ (1, 4); (4, 1) ]
    end
  done

let test_midwave_cut_same_optimum () =
  (* a [max_nodes] stop lands mid-wave, where the final checkpoint is
     still a complete, consistent frontier — but resuming it tiles the
     remaining tree into different waves than the uninterrupted run,
     so only the optimum (not the node trajectory) is comparable *)
  let rng = Prng.create 4711 in
  let path = tmp "midwave.ckpt" in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  for trial = 1 to 4 do
    let model = random_model rng in
    let reference = Mip.solve ~options:(opts 1) model in
    if reference.Mip.nodes >= 2 then begin
      let k = 1 + Prng.int rng (reference.Mip.nodes - 1) in
      let _cut =
        Mip.solve
          ~options:(opts ~checkpoint:path ~checkpoint_every:0.0 ~max_nodes:k 4)
          model
      in
      let resumed = Mip.resume ~options:(opts ~checkpoint:path 1) path in
      let what = Printf.sprintf "trial %d, mid-wave cut at %d" trial k in
      Alcotest.(check bool)
        (what ^ ": status")
        true
        (reference.Mip.status = resumed.Mip.status);
      check_float (what ^ ": objective") reference.Mip.objective
        resumed.Mip.objective;
      check_float (what ^ ": bound") reference.Mip.bound resumed.Mip.bound
    end
  done

let test_double_kill_resume_identity () =
  (* two crash/resume cycles: checkpoint of a resumed run is itself
     resumable, and the chain still lands on the reference bits *)
  let rng = Prng.create 616 in
  let path = tmp "double.ckpt" in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  let model = random_model rng in
  let reference = Mip.solve ~options:(opts ~wave:1 1) model in
  if reference.Mip.nodes >= 4 then begin
    let k1 = reference.Mip.nodes / 3 and k2 = reference.Mip.nodes / 3 in
    let _cut1 =
      Mip.solve
        ~options:(opts ~wave:1 ~checkpoint:path ~checkpoint_every:0.0
                    ~max_nodes:k1 4)
        model
    in
    let _cut2 =
      Mip.resume
        ~options:(opts ~checkpoint:path ~checkpoint_every:0.0
                    ~max_nodes:(k1 + k2) 1)
        path
    in
    let final = Mip.resume ~options:(opts ~checkpoint:path 4) path in
    check_same_result "double kill" reference final
  end

(* ---------- the paper's seed MIPs, via the wave-0 checkpoint ----------

   The family solvers build their models internally, so to test
   checkpoint/resume on the real formulations we capture the model by
   preempting the solve before its first wave with the checkpoint
   armed: the final checkpoint then holds the untouched (post-presolve)
   root state, and resuming it IS the uninterrupted solve — at the Mip
   level, where results can be compared bit-for-bit. *)

let wave0_checkpoint ~path solve =
  Preempt.request ();
  Fun.protect ~finally:Preempt.reset @@ fun () ->
  (match solve () with
  | (_ : int) -> ()
  | exception Rerror.Error _ ->
    (* a wave-0 stop has no incumbent; strict family entry points turn
       that No_solution into a typed error — the checkpoint is already
       on disk by then *)
    ());
  Alcotest.(check bool) "wave-0 checkpoint written" true (Sys.file_exists path)

let family_identity what ~path solve =
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  wave0_checkpoint ~path solve;
  let scratch = path ^ ".scratch" in
  Fun.protect ~finally:(fun () -> cleanup scratch) @@ fun () ->
  (* reference: the wave-0 state run to completion, checkpoints
     redirected so [path] stays intact for the other legs *)
  let reference = Mip.resume ~options:(opts ~checkpoint:scratch 1) path in
  if reference.Mip.nodes >= 2 then begin
    let rng = Prng.create (Hashtbl.hash what) in
    let k = 1 + Prng.int rng (reference.Mip.nodes - 1) in
    List.iter
      (fun (jobs_cut, jobs_resume) ->
        let leg =
          Printf.sprintf "%s, cut at %d, jobs %d->%d" what k jobs_cut
            jobs_resume
        in
        let _cut =
          Mip.resume
            ~options:(opts ~checkpoint:scratch ~checkpoint_every:0.0
                        ~max_nodes:k jobs_cut)
            path
        in
        let resumed =
          Mip.resume ~options:(opts ~checkpoint:scratch jobs_resume) scratch
        in
        check_same_result leg reference resumed)
      [ (1, 4); (4, 1) ]
  end;
  reference

let test_ppm_kill_resume_identity () =
  let pop = Pop.make_preset `Pop10 ~seed:3 in
  let inst = Instance.of_pop pop ~seed:(3 * 131) in
  let path = tmp "ppm.ckpt" in
  let reference =
    family_identity "ppm" ~path (fun () ->
        let sol =
          Passive.solve_mip ~k:0.9
            ~options:(opts ~wave:1 ~checkpoint:path 1)
            inst
        in
        List.length sol.Passive.monitors)
  in
  (* the resumed optimum is the family's: same device count as the
     uninterrupted family solve *)
  let direct = Passive.solve_mip ~k:0.9 ~options:(opts ~wave:1 1) inst in
  check_float "ppm objective = device count"
    (float_of_int (List.length direct.Passive.monitors))
    reference.Mip.objective

let test_ppme_kill_resume_identity () =
  let pop = Pop.make_preset `Pop10 ~seed:1 in
  let inst = Instance.of_pop pop ~seed:131 in
  let costs = Sampling.load_scaled_costs inst ~install:8.0 () in
  let pb = Sampling.make_problem ~k:0.9 ~costs inst in
  let path = tmp "ppme.ckpt" in
  ignore
    (family_identity "ppme" ~path (fun () ->
         let base = Sampling.default_milp_options in
         let sol =
           Sampling.solve_milp
             ~options:
               {
                 base with
                 Mip.deterministic = true;
                 wave = 1;
                 checkpoint = Some path;
               }
             pb
         in
         List.length sol.Sampling.installed))

let test_beacon_kill_resume_identity () =
  let pop = Pop.make_preset `Pop15 ~seed:1 in
  let routers = Array.of_list (Pop.routers pop) in
  Prng.shuffle (Prng.create 7) routers;
  let vb = List.sort compare (Array.to_list (Array.sub routers 0 10)) in
  let probes = Active.compute_probes ~targets:vb pop.Pop.graph ~candidates:vb in
  let path = tmp "beacon.ckpt" in
  ignore
    (family_identity "beacon" ~path (fun () ->
         let p =
           Active.place_ilp
             ~options:(opts ~wave:1 ~checkpoint:path 1)
             probes ~candidates:vb
         in
         List.length p.Active.beacons))

(* ---------- checkpoint-file failure modes at the Mip level ---------- *)

let mip_checkpoint_fixture path =
  let rng = Prng.create 99 in
  let model = random_model rng in
  let r = Mip.solve ~options:(opts ~checkpoint:path 1) model in
  if r.Mip.nodes < 2 then Alcotest.fail "fixture model solved at the root";
  let cut = (r.Mip.nodes / 2) + 1 in
  ignore
    (Mip.solve
       ~options:(opts ~checkpoint:path ~checkpoint_every:0.0 ~max_nodes:cut 1)
       model);
  r

let test_resume_version_mismatch () =
  let path = tmp "version.ckpt" in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  ignore (mip_checkpoint_fixture path);
  let text = read_all path in
  (* the header is outside the checksum, so a version bump alone must
     be rejected by the version gate, not the corruption check *)
  let nl = String.index text '\n' in
  let header = String.sub text 0 nl in
  let header =
    match String.rindex_opt header ' ' with
    | Some sp -> String.sub header 0 sp ^ " 99"
    | None -> Alcotest.fail "unexpected header shape"
  in
  write_all path (header ^ String.sub text nl (String.length text - nl));
  expect_parse_error "future version" (fun () -> Mip.resume path)

let test_resume_corrupt_and_missing () =
  let path = tmp "mipcorrupt.ckpt" in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  ignore (mip_checkpoint_fixture path);
  let text = read_all path in
  let lines = String.split_on_char '\n' text in
  let dropped =
    List.filteri (fun i _ -> i <> List.length lines / 2) lines
  in
  write_all path (String.concat "\n" dropped);
  expect_parse_error "dropped line" (fun () -> Mip.resume path);
  cleanup path;
  expect_io_error "missing checkpoint" (fun () -> Mip.resume path)

(* ---------- cooperative preemption ---------- *)

let test_preempt_stops_and_resumes () =
  let rng = Prng.create 313 in
  let model = random_model rng in
  let reference = Mip.solve ~options:(opts 1) model in
  let path = tmp "preempt.ckpt" in
  Fun.protect ~finally:(fun () -> cleanup path) @@ fun () ->
  Preempt.request ();
  let stopped =
    Fun.protect ~finally:Preempt.reset (fun () ->
        Mip.solve ~options:(opts ~checkpoint:path 4) model)
  in
  Alcotest.(check bool) "preempted flag" true stopped.Mip.preempted;
  Alcotest.(check int) "stopped before the first wave" 0 stopped.Mip.nodes;
  Alcotest.(check bool) "final checkpoint written" true (Sys.file_exists path);
  let resumed = Mip.resume ~options:(opts 1) path in
  Alcotest.(check bool) "resumed run not preempted" false resumed.Mip.preempted;
  check_same_result "preempt + resume" reference resumed

(* ---------- supervised worker domains ---------- *)

let worker_failures () =
  Metrics.sum_counter
    (Metrics.snapshot Metrics.default)
    "mip.worker_failures"

let test_worker_death_supervised () =
  (* with chaos armed, the domain.die site kills workers mid-wave
     (p = 0.02 per task); supervision must requeue the dead slot's
     work and finish with a result identical to the untroubled jobs=1
     solve. Trials run until at least one death was actually injected,
     so the test proves recovery, not luck. *)
  let rng = Prng.create 140586 in
  let deaths_seen = ref 0 in
  let trials = ref 0 in
  while !deaths_seen = 0 && !trials < 20 do
    incr trials;
    let model = random_model rng in
    let reference = Mip.solve ~options:(opts 1) model in
    let before = worker_failures () in
    let stressed =
      with_chaos (1000 + !trials) (fun () ->
          Mip.solve ~options:(opts 4) model)
    in
    deaths_seen := !deaths_seen + (worker_failures () - before);
    check_same_result
      (Printf.sprintf "trial %d survives worker death" !trials)
      reference stressed
  done;
  Alcotest.(check bool)
    (Printf.sprintf "at least one worker death injected in %d trials" !trials)
    true (!deaths_seen > 0)

let suite =
  [
    Alcotest.test_case "container round-trip" `Quick test_container_roundtrip;
    Alcotest.test_case "container atomic replace" `Quick
      test_container_replaces_atomically;
    Alcotest.test_case "container corruption detection" `Quick
      test_container_detects_corruption;
    Alcotest.test_case "heap snapshot/restore preserves ties" `Quick
      test_heap_snapshot_restore;
    Alcotest.test_case "prng state round-trip" `Quick
      test_prng_state_roundtrip;
    Alcotest.test_case "random models: kill + resume identity" `Slow
      test_random_kill_resume_identity;
    Alcotest.test_case "double kill + resume identity" `Quick
      test_double_kill_resume_identity;
    Alcotest.test_case "mid-wave cut reaches the same optimum" `Quick
      test_midwave_cut_same_optimum;
    Alcotest.test_case "ppm: kill + resume identity" `Slow
      test_ppm_kill_resume_identity;
    Alcotest.test_case "ppme: kill + resume identity" `Slow
      test_ppme_kill_resume_identity;
    Alcotest.test_case "beacon: kill + resume identity" `Slow
      test_beacon_kill_resume_identity;
    Alcotest.test_case "resume rejects future version" `Quick
      test_resume_version_mismatch;
    Alcotest.test_case "resume rejects corruption, missing file" `Quick
      test_resume_corrupt_and_missing;
    Alcotest.test_case "preempt stops, resume completes" `Quick
      test_preempt_stops_and_resumes;
    Alcotest.test_case "worker death supervised" `Slow
      test_worker_death_supervised;
  ]
