(* promlint — promtool-style checker for Prometheus text exposition
   (format 0.0.4), as written by monitorctl --prom-out and
   metrics-serve. Reads the file named on the command line (or stdin),
   runs Monpos_obs.Prom.lint, and prints one line-numbered error per
   problem.

   Exit codes: 0 clean, 1 lint errors, 2 unreadable input. *)

let () =
  let path = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  let label = Option.value path ~default:"<stdin>" in
  let text =
    match path with
    | None -> In_channel.input_all In_channel.stdin
    | Some p -> (
      try In_channel.with_open_text p In_channel.input_all
      with Sys_error msg ->
        Printf.eprintf "promlint: %s\n" msg;
        exit 2)
  in
  match Monpos_obs.Prom.lint text with
  | Ok () -> Printf.printf "%s: OK\n" label
  | Error errs ->
    List.iter (fun e -> Printf.eprintf "%s: %s\n" label e) errs;
    Printf.eprintf "%s: %d problem(s)\n" label (List.length errs);
    exit 1
