(* monitorctl — command-line front end for the monitoring-placement
   library.

   Subcommands mirror the paper's workflows: generate a POP topology
   and traffic matrix, place passive taps (PPM), place sampling
   devices (PPME), re-optimize sampling rates (PPME star), place
   active beacons, and run the figure sweeps.

   Examples:
     monitorctl topology --preset pop10 --seed 1 --dot pop.dot
     monitorctl passive --preset pop15 --seed 3 --coverage 0.95 --method exact
     monitorctl sampling --preset pop10 --coverage 0.9
     monitorctl active --preset pop29 --vb 12 --method ilp
     monitorctl dynamic --steps 40 --sigma 0.3
     monitorctl sweep --figure fig9 *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Sampling = Monpos.Sampling
module Mecf = Monpos.Mecf
module Active = Monpos.Active
module Scenario = Monpos.Scenario
module Resilient = Monpos.Resilient
module Pop = Monpos_topo.Pop
module Topo_file = Monpos_topo.Topo_file
module Graph = Monpos_graph.Graph
module Table = Monpos_util.Table
module Prng = Monpos_util.Prng
module Obs_trace = Monpos_obs.Trace
module Obs_metrics = Monpos_obs.Metrics
module Mip = Monpos_lp.Mip
module Simplex = Monpos_lp.Simplex
module Mincost = Monpos_flow.Mincost
module Rerror = Monpos_resilience.Error
module Preempt = Monpos_resilience.Preempt
module Synthetic = Monpos_topo.Synthetic
module Traffic = Monpos_traffic.Traffic
open Cmdliner

(* Exit codes (also in the man pages): 2 bad input, 3 degraded result,
   4 numerical/internal failure, 5 preempted — see
   Monpos_resilience.Error.exit_code and Monpos_resilience.Preempt. *)
let exits =
  Cmd.Exit.info 2
    ~doc:
      "on bad input: an unparsable topology/demand file, an unknown \
       method or sample name, an infeasible coverage target, or an \
       unwritable $(b,--checkpoint)/$(b,--flight-dump) destination \
       (validated at startup)."
  :: Cmd.Exit.info 3
       ~doc:
         "on a degraded result: a wall-clock deadline expired and the \
          degradation ladder answered from a rung below proven \
          optimality (the placement printed is still feasible)."
  :: Cmd.Exit.info 4 ~doc:"on a numerical failure or internal error."
  :: Cmd.Exit.info 5
       ~doc:
         "when the solve was preempted by SIGINT/SIGTERM: the search \
          stopped cooperatively at the next wave barrier, the answer \
          printed is the incumbent with its LP-certified bound, and \
          with $(b,--checkpoint) set a final checkpoint was written \
          for $(b,monitorctl resume). A second signal skips the \
          barrier and exits immediately with 130 (SIGINT) or 143 \
          (SIGTERM)."
  :: Cmd.Exit.defaults

(* Command-line mistakes share the parse-error taxonomy (and its exit
   code 2); the pseudo-file names the argument. *)
let bad_input msg =
  raise (Rerror.Error (Rerror.Parse_error { file = "<args>"; line = 0; msg }))

(* ------------------------------------------------------------------ *)
(* observability flags, shared by every subcommand                     *)

type obs = {
  trace : string option;
  metrics : bool;
  progress : bool;
  prom_out : string option;
  flight_dump : string option;
  stack_hz : float option;
  trace_sample : int option;
}

let obs_term =
  let trace_arg =
    let doc =
      "Write structured solver trace events (JSONL, one object per \
       line: branch-and-bound nodes, incumbents, simplex phases, flow \
       augmentations, spans) to $(docv). Analyze it afterwards with \
       $(b,monitorctl analyze)."
    in
    Arg.(
      value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc = "Print the solver metrics registry after the command." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let progress_arg =
    let doc =
      "Report live solve progress (nodes visited, incumbent, bound, \
       gap, elapsed) on one in-place stderr line, throttled. Combines \
       with $(b,--trace): the same events feed both sinks."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let prom_out_arg =
    let doc =
      "After the command, write the metrics registry to $(docv) in \
       Prometheus text exposition format (0.0.4) for file-based \
       scraping (node_exporter textfile collector, CI artifacts)."
    in
    Arg.(
      value & opt (some string) None & info [ "prom-out" ] ~docv:"FILE" ~doc)
  in
  let flight_dump_arg =
    let doc =
      "Arm flight-recorder dumps into $(docv): the recorder always \
       retains the last events per domain, and on a deadline expiry, \
       degradation-ladder descent, chaos injection or uncaught \
       exception the retained window is written to \
       $(docv)/flight-<n>-<reason>.jsonl — ordinary trace JSONL, \
       readable by $(b,monitorctl analyze) and $(b,monitorctl diff). \
       Without this flag recording still runs but triggers are inert."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"DIR" ~doc)
  in
  let stack_hz_arg =
    let doc =
      "Sample every domain's open-span stack $(docv) times per second \
       into $(b,stack_sample) trace events (a wall-clock profile; \
       render it with $(b,monitorctl analyze --folded)). Needs a live \
       sink: combine with $(b,--trace) or $(b,--flight-dump)."
    in
    Arg.(
      value & opt (some float) None & info [ "stack-hz" ] ~docv:"HZ" ~doc)
  in
  let trace_sample_arg =
    let doc =
      "Head-sample high-frequency trace events (B&B nodes, simplex \
       phases, flow pivot batches, spans): pass the first $(docv) \
       events of each class, then keep 1-in-N with the dropped count \
       stamped as $(b,sampled_of) so $(b,analyze) rescales exactly. \
       Deterministic; metrics stay exact. Overrides \
       $(b,MONPOS_TRACE_SAMPLE)."
    in
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-sample" ] ~docv:"N" ~doc)
  in
  let make trace metrics progress prom_out flight_dump stack_hz trace_sample =
    { trace; metrics; progress; prom_out; flight_dump; stack_hz; trace_sample }
  in
  Term.(
    const make $ trace_arg $ metrics_arg $ progress_arg $ prom_out_arg
    $ flight_dump_arg $ stack_hz_arg $ trace_sample_arg)

let write_prom_snapshot path =
  (try
     Out_channel.with_open_text path (fun oc ->
         output_string oc
           (Monpos_obs.Prom.to_prometheus
              (Obs_metrics.snapshot Obs_metrics.default)))
   with Sys_error msg -> Rerror.io_error ~path msg);
  Format.printf "prometheus snapshot written to %s@." path

(* Spawn the wall-clock stack-sampling ticker: every 1/hz seconds,
   snapshot each domain's open-span stack (racy reads, bounded by the
   span cells' clamping) and emit one stack_sample event per busy
   domain. The ticker runs on its own domain so it observes the solver
   domains from outside; it stops when asked and is joined before the
   sink closes. *)
let start_stack_ticker sink hz =
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let period = 1.0 /. Float.max 0.1 hz in
        while not (Atomic.get stop) do
          Unix.sleepf period;
          if not (Atomic.get stop) then
            List.iter
              (fun (domain, names) ->
                Obs_trace.stack_sample sink ~domain
                  ~stack:(String.concat ";" names))
              (Monpos_obs.Span.live_stacks ())
        done)
  in
  fun () ->
    Atomic.set stop true;
    Domain.join d

(* Install the observability tier around the command body: the trace
   sink (--trace and --progress each contribute one; the flight
   recorder always contributes its ring sink), the head-sampler
   threshold, the run manifest (emitted on the sink, stamped into
   /statusz and every flight dump), and the stack-sampling ticker.
   Everything is torn down afterwards, then the metrics table /
   Prometheus snapshot render when requested. [jobs]/[scheduler]
   describe the parallel solver configuration the subcommand resolved,
   for the manifest. The whole body runs inside the typed-error
   boundary: any Monpos_resilience.Error that escapes — including the
   Io_error we raise for an unopenable --trace or --prom-out
   destination — becomes a one-line message and a documented exit code
   instead of a backtrace; any other uncaught exception snapshots the
   flight recorder before propagating. *)

(* Fail fast (Io_error, exit 2) on an unwritable --checkpoint or
   --flight-dump destination: both are written late in the run — at a
   wave barrier, or when something has already gone wrong — and a
   solver that only discovers the bad path then has burned the search
   (or lost the dump). Mirrors the flight recorder's own mkdir -p so a
   creatable directory passes. *)
let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let validate_writable ~path dir =
  let dir = if dir = "" then "." else dir in
  (try mkdir_p dir
   with Unix.Unix_error (e, _, _) ->
     Rerror.io_error ~path (Unix.error_message e));
  let probe =
    Filename.concat dir (Printf.sprintf ".monpos-writable-%d" (Unix.getpid ()))
  in
  (try Out_channel.with_open_bin probe (fun _ -> ())
   with Sys_error msg -> Rerror.io_error ~path msg);
  try Sys.remove probe with Sys_error _ -> ()

let with_obs ?jobs ?scheduler ?checkpoint obs f =
  try
    Option.iter
      (fun p -> validate_writable ~path:p (Filename.dirname p))
      checkpoint;
    Option.iter (fun d -> validate_writable ~path:d d) obs.flight_dump;
    (* solver-backed subcommands get cooperative preemption: first
       signal stops at the next wave barrier, second one exits hard *)
    Option.iter (fun _ -> Preempt.install ()) jobs;
    Option.iter
      (fun threshold -> Monpos_obs.Sampler.configure ~threshold)
      obs.trace_sample;
    let recorder = Monpos_obs.Flightrec.install ?dir:obs.flight_dump () in
    let file_sink =
      match obs.trace with
      | None -> Obs_trace.null
      | Some path -> (
        try Obs_trace.open_file path
        with Sys_error msg -> Rerror.io_error ~path msg)
    in
    let sink =
      Obs_trace.fanout
        ([ file_sink; Monpos_obs.Flightrec.sink recorder ]
        @ if obs.progress then [ Monpos_obs.Progress.sink () ] else [])
    in
    let stop_ticker =
      match obs.stack_hz with
      | Some hz when hz > 0.0 -> start_stack_ticker sink hz
      | _ -> fun () -> ()
    in
    Fun.protect
      ~finally:(fun () ->
        stop_ticker ();
        Obs_trace.set_current Obs_trace.null;
        Obs_trace.close sink;
        Monpos_obs.Flightrec.uninstall ())
      (fun () ->
        Obs_trace.set_current sink;
        (* every traced run opens with its manifest, so offline tooling
           (analyze, diff) can join artifacts from the same run; the
           same manifest heads /statusz and every flight dump *)
        let ri =
          Monpos_obs.Runinfo.capture
            ?chaos_seed:(Monpos_resilience.Chaos.seed ())
            ?jobs ?scheduler ()
        in
        Monpos_obs.Runinfo.emit sink ri;
        Monpos_obs.Status.set_manifest (Monpos_obs.Runinfo.to_json ri);
        Monpos_obs.Flightrec.set_manifest recorder
          (Monpos_obs.Runinfo.to_fields ri);
        let r =
          try f () with
          | Rerror.Error e ->
            Format.eprintf "monitorctl: %s@." (Rerror.to_string e);
            Rerror.exit_code e
          | e ->
            (* the recorder holds the lead-up to whatever just blew
               up; snapshot it before the backtrace unwinds *)
            Monpos_obs.Flightrec.trigger ~reason:"uncaught_exception";
            raise e
        in
        (match obs.trace with
        | Some path ->
          Format.printf "trace: %d event(s) written to %s@."
            (Obs_trace.events_written file_sink)
            path
        | None -> ());
        if obs.metrics then
          print_string
            (Obs_metrics.render_table
               (Obs_metrics.snapshot Obs_metrics.default));
        Option.iter write_prom_snapshot obs.prom_out;
        r)
  with Rerror.Error e ->
    Format.eprintf "monitorctl: %s@." (Rerror.to_string e);
    Rerror.exit_code e

(* ------------------------------------------------------------------ *)
(* solver flags, shared by the MIP-backed subcommands                  *)

(* Evaluates to a tuner applied to whichever default option record the
   subcommand starts from, so sampling keeps its looser gap/time
   defaults while still honouring the flags. *)
let solver_term =
  let cold_arg =
    let doc =
      "Solve every branch-and-bound node with a cold primal simplex \
       instead of warm-starting the dual simplex from the parent \
       basis. Results are identical; the flag exists to measure the \
       warm-start speedup and to bisect numerical surprises."
    in
    Arg.(value & flag & info [ "cold-start" ] ~doc)
  in
  let no_presolve_arg =
    let doc = "Skip presolve bound tightening before branch and bound." in
    Arg.(value & flag & info [ "no-presolve" ] ~doc)
  in
  let dense_kernel_arg =
    let doc =
      "Run every node LP on the dense explicit-inverse simplex kernel \
       instead of the sparse LU + eta-file one. Results are identical; \
       the flag exists for differential testing and to measure the \
       sparse kernel's speedup."
    in
    Arg.(value & flag & info [ "dense-kernel" ] ~doc)
  in
  let time_limit_arg =
    let doc =
      "Wall-clock budget in seconds for the MIP search. This is a real \
       bound — the deadline is polled inside every node LP — and on \
       expiry the degradation ladder answers from a cheaper rung (exit \
       code 3) unless $(b,--strict) is set."
    in
    Arg.(value & opt (some float) None & info [ "time-limit" ] ~docv:"SECS" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the branch-and-bound search (default 1, or \
       $(b,MONPOS_JOBS) when set; 0 means one per CPU core). The \
       default deterministic scheduler returns the same incumbent, \
       objective, bound and node count for every value of $(docv)."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Write crash-recovery checkpoints of the branch-and-bound state \
       to $(docv): atomic tmp-file + rename replaces, at wave barriers \
       of the deterministic scheduler, every $(b,--checkpoint-every) \
       seconds and once more when the solve stops at a limit or is \
       preempted. Continue an interrupted solve with $(b,monitorctl \
       resume) $(docv) — the resumed result is bit-identical to the \
       uninterrupted one. The destination directory is validated \
       writable at startup (exit 2 otherwise)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_every_arg =
    let doc =
      "Minimum wall-clock seconds between periodic checkpoint writes \
       (default 60; 0 checkpoints at every wave barrier — crash \
       drills)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "checkpoint-every" ] ~docv:"SECS" ~doc)
  in
  let make cold no_presolve dense time_limit jobs checkpoint checkpoint_every
      (base : Mip.options) =
    {
      base with
      Mip.warm_start = not cold;
      presolve = not no_presolve;
      kernel = (if dense then Simplex.Dense else Simplex.Sparse_lu);
      time_limit = Option.value time_limit ~default:base.Mip.time_limit;
      jobs = Option.value jobs ~default:base.Mip.jobs;
      checkpoint =
        (match checkpoint with None -> base.Mip.checkpoint | c -> c);
      checkpoint_every =
        Option.value checkpoint_every ~default:base.Mip.checkpoint_every;
    }
  in
  Term.(
    const make $ cold_arg $ no_presolve_arg $ dense_kernel_arg $ time_limit_arg
    $ jobs_arg $ checkpoint_arg $ checkpoint_every_arg)

let strict_arg =
  let doc =
    "Fail (with a typed error and exit code 2/3/4) instead of degrading: \
     the MIP-backed methods normally run through the resilience ladder \
     and fall back to LP rounding or the greedy cover on deadline or \
     numerical trouble; $(b,--strict) demands the first rung's answer \
     or nothing."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

(* Min-cost-flow kernel selector shared by the flow-backed paths
   (PPME* re-optimization, the MECF flow heuristic, the §5.4 loop). *)
let flow_kernel_arg =
  let doc =
    "Min-cost-flow kernel for the flow-based solves: $(b,ssp) \
     (successive shortest augmenting paths) or $(b,netsimplex) (the \
     warm-startable spanning-tree network simplex)."
  in
  let kernel_conv =
    Arg.enum [ ("ssp", Mincost.Ssp); ("netsimplex", Mincost.Net_simplex) ]
  in
  Arg.(
    value
    & opt (some kernel_conv) None
    & info [ "flow-kernel" ] ~docv:"KERNEL" ~doc)

(* Print how a ladder solve went and turn its outcome into (value,
   exit code): a degraded answer is still printed but exits 3 so
   scripts can tell a proven optimum from a best effort, and a
   preempted solve exits 5 — its answer flowed through the same
   incumbent + certified-gap rung, but the cause was a signal, not a
   budget. *)
let report_outcome name (o : 'a Resilient.outcome) =
  Format.printf "%s resilience: %a@." name Resilient.pp_outcome o;
  ( o.Resilient.value,
    if Preempt.requested () then 5
    else if Resilient.degraded o then 3
    else 0 )

(* ------------------------------------------------------------------ *)
(* shared arguments                                                    *)

let preset_conv =
  let parse = function
    | "pop10" -> Ok `Pop10
    | "pop15" -> Ok `Pop15
    | "pop29" -> Ok `Pop29
    | "pop80" -> Ok `Pop80
    | s -> Error (`Msg (Printf.sprintf "unknown preset %S (pop10|pop15|pop29|pop80)" s))
  in
  let print ppf p = Format.pp_print_string ppf (Pop.preset_name p) in
  Arg.conv (parse, print)

let preset_arg =
  let doc = "POP preset: pop10, pop15, pop29 or pop80 (paper instances)." in
  Arg.(value & opt preset_conv `Pop10 & info [ "preset"; "p" ] ~doc)

let seed_arg =
  let doc = "Random seed (topology and traffic are derived from it)." in
  Arg.(value & opt int 1 & info [ "seed"; "s" ] ~doc)

let coverage_arg =
  let doc = "Coverage target k in (0, 1]." in
  Arg.(value & opt float 0.9 & info [ "coverage"; "k" ] ~doc)

let sample_arg =
  let doc =
    "Use an embedded sample topology (backbone-11 or metro-7) instead \
     of a generated preset."
  in
  Arg.(value & opt (some string) None & info [ "sample" ] ~doc)

let topo_arg =
  let doc =
    "Load the topology from $(docv) (the node/link format of \
     Topo_file) instead of a generated preset. Parse errors name the \
     file, line and offending token, and exit 2."
  in
  Arg.(value & opt (some string) None & info [ "topo" ] ~docv:"FILE" ~doc)

let demands_arg =
  let doc =
    "Load the traffic matrix from $(docv) (one $(b,demand <src> <dst> \
     <volume>) per line, routed on shortest paths) instead of \
     generating one. Parse errors name the file, line and offending \
     token, and exit 2."
  in
  Arg.(value & opt (some string) None & info [ "demands" ] ~docv:"FILE" ~doc)

let ok_or_raise = function Ok v -> v | Error e -> raise (Rerror.Error e)

let load_pop preset seed ~topo ~sample =
  match (topo, sample) with
  | Some path, _ -> ok_or_raise (Topo_file.parse_file path)
  | None, Some name ->
    if not (List.mem_assoc name Topo_file.samples) then
      bad_input
        (Printf.sprintf "unknown sample %S (backbone-11|metro-7)" name);
    Topo_file.load_sample name
  | None, None -> Pop.make_preset preset ~seed

let load_instance ?sample ?topo ?demands preset seed =
  let pop = load_pop preset seed ~topo ~sample in
  let inst =
    match demands with
    | Some path -> ok_or_raise (Instance.load_demands pop path)
    | None -> Instance.of_pop pop ~seed:(seed * 131)
  in
  (pop, inst)

(* ------------------------------------------------------------------ *)
(* topology                                                            *)

let topology_cmd =
  let dot_arg =
    let doc = "Write a Graphviz rendering (loads as edge thickness)." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~doc)
  in
  let run obs preset seed sample topo demands dot =
    with_obs obs @@ fun () ->
    let pop, inst = load_instance ?sample ?topo ?demands preset seed in
    Format.printf "%s (seed %d): %a@." pop.Pop.name seed Instance.pp_summary inst;
    Format.printf "routers: %d (backbone+access), endpoints: %d@."
      (Pop.num_routers pop)
      (List.length (Pop.endpoints pop));
    (match dot with
    | None -> ()
    | Some path ->
      let s =
        Monpos_graph.Dot.with_loads pop.Pop.graph ~loads:inst.Instance.loads
      in
      Out_channel.with_open_text path (fun oc -> output_string oc s);
      Format.printf "dot written to %s@." path);
    0
  in
  let doc = "Generate or load a POP topology + traffic matrix and summarize it." in
  Cmd.v
    (Cmd.info "topology" ~doc ~exits)
    Term.(
      const run $ obs_term $ preset_arg $ seed_arg $ sample_arg $ topo_arg
      $ demands_arg $ dot_arg)

(* ------------------------------------------------------------------ *)
(* passive                                                             *)

let passive_cmd =
  let method_arg =
    let doc =
      "Solver: greedy, static (load-order greedy), exact, mip-lp1, \
       mip-lp2, mecf or mecf-flow (min-cost-flow relaxation, honours \
       $(b,--flow-kernel))."
    in
    Arg.(value & opt string "exact" & info [ "method"; "m" ] ~doc)
  in
  let budget_arg =
    let doc = "Maximize coverage under a device budget instead of fixing k." in
    Arg.(value & opt (some int) None & info [ "budget" ] ~doc)
  in
  let installed_arg =
    let doc = "Comma-separated installed link ids (incremental placement)." in
    Arg.(value & opt (some string) None & info [ "installed" ] ~doc)
  in
  let dot_arg =
    let doc = "Write a Graphviz rendering with monitored links highlighted." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~doc)
  in
  let waxman_arg =
    let doc =
      "Solve on a synthetic Waxman random topology with $(docv) nodes \
       (alpha 0.22, beta 0.35, derived from $(b,--seed)) instead of a \
       POP preset — searches large enough to interrupt, which is what \
       the crash/resume CI drill needs."
    in
    Arg.(value & opt (some int) None & info [ "waxman" ] ~docv:"N" ~doc)
  in
  let run obs tune strict preset seed sample topo demands k method_ budget
      installed dot flow_kernel waxman =
    let options = tune Mip.default_options in
    with_obs
      ~jobs:(Mip.resolved_jobs options)
      ~scheduler:(Mip.scheduler_mode options)
      ?checkpoint:options.Mip.checkpoint obs
    @@ fun () ->
    let inst =
      match waxman with
      | Some nn ->
        let g = Synthetic.waxman ~n:nn ~alpha:0.22 ~beta:0.35 ~seed in
        let nodes = Array.init (Graph.num_nodes g) (fun i -> i) in
        Prng.shuffle (Prng.create 17) nodes;
        let count = min (max 12 (nn / 6)) (Array.length nodes) in
        let endpoints = Array.to_list (Array.sub nodes 0 count) in
        let matrix = Traffic.generate g ~endpoints ~seed:(seed * 131) in
        Instance.make g matrix
      | None -> snd (load_instance ?sample ?topo ?demands preset seed)
    in
    let parse_edges s =
      List.map
        (fun w ->
          match int_of_string_opt w with
          | Some e -> e
          | None -> bad_input (Printf.sprintf "bad link id %S in --installed" w))
        (String.split_on_char ',' s)
    in
    let ladder formulation =
      if strict then (Passive.solve_mip ~k ~formulation ~options inst, 0)
      else report_outcome "ppm" (Resilient.solve_ppm ~k ~formulation ~options inst)
    in
    let sol, code =
      match (budget, installed) with
      | Some b, _ -> (Passive.budgeted ~budget:b inst, 0)
      | None, Some links ->
        (Passive.incremental ~k ~installed:(parse_edges links) inst, 0)
      | None, None -> (
        match method_ with
        | "greedy" -> (Passive.greedy ~k inst, 0)
        | "static" -> (Passive.greedy_static ~k inst, 0)
        | "exact" -> (Passive.solve_exact ~k inst, 0)
        | "mip-lp1" -> ladder `Lp1
        | "mip-lp2" -> ladder `Lp2
        | "mecf" -> (Mecf.solve_mip ~k ~options inst, 0)
        | "mecf-flow" ->
          let algo = Option.value flow_kernel ~default:Mincost.Ssp in
          (Mecf.flow_heuristic ~k ~algo inst, 0)
        | other ->
          bad_input
            (Printf.sprintf
               "unknown method %S \
                (greedy|static|exact|mip-lp1|mip-lp2|mecf|mecf-flow)"
               other))
    in
    Format.printf "%a@." Passive.pp sol;
    print_string (Monpos.Report.passive_table inst sol);
    (match dot with
    | None -> ()
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Monpos.Report.passive_dot inst sol));
      Format.printf "dot written to %s@." path);
    code
  in
  let doc = "Place passive monitoring taps (PPM(k), §4)." in
  Cmd.v
    (Cmd.info "passive" ~doc ~exits)
    Term.(
      const run $ obs_term $ solver_term $ strict_arg $ preset_arg $ seed_arg
      $ sample_arg $ topo_arg $ demands_arg $ coverage_arg $ method_arg
      $ budget_arg $ installed_arg $ dot_arg $ flow_kernel_arg $ waxman_arg)

(* ------------------------------------------------------------------ *)
(* sampling                                                            *)

let sampling_cmd =
  let install_cost_arg =
    let doc = "Installation cost per device." in
    Arg.(value & opt float 10.0 & info [ "install-cost" ] ~doc)
  in
  let scaled_arg =
    let doc = "Scale exploitation cost with link load (default uniform)." in
    Arg.(value & flag & info [ "load-scaled" ] ~doc)
  in
  let run obs tune strict preset seed k install_cost scaled flow_kernel =
    let options = tune Sampling.default_milp_options in
    with_obs
      ~jobs:(Mip.resolved_jobs options)
      ~scheduler:(Mip.scheduler_mode options)
      ?checkpoint:options.Mip.checkpoint obs
    @@ fun () ->
    let _, inst = load_instance preset seed in
    let costs =
      if scaled then Sampling.load_scaled_costs inst ~install:install_cost ()
      else Sampling.uniform_costs ~install:install_cost ()
    in
    let pb = Sampling.make_problem ~k ~costs inst in
    let sol, code =
      if strict then (Sampling.solve_milp ~options pb, 0)
      else report_outcome "ppme" (Resilient.solve_ppme ~options pb)
    in
    (* with a flow kernel selected, re-tune rates on the fixed
       placement through the PPME* min-cost-flow formulation *)
    let sol =
      match flow_kernel with
      | None -> sol
      | Some algo ->
        let retuned =
          Sampling.reoptimize_flow ~algo pb ~installed:sol.Sampling.installed
        in
        Format.printf "rates re-tuned by %s flow kernel@."
          (match algo with
          | Mincost.Ssp -> "ssp"
          | Mincost.Net_simplex -> "netsimplex");
        retuned
    in
    Format.printf "%a@." Sampling.pp sol;
    List.iter
      (fun e ->
        Format.printf "  link %d %s rate %.3f@." e
          (Graph.edge_name inst.Instance.graph e)
          sol.Sampling.rates.(e))
      sol.Sampling.installed;
    code
  in
  let doc = "Place sampling devices and choose rates (PPME(h,k), §5)." in
  Cmd.v
    (Cmd.info "sampling" ~doc ~exits)
    Term.(
      const run $ obs_term $ solver_term $ strict_arg $ preset_arg $ seed_arg
      $ coverage_arg $ install_cost_arg $ scaled_arg $ flow_kernel_arg)

(* ------------------------------------------------------------------ *)
(* active                                                              *)

let active_cmd =
  let vb_arg =
    let doc = "Number of selectable beacons |V_B| (random router subset)." in
    Arg.(value & opt int 8 & info [ "vb" ] ~doc)
  in
  let method_arg =
    let doc = "Placement: thiran, greedy or ilp." in
    Arg.(value & opt string "ilp" & info [ "method"; "m" ] ~doc)
  in
  let run obs tune strict preset seed vb method_ =
    let options = tune Mip.default_options in
    with_obs
      ~jobs:(Mip.resolved_jobs options)
      ~scheduler:(Mip.scheduler_mode options)
      ?checkpoint:options.Mip.checkpoint obs
    @@ fun () ->
    let pop = Pop.make_preset preset ~seed in
    let routers = Array.of_list (Pop.routers pop) in
    let rng = Prng.create ((seed * 104729) + vb) in
    Prng.shuffle rng routers;
    let candidates =
      List.sort compare
        (Array.to_list (Array.sub routers 0 (min vb (Array.length routers))))
    in
    let probes =
      Active.compute_probes ~targets:candidates pop.Pop.graph ~candidates
    in
    Format.printf "%s: |V_B| = %d, probe set size %d@." pop.Pop.name
      (List.length candidates) (List.length probes);
    if probes = [] then begin
      Format.printf "no probes (candidate pairs are disconnected?)@.";
      0
    end
    else begin
      let placement, code =
        match method_ with
        | "thiran" -> (Active.place_thiran probes ~candidates, 0)
        | "greedy" -> (Active.place_greedy probes ~candidates, 0)
        | "ilp" ->
          if strict then (Active.place_ilp ~options probes ~candidates, 0)
          else
            report_outcome "beacons"
              (Resilient.place_beacons ~options probes ~candidates)
        | other ->
          bad_input
            (Printf.sprintf "unknown method %S (thiran|greedy|ilp)" other)
      in
      Format.printf "%s places %d beacon(s):%s@." placement.Active.method_name
        (List.length placement.Active.beacons)
        (String.concat ""
           (List.map
              (fun b -> " " ^ Graph.label pop.Pop.graph b)
              placement.Active.beacons));
      Format.printf "placement valid: %b@."
        (Active.validate probes ~beacons:placement.Active.beacons ~candidates);
      code
    end
  in
  let doc = "Compute probes and place active beacons (§6)." in
  Cmd.v
    (Cmd.info "active" ~doc ~exits)
    Term.(
      const run $ obs_term $ solver_term $ strict_arg $ preset_arg $ seed_arg
      $ vb_arg $ method_arg)

(* ------------------------------------------------------------------ *)
(* dynamic                                                             *)

let dynamic_cmd =
  let steps_arg =
    Arg.(value & opt int 30 & info [ "steps" ] ~doc:"Drift steps to simulate.")
  in
  let sigma_arg =
    Arg.(value & opt float 0.25 & info [ "sigma" ] ~doc:"Drift strength.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.85
      & info [ "threshold" ] ~doc:"Coverage tolerance T triggering PPME*.")
  in
  let jobs_arg =
    let doc =
      "Worker domains for the initial PPME placement MILP (the drift \
       loop itself re-optimizes through LP or flow kernels)."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let run obs preset seed k steps sigma threshold flow_kernel jobs =
    let milp_options =
      {
        Mip.default_options with
        Mip.jobs = Option.value jobs ~default:Mip.default_options.Mip.jobs;
      }
    in
    with_obs
      ~jobs:(Mip.resolved_jobs milp_options)
      ~scheduler:(Mip.scheduler_mode milp_options) obs
    @@ fun () ->
    let kernel = Option.map (fun algo -> Sampling.Flow algo) flow_kernel in
    let points =
      Scenario.dynamic_run ~preset ~seed ~k ~threshold ~steps ~sigma ?kernel
        ?jobs ()
    in
    Table.print
      ~header:[ "step"; "before"; "after"; "reopts" ]
      (List.map
         (fun (p : Scenario.dynamic_point) ->
           [
             string_of_int p.Scenario.step;
             Table.float_cell ~decimals:3 p.Scenario.coverage_before;
             Table.float_cell ~decimals:3 p.Scenario.coverage_after;
             string_of_int p.Scenario.reoptimizations;
           ])
         points);
    0
  in
  let doc = "Simulate traffic drift with PPME* re-optimizations (§5.4)." in
  Cmd.v
    (Cmd.info "dynamic" ~doc ~exits)
    Term.(
      const run $ obs_term $ preset_arg $ seed_arg $ coverage_arg $ steps_arg
      $ sigma_arg $ threshold_arg $ flow_kernel_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)

let campaign_cmd =
  let budget_arg =
    Arg.(value & opt int 3 & info [ "budget" ] ~doc:"Taps available today.")
  in
  let kpaths_arg =
    Arg.(value & opt int 4 & info [ "k-paths" ] ~doc:"Alternative routes per demand.")
  in
  let run obs preset seed budget k_paths =
    with_obs obs @@ fun () ->
    let _, inst = load_instance preset seed in
    let placed = Passive.budgeted ~budget inst in
    Format.printf "placement: %a@." Passive.pp placed;
    let c =
      Monpos.Campaign.reroute_for_monitors ~k_paths inst
        ~monitors:placed.Passive.monitors
    in
    Format.printf
      "campaign: coverage %.1f%% -> %.1f%% by re-routing %d demand(s)@."
      (100.0 *. c.Monpos.Campaign.coverage_before)
      (100.0 *. c.Monpos.Campaign.coverage_after)
      (List.length c.Monpos.Campaign.moves);
    0
  in
  let doc = "Re-route traffic to maximize monitorability (§7 extension)." in
  Cmd.v
    (Cmd.info "campaign" ~doc ~exits)
    Term.(const run $ obs_term $ preset_arg $ seed_arg $ budget_arg $ kpaths_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

let sweep_cmd =
  let figure_arg =
    let doc = "Which figure to regenerate: fig7, fig8, fig9, fig10, fig11." in
    Arg.(value & opt string "fig7" & info [ "figure"; "f" ] ~doc)
  in
  let seeds_arg =
    Arg.(value & opt int 10 & info [ "seeds" ] ~doc:"Number of seeds to average.")
  in
  let run obs figure nseeds =
    with_obs obs @@ fun () ->
    let seeds = List.init nseeds (fun i -> i + 1) in
    (match figure with
    | "fig7" | "fig8" ->
      let preset = if figure = "fig7" then `Pop10 else `Pop15 in
      let node_limit = if figure = "fig8" then Some 250_000 else None in
      let points = Scenario.passive_sweep ~preset ~seeds ?node_limit () in
      Table.print
        ~header:[ "k%"; "greedy(load)"; "greedy(adapt)"; "ILP" ]
        (List.map
           (fun (p : Scenario.passive_point) ->
             [
               string_of_int p.Scenario.k_percent;
               Table.float_cell ~decimals:1 p.Scenario.greedy_static_devices;
               Table.float_cell ~decimals:1 p.Scenario.greedy_devices;
               Table.float_cell ~decimals:1 p.Scenario.ilp_devices
               ^ (if p.Scenario.ilp_optimal then "" else " *");
             ])
           points)
    | "fig9" | "fig10" | "fig11" ->
      let preset =
        match figure with
        | "fig9" -> `Pop15
        | "fig10" -> `Pop29
        | _ -> `Pop80
      in
      let points = Scenario.active_sweep ~preset ~seeds () in
      Table.print
        ~header:[ "|V_B|"; "probes"; "thiran"; "greedy"; "ilp" ]
        (List.map
           (fun (p : Scenario.active_point) ->
             [
               string_of_int p.Scenario.vb_size;
               Table.float_cell ~decimals:1 p.Scenario.probes;
               Table.float_cell ~decimals:1 p.Scenario.thiran_beacons;
               Table.float_cell ~decimals:1 p.Scenario.greedy_beacons;
               Table.float_cell ~decimals:1 p.Scenario.ilp_beacons;
             ])
           points)
    | other ->
      bad_input
        (Printf.sprintf "unknown figure %S (fig7|fig8|fig9|fig10|fig11)" other));
    0
  in
  let doc = "Regenerate a paper figure's data series." in
  Cmd.v
    (Cmd.info "sweep" ~doc ~exits)
    Term.(const run $ obs_term $ figure_arg $ seeds_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_cmd =
  let module Reader = Monpos_obs.Trace_reader in
  let module Profile = Monpos_obs.Profile in
  let module Converge = Monpos_obs.Converge in
  let module Json = Monpos_obs.Json in
  let file_arg =
    let doc =
      "JSONL trace file written by $(b,--trace), or a flight-recorder \
       dump written by $(b,--flight-dump) (same format)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let profile_arg =
    let doc = "Report the span-tree wall-time profile." in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let folded_arg =
    let doc =
      "Emit the wall-clock stack samples recorded by $(b,--stack-hz) \
       as folded stacks (one $(b,outer;inner count) line each), the \
       input format of flamegraph.pl, inferno and speedscope."
    in
    Arg.(value & flag & info [ "folded" ] ~doc)
  in
  let converge_arg =
    let doc =
      "Report branch-and-bound convergence (incumbent/bound trajectory, \
       gap, prune rate, warm-start outcomes) per solver, plus the run's \
       resilience events: deadline hits, degradation-ladder descents \
       and recoveries, chaos injections."
    in
    Arg.(value & flag & info [ "converge" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the selected reports as one JSON object on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run file profile converge folded json =
    (* no report selected: render profile + convergence. --folded on
       its own emits only the folded stacks, so the output pipes
       straight into flamegraph.pl. *)
    let profile, converge =
      if (not profile) && not converge && not folded then (true, true)
      else (profile, converge)
    in
    match Reader.read_file file with
    | exception Sys_error msg ->
      Format.eprintf "monitorctl: cannot read trace: %s@." msg;
      2
    | read ->
      let records = read.Reader.records in
      if json then begin
        let reports =
          [ ("events", Json.Int (List.length records));
            ("malformed_lines", Json.Int read.Reader.malformed);
            ("unknown_events", Json.Int read.Reader.unknown);
            ("truncated", Json.Bool read.Reader.truncated) ]
          @ (if profile then
               [ ("profile", Profile.to_json (Profile.of_records records)) ]
             else [])
          @ (if converge then
               [ ("converge", Converge.to_json (Converge.of_records records)) ]
             else [])
          @
          if folded then
            [
              ( "folded",
                Json.Obj
                  (List.map
                     (fun (stack, n) -> (stack, Json.Int n))
                     (Profile.folded_of_records records)) );
            ]
          else []
        in
        print_endline (Json.to_string (Json.Obj reports))
      end
      else begin
        if profile || converge then
          Format.printf "%s: %d event(s)%s%s%s@." file (List.length records)
            (if read.Reader.malformed > 0 then
               Printf.sprintf ", %d malformed line(s) skipped"
                 read.Reader.malformed
             else "")
            (if read.Reader.unknown > 0 then
               Printf.sprintf ", %d unknown event(s) ignored"
                 read.Reader.unknown
             else "")
            (if read.Reader.truncated then ", truncated final line dropped"
             else "");
        if profile then print_string (Profile.render (Profile.of_records records));
        if converge then
          print_string (Converge.render (Converge.of_records records));
        if folded then print_string (Profile.render_folded records)
      end;
      0
  in
  let doc =
    "Analyze a recorded solver trace or flight dump: wall-time \
     profile, branch-and-bound convergence report and/or folded \
     flamegraph stacks."
  in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(
      const run $ file_arg $ profile_arg $ converge_arg $ folded_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* resume                                                              *)

let resume_cmd =
  let ckpt_arg =
    let doc =
      "Checkpoint file written by a $(b,--checkpoint) solve (any \
       MIP-backed subcommand)."
    in
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"CHECKPOINT" ~doc)
  in
  let jobs_arg =
    let doc =
      "Worker domains for the resumed search (results are identical \
       for every value, including across the interrupted/resumed \
       boundary)."
    in
    Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let time_limit_arg =
    let doc =
      "Total wall-clock budget in seconds for the original solve: the \
       elapsed time recorded in the checkpoint is subtracted, so \
       repeated crash/resume cycles cannot stretch a bounded run."
    in
    Arg.(
      value & opt (some float) None & info [ "time-limit" ] ~docv:"SECS" ~doc)
  in
  let max_nodes_arg =
    let doc = "Branch-and-bound node budget for this run." in
    Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Where further checkpoints of the resumed run go (default: \
       overwrite $(b,CHECKPOINT) in place)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_every_arg =
    let doc =
      "Minimum seconds between periodic checkpoint writes (default \
       60; 0 writes at every wave barrier)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "checkpoint-every" ] ~docv:"SECS" ~doc)
  in
  let run obs ckpt jobs time_limit max_nodes checkpoint checkpoint_every =
    let d = Mip.default_options in
    let options =
      {
        d with
        Mip.jobs = Option.value jobs ~default:d.Mip.jobs;
        time_limit = Option.value time_limit ~default:d.Mip.time_limit;
        max_nodes = Option.value max_nodes ~default:d.Mip.max_nodes;
        checkpoint;
        checkpoint_every =
          Option.value checkpoint_every ~default:d.Mip.checkpoint_every;
      }
    in
    with_obs
      ~jobs:(Mip.resolved_jobs options)
      ~scheduler:"wave"
      ~checkpoint:(Option.value checkpoint ~default:ckpt)
      obs
    @@ fun () ->
    let r = Mip.resume ~options ckpt in
    let status_name =
      match r.Mip.status with
      | Mip.Optimal -> "optimal"
      | Mip.Feasible -> "feasible"
      | Mip.Infeasible -> "infeasible"
      | Mip.Unbounded -> "unbounded"
      | Mip.No_solution -> "no-solution"
    in
    (* one greppable line: the crash/resume CI drill (and any script
       wrapping a preemptible solve) parses these fields *)
    Format.printf
      "status=%s objective=%.6f bound=%.6f gap=%.6g nodes=%d preempted=%b@."
      status_name r.Mip.objective r.Mip.bound r.Mip.gap r.Mip.nodes
      r.Mip.preempted;
    (match r.Mip.solution with
    | Some x ->
      let nz = Array.fold_left (fun a v -> if v <> 0.0 then a + 1 else a) 0 x in
      Format.printf "solution: %d variable(s), %d nonzero@." (Array.length x)
        nz
    | None -> ());
    if r.Mip.preempted then 5
    else
      match r.Mip.status with
      | Mip.Optimal -> 0
      | Mip.Feasible | Mip.No_solution -> 3
      | Mip.Infeasible -> 2
      | Mip.Unbounded -> 4
  in
  let doc =
    "Resume an interrupted $(b,--checkpoint) solve. The search-shaping \
     options (branching, tolerances, kernel, wave size) come from the \
     checkpoint — only run-environment knobs can be set here — and the \
     resumed run reaches a result bit-identical to the uninterrupted \
     one, for any $(b,--jobs) on either side."
  in
  Cmd.v
    (Cmd.info "resume" ~doc ~exits)
    Term.(
      const run $ obs_term $ ckpt_arg $ jobs_arg $ time_limit_arg
      $ max_nodes_arg $ checkpoint_arg $ checkpoint_every_arg)

(* ------------------------------------------------------------------ *)
(* metrics-serve                                                       *)

let metrics_serve_cmd =
  let module Prom = Monpos_obs.Prom in
  let listen_arg =
    let doc =
      "Bind address, $(b,ADDR:PORT). ADDR may be an IP, a hostname or \
       empty/$(b,*) for any interface; port 0 picks an ephemeral port \
       (printed on startup)."
    in
    Arg.(
      value
      & opt string "127.0.0.1:9464"
      & info [ "listen" ] ~docv:"ADDR:PORT" ~doc)
  in
  let requests_arg =
    let doc =
      "Answer $(docv) requests and exit (smoke tests); default: serve \
       forever."
    in
    Arg.(value & opt (some int) None & info [ "requests" ] ~docv:"N" ~doc)
  in
  let no_warmup_arg =
    let doc =
      "Skip the warm-up PPM solve; the first scrapes then see an \
       almost-empty registry."
    in
    Arg.(value & flag & info [ "no-warmup" ] ~doc)
  in
  let run obs tune preset seed k listen requests no_warmup =
    let options = tune Mip.default_options in
    with_obs
      ~jobs:(Mip.resolved_jobs options)
      ~scheduler:(Mip.scheduler_mode options) obs
    @@ fun () ->
    (* the warm-up solve runs on its own domain while the serve loop
       answers, so /healthz, /statusz and /metrics show the live
       watermarks of an in-flight (possibly multi-domain) solve
       instead of blocking until it lands *)
    let warmup =
      if no_warmup then None
      else begin
        let _, inst = load_instance preset seed in
        Some
          (Domain.spawn (fun () ->
               match Resilient.solve_ppm ~k ~options inst with
               | o -> Ok o.Resilient.rung
               | exception e -> Error (Printexc.to_string e)))
      end
    in
    let fd =
      try Prom.listen listen with
      | Invalid_argument msg -> bad_input msg
      | Unix.Unix_error (err, _, _) ->
        Rerror.io_error ~path:listen (Unix.error_message err)
    in
    Format.printf "serving /metrics, /healthz, /statusz on port %d%s@."
      (Prom.bound_port fd)
      (match requests with
      | Some n -> Printf.sprintf " for %d request(s)" n
      | None -> "");
    (* SIGINT/SIGTERM (handlers installed by with_obs) only set the
       preemption flag; the serve loop re-checks it after every
       request and every interrupted accept, finishes the in-flight
       response, and falls out here for an orderly exit 0: shutdown
       event, socket closed, warm-up solve joined (it polls the same
       flag, so a signal accelerates it too). *)
    let served =
      Prom.serve ?max_requests:requests ~should_stop:Preempt.requested
        ~registry:Obs_metrics.default fd
    in
    Obs_trace.server_shutdown (Obs_trace.current ()) ~served;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if Preempt.requested () then
      Format.printf "shutdown requested; served %d request(s)@." served;
    match Option.map Domain.join warmup with
    | None | Some (Ok _) -> 0
    | Some (Error msg) ->
      Format.eprintf "monitorctl: warm-up solve failed: %s@." msg;
      4
  in
  let doc =
    "Serve the metrics registry as a Prometheus scrape endpoint \
     (text exposition format 0.0.4, plain Unix sockets), with \
     /healthz liveness and /statusz live solver introspection."
  in
  Cmd.v
    (Cmd.info "metrics-serve" ~doc ~exits)
    Term.(
      const run $ obs_term $ solver_term $ preset_arg $ seed_arg $ coverage_arg
      $ listen_arg $ requests_arg $ no_warmup_arg)

(* ------------------------------------------------------------------ *)
(* diff                                                                *)

let diff_cmd =
  let module Reader = Monpos_obs.Trace_reader in
  let module Diff = Monpos_obs.Diff in
  let module Json = Monpos_obs.Json in
  let module Bench_check = Monpos_obs.Bench_check in
  let a_arg =
    let doc = "Baseline run: a $(b,--trace) JSONL file, or a bench report with $(b,--bench)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc)
  in
  let b_arg =
    let doc = "Current run, same format as $(docv)." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc)
  in
  let bench_arg =
    let doc =
      "Compare two bench reports (BENCH_monpos.json, schema \
       monpos-bench/1) with the bench regression gate instead of two \
       traces."
    in
    Arg.(value & flag & info [ "bench" ] ~doc)
  in
  let read_trace path =
    match Reader.read_file path with
    | exception Sys_error msg -> Rerror.io_error ~path msg
    | r -> r
  in
  let read_json path =
    let text =
      try In_channel.with_open_text path In_channel.input_all
      with Sys_error msg -> Rerror.io_error ~path msg
    in
    match Json.parse text with
    | Ok j -> j
    | Error msg ->
      raise (Rerror.Error (Rerror.Parse_error { file = path; line = 0; msg }))
  in
  let run a b bench =
    try
      if bench then begin
        match
          Bench_check.compare_reports ~baseline:(read_json a)
            ~current:(read_json b)
        with
        | Error msg ->
          Format.eprintf "monitorctl: incomparable bench reports: %s@." msg;
          2
        | Ok report ->
          print_string (Bench_check.render report);
          if report.Bench_check.findings <> [] then 1 else 0
      end
      else begin
        let report = Diff.of_traces ~a:(read_trace a) ~b:(read_trace b) in
        print_string (Diff.render report);
        if report.Diff.regressions > 0 then 1 else 0
      end
    with Rerror.Error e ->
      Format.eprintf "monitorctl: %s@." (Rerror.to_string e);
      Rerror.exit_code e
  in
  let doc =
    "Diff two recorded runs (traces or bench reports): wall time, \
     pivots, nodes and allocation per span/solver, gated by the bench \
     regression thresholds."
  in
  let exits =
    Cmd.Exit.info 1
      ~doc:
        "when the comparison finds a gating regression (chaos-run \
         violations are reported but tolerated)."
    :: Cmd.Exit.info 2 ~doc:"on an unreadable or incomparable input file."
    :: Cmd.Exit.defaults
  in
  Cmd.v
    (Cmd.info "diff" ~doc ~exits)
    Term.(const run $ a_arg $ b_arg $ bench_arg)

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "optimal positioning of active and passive monitoring devices \
     (CoNEXT'05 reproduction)"
  in
  let info = Cmd.info "monitorctl" ~version:Monpos_obs.Runinfo.version ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [
            topology_cmd;
            passive_cmd;
            sampling_cmd;
            active_cmd;
            dynamic_cmd;
            campaign_cmd;
            sweep_cmd;
            resume_cmd;
            analyze_cmd;
            metrics_serve_cmd;
            diff_cmd;
          ]))
