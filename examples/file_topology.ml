(* Loading a measured topology from a file (the Rocketfuel workflow of
   §4.4, with our own file format standing in for the Rocketfuel data)
   and running the full pipeline on it: structural analysis, passive
   placement, active beacons with traffic-overhead accounting.

   Run with: dune exec examples/file_topology.exe [-- path/to/topo.txt] *)

module Instance = Monpos.Instance
module Passive = Monpos.Passive
module Active = Monpos.Active
module Pop = Monpos_topo.Pop
module Topo_file = Monpos_topo.Topo_file
module Graph = Monpos_graph.Graph
module Metrics = Monpos_graph.Metrics
module Traffic = Monpos_traffic.Traffic
module Table = Monpos_util.Table

let () =
  let pop =
    match Sys.argv with
    | [| _; path |] -> (
      match Topo_file.parse_file path with
      | Ok pop -> pop
      | Error e ->
        prerr_endline
          ("cannot load topology: " ^ Monpos_resilience.Error.to_string e);
        exit (Monpos_resilience.Error.exit_code e))
    | _ ->
      Format.printf "(no file given; using the embedded sample \"backbone-11\")@.";
      Topo_file.load_sample "backbone-11"
  in
  let g = pop.Pop.graph in
  Format.printf "%s: %d routers, %d links, %d endpoints@.@." pop.Pop.name
    (Pop.num_routers pop) (Graph.num_edges g)
    (List.length (Pop.endpoints pop));
  (* structural analysis: where is the network fragile / load-bearing? *)
  let bridges = Metrics.bridges g in
  let betweenness = Metrics.edge_betweenness g in
  Format.printf "diameter %d hops; %d bridge link(s)@." (Metrics.diameter g)
    (List.length bridges);
  let order =
    List.sort
      (fun a b -> compare betweenness.(b) betweenness.(a))
      (List.init (Graph.num_edges g) Fun.id)
  in
  Format.printf "most structurally loaded links (betweenness):@.";
  List.iteri
    (fun i e ->
      if i < 5 then
        Format.printf "  %-22s %.0f shortest-path pairs%s@." (Graph.edge_name g e)
          betweenness.(e)
          (if List.mem e bridges then "  [bridge]" else ""))
    order;
  (* gravity traffic + passive placement *)
  let m =
    Traffic.generate_gravity g ~endpoints:(Pop.endpoints pop) ~seed:3
  in
  let inst = Instance.make g m in
  Format.printf "@.gravity matrix: %a@." Instance.pp_summary inst;
  List.iter
    (fun k ->
      let sol = Passive.solve_exact ~k inst in
      Format.printf "  k = %.2f -> %a@." k Passive.pp sol)
    [ 0.8; 0.95; 1.0 ];
  (* active monitoring with overhead accounting *)
  let candidates = Pop.routers pop in
  let probes = Active.compute_probes ~targets:candidates g ~candidates in
  let ilp = Active.place_ilp probes ~candidates in
  let cost = Active.overhead probes ~beacons:ilp.Active.beacons in
  Format.printf "@.active: %d probes; ILP places %d beacons;@."
    (List.length probes)
    (List.length ilp.Active.beacons);
  Format.printf "measurement round costs %d messages / %d link traversals@."
    cost.Active.messages cost.Active.hops;
  let rows =
    List.map
      (fun (b, c) -> [ Graph.label g b; string_of_int c ])
      cost.Active.per_beacon
  in
  Table.print ~header:[ "beacon"; "probes sent" ] rows
