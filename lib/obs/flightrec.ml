(* Always-on flight recorder: one fixed-capacity ring of recent trace
   events per domain, fed through an ordinary (custom) Trace sink so
   the typed taxonomy, timestamps and domain stamping are exactly
   those of a --trace file. Recording is a DLS lookup, a tuple box and
   a ring store — cheap enough to leave armed on every run — and a
   dump renders the merged rings with Trace.render_line, so the
   resulting JSONL is byte-compatible with the channel sinks and reads
   through Trace_reader/analyze unchanged.

   Dumps fire on the resilience triggers (deadline exceeded, ladder
   descent, chaos injection, uncaught exception) via the ambient
   {!trigger} plumbing, capped per process so a chaos storm cannot
   flood the dump directory. *)

type entry = { e_ts : float; e_ev : string; e_fields : (string * Json.t) list }

(* per-domain recording cell: the ring plus a probe countdown for the
   self-measured overhead estimate *)
type cell = { ring : entry Ring.t; mutable count : int }

type t = {
  capacity : int;
  lock : Mutex.t;
  mutable rings : (int * cell) list; (* domain id -> cell, registration order *)
  slot_key : cell option ref Domain.DLS.key;
  seen : int Atomic.t;
  mutable manifest : (string * Json.t) list option;
  mutable dump_seq : int; (* under lock *)
}

let default_capacity = 4096

let create ?(capacity = default_capacity) () =
  {
    capacity;
    lock = Mutex.create ();
    rings = [];
    slot_key = Domain.DLS.new_key (fun () -> ref None);
    seen = Atomic.make 0;
    manifest = None;
    dump_seq = 0;
  }

let capacity t = t.capacity

let set_manifest t fields = t.manifest <- Some fields

(* A spawned domain records into a fresh ring registered under its
   domain id. Domain ids recycle across solves; re-registration
   replaces the dead predecessor's ring, which keeps memory bounded by
   the live domain count and keeps dumps focused on the recent past. *)
let register t slot =
  let cell = { ring = Ring.create t.capacity; count = 0 } in
  let id = (Domain.self () :> int) in
  Mutex.protect t.lock (fun () ->
      t.rings <-
        (match List.assoc_opt id t.rings with
        | None -> t.rings @ [ (id, cell) ]
        | Some _ ->
          List.map (fun (d, c) -> if d = id then (d, cell) else (d, c)) t.rings));
  slot := Some cell;
  cell

(* Every 256th store is timed and extrapolated into the
   obs.overhead_seconds self-accounting — measuring each store would
   cost more than the store. *)
let probe_mask = 255

let record t ~ts ~ev fields =
  let slot = Domain.DLS.get t.slot_key in
  let cell = match !slot with Some c -> c | None -> register t slot in
  cell.count <- cell.count + 1;
  let e = { e_ts = ts; e_ev = ev; e_fields = fields } in
  if cell.count land probe_mask = 0 then begin
    let t0 = Clock.now () in
    Ring.push cell.ring e;
    Status.add_overhead ((Clock.now () -. t0) *. float_of_int (probe_mask + 1))
  end
  else Ring.push cell.ring e;
  Atomic.incr t.seen

let sink t = Trace.custom (fun ts ev fields -> record t ~ts ~ev fields)

let events_seen t = Atomic.get t.seen

let stats t =
  Mutex.protect t.lock (fun () ->
      List.map
        (fun (d, c) -> (d, Ring.length c.ring, Ring.dropped c.ring))
        t.rings)

let clear t =
  Mutex.protect t.lock (fun () ->
      List.iter (fun (_, c) -> Ring.clear c.ring) t.rings);
  Atomic.set t.seen 0

(* Merge every domain's retained events into one stream ordered by
   timestamp (each sink fan-out shares one epoch, so timestamps are
   comparable across domains); stable sort keeps each domain's own
   order on ties. The manifest, when present, leads as an ordinary
   run_info event so analyze/diff join dumps like any trace. *)
let render t =
  let entries =
    Mutex.protect t.lock (fun () ->
        List.concat_map
          (fun (_, c) -> Ring.to_list c.ring)
          t.rings)
  in
  let sorted =
    List.stable_sort (fun a b -> Float.compare a.e_ts b.e_ts) entries
  in
  let buf = Buffer.create 4096 in
  (match t.manifest with
  | Some fields -> Trace.render_line buf 0.0 "run_info" fields
  | None -> ());
  List.iter (fun e -> Trace.render_line buf e.e_ts e.e_ev e.e_fields) sorted;
  Buffer.contents buf

(* reasons come from our own trigger sites, but an explicit caller
   could pass anything; keep the filename shell-safe *)
let sanitize_reason r =
  let r = if r = "" then "dump" else r in
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_') as c -> c | _ -> '_')
    r

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let dump t ?(reason = "explicit") dir =
  let seq = Mutex.protect t.lock (fun () -> t.dump_seq <- t.dump_seq + 1; t.dump_seq) in
  mkdir_p dir;
  let path =
    Filename.concat dir
      (Printf.sprintf "flight-%04d-%s.jsonl" seq (sanitize_reason reason))
  in
  let t0 = Clock.now () in
  Out_channel.with_open_bin path (fun oc -> output_string oc (render t));
  Status.add_overhead (Clock.now () -. t0);
  path

(* ------------------------------------------------------------------ *)
(* ambient recorder + trigger plumbing *)

let current : t option ref = ref None

let dump_dir_ref : string option ref = ref None

let install ?capacity ?dir () =
  let t = create ?capacity () in
  current := Some t;
  dump_dir_ref := dir;
  t

let installed () = !current

let uninstall () =
  current := None;
  dump_dir_ref := None

let set_dump_dir d = dump_dir_ref := d

let dump_dir () = !dump_dir_ref

(* dumps are precious on the way in (a deadline or a fault just fired)
   and worthless in bulk: cap per process so a chaos storm or a
   descent cascade cannot flood the directory *)
let max_dumps = 8

let dumps_taken_cell = Atomic.make 0

let dumps_taken () = Atomic.get dumps_taken_cell

let m_dumps reason =
  Metrics.counter ~labels:[ ("reason", reason) ] Metrics.default "flight.dumps"

let trigger ~reason =
  match (!current, !dump_dir_ref) with
  | Some t, Some dir ->
    if Atomic.fetch_and_add dumps_taken_cell 1 < max_dumps then begin
      match dump t ~reason dir with
      | path ->
        Metrics.incr (m_dumps reason);
        Printf.eprintf "monpos: flight dump (%s) written to %s\n%!" reason path
      | exception (Sys_error _ | Unix.Unix_error _) -> ()
    end
  | _ -> ()
