(* Cross-run trace diffing: join two JSONL traces by span name and
   solver, compare wall time, pivot/node work and allocation under the
   same metric-class thresholds as the bench regression gate
   (Bench_check), and render verdicts with its OK / REGRESSED
   conventions. The bench-report flavor of [monitorctl diff] reuses
   Bench_check directly; this module handles the trace flavor. *)

type row = {
  key : string;
  a : float;
  b : float option; (* None: the metric disappeared from run B *)
  limit : string; (* threshold description; "" when within bounds *)
  regressed : bool;
}

type report = {
  rows : row list;
  compared : int;
  regressions : int; (* gating count; 0 when tolerated under chaos *)
  tolerated : int;
  notes : string list;
}

(* thresholds: wall times follow the bench gate (noisy, one-sided);
   counts are deterministic under fixed seeds; allocation is stable
   but jitters with GC timing, so it gets its own one-sided band *)
let time_rel = 0.50

let time_abs = 0.1

let exact_rel = 0.01

let alloc_rel = 0.10

let alloc_abs_words = 16384.0

type klass = Time | Alloc | Exact

let classify key =
  if Filename.check_suffix key ".seconds" then Time
  else if Filename.check_suffix key ".alloc_words" then Alloc
  else Exact

let judge key a b =
  match b with
  | None -> Some "missing"
  | Some b -> (
    match classify key with
    | Time ->
      if b > (a *. (1.0 +. time_rel)) +. time_abs then
        Some (Printf.sprintf "<= %+.0f%% + %.1fs" (100.0 *. time_rel) time_abs)
      else None
    | Alloc ->
      if b > (a *. (1.0 +. alloc_rel)) +. alloc_abs_words then
        Some
          (Printf.sprintf "<= %+.0f%% + %.0f words" (100.0 *. alloc_rel)
             alloc_abs_words)
      else None
    | Exact ->
      if Float.abs (b -. a) > exact_rel *. Float.max 1.0 (Float.abs a) then
        Some (Printf.sprintf "within %.0f%%" (100.0 *. exact_rel))
      else None)

(* ------------------------------------------------------------------ *)
(* metric extraction from one decoded trace *)

type run_summary = {
  metrics : (string * float) list; (* ordered *)
  manifest : string option; (* rendered run_info line *)
  chaos_seed : int option;
  truncated : bool;
}

let summarize (read : Trace_reader.read) =
  let records = read.Trace_reader.records in
  let profile = Profile.of_records records in
  let metrics = ref [] in
  let put key v = metrics := (key, v) :: !metrics in
  List.iter
    (fun (name, (calls, total_s, _self)) ->
      put (Printf.sprintf "span.%s.seconds" name) total_s;
      put (Printf.sprintf "span.%s.calls" name) (float_of_int calls))
    (Profile.totals profile);
  List.iter
    (fun (name, words) ->
      if words > 0.0 then put (Printf.sprintf "span.%s.alloc_words" name) words)
    (Profile.alloc_totals profile);
  (* solver work counters straight off the event stream *)
  let nodes = Hashtbl.create 4 in
  let node_order = ref [] in
  let pivots = ref 0 in
  let manifest = ref None in
  let chaos_seed = ref None in
  List.iter
    (fun (r : Trace_reader.record) ->
      match r.Trace_reader.event with
      | Trace_reader.Bb_node { solver; _ } ->
        (match Hashtbl.find_opt nodes solver with
        | Some n -> Hashtbl.replace nodes solver (n + 1)
        | None ->
          node_order := solver :: !node_order;
          Hashtbl.add nodes solver 1)
      | Trace_reader.Simplex_phase { iterations; _ }
      | Trace_reader.Warm_start { iterations; _ } ->
        pivots := !pivots + iterations
      | Trace_reader.Run_info { run_id; git_rev; hostname; chaos_seed = cs; _ }
        ->
        chaos_seed := cs;
        manifest :=
          Some
            (Printf.sprintf "%s rev=%s host=%s%s" run_id
               (Option.value ~default:"?" git_rev)
               (Option.value ~default:"?" hostname)
               (match cs with
               | Some s -> Printf.sprintf " chaos_seed=%d" s
               | None -> ""))
      | _ -> ())
    records;
  List.iter
    (fun solver ->
      put
        (Printf.sprintf "solver.%s.nodes" solver)
        (float_of_int (Hashtbl.find nodes solver)))
    (List.rev !node_order);
  if !pivots > 0 then put "simplex.pivots" (float_of_int !pivots);
  {
    metrics = List.rev !metrics;
    manifest = !manifest;
    chaos_seed = !chaos_seed;
    truncated = read.Trace_reader.truncated;
  }

let of_traces ~a ~b =
  let sa = summarize a and sb = summarize b in
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  (match sa.manifest with Some m -> note "run A: %s" m | None -> ());
  (match sb.manifest with Some m -> note "run B: %s" m | None -> ());
  if sa.truncated then note "run A trace is truncated";
  if sb.truncated then note "run B trace is truncated";
  let rows =
    List.map
      (fun (key, va) ->
        let vb = List.assoc_opt key sb.metrics in
        match judge key va vb with
        | Some limit -> { key; a = va; b = vb; limit; regressed = true }
        | None -> { key; a = va; b = vb; limit = ""; regressed = false })
      sa.metrics
  in
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key sa.metrics) then
        note "metric only in run B: %s" key)
    sb.metrics;
  let regressed = List.length (List.filter (fun r -> r.regressed) rows) in
  let chaotic = sa.chaos_seed <> None || sb.chaos_seed <> None in
  if chaotic && regressed > 0 then
    note
      "threshold violations TOLERATED: at least one run took injected chaos \
       faults";
  {
    rows;
    compared = List.length rows;
    regressions = (if chaotic then 0 else regressed);
    tolerated = (if chaotic then regressed else 0);
    notes = List.rev !notes;
  }

let render r =
  let buf = Buffer.create 1024 in
  List.iter (fun n -> Buffer.add_string buf (n ^ "\n")) r.notes;
  let fmt_val v =
    if Float.is_integer v && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v
  in
  let rows_out =
    List.map
      (fun row ->
        let delta =
          match row.b with
          | None -> "-"
          | Some b ->
            if row.a = 0.0 then (if b = 0.0 then "+0.0%" else "new")
            else Printf.sprintf "%+.1f%%" (100.0 *. (b -. row.a) /. row.a)
        in
        [
          (if row.regressed then "!!" else "OK");
          row.key;
          fmt_val row.a;
          (match row.b with Some b -> fmt_val b | None -> "(missing)");
          delta;
          row.limit;
        ])
      r.rows
  in
  Buffer.add_string buf
    (Monpos_util.Table.render
       ~header:[ ""; "metric"; "run A"; "run B"; "delta"; "limit" ]
       rows_out);
  let regressed_total = r.regressions + r.tolerated in
  if regressed_total = 0 then
    Buffer.add_string buf
      (Printf.sprintf "trace diff: %d metric(s) within thresholds: OK\n"
         r.compared)
  else if r.regressions = 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "trace diff: %d of %d metric(s) outside thresholds TOLERATED (chaos \
          run)\n"
         regressed_total r.compared)
  else
    Buffer.add_string buf
      (Printf.sprintf "trace diff: %d of %d metric(s) REGRESSED\n"
         r.regressions r.compared);
  Buffer.contents buf
