(* Prometheus text exposition (format 0.0.4) over a Metrics snapshot,
   plus a promtool-style line lint and a dependency-free scrape
   responder on raw Unix sockets. *)

(* ------------------------------------------------------------------ *)
(* naming *)

(* Registry names use dots ("simplex.iterations"); Prometheus metric
   names allow [a-zA-Z0-9_:]. Dots and anything else invalid map to
   '_', and everything is namespaced under "monpos_". *)
let sanitize_name ?(namespace = "monpos") name =
  let b = Buffer.create (String.length name + String.length namespace + 1) in
  if namespace <> "" then begin
    Buffer.add_string b namespace;
    Buffer.add_char b '_'
  end;
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | ':' | '_' -> Buffer.add_char b c
      | '0' .. '9' ->
        if i = 0 && Buffer.length b = 0 then Buffer.add_char b '_';
        Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let escape_help b s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

let escape_label_value b s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s

(* shortest decimal that round-trips; Prometheus spec spellings for
   the non-finite values *)
let add_float b v =
  if Float.is_nan v then Buffer.add_string b "NaN"
  else if v = Float.infinity then Buffer.add_string b "+Inf"
  else if v = Float.neg_infinity then Buffer.add_string b "-Inf"
  else
    let s15 = Printf.sprintf "%.15g" v in
    if float_of_string s15 = v then Buffer.add_string b s15
    else Buffer.add_string b (Printf.sprintf "%.17g" v)

let add_labels b labels =
  match labels with
  | [] -> ()
  | _ ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        escape_label_value b v;
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}'

let add_sample b name labels value =
  Buffer.add_string b name;
  add_labels b labels;
  Buffer.add_char b ' ';
  add_float b value;
  Buffer.add_char b '\n'

(* ------------------------------------------------------------------ *)
(* exposition *)

type family = {
  base : string; (* registry name, pre-sanitization *)
  kind : [ `Counter | `Gauge | `Histogram ];
  mutable series : (Metrics.labels * Metrics.entry) list; (* reversed *)
}

(* Constant build-identity gauge, the Prometheus idiom for joining
   series to the code revision that produced them (value always 1, the
   identity lives in the labels). The git revision forks a process to
   detect, so cache it for the lifetime of the exporter. *)
let build_rev = lazy (Option.value (Runinfo.detect_git_rev ()) ~default:"unknown")

let add_build_info ?namespace b =
  let name = sanitize_name ?namespace "build_info" in
  Buffer.add_string b "# HELP ";
  Buffer.add_string b name;
  Buffer.add_string b " build identity of the exposing process\n";
  Buffer.add_string b "# TYPE ";
  Buffer.add_string b name;
  Buffer.add_string b " gauge\n";
  add_sample b name
    [
      ("version", Runinfo.version);
      ("git_rev", Lazy.force build_rev);
      ("ocaml", Sys.ocaml_version);
    ]
    1.0

let to_prometheus ?namespace snap =
  (* group by metric name, preserving first-seen order *)
  let families = ref [] in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ({ Metrics.name; labels }, entry) ->
      let fam =
        match Hashtbl.find_opt tbl name with
        | Some f -> f
        | None ->
          let kind =
            match entry with
            | Metrics.Counter_value _ -> `Counter
            | Metrics.Gauge_value _ -> `Gauge
            | Metrics.Histogram_value _ -> `Histogram
          in
          let f = { base = name; kind; series = [] } in
          Hashtbl.add tbl name f;
          families := f :: !families;
          f
      in
      fam.series <- (labels, entry) :: fam.series)
    snap;
  let b = Buffer.create 4096 in
  add_build_info ?namespace b;
  List.iter
    (fun fam ->
      let exposed =
        let n = sanitize_name ?namespace fam.base in
        match fam.kind with `Counter -> n ^ "_total" | _ -> n
      in
      Buffer.add_string b "# HELP ";
      Buffer.add_string b exposed;
      Buffer.add_char b ' ';
      escape_help b ("monpos registry metric " ^ fam.base);
      Buffer.add_char b '\n';
      Buffer.add_string b "# TYPE ";
      Buffer.add_string b exposed;
      (match fam.kind with
      | `Counter -> Buffer.add_string b " counter\n"
      | `Gauge -> Buffer.add_string b " gauge\n"
      | `Histogram -> Buffer.add_string b " histogram\n");
      List.iter
        (fun (labels, entry) ->
          match entry with
          | Metrics.Counter_value c ->
            add_sample b exposed labels (float_of_int c)
          | Metrics.Gauge_value g -> add_sample b exposed labels g
          | Metrics.Histogram_value { upper; counts; count; sum } ->
            (* buckets are cumulative in the exposition even though the
               registry stores them disjoint *)
            let cum = ref 0 in
            Array.iteri
              (fun i bound ->
                cum := !cum + counts.(i);
                let le = Buffer.create 24 in
                add_float le bound;
                add_sample b (exposed ^ "_bucket")
                  (labels @ [ ("le", Buffer.contents le) ])
                  (float_of_int !cum))
              upper;
            add_sample b (exposed ^ "_bucket")
              (labels @ [ ("le", "+Inf") ])
              (float_of_int count);
            add_sample b (exposed ^ "_sum") labels sum;
            add_sample b (exposed ^ "_count") labels (float_of_int count))
        (List.rev fam.series))
    (List.rev !families);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* lint *)

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let is_label_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

let is_label_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

(* A small promtool-style checker for the text format: every sample
   line must parse (valid metric name, well-formed label set with only
   backslash/quote/newline escapes, a float value), every sample's
   family must have a preceding TYPE, histogram buckets must be
   cumulative, and no series may repeat. Returns the list of
   complaints, line-numbered. *)
let lint text =
  let errors = ref [] in
  let err line fmt =
    Printf.ksprintf (fun m -> errors := Printf.sprintf "line %d: %s" line m :: !errors) fmt
  in
  let typed = Hashtbl.create 16 in (* family -> kind string *)
  let seen_series = Hashtbl.create 64 in
  let strip_suffix name =
    let drop suffix =
      if Filename.check_suffix name suffix then
        Some (Filename.chop_suffix name suffix)
      else None
    in
    match drop "_bucket" with
    | Some base when Hashtbl.find_opt typed base = Some "histogram" -> base
    | _ -> (
      match drop "_sum" with
      | Some base when Hashtbl.find_opt typed base = Some "histogram" -> base
      | _ -> (
        match drop "_count" with
        | Some base when Hashtbl.find_opt typed base = Some "histogram" -> base
        | _ -> name))
  in
  let parse_sample lineno line =
    let n = String.length line in
    let pos = ref 0 in
    let fail fmt = Printf.ksprintf (fun m -> err lineno "%s" m; raise Exit) fmt in
    if n = 0 || not (is_name_start line.[0]) then fail "bad metric name start";
    while !pos < n && is_name_char line.[!pos] do incr pos done;
    let name = String.sub line 0 !pos in
    let labels = Buffer.create 32 in
    if !pos < n && line.[!pos] = '{' then begin
      Buffer.add_string labels "{";
      incr pos;
      let rec label_pair first =
        if !pos >= n then fail "unterminated label set";
        if line.[!pos] = '}' then incr pos
        else begin
          if not first then
            if line.[!pos] = ',' then incr pos else fail "expected , in labels";
          if !pos >= n || not (is_label_start line.[!pos]) then
            fail "bad label name";
          let s = !pos in
          while !pos < n && is_label_char line.[!pos] do incr pos done;
          Buffer.add_string labels (String.sub line s (!pos - s));
          if !pos >= n || line.[!pos] <> '=' then fail "expected = after label";
          incr pos;
          if !pos >= n || line.[!pos] <> '"' then fail "expected quoted value";
          incr pos;
          Buffer.add_char labels '=';
          let rec value () =
            if !pos >= n then fail "unterminated label value";
            match line.[!pos] with
            | '"' -> incr pos
            | '\\' ->
              incr pos;
              if !pos >= n then fail "dangling escape";
              (match line.[!pos] with
              | ('\\' | '"' | 'n') as c ->
                Buffer.add_char labels '\\';
                Buffer.add_char labels c;
                incr pos
              | c -> fail "bad escape \\%c" c);
              value ()
            | c ->
              Buffer.add_char labels c;
              incr pos;
              value ()
          in
          value ();
          Buffer.add_char labels ';';
          label_pair false
        end
      in
      label_pair true
    end;
    if !pos >= n || line.[!pos] <> ' ' then fail "expected space before value";
    incr pos;
    let value_str = String.sub line !pos (n - !pos) in
    let value =
      match value_str with
      | "+Inf" -> Float.infinity
      | "-Inf" -> Float.neg_infinity
      | "NaN" -> Float.nan
      | s -> (
        match float_of_string_opt (String.trim s) with
        | Some v -> v
        | None -> fail "unparseable value %S" s)
    in
    let base = strip_suffix name in
    if not (Hashtbl.mem typed base) then
      err lineno "sample %s has no preceding # TYPE" name;
    let series = name ^ Buffer.contents labels in
    if Hashtbl.mem seen_series series then
      err lineno "duplicate series %s" series
    else Hashtbl.add seen_series series value
  in
  let lines = String.split_on_char '\n' text in
  let count = List.length lines in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if line = "" then begin
        (* only the trailing newline may produce an empty slot *)
        if lineno < count then err lineno "blank line"
      end
      else if String.length line >= 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: kind :: [] ->
          if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
          then err lineno "bad TYPE kind %S" kind;
          if Hashtbl.mem typed name then err lineno "duplicate TYPE for %s" name;
          Hashtbl.replace typed name kind
        | "#" :: "TYPE" :: _ -> err lineno "malformed TYPE line"
        | "#" :: "HELP" :: _ :: _ -> ()
        | "#" :: "HELP" :: _ -> err lineno "malformed HELP line"
        | _ -> () (* free comment *)
      end
      else try parse_sample lineno line with Exit -> ())
    lines;
  (match List.rev lines with
  | "" :: _ -> ()
  | _ -> errors := "final line must end with a newline" :: !errors);
  (* cumulative-bucket monotonicity per histogram series *)
  Hashtbl.iter
    (fun name kind ->
      if kind = "histogram" then begin
        (* collect buckets per label-set-minus-le; series keys encode
           labels as name{k=value;...} with escapes collapsed, which is
           enough to group and compare *)
        let groups = Hashtbl.create 8 in
        Hashtbl.iter
          (fun series value ->
            let prefix = name ^ "_bucket" in
            let plen = String.length prefix in
            if
              String.length series > plen
              && String.sub series 0 plen = prefix
              && (String.length series = plen || series.[plen] = '{')
            then begin
              (* peel the le label out of the flattened key *)
              let key = series in
              match String.index_opt key '{' with
              | None -> ()
              | Some _ ->
                let le_marker = "le=" in
                let rec find_le from =
                  match String.index_from_opt key from 'l' with
                  | Some i
                    when i + 3 <= String.length key
                         && String.sub key i 3 = le_marker ->
                    Some i
                  | Some i -> find_le (i + 1)
                  | None -> None
                in
                (match find_le 0 with
                | None -> ()
                | Some i ->
                  let j =
                    match String.index_from_opt key i ';' with
                    | Some j -> j
                    | None -> String.length key
                  in
                  let le = String.sub key (i + 3) (j - i - 3) in
                  let rest =
                    String.sub key 0 i ^ String.sub key j (String.length key - j)
                  in
                  let le_value =
                    match le with
                    | "+Inf" -> Float.infinity
                    | s -> Option.value ~default:Float.nan (float_of_string_opt s)
                  in
                  let prev =
                    Option.value ~default:[] (Hashtbl.find_opt groups rest)
                  in
                  Hashtbl.replace groups rest ((le_value, value) :: prev))
            end)
          seen_series;
        Hashtbl.iter
          (fun _ buckets ->
            let sorted =
              List.sort (fun (a, _) (b, _) -> compare a b) buckets
            in
            ignore
              (List.fold_left
                 (fun acc (_, v) ->
                   if v < acc then
                     errors :=
                       Printf.sprintf "%s: non-cumulative buckets" name
                       :: !errors;
                   Float.max acc v)
                 0.0 sorted))
          groups
      end)
    typed;
  match List.rev !errors with [] -> Ok () | es -> Error es

(* ------------------------------------------------------------------ *)
(* scrape responder *)

let parse_listen_addr spec =
  match String.rindex_opt spec ':' with
  | None -> invalid_arg "listen address must be ADDR:PORT"
  | Some i ->
    let host = String.sub spec 0 i in
    let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
    let port =
      match int_of_string_opt port_s with
      | Some p when p >= 0 && p < 65536 -> p
      | _ -> invalid_arg (Printf.sprintf "bad port %S" port_s)
    in
    let addr =
      match host with
      | "" | "*" -> Unix.inet_addr_any
      | "localhost" -> Unix.inet_addr_loopback
      | h -> (
        try Unix.inet_addr_of_string h
        with Failure _ -> (
          match Unix.gethostbyname h with
          | { Unix.h_addr_list = [||]; _ } ->
            invalid_arg (Printf.sprintf "cannot resolve %S" h)
          | { Unix.h_addr_list; _ } -> h_addr_list.(0)
          | exception Not_found ->
            invalid_arg (Printf.sprintf "cannot resolve %S" h)))
    in
    Unix.ADDR_INET (addr, port)

let listen spec =
  let addr = parse_listen_addr spec in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 16;
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> invalid_arg "not an INET socket"

let read_request fd =
  let buf = Bytes.create 4096 in
  let acc = Buffer.create 256 in
  let rec go () =
    if Buffer.length acc > 65536 then Buffer.contents acc
    else
      let n = Unix.read fd buf 0 (Bytes.length buf) in
      if n = 0 then Buffer.contents acc
      else begin
        Buffer.add_subbytes acc buf 0 n;
        let s = Buffer.contents acc in
        (* headers end at the first blank line; we never read bodies *)
        let rec has_terminator i =
          match String.index_from_opt s i '\n' with
          | None -> false
          | Some j ->
            if j + 1 < String.length s && (s.[j + 1] = '\n' || (s.[j + 1] = '\r' && j + 2 < String.length s && s.[j + 2] = '\n'))
            then true
            else has_terminator (j + 1)
        in
        if has_terminator 0 || String.length s >= 4 && String.sub s (String.length s - 4) 4 = "\r\n\r\n"
        then s
        else go ()
      end
  in
  try go () with Unix.Unix_error _ -> ""

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      let n = Unix.write fd b off (Bytes.length b - off) in
      go (off + n)
  in
  try go 0 with Unix.Unix_error _ -> ()

let respond fd status content_type body =
  write_all fd
    (Printf.sprintf
       "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       status content_type (String.length body) body)

let content_type_prom = "text/plain; version=0.0.4; charset=utf-8"

(* One request per connection, strictly sequential: a scrape endpoint
   for one Prometheus server does not need concurrency, and a
   single-threaded loop cannot corrupt the registry it snapshots. *)
let serve ?max_requests ?(should_stop = fun () -> false) ?namespace ~registry
    fd =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let served = ref 0 in
  let continue () =
    (not (should_stop ()))
    && match max_requests with None -> true | Some m -> !served < m
  in
  while continue () do
    match Unix.accept fd with
    (* a signal (SIGINT/SIGTERM under graceful shutdown) interrupts
       the blocking accept with EINTR; re-checking the loop condition
       is what turns the signal into a clean exit *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | client, _ ->
      Fun.protect
        ~finally:(fun () -> try Unix.close client with Unix.Unix_error _ -> ())
        (fun () ->
          let request = read_request client in
          let path =
            match String.split_on_char ' ' request with
            | meth :: path :: _ when meth = "GET" || meth = "HEAD" -> path
            | _ -> ""
          in
          match path with
          | "/metrics" | "/" ->
            respond client "200 OK" content_type_prom
              (to_prometheus ?namespace (Metrics.snapshot registry))
          | "/healthz" ->
            respond client "200 OK" "text/plain" (Status.healthz ())
          | "/statusz" ->
            respond client "200 OK" "application/json"
              (Json.to_string (Status.to_json ~registry ()) ^ "\n")
          | "" -> respond client "400 Bad Request" "text/plain" "bad request\n"
          | _ ->
            respond client "404 Not Found" "text/plain"
              "try /metrics, /healthz or /statusz\n");
      incr served
  done;
  !served
