(** Structured trace sink writing JSONL solver events.

    A sink is either the {!null} sink — every emit helper returns
    immediately, allocating nothing — or a channel-backed sink that
    writes one JSON object per line. Each event carries its event name
    under ["ev"] and a relative timestamp in seconds under ["ts"];
    non-finite numeric fields render as [null].

    The solvers read the ambient sink via {!current}; it defaults to
    {!null} so the instrumented hot paths cost nothing unless a tool
    (the CLI's [--trace], a test) installs a real sink. Per-node call
    sites additionally guard with {!enabled} so even the boxing of
    float arguments is skipped when tracing is off. *)

type sink

val null : sink
(** The no-op sink: emits are dropped before any formatting work. *)

val to_channel : out_channel -> sink
(** A channel-backed sink. Events are formatted into an internal
    buffer and written out in batches (every 64 events and on
    {!close}), so per-event syscall pressure does not distort the hot
    paths being traced. {!events_written} counts emits, not flushes,
    and stays exact. *)

val open_file : string -> sink
(** Truncate/create the file and return a {!to_channel} sink on it. *)

val custom :
  ?close:(unit -> unit) ->
  (float -> string -> (string * Json.t) list -> unit) ->
  sink
(** [custom f] is a sink delivering every event to [f ts ev fields]
    ([ts] is seconds since the sink was created). Used for in-process
    consumers such as {!Progress}; [close] runs on {!close}. *)

val fanout : sink list -> sink
(** Deliver every event to each live (enabled) child with one shared
    timestamp, so e.g. a file sink and a progress reporter can watch
    the same solve. Collapses to {!null} (no live children) or to the
    single live child. Closing the fan-out closes every child; each
    child's {!events_written} counts its own deliveries. *)

val close : sink -> unit
(** Flush buffered events, and close the underlying channel unless it
    is stdout or stderr. The null sink is a no-op. *)

val flush : sink -> unit
(** Push buffered events through to the backing channel without
    closing the sink. Solver worker domains call this just before
    exiting so a buffered sink never holds a finished domain's tail
    events hostage until the whole run closes; a no-op on {!null},
    {!custom} and already-flushed sinks. *)

val enabled : sink -> bool

val events_written : sink -> int

(** {1 Ambient sink} *)

val current : unit -> sink

val set_current : sink -> unit

val with_current : sink -> (unit -> 'a) -> 'a
(** Install the sink for the duration of the callback, restoring the
    previous one even on exceptions. *)

(** {1 Events} *)

val emit : sink -> string -> (string * Json.t) list -> unit
(** [emit sink ev fields] writes one JSONL event. The typed helpers
    below are the stable event taxonomy; prefer them. Events emitted
    from a domain other than the initial one carry an extra ["domain"]
    field with the emitting domain's id. *)

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  major_collections : int;
  top_heap_words : int;
}
(** [Gc.quick_stat] deltas over a span: words allocated on the minor
    and major heaps, words promoted, major collections run, and growth
    of the major heap's high-water mark. All fields are differences of
    monotone GC counters, so they are non-negative. *)

val render_line :
  Buffer.t -> float -> string -> (string * Json.t) list -> unit
(** Append one event as the sink line format (one JSON object plus
    newline). Shared with the flight recorder's dump path so dumped
    rings are byte-compatible with [--trace] files. *)

(** Several high-frequency helpers below take [?sampled_of] (default
    1): when the adaptive sampler keeps one event on behalf of a block
    of [w] suppressed ones, the kept event carries
    ["sampled_of": w] so offline analysis ({!Profile}, {!Converge})
    can rescale counts exactly. Weight 1 adds no field — unsampled
    traces are byte-identical to those of earlier writers. *)

val span_open : sink -> name:string -> depth:int -> unit

val span_close :
  sink ->
  ?sampled_of:int ->
  name:string ->
  depth:int ->
  ?gc:gc_delta ->
  seconds:float ->
  unit ->
  unit
(** [gc], when present, adds the span's allocation accounting as
    [minor_words]/[major_words]/[promoted_words]/[major_collections]/
    [top_heap_words] fields on the event. *)

val bb_node :
  sink ->
  ?sampled_of:int ->
  solver:string ->
  node:int ->
  depth:int ->
  ?bound:float ->
  unit ->
  unit
(** A branch-and-bound node was visited. [solver] is ["mip"] for the
    LP-based solver, ["cover"] for the combinatorial set-cover one. *)

val incumbent : sink -> solver:string -> node:int -> objective:float -> unit
(** The incumbent improved (the initial heuristic incumbent included). *)

val bound_pruned :
  sink -> solver:string -> node:int -> bound:float -> incumbent:float -> unit

val simplex_phase :
  sink ->
  ?sampled_of:int ->
  phase:int ->
  iterations:int ->
  outcome:string ->
  unit ->
  unit

val warm_start :
  sink ->
  dual_feasible:bool ->
  iterations:int ->
  kernel:string ->
  outcome:string ->
  unit
(** A simplex solve started from a caller-supplied basis. [iterations]
    counts dual-simplex pivots (0 when the basis was installed but the
    primal phases ran instead); [kernel] names the linear-algebra
    kernel the solve ran on (["sparse_lu"] or ["dense"]); [outcome] is
    ["reoptimal"], ["primal_fallback"], ["infeasible_guess"] or
    ["iteration_limit"]. *)

val greedy_pick : sink -> pick:int -> gain:float -> covered:float -> unit

val flow_augmentation :
  sink ->
  ?sampled_of:int ->
  amount:float ->
  path_cost:float ->
  routed:float ->
  unit ->
  unit

val flow_pivots :
  sink ->
  ?sampled_of:int ->
  algo:string ->
  pivots:int ->
  objective:float ->
  unit ->
  unit
(** Periodic progress from inside a long network-simplex solve: the
    pivot count and current (shifted) objective every pivot batch, so
    a live consumer can watch a flow solve converge. High-frequency
    and therefore sampled. *)

val stack_sample :
  sink -> domain:int -> stack:string -> unit
(** One wall-clock sample of a domain's open-span stack, taken by the
    profiling ticker on behalf of [domain]: [stack] is the
    semicolon-joined span names, outermost first. The explicit
    [domain] field overrides the emitting (ticker) domain's id. *)

val flow_solve :
  sink -> algo:string -> pivots:int -> warm:bool -> status:string -> unit
(** One min-cost-flow solve finished. [algo] names the kernel (["ssp"]
    or ["netsimplex"]), [pivots] counts simplex pivots (0 for SSP),
    [warm] says whether the spanning-tree basis was reused, [status]
    is ["optimal"] or ["infeasible"]. *)

val ladder_descent :
  sink -> solver:string -> from_rung:string -> to_rung:string -> reason:string -> unit
(** The degradation ladder gave up on one rung and fell to the next
    (e.g. ["mip_optimal"] to ["lp_rounding"] because of a deadline). *)

val recovery : sink -> stage:string -> detail:string -> unit
(** A solver recovered internally from a fault (singular basis cold
    restart, ladder rung answering after a descent). *)

val deadline_hit : sink -> phase:string -> elapsed:float -> budget:float -> unit
(** A wall-clock deadline expired inside [phase] after [elapsed] of a
    [budget]-second allowance. *)

val presolve_reduction :
  sink -> rows_dropped:int -> bounds_tightened:int -> fixed_vars:int -> unit

val checkpoint_write :
  sink -> path:string -> nodes:int -> frontier:int -> seconds:float -> unit
(** A branch-and-bound checkpoint was atomically written to [path]:
    [nodes] nodes explored so far, [frontier] open nodes captured, the
    write itself took [seconds]. *)

val checkpoint_resume : sink -> path:string -> nodes:int -> frontier:int -> unit
(** A search resumed from the checkpoint at [path], continuing from
    [nodes] explored nodes with [frontier] open nodes restored. *)

val worker_failure : sink -> slot:int -> reason:string -> unit
(** A worker domain died inside the wave scheduler; the supervisor
    marked slot [slot] dead and requeued its work. [reason] is the
    printable form of the exception that killed it. *)

val preempt_stop : sink -> phase:string -> nodes:int -> unit
(** A cooperative preemption request (SIGINT/SIGTERM) stopped the
    search at a wave barrier inside [phase] after [nodes] nodes. *)

val server_shutdown : sink -> served:int -> unit
(** The metrics scrape server shut down gracefully after serving
    [served] requests (SIGINT/SIGTERM or request budget reached). *)
