(** Branch-and-bound convergence analysis over a trace.

    Rebuilds each solver's search trajectory from its [bb_node],
    [incumbent] and [bound_pruned] events: incumbent/bound pairs over
    time, the relative gap between them, prune counts, plus the
    warm-start outcome breakdown and simplex phase totals interleaved
    with that solver's nodes. Events that carry no solver field
    ([warm_start], [simplex_phase]) are attributed to the solver of
    the most recent [bb_node], matching how the writers interleave
    them. *)

type point = {
  ts : float;
  node : int;
  incumbent : float option;
  bound : float option;
  gap : float option;
      (** [|incumbent - bound| / max 1e-9 |incumbent|] when both are
          known and finite *)
}

type solver = {
  solver : string;
  nodes : int;  (** [bb_node] events seen *)
  max_depth : int;
  prunes : int;  (** [bound_pruned] events seen *)
  incumbents : (float * int * float) list;  (** (ts, node, objective) *)
  final_incumbent : float option;
  final_bound : float option;
  final_gap : float option;
  trajectory : point list;
      (** one point per incumbent improvement or prune, in order *)
  warm_starts : (string * int) list;  (** outcome -> count *)
  warm_dual_pivots : int;
  simplex_phases : (int * int * int) list;
      (** (phase, solves, total iterations) *)
  first_ts : float;
  last_ts : float;
}

type resilience = {
  descents : (float * string * string * string * string) list;
      (** (ts, solver, from_rung, to_rung, reason) [ladder_descent]
          events, in trace order *)
  recoveries : (float * string * string) list;
      (** (ts, stage, detail) [recovery] events *)
  deadline_hits : (float * string * float * float option) list;
      (** (ts, phase, elapsed, budget) [deadline_hit] events *)
  chaos_injections : (string * int) list;
      (** per-site [chaos_inject] counts, first-seen order *)
}
(** The resilience story of a run: which wall-clock budgets expired,
    where the degradation ladder descended and recovered, and which
    chaos sites fired. Aggregated globally (these events are not tied
    to a branch-and-bound solver). *)

type t = { solvers : solver list; events : int; resilience : resilience }

val of_records : Trace_reader.record list -> t

val render : t -> string

val to_json : t -> Json.t
