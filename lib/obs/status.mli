(** Live process status backing the scrape responder's [/healthz] and
    [/statusz] endpoints.

    All state is last-writer-wins monitoring data: the solving domain
    publishes, the serve loop reads. The solver watermarks themselves
    (incumbent, bound, gap, per-domain node counts, steal/idle
    accounting) live as ordinary gauges and counters in
    {!Metrics.default}; {!to_json} snapshots them into one document
    together with the run manifest, uptime and in-flight phase. *)

val uptime : unit -> float
(** Seconds since the process initialized the observability tier. *)

val set_manifest : Json.t -> unit
(** Install the run manifest ({!Runinfo.to_json}) shown under
    ["run"]. *)

val manifest : unit -> Json.t option

val set_phase : string -> unit
(** Publish the in-flight solve phase (["idle"], ["mip.solve"], a
    ladder rung name, ...). *)

val phase : unit -> string

val with_phase : string -> (unit -> 'a) -> 'a
(** Run the callback with the phase installed, restoring the previous
    phase even on exceptions. *)

val add_overhead : float -> unit
(** Account seconds the observability tier spent on itself; mirrored
    into the [obs.overhead_seconds] gauge of {!Metrics.default}. *)

val overhead : unit -> float

val to_json : ?registry:Metrics.t -> unit -> Json.t
(** The [/statusz] document: run manifest, uptime, phase, solver
    watermarks and observability self-accounting, snapshotted from
    [registry] (default {!Metrics.default}). *)

val healthz : unit -> string
(** The [/healthz] body (["ok\n"]); liveness is the serve loop
    answering at all. *)
