(** Deterministic adaptive head-sampling of high-frequency trace
    events.

    When armed (a positive threshold), each event class — B&B nodes,
    simplex phase reports, flow pivot batches, and each span name —
    passes its first [threshold] events unsampled, then escalates its
    sampling stride by 8x every [threshold] kept blocks, capped at
    4096. {!decide} returns the weight to stamp as the event's
    [sampled_of] field: 0 means drop, [w >= 1] means keep one event on
    behalf of a block of [w]. The sum of weights over kept events
    tracks the true count to within one block, so offline analysis
    rescales exactly; metrics counters are recorded outside the
    sampler and stay exact.

    Decisions are a pure function of the class's per-domain event
    ordinal (state lives in domain-local storage): no randomness, no
    cross-domain contention, and a replayed run samples the same
    events. Disabled (the default, threshold 0) every decide returns 1
    after a single load and branch.

    The initial threshold comes from [MONPOS_TRACE_SAMPLE] when set to
    a positive integer; [--trace-sample] overrides it per run. *)

type cls = Bb_node | Simplex_phase | Flow_pivot | Span of string

val configure : threshold:int -> unit
(** Arm with the given per-class head size (0 or negative disables).
    Call before worker domains spawn. *)

val disable : unit -> unit

val threshold : unit -> int

val enabled : unit -> bool

val decide : cls -> int
(** 0 = drop this event; [w >= 1] = keep it with [sampled_of] weight
    [w]. Always 1 when sampling is off. Each call consumes one ordinal
    of the class's per-domain stream, so call it once per event and
    only when a live sink would receive the event. *)

val reset : unit -> unit
(** Reset the calling domain's streams (tests). *)
