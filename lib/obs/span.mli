(** Nested wall-clock span timers with GC accounting.

    A span times a region of code against {!Clock}, emits
    [span_open]/[span_close] trace events on the ambient (or given)
    sink, and records into the (default or given) registry: elapsed
    seconds into the [span.seconds] histogram and [Gc.quick_stat]
    allocation deltas into [alloc.minor_words] / [alloc.major_words]
    histograms (in words), each labeled [span=<name>]. The close event
    carries the full {!Trace.gc_delta}. Spans nest: the emitted events
    carry the nesting depth, and an enclosing span's elapsed time and
    allocation always dominate its children's.

    When adaptive head-sampling is armed ({!Sampler.configure}), hot
    span names shed most of their trace events: a span kept at stride
    [w] closes with [sampled_of = w], and a dropped span suppresses
    both its open and close (metrics observations stay exact either
    way). *)

val time :
  ?metrics:Metrics.t -> ?sink:Trace.sink -> string -> (unit -> 'a) -> 'a * float
(** [time name f] runs [f] inside a span and returns its result with
    the elapsed wall-clock seconds. The close event and histogram
    observations happen even when [f] raises. *)

val run : ?metrics:Metrics.t -> ?sink:Trace.sink -> string -> (unit -> 'a) -> 'a
(** {!time} without the elapsed seconds. *)

val live_stacks : unit -> (int * string list) list
(** A point-in-time snapshot of every domain's open span stack,
    outermost first, as [(domain_id, names)]; domains with no open
    span are omitted. Reads other domains' stacks without
    synchronization — a sample racing a push/pop may be one frame
    stale, which is acceptable noise for the wall-clock profiling
    ticker this feeds. *)
