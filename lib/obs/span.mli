(** Nested wall-clock span timers.

    A span times a region of code against {!Clock}, emits
    [span_open]/[span_close] trace events on the ambient (or given)
    sink, and records the elapsed seconds into a
    [span.<name>] histogram of the (default or given) registry.
    Spans nest: the emitted events carry the nesting depth, and an
    enclosing span's elapsed time always dominates its children's. *)

val time :
  ?metrics:Metrics.t -> ?sink:Trace.sink -> string -> (unit -> 'a) -> 'a * float
(** [time name f] runs [f] inside a span and returns its result with
    the elapsed wall-clock seconds. The close event and histogram
    observation happen even when [f] raises. *)

val run : ?metrics:Metrics.t -> ?sink:Trace.sink -> string -> (unit -> 'a) -> 'a
(** {!time} without the elapsed seconds. *)
