(* Branch-and-bound convergence analysis. Replays bb_node / incumbent
   / bound_pruned events to rebuild each solver's search trajectory:
   how the incumbent and the relaxation bound closed in on each other,
   how often subtrees were pruned, and how warm starts fared. Events
   without a solver field (warm_start, simplex_phase) are attributed
   to the solver of the most recent bb_node, which is how the writers
   interleave them. *)

type point = {
  ts : float;
  node : int;
  incumbent : float option;
  bound : float option;
  gap : float option;
}

type solver = {
  solver : string;
  nodes : int;
  max_depth : int;
  prunes : int;
  incumbents : (float * int * float) list; (* ts, node, objective *)
  final_incumbent : float option;
  final_bound : float option;
  final_gap : float option;
  trajectory : point list;
  warm_starts : (string * int) list; (* outcome -> count, first-seen order *)
  warm_dual_pivots : int;
  simplex_phases : (int * int * int) list; (* phase, solves, iterations *)
  first_ts : float;
  last_ts : float;
}

type resilience = {
  descents : (float * string * string * string * string) list;
  recoveries : (float * string * string) list;
  deadline_hits : (float * string * float * float option) list;
  chaos_injections : (string * int) list;
}

type t = { solvers : solver list; events : int; resilience : resilience }

let no_resilience r =
  r.descents = [] && r.recoveries = [] && r.deadline_hits = []
  && r.chaos_injections = []

let gap_of ~incumbent ~bound =
  match (incumbent, bound) with
  | Some inc, Some b when Float.is_finite inc && Float.is_finite b ->
    Some (Float.abs (inc -. b) /. Float.max 1e-9 (Float.abs inc))
  | _ -> None

type state = {
  name : string;
  mutable s_nodes : int;
  mutable s_max_depth : int;
  mutable s_prunes : int;
  mutable s_incumbents : (float * int * float) list; (* reversed *)
  mutable s_incumbent : float option;
  mutable s_bound : float option;
  mutable s_trajectory : point list; (* reversed *)
  mutable s_warm : (string * int) list; (* reversed first-seen *)
  mutable s_warm_pivots : int;
  mutable s_phases : (int * int * int) list; (* reversed first-seen *)
  mutable s_first_ts : float;
  mutable s_last_ts : float;
}

let of_records records =
  let order = ref [] in
  let tbl : (string, state) Hashtbl.t = Hashtbl.create 4 in
  let current = ref None in
  let get name =
    match Hashtbl.find_opt tbl name with
    | Some st -> st
    | None ->
      let st =
        {
          name;
          s_nodes = 0;
          s_max_depth = 0;
          s_prunes = 0;
          s_incumbents = [];
          s_incumbent = None;
          s_bound = None;
          s_trajectory = [];
          s_warm = [];
          s_warm_pivots = 0;
          s_phases = [];
          s_first_ts = infinity;
          s_last_ts = neg_infinity;
        }
      in
      Hashtbl.add tbl name st;
      order := name :: !order;
      st
  in
  let touch st ts =
    if ts < st.s_first_ts then st.s_first_ts <- ts;
    if ts > st.s_last_ts then st.s_last_ts <- ts
  in
  let point st ts node =
    st.s_trajectory <-
      {
        ts;
        node;
        incumbent = st.s_incumbent;
        bound = st.s_bound;
        gap = gap_of ~incumbent:st.s_incumbent ~bound:st.s_bound;
      }
      :: st.s_trajectory
  in
  let events = ref 0 in
  let descents = ref [] in
  let recoveries = ref [] in
  let deadline_hits = ref [] in
  let chaos = ref [] in
  List.iter
    (fun (r : Trace_reader.record) ->
      incr events;
      let ts = r.Trace_reader.ts in
      match r.Trace_reader.event with
      | Trace_reader.Bb_node { solver; depth; bound; sampled_of; _ } ->
        let st = get solver in
        current := Some st;
        touch st ts;
        (* a head-sampled node event stands for [sampled_of] explored
           nodes, so the trajectory's node count matches the exact
           mip.nodes counters within one sampling block *)
        st.s_nodes <- st.s_nodes + max 1 sampled_of;
        if depth > st.s_max_depth then st.s_max_depth <- depth;
        (match bound with Some _ -> st.s_bound <- bound | None -> ())
      | Trace_reader.Incumbent { solver; node; objective } ->
        let st = get solver in
        current := Some st;
        touch st ts;
        st.s_incumbent <- Some objective;
        st.s_incumbents <- (ts, node, objective) :: st.s_incumbents;
        point st ts node
      | Trace_reader.Bound_pruned { solver; node; bound; incumbent } ->
        let st = get solver in
        current := Some st;
        touch st ts;
        st.s_prunes <- st.s_prunes + 1;
        (match bound with Some _ -> st.s_bound <- bound | None -> ());
        (match incumbent with
        | Some _ -> st.s_incumbent <- incumbent
        | None -> ());
        point st ts node
      | Trace_reader.Warm_start { iterations; outcome; _ } -> (
        match !current with
        | None -> ()
        | Some st ->
          touch st ts;
          st.s_warm_pivots <- st.s_warm_pivots + iterations;
          st.s_warm <-
            (if List.mem_assoc outcome st.s_warm then
               List.map
                 (fun (o, c) -> if o = outcome then (o, c + 1) else (o, c))
                 st.s_warm
             else (outcome, 1) :: st.s_warm))
      | Trace_reader.Simplex_phase { phase; iterations; sampled_of; _ } -> (
        match !current with
        | None -> ()
        | Some st ->
          touch st ts;
          let w = max 1 sampled_of in
          st.s_phases <-
            (if List.exists (fun (p, _, _) -> p = phase) st.s_phases then
               List.map
                 (fun (p, n, it) ->
                   if p = phase then (p, n + w, it + (iterations * w))
                   else (p, n, it))
                 st.s_phases
             else (phase, w, iterations * w) :: st.s_phases))
      | Trace_reader.Ladder_descent { solver; from_rung; to_rung; reason } ->
        descents := (ts, solver, from_rung, to_rung, reason) :: !descents
      | Trace_reader.Recovery { stage; detail } ->
        recoveries := (ts, stage, detail) :: !recoveries
      | Trace_reader.Deadline_hit { phase; elapsed; budget } ->
        deadline_hits := (ts, phase, elapsed, budget) :: !deadline_hits
      | Trace_reader.Chaos_inject { site } ->
        chaos :=
          (if List.mem_assoc site !chaos then
             List.map
               (fun (s, c) -> if s = site then (s, c + 1) else (s, c))
               !chaos
           else (site, 1) :: !chaos)
      | _ -> ())
    records;
  let solvers =
    List.rev_map
      (fun name ->
        let st = Hashtbl.find tbl name in
        {
          solver = name;
          nodes = st.s_nodes;
          max_depth = st.s_max_depth;
          prunes = st.s_prunes;
          incumbents = List.rev st.s_incumbents;
          final_incumbent = st.s_incumbent;
          final_bound = st.s_bound;
          final_gap = gap_of ~incumbent:st.s_incumbent ~bound:st.s_bound;
          trajectory = List.rev st.s_trajectory;
          warm_starts = List.rev st.s_warm;
          warm_dual_pivots = st.s_warm_pivots;
          simplex_phases = List.rev st.s_phases;
          first_ts = (if st.s_first_ts = infinity then 0.0 else st.s_first_ts);
          last_ts = (if st.s_last_ts = neg_infinity then 0.0 else st.s_last_ts);
        })
      !order
  in
  let resilience =
    {
      descents = List.rev !descents;
      recoveries = List.rev !recoveries;
      deadline_hits = List.rev !deadline_hits;
      chaos_injections = List.rev !chaos;
    }
  in
  { solvers; events = !events; resilience }

let opt_cell = function
  | None -> "-"
  | Some v -> Printf.sprintf "%.6g" v

let gap_cell = function
  | None -> "-"
  | Some g -> Printf.sprintf "%.2f%%" (100.0 *. g)

(* cap rendered trajectories: head + tail around an elision marker *)
let max_rows = 24

let render t =
  let b = Buffer.create 1024 in
  if t.solvers = [] then
    Buffer.add_string b "no branch-and-bound events in trace\n";
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf
           "solver %s: %d node(s), max depth %d, %d prune(s), %d \
            incumbent(s), %.3fs span\n"
           s.solver s.nodes s.max_depth s.prunes
           (List.length s.incumbents)
           (s.last_ts -. s.first_ts));
      (match s.final_incumbent with
      | Some v ->
        Buffer.add_string b
          (Printf.sprintf "  final incumbent %.6g, bound %s, gap %s\n" v
             (opt_cell s.final_bound) (gap_cell s.final_gap))
      | None -> Buffer.add_string b "  no incumbent found\n");
      let rows =
        List.map
          (fun p ->
            [
              Printf.sprintf "%.4f" p.ts;
              string_of_int p.node;
              opt_cell p.incumbent;
              opt_cell p.bound;
              gap_cell p.gap;
            ])
          s.trajectory
      in
      let rows =
        let n = List.length rows in
        if n <= max_rows then rows
        else
          let head = List.filteri (fun i _ -> i < max_rows / 2) rows in
          let tail = List.filteri (fun i _ -> i >= n - (max_rows / 2)) rows in
          head @ ([ "..."; "..."; "..."; "..."; "..." ] :: tail)
      in
      if rows <> [] then
        Buffer.add_string b
          (Monpos_util.Table.render
             ~header:[ "ts"; "node"; "incumbent"; "bound"; "gap" ]
             rows);
      if s.warm_starts <> [] then
        Buffer.add_string b
          (Printf.sprintf "  warm starts: %s (%d dual pivot(s))\n"
             (String.concat ", "
                (List.map
                   (fun (o, c) -> Printf.sprintf "%s %d" o c)
                   s.warm_starts))
             s.warm_dual_pivots);
      if s.simplex_phases <> [] then
        Buffer.add_string b
          (Printf.sprintf "  simplex phases: %s\n"
             (String.concat ", "
                (List.map
                   (fun (p, n, it) ->
                     Printf.sprintf "phase %d x%d (%d iteration(s))" p n it)
                   s.simplex_phases))))
    t.solvers;
  (let r = t.resilience in
   if not (no_resilience r) then begin
     Buffer.add_string b "resilience:\n";
     List.iter
       (fun (ts, solver, from_rung, to_rung, reason) ->
         Buffer.add_string b
           (Printf.sprintf "  %.4f ladder descent [%s] %s -> %s: %s\n" ts
              solver from_rung to_rung reason))
       r.descents;
     List.iter
       (fun (ts, stage, detail) ->
         Buffer.add_string b
           (Printf.sprintf "  %.4f recovery [%s] %s\n" ts stage detail))
       r.recoveries;
     List.iter
       (fun (ts, phase, elapsed, budget) ->
         Buffer.add_string b
           (Printf.sprintf "  %.4f deadline hit in %s after %.3fs%s\n" ts phase
              elapsed
              (match budget with
              | Some bu -> Printf.sprintf " (budget %.3fs)" bu
              | None -> "")))
       r.deadline_hits;
     if r.chaos_injections <> [] then
       Buffer.add_string b
         (Printf.sprintf "  chaos injections: %s\n"
            (String.concat ", "
               (List.map
                  (fun (site, c) -> Printf.sprintf "%s x%d" site c)
                  r.chaos_injections)))
   end);
  Buffer.contents b

let to_json t =
  let opt = function None -> Json.Null | Some v -> Json.Float v in
  Json.Obj
    [
      ("events", Json.Int t.events);
      ( "resilience",
        Json.Obj
          [
            ( "descents",
              Json.List
                (List.map
                   (fun (ts, solver, from_rung, to_rung, reason) ->
                     Json.Obj
                       [
                         ("ts", Json.Float ts);
                         ("solver", Json.String solver);
                         ("from_rung", Json.String from_rung);
                         ("to_rung", Json.String to_rung);
                         ("reason", Json.String reason);
                       ])
                   t.resilience.descents) );
            ( "recoveries",
              Json.List
                (List.map
                   (fun (ts, stage, detail) ->
                     Json.Obj
                       [
                         ("ts", Json.Float ts);
                         ("stage", Json.String stage);
                         ("detail", Json.String detail);
                       ])
                   t.resilience.recoveries) );
            ( "deadline_hits",
              Json.List
                (List.map
                   (fun (ts, phase, elapsed, budget) ->
                     Json.Obj
                       [
                         ("ts", Json.Float ts);
                         ("phase", Json.String phase);
                         ("elapsed", Json.Float elapsed);
                         ("budget", opt budget);
                       ])
                   t.resilience.deadline_hits) );
            ( "chaos_injections",
              Json.Obj
                (List.map
                   (fun (site, c) -> (site, Json.Int c))
                   t.resilience.chaos_injections) );
          ] );
      ( "solvers",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("solver", Json.String s.solver);
                   ("nodes", Json.Int s.nodes);
                   ("max_depth", Json.Int s.max_depth);
                   ("prunes", Json.Int s.prunes);
                   ( "prune_rate",
                     if s.nodes = 0 then Json.Null
                     else
                       Json.Float (float_of_int s.prunes /. float_of_int s.nodes)
                   );
                   ("final_incumbent", opt s.final_incumbent);
                   ("final_bound", opt s.final_bound);
                   ("final_gap", opt s.final_gap);
                   ( "incumbents",
                     Json.List
                       (List.map
                          (fun (ts, node, objective) ->
                            Json.Obj
                              [
                                ("ts", Json.Float ts);
                                ("node", Json.Int node);
                                ("objective", Json.Float objective);
                              ])
                          s.incumbents) );
                   ( "trajectory",
                     Json.List
                       (List.map
                          (fun p ->
                            Json.Obj
                              [
                                ("ts", Json.Float p.ts);
                                ("node", Json.Int p.node);
                                ("incumbent", opt p.incumbent);
                                ("bound", opt p.bound);
                                ("gap", opt p.gap);
                              ])
                          s.trajectory) );
                   ( "warm_starts",
                     Json.Obj
                       (List.map (fun (o, c) -> (o, Json.Int c)) s.warm_starts)
                   );
                   ("warm_dual_pivots", Json.Int s.warm_dual_pivots);
                   ( "simplex_phases",
                     Json.List
                       (List.map
                          (fun (p, n, it) ->
                            Json.Obj
                              [
                                ("phase", Json.Int p);
                                ("solves", Json.Int n);
                                ("iterations", Json.Int it);
                              ])
                          s.simplex_phases) );
                   ("first_ts", Json.Float s.first_ts);
                   ("last_ts", Json.Float s.last_ts);
                 ])
             t.solvers) );
    ]
