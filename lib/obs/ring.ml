(* Fixed-capacity overwrite-oldest ring. Single-writer by design: the
   flight recorder keeps one ring per domain and only the owning
   domain pushes, so push needs no synchronization. [to_list] is for
   dump paths that run after the writers stopped (or tolerate a torn
   tail: a concurrent push can at worst replace the oldest retained
   slot, never mix two values in one slot). *)

type 'a t = {
  slots : 'a option array;
  mutable next : int; (* index of the slot the next push overwrites *)
  mutable pushed : int; (* total pushes ever, = logical end sequence *)
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { slots = Array.make capacity None; next = 0; pushed = 0 }

let capacity t = Array.length t.slots

let push t x =
  t.slots.(t.next) <- Some x;
  t.next <- (t.next + 1) mod Array.length t.slots;
  t.pushed <- t.pushed + 1

let length t = min t.pushed (Array.length t.slots)

let pushed t = t.pushed

let dropped t = t.pushed - length t

(* oldest first *)
let to_list t =
  let cap = Array.length t.slots in
  let n = length t in
  let start = if t.pushed <= cap then 0 else t.next in
  List.init n (fun i ->
      match t.slots.((start + i) mod cap) with
      | Some x -> x
      | None -> assert false)

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.next <- 0;
  t.pushed <- 0
