(** Minimal JSON construction and parsing for trace events, metric
    snapshots and the bench report file. The repo has no JSON
    dependency and does not need one: the writer emits valid documents
    and the parser below is its exact dual, so traces and bench
    reports round-trip through this module alone. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float
(** Non-finite floats (nan, infinities) render as [null]: JSON has no
    spelling for them and every downstream parser agrees on [null]. *)

val escape_to : Buffer.t -> string -> unit
(** Append the JSON-escaped content of the string (without the
    surrounding quotes): quotes, backslashes and control characters
    become their backslash or [u00XX] escapes. *)

val float_to : Buffer.t -> float -> unit
(** Append a float as a JSON number, or [null] when non-finite. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string

(** {1 Parsing} *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; anything
    else after the value is an error). Numbers without [.]/[e] that
    fit in a native [int] parse as {!Int}, everything else as
    {!Float}. String escapes are decoded, [\uXXXX] (including
    surrogate pairs) re-encodes as UTF-8, and raw bytes >= 0x80 pass
    through untouched — the writer's output round-trips byte for
    byte. Note the writer renders non-finite floats as [null], so
    those round-trip to {!Null} by design. *)

val parse_lines : string -> (t, string) result list
(** Parse a JSONL buffer: one result per non-blank line, in order.
    A malformed line yields an [Error] without affecting its
    neighbours — callers decide how tolerant to be (the trace reader
    drops a malformed {e final} line as a truncated write). *)

(** {1 Accessors}

    Total accessors returning [None] on shape mismatch; used by the
    trace reader's skip-unknown decoding and the bench gate. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val as_string : t -> string option

val as_int : t -> int option

val as_bool : t -> bool option

val as_float : t -> float option
(** Accepts both {!Float} and {!Int} (JSON does not distinguish). *)

val as_list : t -> t list option

val as_obj : t -> (string * t) list option
