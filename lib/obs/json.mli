(** Minimal JSON construction for trace events, metric snapshots and
    the bench output file. Writing only — no parser; the repo has no
    JSON dependency and does not need one to emit valid documents. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float
(** Non-finite floats (nan, infinities) render as [null]: JSON has no
    spelling for them and every downstream parser agrees on [null]. *)

val escape_to : Buffer.t -> string -> unit
(** Append the JSON-escaped content of the string (without the
    surrounding quotes): quotes, backslashes and control characters
    become their backslash or [u00XX] escapes. *)

val float_to : Buffer.t -> float -> unit
(** Append a float as a JSON number, or [null] when non-finite. *)

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
