(* Span nesting is tracked per domain: a worker domain opening spans
   must not shift the depth of spans on the main domain (or vice
   versa), or every close after a parallel solve would pair with the
   wrong open. Each domain gets its own stack cell via DLS; the trace
   record's [domain] field lets readers rebuild per-domain stacks.

   The cell holds the open span *names*, not just a depth counter, and
   registers itself in a process-wide table: the wall-clock profiling
   ticker reads other domains' cells to take folded-stack samples.
   Those cross-domain reads are deliberately unsynchronized — a sample
   may see a stack mid-push — but each field is a single word, so a
   torn sample is at worst one frame stale, which is noise a sampling
   profiler already accepts. *)

type cell = { mutable depth : int; mutable names : string array }

let registry_lock = Mutex.create ()

let registry : (int * cell) list ref = ref []

(* Domain ids recycle; a fresh domain re-registering an id replaces
   its dead predecessor's cell so the table stays bounded by the live
   domain count. *)
let register cell =
  let id = (Domain.self () :> int) in
  Mutex.protect registry_lock (fun () ->
      registry :=
        (match List.assoc_opt id !registry with
        | None -> !registry @ [ (id, cell) ]
        | Some _ ->
          List.map
            (fun (d, c) -> if d = id then (d, cell) else (d, c))
            !registry))

let cell_key =
  Domain.DLS.new_key (fun () ->
      let cell = { depth = 0; names = Array.make 16 "" } in
      register cell;
      cell)

let cell () = Domain.DLS.get cell_key

(* Racy by design (see above): clamp to both counters so a torn read
   never indexes out of bounds. Domains with no open span are
   skipped. *)
let live_stacks () =
  let cells = Mutex.protect registry_lock (fun () -> !registry) in
  List.filter_map
    (fun (id, c) ->
      let names = c.names in
      let d = min c.depth (Array.length names) in
      if d <= 0 then None
      else Some (id, List.init d (fun i -> names.(i))))
    cells

(* Allocation histograms are in words; log-spaced bounds from 100
   words (~1 small closure) to 1e9 (~8 GB on 64-bit). *)
let alloc_buckets = [| 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let time ?metrics ?sink name f =
  let sink = match sink with Some s -> s | None -> Trace.current () in
  let registry = match metrics with Some m -> m | None -> Metrics.default in
  let cell = cell () in
  let depth = cell.depth in
  if depth >= Array.length cell.names then begin
    let bigger = Array.make (2 * Array.length cell.names) "" in
    Array.blit cell.names 0 bigger 0 (Array.length cell.names);
    cell.names <- bigger
  end;
  cell.names.(depth) <- name;
  (* the hot span classes get head-sampled: weight 0 suppresses both
     trace events (the pair drops together, keeping the reader's
     depth-replay consistent) while the metrics observations below
     stay exact *)
  let w =
    if Trace.enabled sink then Sampler.decide (Sampler.Span name) else 1
  in
  if w > 0 then Trace.span_open sink ~name ~depth;
  cell.depth <- depth + 1;
  let g0 = Gc.quick_stat () in
  let t0 = Clock.now () in
  let finish () =
    (* Restore rather than decrement: if a nested span raised partway
       through its own bookkeeping (e.g. the sink's write failed after
       the nested close had already adjusted the counter), a plain decr
       would drift and every close above it would then be emitted one
       depth off its open. Pinning back to this span's own depth keeps
       each close paired with its open no matter how many levels below
       unwound exceptionally. *)
    cell.depth <- depth;
    let dt = Clock.elapsed t0 in
    let g1 = Gc.quick_stat () in
    let gc =
      {
        Trace.minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        major_words = g1.Gc.major_words -. g0.Gc.major_words;
        promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
        major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
        (* top_heap_words is nominally a process watermark, but the
           OCaml 5 runtime computes it from per-domain state and a
           read after domain spawn/exit churn can come back lower
           than an earlier one; a negative watermark delta carries no
           information, so clamp it *)
        top_heap_words = max 0 (g1.Gc.top_heap_words - g0.Gc.top_heap_words);
      }
    in
    if w > 0 then
      Trace.span_close sink ~sampled_of:w ~name ~depth ~gc ~seconds:dt ();
    let labels = [ ("span", name) ] in
    Metrics.observe (Metrics.histogram ~labels registry "span.seconds") dt;
    Metrics.observe
      (Metrics.histogram ~buckets:alloc_buckets ~labels registry
         "alloc.minor_words")
      gc.Trace.minor_words;
    Metrics.observe
      (Metrics.histogram ~buckets:alloc_buckets ~labels registry
         "alloc.major_words")
      gc.Trace.major_words;
    dt
  in
  match f () with
  | r ->
    let dt = finish () in
    (r, dt)
  | exception e ->
    ignore (finish ());
    raise e

let run ?metrics ?sink name f = fst (time ?metrics ?sink name f)
