(* Span nesting is tracked per domain: a worker domain opening spans
   must not shift the depth of spans on the main domain (or vice
   versa), or every close after a parallel solve would pair with the
   wrong open. Each domain gets its own counter via DLS; the trace
   record's [domain] field lets readers rebuild per-domain stacks. *)
let nesting_key = Domain.DLS.new_key (fun () -> ref 0)

let nesting () = Domain.DLS.get nesting_key

(* Allocation histograms are in words; log-spaced bounds from 100
   words (~1 small closure) to 1e9 (~8 GB on 64-bit). *)
let alloc_buckets = [| 1e2; 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]

let time ?metrics ?sink name f =
  let sink = match sink with Some s -> s | None -> Trace.current () in
  let registry = match metrics with Some m -> m | None -> Metrics.default in
  let nesting = nesting () in
  let depth = !nesting in
  Trace.span_open sink ~name ~depth;
  nesting := depth + 1;
  let g0 = Gc.quick_stat () in
  let t0 = Clock.now () in
  let finish () =
    (* Restore rather than decrement: if a nested span raised partway
       through its own bookkeeping (e.g. the sink's write failed after
       the nested close had already adjusted the counter), a plain decr
       would drift and every close above it would then be emitted one
       depth off its open. Pinning back to this span's own depth keeps
       each close paired with its open no matter how many levels below
       unwound exceptionally. *)
    nesting := depth;
    let dt = Clock.elapsed t0 in
    let g1 = Gc.quick_stat () in
    let gc =
      {
        Trace.minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
        major_words = g1.Gc.major_words -. g0.Gc.major_words;
        promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
        major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
        top_heap_words = g1.Gc.top_heap_words - g0.Gc.top_heap_words;
      }
    in
    Trace.span_close sink ~name ~depth ~gc ~seconds:dt ();
    let labels = [ ("span", name) ] in
    Metrics.observe (Metrics.histogram ~labels registry "span.seconds") dt;
    Metrics.observe
      (Metrics.histogram ~buckets:alloc_buckets ~labels registry
         "alloc.minor_words")
      gc.Trace.minor_words;
    Metrics.observe
      (Metrics.histogram ~buckets:alloc_buckets ~labels registry
         "alloc.major_words")
      gc.Trace.major_words;
    dt
  in
  match f () with
  | r ->
    let dt = finish () in
    (r, dt)
  | exception e ->
    ignore (finish ());
    raise e

let run ?metrics ?sink name f = fst (time ?metrics ?sink name f)
