let nesting = ref 0

let time ?metrics ?sink name f =
  let sink = match sink with Some s -> s | None -> Trace.current () in
  let registry = match metrics with Some m -> m | None -> Metrics.default in
  let depth = !nesting in
  Trace.span_open sink ~name ~depth;
  nesting := depth + 1;
  let t0 = Clock.now () in
  let finish () =
    (* Restore rather than decrement: if a nested span raised partway
       through its own bookkeeping (e.g. the sink's write failed after
       the nested close had already adjusted the counter), a plain decr
       would drift and every close above it would then be emitted one
       depth off its open. Pinning back to this span's own depth keeps
       each close paired with its open no matter how many levels below
       unwound exceptionally. *)
    nesting := depth;
    let dt = Clock.elapsed t0 in
    Trace.span_close sink ~name ~depth ~seconds:dt;
    Metrics.observe (Metrics.histogram registry ("span." ^ name)) dt;
    dt
  in
  match f () with
  | r ->
    let dt = finish () in
    (r, dt)
  | exception e ->
    ignore (finish ());
    raise e

let run ?metrics ?sink name f = fst (time ?metrics ?sink name f)
