let nesting = ref 0

let time ?metrics ?sink name f =
  let sink = match sink with Some s -> s | None -> Trace.current () in
  let registry = match metrics with Some m -> m | None -> Metrics.default in
  let depth = !nesting in
  Trace.span_open sink ~name ~depth;
  incr nesting;
  let t0 = Clock.now () in
  let finish () =
    decr nesting;
    let dt = Clock.elapsed t0 in
    Trace.span_close sink ~name ~depth ~seconds:dt;
    Metrics.observe (Metrics.histogram registry ("span." ^ name)) dt;
    dt
  in
  match f () with
  | r ->
    let dt = finish () in
    (r, dt)
  | exception e ->
    ignore (finish ());
    raise e

let run ?metrics ?sink name f = fst (time ?metrics ?sink name f)
