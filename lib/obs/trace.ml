type sink = {
  oc : out_channel option;
  epoch : float;
  buf : Buffer.t;
  mutable events : int;
}

let null = { oc = None; epoch = 0.0; buf = Buffer.create 1; events = 0 }

let to_channel oc =
  { oc = Some oc; epoch = Clock.now (); buf = Buffer.create 256; events = 0 }

let open_file path = to_channel (open_out path)

let close s =
  match s.oc with
  | None -> ()
  | Some oc -> if oc == stdout || oc == stderr then flush oc else close_out oc

let enabled s = s.oc <> None

let events_written s = s.events

let ambient = ref null

let current () = !ambient

let set_current s = ambient := s

let with_current s f =
  let saved = !ambient in
  ambient := s;
  Fun.protect ~finally:(fun () -> ambient := saved) f

let emit s ev fields =
  match s.oc with
  | None -> ()
  | Some oc ->
    let b = s.buf in
    Buffer.clear b;
    Buffer.add_string b "{\"ev\":\"";
    Json.escape_to b ev;
    Buffer.add_string b "\",\"ts\":";
    Json.float_to b (Clock.now () -. s.epoch);
    List.iter
      (fun (k, v) ->
        Buffer.add_string b ",\"";
        Json.escape_to b k;
        Buffer.add_string b "\":";
        Json.to_buffer b v)
      fields;
    Buffer.add_string b "}\n";
    Buffer.output_buffer oc b;
    s.events <- s.events + 1

let span_open s ~name ~depth =
  if s.oc <> None then
    emit s "span_open" [ ("name", Json.String name); ("depth", Json.Int depth) ]

let span_close s ~name ~depth ~seconds =
  if s.oc <> None then
    emit s "span_close"
      [
        ("name", Json.String name);
        ("depth", Json.Int depth);
        ("seconds", Json.Float seconds);
      ]

let bb_node s ~solver ~node ~depth ?bound () =
  if s.oc <> None then
    emit s "bb_node"
      [
        ("solver", Json.String solver);
        ("node", Json.Int node);
        ("depth", Json.Int depth);
        ("bound", match bound with Some b -> Json.Float b | None -> Json.Null);
      ]

let incumbent s ~solver ~node ~objective =
  if s.oc <> None then
    emit s "incumbent"
      [
        ("solver", Json.String solver);
        ("node", Json.Int node);
        ("objective", Json.Float objective);
      ]

let bound_pruned s ~solver ~node ~bound ~incumbent =
  if s.oc <> None then
    emit s "bound_pruned"
      [
        ("solver", Json.String solver);
        ("node", Json.Int node);
        ("bound", Json.Float bound);
        ("incumbent", Json.Float incumbent);
      ]

let simplex_phase s ~phase ~iterations ~outcome =
  if s.oc <> None then
    emit s "simplex_phase"
      [
        ("phase", Json.Int phase);
        ("iterations", Json.Int iterations);
        ("outcome", Json.String outcome);
      ]

let warm_start s ~dual_feasible ~iterations ~kernel ~outcome =
  if s.oc <> None then
    emit s "warm_start"
      [
        ("dual_feasible", Json.Bool dual_feasible);
        ("iterations", Json.Int iterations);
        ("kernel", Json.String kernel);
        ("outcome", Json.String outcome);
      ]

let greedy_pick s ~pick ~gain ~covered =
  if s.oc <> None then
    emit s "greedy_pick"
      [
        ("pick", Json.Int pick);
        ("gain", Json.Float gain);
        ("covered", Json.Float covered);
      ]

let flow_augmentation s ~amount ~path_cost ~routed =
  if s.oc <> None then
    emit s "flow_augmentation"
      [
        ("amount", Json.Float amount);
        ("path_cost", Json.Float path_cost);
        ("routed", Json.Float routed);
      ]

let presolve_reduction s ~rows_dropped ~bounds_tightened ~fixed_vars =
  if s.oc <> None then
    emit s "presolve_reduction"
      [
        ("rows_dropped", Json.Int rows_dropped);
        ("bounds_tightened", Json.Int bounds_tightened);
        ("fixed_vars", Json.Int fixed_vars);
      ]
