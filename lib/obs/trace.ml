(* A sink is a pair of closures (emit, close) plus bookkeeping. The
   null sink is the only one with [on = false]; every typed helper
   checks the flag before boxing its arguments, so instrumented hot
   paths cost a load and a branch when tracing is off. *)

type sink = {
  on : bool;
  epoch : float;
  emit_fn : float -> string -> (string * Json.t) list -> unit;
  flush_fn : unit -> unit;
  close_fn : unit -> unit;
  events : int Atomic.t; (* emits may race across solver domains *)
}

let null =
  {
    on = false;
    epoch = 0.0;
    emit_fn = (fun _ _ _ -> ());
    flush_fn = ignore;
    close_fn = ignore;
    events = Atomic.make 0;
  }

(* Channel sinks buffer formatted events and write them out in batches:
   one [output] syscall per [flush_every] events instead of one per
   event, so tracing stops distorting the hot paths it observes.
   [events_written] stays exact — it counts emits, not flushes. A
   mutex serialises the shared Buffer/pending state so spawned domains
   can emit into the same sink without interleaving half-formatted
   lines. *)
let flush_every = 64

(* One event, one line. Shared by the channel sinks and the flight
   recorder's dump path so a dumped ring renders byte-for-byte like a
   --trace file of the same events. *)
let render_line buf ts ev fields =
  Buffer.add_string buf "{\"ev\":\"";
  Json.escape_to buf ev;
  Buffer.add_string buf "\",\"ts\":";
  Json.float_to buf ts;
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      Json.escape_to buf k;
      Buffer.add_string buf "\":";
      Json.to_buffer buf v)
    fields;
  Buffer.add_string buf "}\n"

let to_channel oc =
  let lock = Mutex.create () in
  let buf = Buffer.create 8192 in
  let pending = ref 0 in
  let flush_buf () =
    if Buffer.length buf > 0 then begin
      Buffer.output_buffer oc buf;
      Buffer.clear buf;
      (* push through the channel too: a periodic flush that stops in
         the out_channel's own buffer would make the trace neither
         tail-able during a long solve nor recoverable after a crash *)
      flush oc
    end;
    pending := 0
  in
  let emit_fn ts ev fields =
    Mutex.protect lock (fun () ->
        render_line buf ts ev fields;
        incr pending;
        if !pending >= flush_every then flush_buf ())
  in
  let close_fn () =
    Mutex.protect lock (fun () ->
        flush_buf ();
        if oc == stdout || oc == stderr then flush oc else close_out oc)
  in
  {
    on = true;
    epoch = Clock.now ();
    emit_fn;
    flush_fn = (fun () -> Mutex.protect lock flush_buf);
    close_fn;
    events = Atomic.make 0;
  }

let open_file path = to_channel (open_out path)

let custom ?(close = ignore) f =
  {
    on = true;
    epoch = Clock.now ();
    emit_fn = f;
    flush_fn = ignore;
    close_fn = close;
    events = Atomic.make 0;
  }

(* Fan-out: one emit reaches every live child with the same timestamp,
   so a file sink and a progress reporter can watch the same solve.
   Closing the fan-out closes every child. *)
let fanout sinks =
  match List.filter (fun s -> s.on) sinks with
  | [] -> null
  | [ s ] -> s
  | live ->
    {
      on = true;
      epoch = Clock.now ();
      emit_fn =
        (fun ts ev fields ->
          List.iter
            (fun s ->
              s.emit_fn ts ev fields;
              Atomic.incr s.events)
            live);
      flush_fn = (fun () -> List.iter (fun s -> s.flush_fn ()) live);
      close_fn = (fun () -> List.iter (fun s -> s.close_fn ()) live);
      events = Atomic.make 0;
    }

let close s = s.close_fn ()

(* Push buffered events to the backing channel without closing the
   sink. Worker domains call this just before they exit so a buffered
   file sink never loses the tail of a domain's event stream (the
   domain is gone by the time the main domain closes the sink, but its
   bytes are already in the shared buffer — flushing at exit bounds
   how much a crash can lose and keeps the file tail-able while other
   domains keep solving). *)
let flush s = s.flush_fn ()

let enabled s = s.on

let events_written s = Atomic.get s.events

let ambient = ref null

let current () = !ambient

let set_current s = ambient := s

let with_current s f =
  let saved = !ambient in
  ambient := s;
  Fun.protect ~finally:(fun () -> ambient := saved) f

(* Events from spawned domains carry a ["domain"] field so offline
   analysis can separate interleaved per-domain streams; events from
   the initial domain stay unchanged (and pay only the
   [is_main_domain] check). An event that already carries an explicit
   ["domain"] field — the stack-sample ticker reporting on behalf of
   other domains — is passed through untouched. *)
let emit s ev fields =
  if s.on then begin
    let fields =
      if Domain.is_main_domain () || List.mem_assoc "domain" fields then fields
      else fields @ [ ("domain", Json.Int (Domain.self () :> int)) ]
    in
    s.emit_fn (Clock.now () -. s.epoch) ev fields;
    Atomic.incr s.events
  end

(* The sampling weight rides as a trailing ["sampled_of"] field and is
   omitted at weight 1, so unsampled traces stay byte-identical to
   those of earlier writers. *)
let weighted sampled_of fields =
  if sampled_of <= 1 then fields
  else fields @ [ ("sampled_of", Json.Int sampled_of) ]

type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  major_collections : int;
  top_heap_words : int;
}

let span_open s ~name ~depth =
  if s.on then
    emit s "span_open" [ ("name", Json.String name); ("depth", Json.Int depth) ]

let span_close s ?(sampled_of = 1) ~name ~depth ?gc ~seconds () =
  if s.on then
    emit s "span_close"
      (weighted sampled_of
         ([
            ("name", Json.String name);
            ("depth", Json.Int depth);
            ("seconds", Json.Float seconds);
          ]
         @
         match gc with
         | None -> []
         | Some g ->
           [
             ("minor_words", Json.Float g.minor_words);
             ("major_words", Json.Float g.major_words);
             ("promoted_words", Json.Float g.promoted_words);
             ("major_collections", Json.Int g.major_collections);
             ("top_heap_words", Json.Int g.top_heap_words);
           ]))

let bb_node s ?(sampled_of = 1) ~solver ~node ~depth ?bound () =
  if s.on then
    emit s "bb_node"
      (weighted sampled_of
         [
           ("solver", Json.String solver);
           ("node", Json.Int node);
           ("depth", Json.Int depth);
           ( "bound",
             match bound with Some b -> Json.Float b | None -> Json.Null );
         ])

let incumbent s ~solver ~node ~objective =
  if s.on then
    emit s "incumbent"
      [
        ("solver", Json.String solver);
        ("node", Json.Int node);
        ("objective", Json.Float objective);
      ]

let bound_pruned s ~solver ~node ~bound ~incumbent =
  if s.on then
    emit s "bound_pruned"
      [
        ("solver", Json.String solver);
        ("node", Json.Int node);
        ("bound", Json.Float bound);
        ("incumbent", Json.Float incumbent);
      ]

let simplex_phase s ?(sampled_of = 1) ~phase ~iterations ~outcome () =
  if s.on then
    emit s "simplex_phase"
      (weighted sampled_of
         [
           ("phase", Json.Int phase);
           ("iterations", Json.Int iterations);
           ("outcome", Json.String outcome);
         ])

let warm_start s ~dual_feasible ~iterations ~kernel ~outcome =
  if s.on then
    emit s "warm_start"
      [
        ("dual_feasible", Json.Bool dual_feasible);
        ("iterations", Json.Int iterations);
        ("kernel", Json.String kernel);
        ("outcome", Json.String outcome);
      ]

let greedy_pick s ~pick ~gain ~covered =
  if s.on then
    emit s "greedy_pick"
      [
        ("pick", Json.Int pick);
        ("gain", Json.Float gain);
        ("covered", Json.Float covered);
      ]

let flow_augmentation s ?(sampled_of = 1) ~amount ~path_cost ~routed () =
  if s.on then
    emit s "flow_augmentation"
      (weighted sampled_of
         [
           ("amount", Json.Float amount);
           ("path_cost", Json.Float path_cost);
           ("routed", Json.Float routed);
         ])

let flow_pivots s ?(sampled_of = 1) ~algo ~pivots ~objective () =
  if s.on then
    emit s "flow_pivots"
      (weighted sampled_of
         [
           ("algo", Json.String algo);
           ("pivots", Json.Int pivots);
           ("objective", Json.Float objective);
         ])

let stack_sample s ~domain ~stack =
  if s.on then
    emit s "stack_sample"
      [ ("stack", Json.String stack); ("domain", Json.Int domain) ]

let flow_solve s ~algo ~pivots ~warm ~status =
  if s.on then
    emit s "flow_solve"
      [
        ("algo", Json.String algo);
        ("pivots", Json.Int pivots);
        ("warm", Json.Bool warm);
        ("status", Json.String status);
      ]

let ladder_descent s ~solver ~from_rung ~to_rung ~reason =
  if s.on then
    emit s "ladder_descent"
      [
        ("solver", Json.String solver);
        ("from_rung", Json.String from_rung);
        ("to_rung", Json.String to_rung);
        ("reason", Json.String reason);
      ]

let recovery s ~stage ~detail =
  if s.on then
    emit s "recovery"
      [ ("stage", Json.String stage); ("detail", Json.String detail) ]

let deadline_hit s ~phase ~elapsed ~budget =
  if s.on then
    emit s "deadline_hit"
      [
        ("phase", Json.String phase);
        ("elapsed", Json.Float elapsed);
        ("budget", Json.Float budget);
      ]

let presolve_reduction s ~rows_dropped ~bounds_tightened ~fixed_vars =
  if s.on then
    emit s "presolve_reduction"
      [
        ("rows_dropped", Json.Int rows_dropped);
        ("bounds_tightened", Json.Int bounds_tightened);
        ("fixed_vars", Json.Int fixed_vars);
      ]

let checkpoint_write s ~path ~nodes ~frontier ~seconds =
  if s.on then
    emit s "checkpoint_write"
      [
        ("path", Json.String path);
        ("nodes", Json.Int nodes);
        ("frontier", Json.Int frontier);
        ("seconds", Json.Float seconds);
      ]

let checkpoint_resume s ~path ~nodes ~frontier =
  if s.on then
    emit s "checkpoint_resume"
      [
        ("path", Json.String path);
        ("nodes", Json.Int nodes);
        ("frontier", Json.Int frontier);
      ]

let worker_failure s ~slot ~reason =
  if s.on then
    emit s "worker_failure"
      [ ("slot", Json.Int slot); ("reason", Json.String reason) ]

let preempt_stop s ~phase ~nodes =
  if s.on then
    emit s "preempt_stop"
      [ ("phase", Json.String phase); ("nodes", Json.Int nodes) ]

let server_shutdown s ~served =
  if s.on then emit s "server_shutdown" [ ("served", Json.Int served) ]
