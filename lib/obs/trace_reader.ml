type event =
  | Span_open of { name : string; depth : int }
  | Span_close of {
      name : string;
      depth : int;
      seconds : float;
      gc : Trace.gc_delta option;
      sampled_of : int;
    }
  | Bb_node of {
      solver : string;
      node : int;
      depth : int;
      bound : float option;
      sampled_of : int;
    }
  | Incumbent of { solver : string; node : int; objective : float }
  | Bound_pruned of {
      solver : string;
      node : int;
      bound : float option;
      incumbent : float option;
    }
  | Warm_start of {
      dual_feasible : bool;
      iterations : int;
      kernel : string;
      outcome : string;
    }
  | Simplex_phase of {
      phase : int;
      iterations : int;
      outcome : string;
      sampled_of : int;
    }
  | Greedy_pick of { pick : int; gain : float; covered : float }
  | Flow_augmentation of {
      amount : float;
      path_cost : float;
      routed : float;
      sampled_of : int;
    }
  | Flow_pivots of {
      algo : string;
      pivots : int;
      objective : float;
      sampled_of : int;
    }
  | Flow_solve of { algo : string; pivots : int; warm : bool; status : string }
  | Presolve_reduction of {
      rows_dropped : int;
      bounds_tightened : int;
      fixed_vars : int;
    }
  | Ladder_descent of {
      solver : string;
      from_rung : string;
      to_rung : string;
      reason : string;
    }
  | Recovery of { stage : string; detail : string }
  | Deadline_hit of { phase : string; elapsed : float; budget : float option }
  | Chaos_inject of { site : string }
  | Stack_sample of { stack : string }
  | Run_info of {
      run_id : string;
      git_rev : string option;
      ocaml_version : string option;
      hostname : string option;
      chaos_seed : int option;
      argv : string list;
    }
  | Checkpoint_write of {
      path : string;
      nodes : int;
      frontier : int;
      seconds : float;
    }
  | Checkpoint_resume of { path : string; nodes : int; frontier : int }
  | Worker_failure of { slot : int; reason : string }
  | Preempt_stop of { phase : string; nodes : int }
  | Server_shutdown of { served : int }
  | Unknown of string

(* [domain] is the emitting domain's id; the writer omits the field
   for the initial domain, which decodes as 0 here (domain ids of
   spawned workers are always positive). Old traces therefore read as
   all-domain-0, which is exactly what they were. *)
type record = { ts : float; domain : int; event : event }

let event_name = function
  | Span_open _ -> "span_open"
  | Span_close _ -> "span_close"
  | Bb_node _ -> "bb_node"
  | Incumbent _ -> "incumbent"
  | Bound_pruned _ -> "bound_pruned"
  | Warm_start _ -> "warm_start"
  | Simplex_phase _ -> "simplex_phase"
  | Greedy_pick _ -> "greedy_pick"
  | Flow_augmentation _ -> "flow_augmentation"
  | Flow_pivots _ -> "flow_pivots"
  | Flow_solve _ -> "flow_solve"
  | Presolve_reduction _ -> "presolve_reduction"
  | Ladder_descent _ -> "ladder_descent"
  | Recovery _ -> "recovery"
  | Deadline_hit _ -> "deadline_hit"
  | Chaos_inject _ -> "chaos_inject"
  | Stack_sample _ -> "stack_sample"
  | Run_info _ -> "run_info"
  | Checkpoint_write _ -> "checkpoint_write"
  | Checkpoint_resume _ -> "checkpoint_resume"
  | Worker_failure _ -> "worker_failure"
  | Preempt_stop _ -> "preempt_stop"
  | Server_shutdown _ -> "server_shutdown"
  | Unknown ev -> ev

(* Option-monad decoding: a known event missing a required field (or
   carrying it at the wrong type) degrades to [Unknown] rather than
   failing the whole read, and extra fields are ignored — the
   forward-compatibility contract that lets old analyzers read traces
   from newer writers. A numeric field written as [null] (the writer's
   rendering of nan/infinities) decodes as [None] where the event
   models it as optional. *)
let decode ~ev fields =
  let ( let* ) = Option.bind in
  let field k = List.assoc_opt k fields in
  let str k = Option.bind (field k) Json.as_string in
  let int k = Option.bind (field k) Json.as_int in
  let num k = Option.bind (field k) Json.as_float in
  let bool k = Option.bind (field k) Json.as_bool in
  (* present-but-null (or absent) numeric fields *)
  let opt_num k = num k in
  (* the writer omits [sampled_of] at weight 1 so unsampled traces are
     byte-identical to pre-sampler writers *)
  let sampled_of () = Option.value (int "sampled_of") ~default:1 in
  let decoded =
    match ev with
    | "span_open" ->
      let* name = str "name" in
      let* depth = int "depth" in
      Some (Span_open { name; depth })
    | "span_close" ->
      let* name = str "name" in
      let* depth = int "depth" in
      let* seconds = num "seconds" in
      (* the gc accounting is all-or-nothing: traces from writers
         predating it decode with [gc = None] *)
      let gc =
        match
          ( num "minor_words",
            num "major_words",
            num "promoted_words",
            int "major_collections",
            int "top_heap_words" )
        with
        | ( Some minor_words,
            Some major_words,
            Some promoted_words,
            Some major_collections,
            Some top_heap_words ) ->
          Some
            {
              Trace.minor_words;
              major_words;
              promoted_words;
              major_collections;
              top_heap_words;
            }
        | _ -> None
      in
      Some (Span_close { name; depth; seconds; gc; sampled_of = sampled_of () })
    | "bb_node" ->
      let* solver = str "solver" in
      let* node = int "node" in
      let* depth = int "depth" in
      Some
        (Bb_node
           {
             solver;
             node;
             depth;
             bound = opt_num "bound";
             sampled_of = sampled_of ();
           })
    | "incumbent" ->
      let* solver = str "solver" in
      let* node = int "node" in
      let* objective = num "objective" in
      Some (Incumbent { solver; node; objective })
    | "bound_pruned" ->
      let* solver = str "solver" in
      let* node = int "node" in
      Some
        (Bound_pruned
           {
             solver;
             node;
             bound = opt_num "bound";
             incumbent = opt_num "incumbent";
           })
    | "warm_start" ->
      let* dual_feasible = bool "dual_feasible" in
      let* iterations = int "iterations" in
      let* kernel = str "kernel" in
      let* outcome = str "outcome" in
      Some (Warm_start { dual_feasible; iterations; kernel; outcome })
    | "simplex_phase" ->
      let* phase = int "phase" in
      let* iterations = int "iterations" in
      let* outcome = str "outcome" in
      Some
        (Simplex_phase { phase; iterations; outcome; sampled_of = sampled_of () })
    | "greedy_pick" ->
      let* pick = int "pick" in
      let* gain = num "gain" in
      let* covered = num "covered" in
      Some (Greedy_pick { pick; gain; covered })
    | "flow_augmentation" ->
      let* amount = num "amount" in
      let* path_cost = num "path_cost" in
      let* routed = num "routed" in
      Some
        (Flow_augmentation
           { amount; path_cost; routed; sampled_of = sampled_of () })
    | "flow_pivots" ->
      let* algo = str "algo" in
      let* pivots = int "pivots" in
      let* objective = num "objective" in
      Some (Flow_pivots { algo; pivots; objective; sampled_of = sampled_of () })
    | "flow_solve" ->
      let* algo = str "algo" in
      let* pivots = int "pivots" in
      let* warm = bool "warm" in
      let* status = str "status" in
      Some (Flow_solve { algo; pivots; warm; status })
    | "presolve_reduction" ->
      let* rows_dropped = int "rows_dropped" in
      let* bounds_tightened = int "bounds_tightened" in
      let* fixed_vars = int "fixed_vars" in
      Some (Presolve_reduction { rows_dropped; bounds_tightened; fixed_vars })
    | "ladder_descent" ->
      let* solver = str "solver" in
      let* from_rung = str "from_rung" in
      let* to_rung = str "to_rung" in
      let* reason = str "reason" in
      Some (Ladder_descent { solver; from_rung; to_rung; reason })
    | "recovery" ->
      let* stage = str "stage" in
      let* detail = str "detail" in
      Some (Recovery { stage; detail })
    | "deadline_hit" ->
      let* phase = str "phase" in
      let* elapsed = num "elapsed" in
      Some (Deadline_hit { phase; elapsed; budget = opt_num "budget" })
    | "chaos_inject" ->
      let* site = str "site" in
      Some (Chaos_inject { site })
    | "stack_sample" ->
      let* stack = str "stack" in
      Some (Stack_sample { stack })
    | "run_info" ->
      let* run_id = str "run_id" in
      let argv =
        match Option.bind (field "argv") Json.as_list with
        | None -> []
        | Some items -> List.filter_map Json.as_string items
      in
      Some
        (Run_info
           {
             run_id;
             git_rev = str "git_rev";
             ocaml_version = str "ocaml_version";
             hostname = str "hostname";
             chaos_seed = int "chaos_seed";
             argv;
           })
    | "checkpoint_write" ->
      let* path = str "path" in
      let* nodes = int "nodes" in
      let* frontier = int "frontier" in
      let* seconds = num "seconds" in
      Some (Checkpoint_write { path; nodes; frontier; seconds })
    | "checkpoint_resume" ->
      let* path = str "path" in
      let* nodes = int "nodes" in
      let* frontier = int "frontier" in
      Some (Checkpoint_resume { path; nodes; frontier })
    | "worker_failure" ->
      let* slot = int "slot" in
      let* reason = str "reason" in
      Some (Worker_failure { slot; reason })
    | "preempt_stop" ->
      let* phase = str "phase" in
      let* nodes = int "nodes" in
      Some (Preempt_stop { phase; nodes })
    | "server_shutdown" ->
      let* served = int "served" in
      Some (Server_shutdown { served })
    | _ -> None
  in
  match decoded with Some e -> e | None -> Unknown ev

let of_json j =
  match Json.member "ev" j with
  | None -> None
  | Some ev_field -> (
    match Json.as_string ev_field with
    | None -> None
    | Some ev ->
      let fields = Option.value (Json.as_obj j) ~default:[] in
      let ts =
        Option.value
          (Option.bind (Json.member "ts" j) Json.as_float)
          ~default:0.0
      in
      let domain =
        Option.value
          (Option.bind (Json.member "domain" j) Json.as_int)
          ~default:0
      in
      Some { ts; domain; event = decode ~ev fields })

type read = {
  records : record list;
  malformed : int;
  unknown : int;
  truncated : bool;
}

let read_string s =
  let results = Json.parse_lines s in
  let last = List.length results - 1 in
  let records = ref [] and malformed = ref 0 and truncated = ref false in
  let unknown = ref 0 in
  List.iteri
    (fun i r ->
      match r with
      | Ok j -> (
        match of_json j with
        | Some rec_ ->
          (match rec_.event with Unknown _ -> incr unknown | _ -> ());
          records := rec_ :: !records
        | None -> incr malformed)
      | Error _ ->
        (* a malformed final line is a truncated write (the process
           died mid-event), not a corrupt trace *)
        if i = last then truncated := true else incr malformed)
    results;
  {
    records = List.rev !records;
    malformed = !malformed;
    unknown = !unknown;
    truncated = !truncated;
  }

let read_file path =
  read_string (In_channel.with_open_bin path In_channel.input_all)
