(** Always-on flight recorder: per-domain ring buffers retaining the
    last N trace events, dumped as ordinary JSONL on fault triggers.

    A recorder is fed through an ordinary {!Trace.custom} sink (put it
    in the ambient fan-out), so it sees exactly the typed taxonomy,
    timestamps and domain stamping a [--trace] file would, at the cost
    of a DLS lookup and a ring store per event — cheap enough to leave
    armed on every run. {!dump} merges the per-domain rings by
    timestamp and renders them with {!Trace.render_line}; the dump
    file is byte-compatible with channel-sink output and reads through
    {!Trace_reader}, [monitorctl analyze] and [monitorctl diff]
    unchanged.

    The ambient plumbing ({!install} / {!trigger}) is how the
    resilience layer asks for a dump at the moment of failure —
    deadline expiry, degradation-ladder descent, chaos injection,
    uncaught exception — without depending on who armed the recorder.
    Triggers are capped (8 dumps per process) so fault storms cannot
    flood the dump directory. *)

type t

val create : ?capacity:int -> unit -> t
(** A recorder retaining the last [capacity] (default 4096) events per
    domain. *)

val capacity : t -> int

val sink : t -> Trace.sink
(** The recording sink; combine with other sinks via
    {!Trace.fanout}. *)

val record :
  t -> ts:float -> ev:string -> (string * Json.t) list -> unit
(** Feed one event directly (the sink path ends here; also used by
    deterministic replay tests, which control [ts]). Records into the
    calling domain's ring. *)

val set_manifest : t -> (string * Json.t) list -> unit
(** The run manifest ({!Runinfo.to_fields}) to stamp as the leading
    [run_info] event of every dump. *)

val events_seen : t -> int
(** Total events recorded across all domains (including overwritten
    ones). *)

val stats : t -> (int * int * int) list
(** Per-domain [(domain_id, retained, dropped)] in registration
    order. *)

val clear : t -> unit

val render : t -> string
(** The dump body: the manifest (when set) followed by every retained
    event, merged across domains in timestamp order, one JSONL line
    each. *)

val dump : t -> ?reason:string -> string -> string
(** [dump t ~reason dir] writes {!render} to
    [dir/flight-<seq>-<reason>.jsonl] (creating [dir] as needed) and
    returns the path. Raises [Sys_error]/[Unix.Unix_error] on an
    unwritable destination. *)

(** {1 Ambient recorder and fault triggers} *)

val install : ?capacity:int -> ?dir:string -> unit -> t
(** Create a recorder, make it the ambient one, and arm dumps into
    [dir] (no [dir]: recording stays armed but triggers are inert).
    Call once at startup, before worker domains spawn. *)

val installed : unit -> t option

val uninstall : unit -> unit

val set_dump_dir : string option -> unit

val dump_dir : unit -> string option

val trigger : reason:string -> unit
(** Dump the ambient recorder into the armed directory, if any. Never
    raises; announces the dump path on stderr; counts into the
    [flight.dumps{reason}] counter; capped at 8 dumps per process. *)

val dumps_taken : unit -> int
