(* A run manifest identifies one solver invocation well enough to join
   two traces offline: a generated id, the code revision, the
   toolchain, the host, the chaos seed (when fault injection was
   armed) and the command line. It is emitted as the first event of
   every traced run and stamped into bench reports. *)

(* the one version string: cmdliner --version, the bench report and
   the build_info exposition all quote it *)
let version = "1.0.0"

type t = {
  run_id : string;
  git_rev : string option;
  ocaml_version : string;
  hostname : string;
  chaos_seed : int option;
  jobs : int option;
  scheduler : string option;
  argv : string list;
}

(* wall-clock millis + pid + a per-process counter: unique across
   hosts in practice, and cheap enough to mint per run *)
let counter = ref 0

let gen_id () =
  incr counter;
  let ms = Int64.of_float (Unix.gettimeofday () *. 1e3) in
  Printf.sprintf "run-%Lx-%x-%x" ms (Unix.getpid ()) !counter

(* The revision comes from the environment when the build system
   provides it (MONPOS_GIT_REV, set by CI), falling back to asking
   git; a container without git or a checkout just omits it. *)
let detect_git_rev () =
  match Sys.getenv_opt "MONPOS_GIT_REV" with
  | Some rev when rev <> "" -> Some rev
  | _ -> (
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, rev when rev <> "" -> Some rev
      | _ -> None
    with Unix.Unix_error _ | Sys_error _ -> None)

let capture ?chaos_seed ?jobs ?scheduler ?argv () =
  {
    run_id = gen_id ();
    git_rev = detect_git_rev ();
    ocaml_version = Sys.ocaml_version;
    hostname = (try Unix.gethostname () with Unix.Unix_error _ -> "unknown");
    chaos_seed;
    jobs;
    scheduler;
    argv =
      (match argv with
      | Some a -> Array.to_list a
      | None -> Array.to_list Sys.argv);
  }

let to_fields t =
  [
    ("run_id", Json.String t.run_id);
    ( "git_rev",
      match t.git_rev with Some r -> Json.String r | None -> Json.Null );
    ("ocaml_version", Json.String t.ocaml_version);
    ("hostname", Json.String t.hostname);
    ( "chaos_seed",
      match t.chaos_seed with Some s -> Json.Int s | None -> Json.Null );
    ("jobs", match t.jobs with Some j -> Json.Int j | None -> Json.Null);
    ( "scheduler",
      match t.scheduler with Some s -> Json.String s | None -> Json.Null );
    ("argv", Json.List (List.map (fun a -> Json.String a) t.argv));
  ]

let to_json t = Json.Obj (to_fields t)

let emit sink t = if Trace.enabled sink then Trace.emit sink "run_info" (to_fields t)
