type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_to b x =
  if Float.is_finite x then
    (* shortest representation that still round-trips doubles *)
    let s = Printf.sprintf "%.17g" x in
    let short = Printf.sprintf "%.12g" x in
    Buffer.add_string b (if float_of_string short = x then short else s)
  else Buffer.add_string b "null"

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> float_to b f
  | String s ->
    Buffer.add_char b '"';
    escape_to b s;
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape_to b k;
        Buffer.add_string b "\":";
        to_buffer b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* parsing — the dual of the writer above. Recursive descent over a
   string; positions are byte offsets so error messages point into the
   offending line. Bytes >= 0x80 pass through untouched (the writer
   never escapes them), so UTF-8 payloads round-trip byte for byte. *)

type parse_state = { src : string; mutable pos : int }

exception Fail of int * string

let fail st msg = raise (Fail (st.pos, msg))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail st (Printf.sprintf "expected %C, found %C" c d)
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let hex4 st =
  if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
  let v = ref 0 in
  for i = st.pos to st.pos + 3 do
    let d =
      match st.src.[i] with
      | '0' .. '9' as c -> Char.code c - Char.code '0'
      | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d
  done;
  st.pos <- st.pos + 4;
  !v

(* Encode a Unicode scalar value as UTF-8. Escaped surrogate pairs are
   combined by the caller; a lone surrogate is encoded as-is (WTF-8)
   rather than rejected, keeping the parser total on real-world logs. *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string_body st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          let cp = hex4 st in
          let cp =
            (* high surrogate followed by an escaped low surrogate *)
            if
              cp >= 0xd800 && cp <= 0xdbff
              && st.pos + 1 < String.length st.src
              && st.src.[st.pos] = '\\'
              && st.src.[st.pos + 1] = 'u'
            then begin
              let saved = st.pos in
              st.pos <- st.pos + 2;
              let lo = hex4 st in
              if lo >= 0xdc00 && lo <= 0xdfff then
                0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
              else begin
                st.pos <- saved;
                cp
              end
            end
            else cp
          in
          add_utf8 b cp
        | c -> fail st (Printf.sprintf "bad escape \\%c" c)));
      go ()
    | Some c when Char.code c < 0x20 -> fail st "unescaped control character"
    | Some c ->
      Buffer.add_char b c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_int = ref true in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some ('0' .. '9' | '-' | '+') -> st.pos <- st.pos + 1
    | Some ('.' | 'e' | 'E') ->
      is_int := false;
      st.pos <- st.pos + 1
    | _ -> continue := false
  done;
  if st.pos = start then fail st "expected a value";
  let tok = String.sub st.src start (st.pos - start) in
  if !is_int then
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      (* out of native int range: keep the magnitude as a float *)
      match float_of_string_opt tok with
      | Some f -> Float f
      | None ->
        st.pos <- start;
        fail st (Printf.sprintf "bad number %S" tok))
  else
    match float_of_string_opt tok with
    | Some f -> Float f
    | None ->
      st.pos <- start;
      fail st (Printf.sprintf "bad number %S" tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "expected a value, found end of input"
  | Some '"' -> String (parse_string_body st)
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let k = parse_string_body st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ((k, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some _ -> parse_number st

let parse s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Fail (pos, msg) ->
    Error (Printf.sprintf "%s at offset %d" msg pos)

let parse_lines s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         if String.trim line = "" then None else Some (parse line))

(* ------------------------------------------------------------------ *)
(* accessors used by the trace reader and the bench regression gate *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let as_string = function String s -> Some s | _ -> None

let as_int = function Int i -> Some i | _ -> None

let as_bool = function Bool b -> Some b | _ -> None

let as_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let as_list = function List xs -> Some xs | _ -> None

let as_obj = function Obj kvs -> Some kvs | _ -> None
