type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | String of string
  | List of t list
  | Obj of (string * t) list

and t_float = float

let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_to b x =
  if Float.is_finite x then
    (* shortest representation that still round-trips doubles *)
    let s = Printf.sprintf "%.17g" x in
    let short = Printf.sprintf "%.12g" x in
    Buffer.add_string b (if float_of_string short = x then short else s)
  else Buffer.add_string b "null"

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> float_to b f
  | String s ->
    Buffer.add_char b '"';
    escape_to b s;
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        to_buffer b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape_to b k;
        Buffer.add_string b "\":";
        to_buffer b v)
      kvs;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b
