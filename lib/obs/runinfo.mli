(** Run manifests: who/what/where of one solver invocation.

    Every traced run opens with a [run_info] event carrying this
    manifest, and bench reports stamp it under a ["run"] member, so
    offline tooling ({!Diff}, dashboards) can join artifacts from the
    same run and tell apart runs from different revisions or hosts. *)

val version : string
(** The monpos release version, quoted by [--version], bench reports
    and the [monpos_build_info] exposition. *)

val detect_git_rev : unit -> string option
(** The code revision: [MONPOS_GIT_REV] when set, else a [git
    rev-parse] of the working directory, else [None]. Forks a process
    in the fallback case — cache the result if calling repeatedly. *)

type t = {
  run_id : string;  (** generated, unique per invocation *)
  git_rev : string option;
      (** from [MONPOS_GIT_REV] or [git rev-parse]; [None] when
          neither is available *)
  ocaml_version : string;
  hostname : string;
  chaos_seed : int option;  (** set when fault injection was armed *)
  jobs : int option;  (** worker domain count of parallel solves *)
  scheduler : string option;
      (** ["wave"] (deterministic) or ["async"]; [None] for runs that
          never touch the parallel solver *)
  argv : string list;
}

val capture :
  ?chaos_seed:int ->
  ?jobs:int ->
  ?scheduler:string ->
  ?argv:string array ->
  unit ->
  t
(** Mint a manifest for this process. [argv] defaults to [Sys.argv];
    [chaos_seed] is passed by callers that know the fault-injection
    state (this module cannot ask {!Monpos_resilience.Chaos} itself —
    the dependency points the other way), and [jobs]/[scheduler]
    likewise describe the parallel solver configuration the caller
    resolved. *)

val to_fields : t -> (string * Json.t) list

val to_json : t -> Json.t

val emit : Trace.sink -> t -> unit
(** Emit the [run_info] event (a no-op on the null sink). *)
