(** Live, throttled progress reporting for traced solves.

    {!sink} builds a {!Trace.custom} sink that tracks branch-and-bound
    progress (nodes visited, incumbent, bound, relative gap, elapsed
    trace time) and repaints a single in-place line ([\r]-terminated,
    fixed width) on the output channel at most every [interval]
    seconds. Meant to be {!Trace.fanout}'d next to a file sink so a
    long solve can be watched while its full trace is recorded.
    Closing the sink repaints one final time and terminates the line
    with a newline. *)

val sink : ?interval:float -> ?oc:out_channel -> unit -> Trace.sink
(** [interval] defaults to 0.1s; [oc] defaults to [stderr]. *)
