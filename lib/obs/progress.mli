(** Live, throttled progress reporting for traced solves.

    {!sink} builds a {!Trace.custom} sink that tracks branch-and-bound
    progress (nodes visited, incumbent, bound, relative gap, elapsed
    trace time) and repaints a single in-place line ([\r]-terminated,
    fixed width) on the output channel at most every [interval]
    seconds. Meant to be {!Trace.fanout}'d next to a file sink so a
    long solve can be watched while its full trace is recorded.
    Closing the sink repaints one final time and terminates the line
    with a newline.

    When the channel is not a terminal (detected with [Unix.isatty],
    overridable with [?tty]) the in-place repaint would smear raw
    carriage returns into logs, so the sink instead emits whole
    newline-terminated progress lines at a coarser default throttle
    (one per second). *)

val sink : ?interval:float -> ?oc:out_channel -> ?tty:bool -> unit -> Trace.sink
(** [interval] defaults to 0.1s on a tty and 1s otherwise; [oc]
    defaults to [stderr]; [tty] defaults to [Unix.isatty oc]. *)
