(** Cross-run trace diffing.

    Joins two decoded traces by span name and solver, then compares
    per-span wall time ([span.<name>.seconds]), call counts
    ([span.<name>.calls]), allocation ([span.<name>.alloc_words]),
    per-solver branch-and-bound nodes ([solver.<s>.nodes]) and total
    simplex pivots ([simplex.pivots]) under the same metric-class
    thresholds as {!Bench_check}: wall times tolerate +50% (+0.1s
    slack), allocation tolerates +10% (+16k words), counts tolerate
    ±1%, and a metric present in run A but missing from run B
    regresses. When either trace carries a [run_info] with a chaos
    seed, violations are reported but tolerated (do not gate), the
    bench gate's convention for fault-injected runs. *)

type row = {
  key : string;
  a : float;
  b : float option;  (** [None]: disappeared from run B *)
  limit : string;  (** violated threshold; [""] when within bounds *)
  regressed : bool;
}

type report = {
  rows : row list;
  compared : int;
  regressions : int;  (** gating count — 0 when tolerated under chaos *)
  tolerated : int;
  notes : string list;  (** run manifests, truncation, B-only metrics *)
}

val of_traces : a:Trace_reader.read -> b:Trace_reader.read -> report

val render : report -> string
(** Run manifests, a verdict-per-row table ([OK] / [!!]) and a
    summary line matching the bench gate's phrasing. *)
