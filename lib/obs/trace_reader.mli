(** Typed reader for the JSONL traces {!Trace} writes.

    Decodes the stable event taxonomy with a skip-unknown
    forward-compatibility contract: an event name this reader does not
    know — or a known event whose required fields are missing or
    mistyped — decodes as {!Unknown} instead of failing the read, and
    extra fields on known events are ignored. Numeric fields the
    writer rendered as [null] (nan/infinities) decode as [None] where
    the event models them as optional. *)

type event =
  | Span_open of { name : string; depth : int }
  | Span_close of {
      name : string;
      depth : int;
      seconds : float;
      gc : Trace.gc_delta option;
          (** allocation accounting; [None] for traces written before
              GC sampling existed *)
      sampled_of : int;
          (** head-sampling weight: this event stands for [sampled_of]
              occurrences (1 — the decode default when the field is
              absent — means unsampled) *)
    }
  | Bb_node of {
      solver : string;
      node : int;
      depth : int;
      bound : float option;
      sampled_of : int;
    }
  | Incumbent of { solver : string; node : int; objective : float }
  | Bound_pruned of {
      solver : string;
      node : int;
      bound : float option;
      incumbent : float option;
    }
  | Warm_start of {
      dual_feasible : bool;
      iterations : int;
      kernel : string;
      outcome : string;
    }
  | Simplex_phase of {
      phase : int;
      iterations : int;
      outcome : string;
      sampled_of : int;
    }
  | Greedy_pick of { pick : int; gain : float; covered : float }
  | Flow_augmentation of {
      amount : float;
      path_cost : float;
      routed : float;
      sampled_of : int;
    }
  | Flow_pivots of {
      algo : string;
      pivots : int;
      objective : float;
      sampled_of : int;
    }
      (** a batch of network-simplex pivots inside one flow solve:
          cumulative pivot count and current (shifted) objective *)
  | Flow_solve of { algo : string; pivots : int; warm : bool; status : string }
      (** one min-cost-flow solve: kernel name, pivot count (0 for
          SSP), whether the basis warm started, and final status *)
  | Presolve_reduction of {
      rows_dropped : int;
      bounds_tightened : int;
      fixed_vars : int;
    }
  | Ladder_descent of {
      solver : string;
      from_rung : string;
      to_rung : string;
      reason : string;
    }  (** the degradation ladder fell one rung *)
  | Recovery of { stage : string; detail : string }
      (** a solver recovered internally from a fault *)
  | Deadline_hit of { phase : string; elapsed : float; budget : float option }
      (** a wall-clock budget expired inside [phase] *)
  | Chaos_inject of { site : string }
      (** the fault-injection harness fired at [site] *)
  | Stack_sample of { stack : string }
      (** one wall-clock profiler tick: the sampled domain's open span
          stack, outermost first, [;]-joined (folded-stack format);
          the sampled domain is the record's [domain] field *)
  | Run_info of {
      run_id : string;
      git_rev : string option;
      ocaml_version : string option;
      hostname : string option;
      chaos_seed : int option;
      argv : string list;
    }  (** the run manifest stamped at the head of every traced run *)
  | Checkpoint_write of {
      path : string;
      nodes : int;
      frontier : int;
      seconds : float;
    }
      (** a branch-and-bound checkpoint was atomically written:
          [nodes] explored so far, [frontier] open nodes captured,
          the write took [seconds] *)
  | Checkpoint_resume of { path : string; nodes : int; frontier : int }
      (** a search resumed from the checkpoint at [path] *)
  | Worker_failure of { slot : int; reason : string }
      (** a worker domain died; the supervisor marked [slot] dead and
          requeued its work on the survivors *)
  | Preempt_stop of { phase : string; nodes : int }
      (** SIGINT/SIGTERM stopped the search cooperatively at a wave
          barrier *)
  | Server_shutdown of { served : int }
      (** the scrape server exited gracefully after [served] requests *)
  | Unknown of string  (** carries the unrecognized event name *)

type record = { ts : float; domain : int; event : event }
(** [ts] is seconds since the writing sink was created (0. if the
    field is absent). [domain] is the id of the domain that emitted
    the event; the writer only stamps it on events from spawned
    domains, so events from the initial domain — and every event of a
    trace predating parallel solves — decode as domain [0]. Consumers
    replaying stateful event pairs (span_open/span_close) must key
    their state by [domain], since parallel solves interleave the
    per-domain streams in file order. *)

val event_name : event -> string

val decode : ev:string -> (string * Json.t) list -> event
(** Decode one event from its name and fields. Also usable by live
    consumers fed through {!Trace.custom}, which see events as
    name + fields without a JSON round-trip. *)

val of_json : Json.t -> record option
(** [None] when the value has no string ["ev"] field at all (not a
    trace event); otherwise always produces a record, degrading to
    {!Unknown} as described above. *)

type read = {
  records : record list;  (** decoded events, in file order *)
  malformed : int;
      (** lines that were not parseable trace events (excluding a
          truncated final line) *)
  unknown : int;
      (** records that decoded as {!Unknown} — events this reader's
          taxonomy does not cover, or known events with missing or
          mistyped required fields *)
  truncated : bool;
      (** the final line failed to parse — an interrupted write *)
}

val read_string : string -> read

val read_file : string -> read
