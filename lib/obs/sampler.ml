(* Deterministic adaptive head-sampling for high-frequency trace
   events.

   Each event class keeps a per-domain (seen, stride) pair: the first
   [threshold] events of a class pass 1:1, and every time the class
   has emitted [threshold] more blocks at the current stride the
   stride multiplies by 8 (capped). An event is kept iff its sequence
   number is a multiple of the stride, and a kept event carries the
   stride as its [sampled_of] weight: the sum of weights over kept
   events tracks the true event count to within one block, which is
   what lets Profile/Converge rescale exactly while the trace volume
   grows only logarithmically in the event count.

   No randomness anywhere: the decision is a pure function of the
   class's per-domain event ordinal, so a replayed run (same seed,
   same jobs) samples the same events. State is per domain (DLS), so
   worker domains never contend and each domain's stream is
   self-consistent. *)

type cls = Bb_node | Simplex_phase | Flow_pivot | Span of string

let max_stride = 4096

(* 0 = sampling off (every decide returns weight 1). Plain ref: set
   once at startup before worker domains spawn; racing reads of an
   immediate int are atomic. *)
let threshold_ref =
  ref
    (match Sys.getenv_opt "MONPOS_TRACE_SAMPLE" with
    | Some s -> ( match int_of_string_opt (String.trim s) with
      | Some t when t > 0 -> t
      | _ -> 0)
    | None -> 0)

let configure ~threshold = threshold_ref := max 0 threshold

let disable () = threshold_ref := 0

let threshold () = !threshold_ref

let enabled () = !threshold_ref > 0

type cls_state = { mutable seen : int; mutable stride : int }

type state = {
  bb : cls_state;
  sp : cls_state;
  fp : cls_state;
  spans : (string, cls_state) Hashtbl.t;
}

let fresh_cls () = { seen = 0; stride = 1 }

let state_key =
  Domain.DLS.new_key (fun () ->
      {
        bb = fresh_cls ();
        sp = fresh_cls ();
        fp = fresh_cls ();
        spans = Hashtbl.create 8;
      })

let cls_state st = function
  | Bb_node -> st.bb
  | Simplex_phase -> st.sp
  | Flow_pivot -> st.fp
  | Span name -> (
    match Hashtbl.find_opt st.spans name with
    | Some s -> s
    | None ->
      let s = fresh_cls () in
      Hashtbl.add st.spans name s;
      s)

let decide cls =
  let threshold = !threshold_ref in
  if threshold = 0 then 1
  else begin
    let s = cls_state (Domain.DLS.get state_key) cls in
    let n = s.seen in
    s.seen <- n + 1;
    if s.stride < max_stride && n >= threshold * s.stride then
      s.stride <- min max_stride (s.stride * 8);
    if n mod s.stride = 0 then s.stride else 0
  end

(* tests reset the calling domain's streams between scenarios *)
let reset () =
  let st = Domain.DLS.get state_key in
  let zero (s : cls_state) =
    s.seen <- 0;
    s.stride <- 1
  in
  zero st.bb;
  zero st.sp;
  zero st.fp;
  Hashtbl.reset st.spans
