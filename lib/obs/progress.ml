(* Throttled in-place progress reporter, fed live through a
   Trace.custom sink (typically fanned out next to a file sink).
   Renders "\r nodes .. incumbent .. gap .. elapsed" onto one terminal
   line at most every [interval] seconds, padding to a fixed width so
   a shorter line fully overwrites a longer one. *)

type state = {
  oc : out_channel;
  interval : float;
  mutable solver : string;
  mutable nodes : int;
  mutable incumbent : float option;
  mutable bound : float option;
  mutable last_ts : float;
  mutable last_render : float; (* Clock time of the last repaint *)
  mutable rendered : bool;
}

let line st =
  let cell name = function
    | None -> Printf.sprintf "%s -" name
    | Some v -> Printf.sprintf "%s %.6g" name v
  in
  let gap =
    match (st.incumbent, st.bound) with
    | Some inc, Some b when Float.is_finite inc && Float.is_finite b ->
      Printf.sprintf "gap %.2f%%"
        (100.0 *. Float.abs (inc -. b) /. Float.max 1e-9 (Float.abs inc))
    | _ -> "gap -"
  in
  Printf.sprintf "[%s] nodes %d  %s  %s  %s  %.1fs"
    (if st.solver = "" then "solve" else st.solver)
    st.nodes
    (cell "incumbent" st.incumbent)
    (cell "bound" st.bound)
    gap st.last_ts

let width = 78

let repaint st =
  let s = line st in
  let s =
    if String.length s >= width then String.sub s 0 width
    else s ^ String.make (width - String.length s) ' '
  in
  output_char st.oc '\r';
  output_string st.oc s;
  flush st.oc;
  st.rendered <- true

let sink ?(interval = 0.1) ?(oc = stderr) () =
  let st =
    {
      oc;
      interval;
      solver = "";
      nodes = 0;
      incumbent = None;
      bound = None;
      last_ts = 0.0;
      last_render = neg_infinity;
      rendered = false;
    }
  in
  let on_event ts ev fields =
    st.last_ts <- ts;
    (match Trace_reader.decode ~ev fields with
    | Trace_reader.Bb_node { solver; bound; _ } ->
      st.solver <- solver;
      st.nodes <- st.nodes + 1;
      (match bound with Some _ -> st.bound <- bound | None -> ())
    | Trace_reader.Incumbent { solver; objective; _ } ->
      st.solver <- solver;
      st.incumbent <- Some objective
    | Trace_reader.Bound_pruned { solver; bound; incumbent; _ } ->
      st.solver <- solver;
      (match bound with Some _ -> st.bound <- bound | None -> ());
      (match incumbent with Some _ -> st.incumbent <- incumbent | None -> ())
    | _ -> ());
    let now = Clock.now () in
    if now -. st.last_render >= st.interval then begin
      st.last_render <- now;
      repaint st
    end
  in
  let close () =
    if st.rendered || st.nodes > 0 then begin
      repaint st;
      output_char st.oc '\n';
      flush st.oc
    end
  in
  Trace.custom ~close on_event
