(* Throttled in-place progress reporter, fed live through a
   Trace.custom sink (typically fanned out next to a file sink).
   On a terminal it renders "\r nodes .. incumbent .. gap .. elapsed"
   onto one line at most every [interval] seconds, padding to a fixed
   width so a shorter line fully overwrites a longer one. When the
   output is not a tty (a pipe, a CI log) carriage returns would smear
   every repaint onto one unreadable mega-line, so it falls back to
   whole newline-terminated lines at a coarser throttle. *)

type state = {
  oc : out_channel;
  tty : bool;
  interval : float;
  mutable solver : string;
  mutable nodes : int;
  mutable incumbent : float option;
  mutable bound : float option;
  mutable last_ts : float;
  mutable last_render : float; (* Clock time of the last repaint *)
  mutable rendered : bool;
}

let line st =
  let cell name = function
    | None -> Printf.sprintf "%s -" name
    | Some v -> Printf.sprintf "%s %.6g" name v
  in
  let gap =
    match (st.incumbent, st.bound) with
    | Some inc, Some b when Float.is_finite inc && Float.is_finite b ->
      Printf.sprintf "gap %.2f%%"
        (100.0 *. Float.abs (inc -. b) /. Float.max 1e-9 (Float.abs inc))
    | _ -> "gap -"
  in
  Printf.sprintf "[%s] nodes %d  %s  %s  %s  %.1fs"
    (if st.solver = "" then "solve" else st.solver)
    st.nodes
    (cell "incumbent" st.incumbent)
    (cell "bound" st.bound)
    gap st.last_ts

let width = 78

let repaint st =
  let s = line st in
  if st.tty then begin
    let s =
      if String.length s >= width then String.sub s 0 width
      else s ^ String.make (width - String.length s) ' '
    in
    output_char st.oc '\r';
    output_string st.oc s
  end
  else begin
    output_string st.oc s;
    output_char st.oc '\n'
  end;
  flush st.oc;
  st.rendered <- true

(* one line per second is plenty for a log file; a terminal can take
   the default 10 Hz repaint *)
let non_tty_interval = 1.0

let is_tty oc =
  try Unix.isatty (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> false

let sink ?interval ?(oc = stderr) ?tty () =
  let tty = match tty with Some b -> b | None -> is_tty oc in
  let interval =
    match interval with
    | Some i -> i
    | None -> if tty then 0.1 else non_tty_interval
  in
  let st =
    {
      oc;
      tty;
      interval;
      solver = "";
      nodes = 0;
      incumbent = None;
      bound = None;
      last_ts = 0.0;
      last_render = neg_infinity;
      rendered = false;
    }
  in
  let on_event ts ev fields =
    st.last_ts <- ts;
    (match Trace_reader.decode ~ev fields with
    | Trace_reader.Bb_node { solver; bound; _ } ->
      st.solver <- solver;
      st.nodes <- st.nodes + 1;
      (match bound with Some _ -> st.bound <- bound | None -> ())
    | Trace_reader.Incumbent { solver; objective; _ } ->
      st.solver <- solver;
      st.incumbent <- Some objective
    | Trace_reader.Bound_pruned { solver; bound; incumbent; _ } ->
      st.solver <- solver;
      (match bound with Some _ -> st.bound <- bound | None -> ());
      (match incumbent with Some _ -> st.incumbent <- incumbent | None -> ())
    | _ -> ());
    let now = Clock.now () in
    if now -. st.last_render >= st.interval then begin
      st.last_render <- now;
      repaint st
    end
  in
  let close () =
    if st.rendered || st.nodes > 0 then begin
      repaint st;
      (* the tty repaint leaves the cursor mid-line; the fallback lines
         already end in a newline *)
      if st.tty then output_char st.oc '\n';
      flush st.oc
    end
  in
  Trace.custom ~close on_event
