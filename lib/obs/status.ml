(* Live process status for the scrape responder's /healthz and
   /statusz endpoints: the run manifest, uptime, the solve phase in
   flight, and the solver watermarks published as gauges into the
   default registry (incumbent, bound, gap, per-domain node counts,
   steal/idle accounting). Everything here is last-writer-wins
   monitoring state — written from whichever domain is solving, read
   by the serve loop — so atomics are used where a torn read could
   surface a nonsense value and plain stores where they cannot. *)

let epoch = Clock.now ()

let uptime () = Clock.now () -. epoch

let manifest_ref : Json.t option Atomic.t = Atomic.make None

let set_manifest j = Atomic.set manifest_ref (Some j)

let manifest () = Atomic.get manifest_ref

let phase_ref = Atomic.make "idle"

let set_phase p = Atomic.set phase_ref p

let phase () = Atomic.get phase_ref

let with_phase p f =
  let saved = Atomic.get phase_ref in
  Atomic.set phase_ref p;
  Fun.protect ~finally:(fun () -> Atomic.set phase_ref saved) f

(* ------------------------------------------------------------------ *)
(* observability self-accounting *)

(* Cumulative seconds the observability tier spent on itself (flight
   recorder stores, dump rendering, ticker samples), estimated by the
   recorders' own timing probes. A CAS loop keeps cross-domain adds
   lossless; the registry gauge mirrors the cell so the cost shows up
   in scrapes and --metrics tables. *)
let overhead_cell = Atomic.make 0.0

let m_overhead = lazy (Metrics.gauge Metrics.default "obs.overhead_seconds")

let rec add_overhead dt =
  let cur = Atomic.get overhead_cell in
  if Atomic.compare_and_set overhead_cell cur (cur +. dt) then
    Metrics.set (Lazy.force m_overhead) (cur +. dt)
  else add_overhead dt

let overhead () = Atomic.get overhead_cell

(* ------------------------------------------------------------------ *)
(* statusz rendering *)

let gauge_json snap name =
  match Metrics.find snap name with
  | Some (Metrics.Gauge_value v) when Float.is_finite v -> Json.Float v
  | Some (Metrics.Gauge_value _) -> Json.Null
  | _ -> Json.Null

(* label-dimension sweep: every series of [name] carrying a ["domain"]
   label, as {"<domain>": value} in registration order *)
let by_domain snap name =
  List.filter_map
    (fun ({ Metrics.name = n; labels }, entry) ->
      if n <> name then None
      else
        match (labels, entry) with
        | [ ("domain", d) ], Metrics.Counter_value c -> Some (d, Json.Int c)
        | [ ("domain", d) ], Metrics.Gauge_value g -> Some (d, Json.Float g)
        | _ -> None)
    snap

let to_json ?(registry = Metrics.default) () =
  let snap = Metrics.snapshot registry in
  Json.Obj
    [
      ("run", Option.value (manifest ()) ~default:Json.Null);
      ("uptime_seconds", Json.Float (uptime ()));
      ("phase", Json.String (phase ()));
      ( "solver",
        Json.Obj
          [
            ("incumbent", gauge_json snap "mip.incumbent");
            ("bound", gauge_json snap "mip.bound");
            ("gap", gauge_json snap "mip.gap");
            ("nodes", Json.Int (Metrics.sum_counter snap "mip.nodes"));
            ("nodes_by_domain", Json.Obj (by_domain snap "mip.nodes"));
            ("steals", Json.Int (Metrics.sum_counter snap "mip.steals"));
            ( "idle_seconds_by_domain",
              Json.Obj (by_domain snap "mip.idle_seconds") );
          ] );
      ( "obs",
        Json.Obj
          [
            ("overhead_seconds", Json.Float (overhead ()));
            ("trace_sample_threshold", Json.Int (Sampler.threshold ()));
          ] );
      (* checkpoint age is the operator's staleness signal: how much
         search would be lost if the process died right now. [null]
         until the first write of the run. *)
      ( "checkpoint",
        let writes = Metrics.sum_counter snap "checkpoint.writes" in
        if writes = 0 then Json.Null
        else
          let age =
            match Metrics.find snap "checkpoint.last_write_clock" with
            | Some (Metrics.Gauge_value t) when Float.is_finite t ->
              Json.Float (Float.max 0.0 (Clock.now () -. t))
            | _ -> Json.Null
          in
          Json.Obj [ ("writes", Json.Int writes); ("age_seconds", age) ] );
    ]

let healthz () = "ok\n"
