let last = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let elapsed t0 = max 0.0 (now () -. t0)
