(* Span-tree reconstruction. The writer emits span_open/span_close
   pairs carrying the span name and its nesting depth; replaying them
   against a stack rebuilds the call tree, and aggregating by path
   (not just by name) yields a flamegraph-style profile: the same span
   name reached through different parents stays separate in the tree
   while the flat per-name totals merge them.

   Parallel solves interleave events from several domains in file
   order, so the replay keeps one stack per domain (keyed by the
   record's [domain] field — span depth is tracked per domain by the
   writer too). The aggregated tree is shared: a span name opened at
   the root of any domain lands in the same root node, which is what
   a profile wants — per-domain attribution stays available from the
   raw records. *)

type node = {
  name : string;
  mutable calls : int;
  mutable total : float; (* sum of the span's recorded seconds *)
  mutable self : float; (* total minus time attributed to children *)
  mutable alloc_words : float; (* words allocated (minor + major - promoted) *)
  mutable children : node list; (* reverse insertion order *)
}

type t = {
  roots : node list;
  unmatched : int; (* opens without a close, closes without an open *)
}

(* One stack frame per currently-open span. [child_secs] accumulates
   the recorded seconds of completed direct children so self time can
   be computed when this span closes. *)
type frame = {
  agg : node;
  open_depth : int;
  mutable child_secs : float;
}

let of_records records =
  let roots = ref [] in
  let unmatched = ref 0 in
  let stacks : (int, frame list ref) Hashtbl.t = Hashtbl.create 4 in
  let stack_of domain =
    match Hashtbl.find_opt stacks domain with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.add stacks domain s;
      s
  in
  let find_or_create siblings name =
    match List.find_opt (fun n -> n.name = name) !siblings with
    | Some n -> n
    | None ->
      let n =
        {
          name;
          calls = 0;
          total = 0.0;
          self = 0.0;
          alloc_words = 0.0;
          children = [];
        }
      in
      siblings := n :: !siblings;
      n
  in
  let enter stack name depth =
    (* depth jumped down: enclosing spans closed without a close event
       (lost to truncation) — unwind to the event's depth *)
    while List.length !stack > depth do
      incr unmatched;
      stack := List.tl !stack
    done;
    let agg =
      match !stack with
      | [] ->
        let n = find_or_create roots name in
        n
      | parent :: _ ->
        let siblings = ref parent.agg.children in
        let n = find_or_create siblings name in
        parent.agg.children <- !siblings;
        n
    in
    stack := { agg; open_depth = depth; child_secs = 0.0 } :: !stack
  in
  let leave stack name depth seconds gc w =
    (* unwind past any nested spans that never closed *)
    while
      match !stack with
      | f :: _ -> f.open_depth > depth
      | [] -> false
    do
      incr unmatched;
      stack := List.tl !stack
    done;
    match !stack with
    | f :: rest when f.open_depth = depth && f.agg.name = name ->
      (* a head-sampled close stands for [w] spans of roughly this
         duration: scale calls, seconds and allocation so the profile
         estimates the unsampled trace rather than the kept subset *)
      let fw = float_of_int w in
      let weighted = seconds *. fw in
      f.agg.calls <- f.agg.calls + w;
      f.agg.total <- f.agg.total +. weighted;
      f.agg.self <- f.agg.self +. Float.max 0.0 (weighted -. f.child_secs);
      (match gc with
      | Some g ->
        f.agg.alloc_words <-
          f.agg.alloc_words
          +. Float.max 0.0
               Trace.(fw *. (g.minor_words +. g.major_words -. g.promoted_words))
      | None -> ());
      stack := rest;
      (match rest with
      | parent :: _ -> parent.child_secs <- parent.child_secs +. weighted
      | [] -> ())
    | _ -> incr unmatched
  in
  List.iter
    (fun (r : Trace_reader.record) ->
      match r.Trace_reader.event with
      | Trace_reader.Span_open { name; depth } ->
        enter (stack_of r.Trace_reader.domain) name depth
      | Trace_reader.Span_close { name; depth; seconds; gc; sampled_of } ->
        leave
          (stack_of r.Trace_reader.domain)
          name depth seconds gc
          (max 1 sampled_of)
      | _ -> ())
    records;
  Hashtbl.iter
    (fun _ stack -> unmatched := !unmatched + List.length !stack)
    stacks;
  let rec order n = { n with children = List.rev_map order n.children } in
  { roots = List.rev_map order !roots; unmatched = !unmatched }

(* flat per-name aggregation, merging every path the name appears on *)
let totals t =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  let rec visit n =
    (match Hashtbl.find_opt tbl n.name with
    | Some (calls, total, self) ->
      Hashtbl.replace tbl n.name (calls + n.calls, total +. n.total, self +. n.self)
    | None ->
      order := n.name :: !order;
      Hashtbl.add tbl n.name (n.calls, n.total, n.self));
    List.iter visit n.children
  in
  List.iter visit t.roots;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order

(* flat per-name allocated words, same merge as [totals] *)
let alloc_totals t =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  let rec visit n =
    (match Hashtbl.find_opt tbl n.name with
    | Some words -> Hashtbl.replace tbl n.name (words +. n.alloc_words)
    | None ->
      order := n.name :: !order;
      Hashtbl.add tbl n.name n.alloc_words);
    List.iter visit n.children
  in
  List.iter visit t.roots;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name)) !order

let grand_total t =
  List.fold_left (fun acc n -> acc +. n.total) 0.0 t.roots

(* OCaml words are 8 bytes on every platform this runs on; traces are
   cross-machine artifacts, so pin the factor rather than asking
   Sys.word_size of the analyzing host. *)
let bytes_of_words w = 8.0 *. w

let human_bytes bytes =
  if bytes < 1024.0 then Printf.sprintf "%.0fB" bytes
  else if bytes < 1024.0 *. 1024.0 then Printf.sprintf "%.1fKiB" (bytes /. 1024.0)
  else if bytes < 1024.0 *. 1024.0 *. 1024.0 then
    Printf.sprintf "%.1fMiB" (bytes /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.2fGiB" (bytes /. (1024.0 *. 1024.0 *. 1024.0))

let render t =
  let b = Buffer.create 1024 in
  let whole = grand_total t in
  let pct x = if whole <= 0.0 then 0.0 else 100.0 *. x /. whole in
  let sorted ns = List.sort (fun a c -> compare c.total a.total) ns in
  let rec emit indent n =
    Buffer.add_string b
      (Printf.sprintf
         "%5.1f%% %9.3fms  self %9.3fms  %6d call%s  alloc %10s  %s%s\n"
         (pct n.total) (1e3 *. n.total) (1e3 *. n.self) n.calls
         (if n.calls = 1 then " " else "s")
         (human_bytes (bytes_of_words n.alloc_words))
         indent n.name);
    List.iter (emit (indent ^ "  ")) (sorted n.children)
  in
  Buffer.add_string b "span tree (total / self, % of traced time):\n";
  if t.roots = [] then Buffer.add_string b "  (no spans in trace)\n"
  else List.iter (emit "") (sorted t.roots);
  if t.unmatched > 0 then
    Buffer.add_string b
      (Printf.sprintf "(%d unmatched span event(s) — truncated trace?)\n"
         t.unmatched);
  Buffer.contents b

(* Folded stacks from the wall-clock profiler's stack_sample ticks:
   each line is "name;name;name count", the input format of
   flamegraph.pl / inferno / speedscope. Samples aggregate across
   domains (a flamegraph wants where time went, not which domain spent
   it); per-domain splits stay available from the raw records. *)
let folded_of_records records =
  let order = ref [] in
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Trace_reader.record) ->
      match r.Trace_reader.event with
      | Trace_reader.Stack_sample { stack } when stack <> "" -> (
        match Hashtbl.find_opt tbl stack with
        | Some n -> Hashtbl.replace tbl stack (n + 1)
        | None ->
          order := stack :: !order;
          Hashtbl.add tbl stack 1)
      | _ -> ())
    records;
  List.rev_map (fun stack -> (stack, Hashtbl.find tbl stack)) !order

let render_folded records =
  let b = Buffer.create 1024 in
  List.iter
    (fun (stack, count) -> Buffer.add_string b (Printf.sprintf "%s %d\n" stack count))
    (folded_of_records records);
  Buffer.contents b

let to_json t =
  let rec node_json n =
    Json.Obj
      [
        ("name", Json.String n.name);
        ("calls", Json.Int n.calls);
        ("total_s", Json.Float n.total);
        ("self_s", Json.Float n.self);
        ("alloc_words", Json.Float n.alloc_words);
        ("children", Json.List (List.map node_json n.children));
      ]
  in
  let allocs = alloc_totals t in
  Json.Obj
    [
      ("roots", Json.List (List.map node_json t.roots));
      ( "totals",
        Json.Obj
          (List.map
             (fun (name, (calls, total, self)) ->
               ( name,
                 Json.Obj
                   [
                     ("calls", Json.Int calls);
                     ("total_s", Json.Float total);
                     ("self_s", Json.Float self);
                     ( "alloc_words",
                       Json.Float
                         (Option.value ~default:0.0 (List.assoc_opt name allocs))
                     );
                   ] ))
             (totals t)) );
      ("unmatched", Json.Int t.unmatched);
    ]
