(** Registry of named counters, gauges and fixed-bucket histograms.

    Instruments are registered once by name and are stable for the
    registry's lifetime: {!reset} zeroes their values but keeps the
    instrument handles valid, so solver modules can cache handles at
    module scope and pay no lookup on hot paths. Re-registering an
    existing name returns the existing instrument (and raises
    [Invalid_argument] if the kind differs).

    The {!default} registry is the ambient one used by the solver
    stack; tools snapshot and render it after a run. *)

type t

type counter

type gauge

type histogram

val create : unit -> t

val default : t
(** The process-wide registry the solvers record into. *)

(** {1 Registration} *)

val counter : t -> string -> counter

val gauge : t -> string -> gauge

val histogram : ?buckets:float array -> t -> string -> histogram
(** [buckets] are ascending upper bounds; observations above the last
    bound land in an implicit overflow bucket. The default buckets are
    log-spaced latencies from 100µs to 30s. Raises [Invalid_argument]
    on empty or non-ascending bounds. *)

(** {1 Recording} *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

(** {1 Snapshot and rendering} *)

type entry =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      upper : float array;  (** bucket upper bounds *)
      counts : int array;  (** one per bound plus a final overflow *)
      count : int;
      sum : float;
    }

type snapshot = (string * entry) list
(** Name/value pairs in registration order. *)

val snapshot : t -> snapshot

val reset : t -> unit
(** Zero every instrument's value; handles stay valid. *)

val find : snapshot -> string -> entry option

val render_table : snapshot -> string
(** Aligned plain-text table (one instrument per row). Histogram rows
    include p50/p90/p99 estimated by linear interpolation within
    buckets ({!Monpos_util.Stats.percentile_buckets}); an estimate
    landing in the overflow bucket prints as [>last_bound]. *)

val to_json : snapshot -> Json.t
(** Object keyed by instrument name; counters render as integers,
    gauges as numbers, histograms as
    [{"count":..,"sum":..,"p50":..,"p90":..,"p99":..,
      "buckets":[{"le":..,"count":..},...]}]
    where the final bucket has ["le":null] (overflow) and a
    percentile estimate landing in the overflow bucket renders as
    [null]. *)
