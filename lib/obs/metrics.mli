(** Registry of named counters, gauges and fixed-bucket histograms
    with optional label dimensions.

    Instruments are registered once per (name, labels) series and are
    stable for the registry's lifetime: {!reset} zeroes their values
    but keeps the instrument handles valid, so solver modules can
    cache handles at module scope and pay no lookup on hot paths.
    Re-registering an existing series returns the existing instrument.
    A metric name has one kind across every label set (the Prometheus
    data model); registering the same name with a different kind
    raises [Invalid_argument].

    Labels are an ordered [(key * value) list]. Keys must match
    [[a-zA-Z_][a-zA-Z0-9_]*] and be unique within a series; values are
    arbitrary strings (escaped on rendering). The series key interning
    happens once at registration, so incrementing a cached handle
    allocates nothing.

    Registration, {!snapshot} and {!reset} are mutex-guarded and safe
    to call from any domain; recording through a handle is a plain
    single-field write (atomic enough for monitoring counters — a
    racing increment may drop a tick but never corrupts the value).

    The {!default} registry is the ambient one used by the solver
    stack; tools snapshot and render it after a run. *)

type t

type counter

type gauge

type histogram

type labels = (string * string) list
(** Ordered label dimensions, e.g. [["solver", "ppm"; "rung", "lp"]]. *)

type series = { name : string; labels : labels }

val series_key : series -> string
(** Canonical rendering: the bare name, or [name{k="v",...}] with
    values escaped as in the Prometheus exposition format
    (backslash, double quote and newline). *)

val create : unit -> t

val default : t
(** The process-wide registry the solvers record into. *)

(** {1 Registration} *)

val counter : ?labels:labels -> t -> string -> counter

val gauge : ?labels:labels -> t -> string -> gauge

val histogram :
  ?buckets:float array -> ?labels:labels -> t -> string -> histogram
(** [buckets] are ascending upper bounds; observations above the last
    bound land in an implicit overflow bucket. The default buckets are
    log-spaced latencies from 100µs to 30s. Raises [Invalid_argument]
    on empty or non-ascending bounds. *)

(** {1 Recording} *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

(** {1 Snapshot and rendering} *)

type entry =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      upper : float array;  (** bucket upper bounds *)
      counts : int array;  (** one per bound plus a final overflow *)
      count : int;
      sum : float;
    }

type snapshot = (series * entry) list
(** Series/value pairs in registration order. *)

val snapshot : t -> snapshot

val reset : t -> unit
(** Zero every instrument's value; handles stay valid. *)

val find : ?labels:labels -> snapshot -> string -> entry option
(** The entry for exactly (name, labels); [labels] defaults to the
    empty set, so unlabeled lookups read as before. *)

val sum_counter : snapshot -> string -> int
(** Total of a counter family across all its label sets (0 when the
    name is absent). *)

val render_table : snapshot -> string
(** Aligned plain-text table (one series per row, named by
    {!series_key}). Histogram rows include p50/p90/p99 estimated by
    linear interpolation within buckets
    ({!Monpos_util.Stats.percentile_buckets}); an estimate landing in
    the overflow bucket prints as [>last_bound]. *)

val to_json : snapshot -> Json.t
(** Object keyed by {!series_key}; counters render as integers,
    gauges as numbers, histograms as
    [{"count":..,"sum":..,"p50":..,"p90":..,"p99":..,
      "buckets":[{"le":..,"count":..},...]}]
    where the final bucket has ["le":null] (overflow) and a
    percentile estimate landing in the overflow bucket renders as
    [null]. *)
