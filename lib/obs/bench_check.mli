(** Regression gate comparing two bench reports (schema
    [monpos-bench/1], as written by [bench/main.ml]).

    Every numeric headline of every baseline phase that the current
    run also executed is compared under a per-metric-class relative
    threshold: time-like keys tolerate +50% (plus 0.1s absolute
    slack), speedup/pivot-ratio keys tolerate a 50% drop, and all
    other numbers (device counts, coverage, pivot/node counters —
    deterministic under fixed seeds) tolerate ±1%. A metric present in
    the baseline but missing from the current run is a finding;
    baseline phases the current run skipped are only noted. *)

type finding = {
  phase : string;
  key : string;  (** ["seconds"], ["extras.<k>"] or ["metrics.<k>"] *)
  baseline : float;
  current : float option;  (** [None]: the metric disappeared *)
  limit : string;  (** human-readable threshold that was violated *)
}

type report = {
  compared : int;  (** metric pairs examined *)
  findings : finding list;
      (** gating threshold violations, in phase order *)
  tolerated : finding list;
      (** threshold violations in a run made under [MONPOS_CHAOS]:
          injected faults and degraded-rung outcomes legitimately
          shift timings and solution-quality numbers, so these are
          reported but do not gate *)
  chaos_seed : int option;
      (** the current report's ["chaos_seed"] field, when the run was
          chaotic *)
  missing_phases : string list;
}

val compare_reports :
  baseline:Json.t -> current:Json.t -> (report, string) result
(** [Error] on schema problems: missing/unsupported ["schema"],
    mismatched schema versions, or mismatched bench ["mode"] (default
    vs full runs are not comparable). Callers should treat [Error] as
    a hard failure and findings as a gate-able regression. *)

val render : report -> string
