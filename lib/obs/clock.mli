(** Monotonic wall clock.

    [Sys.time] measures CPU seconds, which silently under-counts
    whenever the process blocks and makes "time limit" options lie.
    This clock reads the system wall clock and clamps it to be
    non-decreasing, so elapsed-time arithmetic is safe against the
    occasional NTP step backwards. *)

val now : unit -> float
(** Wall-clock seconds since the Unix epoch, non-decreasing across
    calls within a process. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0], never negative. *)
