(** Prometheus text exposition (format 0.0.4) and a scrape endpoint.

    {!to_prometheus} renders a {!Metrics.snapshot} with HELP/TYPE
    lines per family, escaped label values, counters suffixed
    [_total], and cumulative [_bucket]/[_sum]/[_count] histogram
    series. {!lint} is a promtool-style checker used by tests and CI
    to keep the writer honest. {!listen}/{!serve} answer scrapes over
    raw [Unix] sockets with no HTTP dependency. *)

val sanitize_name : ?namespace:string -> string -> string
(** Map a registry name ("simplex.iterations") to a legal Prometheus
    name ("monpos_simplex_iterations"): invalid characters become
    ['_'] and [namespace] (default ["monpos"]) is prefixed. *)

val to_prometheus : ?namespace:string -> Metrics.snapshot -> string
(** The full exposition, families in registration order, led by the
    constant [monpos_build_info{version,git_rev,ocaml} 1] gauge
    identifying the exposing build. *)

val lint : string -> (unit, string list) result
(** Check an exposition: well-formed sample/HELP/TYPE lines, label
    escaping, every sample preceded by its family's TYPE, no duplicate
    series, cumulative histogram buckets, trailing newline. Errors are
    human-readable and line-numbered. *)

(** {1 Scrape endpoint} *)

val listen : string -> Unix.file_descr
(** [listen "ADDR:PORT"] binds and listens a TCP socket. [ADDR] may be
    an IP, a hostname, ["localhost"], or [""]/["*"] for any; port [0]
    asks the kernel for an ephemeral port (see {!bound_port}). Raises
    [Invalid_argument] on unparseable specs and [Unix.Unix_error] on
    bind failures. *)

val bound_port : Unix.file_descr -> int
(** The actual bound port (useful after [listen "127.0.0.1:0"]). *)

val serve :
  ?max_requests:int ->
  ?should_stop:(unit -> bool) ->
  ?namespace:string ->
  registry:Metrics.t ->
  Unix.file_descr ->
  int
(** Single-threaded accept loop: answers [GET /metrics] (and [/]) with
    a fresh snapshot of [registry], [GET /healthz] with a liveness
    body, [GET /statusz] with the live {!Status.to_json} document
    (run manifest, uptime, phase, solver watermarks), and [404]
    elsewhere. Returns the number of requests served. Runs forever
    unless [max_requests] bounds it (used by tests and smoke jobs) or
    [should_stop] answers true — the predicate is re-checked after
    every request and after any [EINTR]-interrupted accept, which is
    how a SIGINT/SIGTERM handler that merely sets a flag (see
    {!Monpos_resilience.Preempt} in the resilience layer) turns into a
    graceful shutdown: the signal interrupts the blocking accept, the
    loop re-checks, and the caller closes the socket and exits 0.
    Ignores [SIGPIPE] so dropped scrapes do not kill the process. *)
