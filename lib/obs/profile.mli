(** Wall-time profile over a trace's [span_open]/[span_close] events.

    Replays the events against a stack to rebuild the span tree
    (depths from the events disambiguate interleavings and make the
    reconstruction robust to truncated traces), then aggregates by
    call path: each tree node merges every invocation of that span
    name under the same parent chain. Self time is the span's recorded
    seconds minus its completed children's. *)

type node = {
  name : string;
  mutable calls : int;
  mutable total : float;  (** summed seconds from [span_close] events *)
  mutable self : float;  (** [total] minus direct children's totals *)
  mutable children : node list;  (** first-seen order *)
}

type t = {
  roots : node list;
  unmatched : int;
      (** span events that could not be paired (opens left on the
          stack at end of trace, closes with no matching open) —
          nonzero usually means a truncated trace *)
}

val of_records : Trace_reader.record list -> t

val totals : t -> (string * (int * float * float)) list
(** Flat per-name aggregation merging all paths:
    [(name, (calls, total_s, self_s))] in first-seen order. A name's
    [total_s] equals the sum the writer recorded into the
    [span.<name>] histogram for the same run. *)

val grand_total : t -> float
(** Summed seconds of the root spans (the traced wall time). *)

val render : t -> string
(** Flamegraph-style indented text tree, children sorted by total
    time, with percentages of {!grand_total}. *)

val to_json : t -> Json.t
