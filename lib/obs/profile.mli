(** Wall-time profile over a trace's [span_open]/[span_close] events.

    Replays the events against a stack to rebuild the span tree
    (depths from the events disambiguate interleavings and make the
    reconstruction robust to truncated traces), then aggregates by
    call path: each tree node merges every invocation of that span
    name under the same parent chain. Self time is the span's recorded
    seconds minus its completed children's. *)

type node = {
  name : string;
  mutable calls : int;
  mutable total : float;  (** summed seconds from [span_close] events *)
  mutable self : float;  (** [total] minus direct children's totals *)
  mutable alloc_words : float;
      (** words allocated (minor + major - promoted) summed from the
          close events' GC deltas; 0 for traces without GC accounting *)
  mutable children : node list;  (** first-seen order *)
}

type t = {
  roots : node list;
  unmatched : int;
      (** span events that could not be paired (opens left on the
          stack at end of trace, closes with no matching open) —
          nonzero usually means a truncated trace *)
}

val of_records : Trace_reader.record list -> t

val totals : t -> (string * (int * float * float)) list
(** Flat per-name aggregation merging all paths:
    [(name, (calls, total_s, self_s))] in first-seen order. A name's
    [total_s] equals the sum the writer recorded into the
    [span.seconds] histogram labeled with that span for the same
    run. *)

val alloc_totals : t -> (string * float) list
(** Flat per-name allocated words, merging paths like {!totals}. *)

val grand_total : t -> float
(** Summed seconds of the root spans (the traced wall time). *)

val human_bytes : float -> string
(** [123B] / [1.2KiB] / [3.4MiB] / [5.67GiB]. *)

val bytes_of_words : float -> float
(** Words to bytes at 8 bytes/word (traces are 64-bit artifacts). *)

val render : t -> string
(** Flamegraph-style indented text tree, children sorted by total
    time, with percentages of {!grand_total} and per-node allocation
    next to wall time. *)

val to_json : t -> Json.t

val folded_of_records : Trace_reader.record list -> (string * int) list
(** Aggregate the wall-clock profiler's [stack_sample] events into
    [(folded_stack, sample_count)] in first-seen order, merged across
    domains. Empty-stack samples are dropped. *)

val render_folded : Trace_reader.record list -> string
(** {!folded_of_records} as the textual folded-stack format
    ["a;b;c 42\n"] consumed by flamegraph.pl / inferno / speedscope. *)
