(** Fixed-capacity overwrite-oldest ring buffer.

    The flight recorder keeps one ring per domain, pushed only by the
    owning domain, so {!push} is a plain array store plus two integer
    updates — no locks, no allocation beyond the boxed element. Once
    full, each push overwrites the oldest element: the ring always
    retains the most recent [capacity] pushes. *)

type 'a t

val create : int -> 'a t
(** [create capacity] makes an empty ring retaining the last
    [capacity] elements. Raises [Invalid_argument] on a non-positive
    capacity. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit

val length : 'a t -> int
(** Elements currently retained ([min pushed capacity]). *)

val pushed : 'a t -> int
(** Total elements ever pushed (retained or overwritten). *)

val dropped : 'a t -> int
(** Elements lost to overwriting: [pushed - length]. *)

val to_list : 'a t -> 'a list
(** Retained elements, oldest first. Safe to call concurrently with a
    racing {!push} in the monitoring sense: a slot is either an old or
    a new element, never a mix — but the intended use is after the
    writer has stopped. *)

val clear : 'a t -> unit
