(* Regression gate over two bench reports (schema monpos-bench/1).
   Compares every numeric headline the bench publishes — per-phase
   wall time, extras, metric counters — phase by phase, with a
   relative threshold per metric class:

   - time-like keys ("seconds", "*_seconds_*"): wall times are noisy,
     so only a slowdown beyond +50% (plus 100ms absolute slack for
     sub-second phases) regresses;
   - speedup/pivot-ratio keys: derived from timings or pivot counts
     whose whole point is to stay large, so only a drop below half the
     baseline regresses (small-instance speedups swing a lot between
     otherwise-identical runs);
   - scheduler- and machine-dependent series (work-steal counts,
     per-domain "{domain=...}" splits, core counts, measured-overhead
     percentages): artifacts of which worker happened to grab which
     node, of the hardware the run landed on, or of background load
     during a timed A/B, so they are compared for coverage but never
     regress (the derived 0/1 "..._gate" flags still do);
   - everything else (device counts, coverage fractions, pivot and
     node counters): deterministic under fixed seeds, so anything
     beyond ±1% relative regresses.

   Missing phases are reported but do not regress (the caller may have
   run a subset); a metric present in the baseline but absent from the
   current run does regress — silently dropping a guarded number is
   exactly what the gate exists to catch. The one exception is a
   baseline series whose value is exactly 0: registries register
   lazily, so which zero-valued series a phase snapshot carries
   depends on which experiments ran earlier in the same process, and
   a full-run baseline would otherwise permanently flag every
   --compare-* subset. *)

type finding = {
  phase : string;
  key : string;
  baseline : float;
  current : float option; (* None: metric disappeared *)
  limit : string;
}

type report = {
  compared : int;
  findings : finding list;
  tolerated : finding list;
  chaos_seed : int option;
  missing_phases : string list;
}

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

type klass = Time | Ratio | Exact | Sched

let classify key =
  if
    contains ~sub:"{domain=" key || contains ~sub:"steals" key
    || contains ~sub:"cores" key
    || contains ~sub:"overhead_pct" key
  then Sched
  else if key = "seconds" || contains ~sub:"seconds" key then Time
  else if contains ~sub:"speedup" key || contains ~sub:"pivot_ratio" key then
    Ratio
  else Exact

let time_rel = 0.50

let time_abs = 0.1

let ratio_rel = 0.50

let exact_rel = 0.01

(* Some (finding) when the pair violates its class threshold *)
let judge ~phase ~key ~base ~cur =
  match cur with
  | None when base = 0.0 ->
    (* a never-incremented series: registries register lazily, so which
       zero-valued series a phase snapshot carries depends on which
       experiments ran earlier in the process (a full bench run vs a
       --compare-* subset), not on anything the gate guards *)
    None
  | None ->
    Some { phase; key; baseline = base; current = None; limit = "missing" }
  | Some cur ->
    let fail limit =
      Some { phase; key; baseline = base; current = Some cur; limit }
    in
    (match classify key with
    | Time ->
      if cur > (base *. (1.0 +. time_rel)) +. time_abs then
        fail (Printf.sprintf "<= %+.0f%% + %.1fs" (100.0 *. time_rel) time_abs)
      else None
    | Ratio ->
      if cur < base *. (1.0 -. ratio_rel) then
        fail (Printf.sprintf ">= %.0f%% of baseline" (100.0 *. (1.0 -. ratio_rel)))
      else None
    | Exact ->
      if Float.abs (cur -. base) > exact_rel *. Float.max 1.0 (Float.abs base)
      then fail (Printf.sprintf "within %.0f%%" (100.0 *. exact_rel))
      else None
    | Sched -> None)

let schema_of doc =
  match Option.bind (Json.member "schema" doc) Json.as_string with
  | Some s -> Ok s
  | None -> Error "missing \"schema\" field"

let phases_of doc =
  match Option.bind (Json.member "phases" doc) Json.as_list with
  | Some ps -> Ok ps
  | None -> Error "missing \"phases\" list"

let phase_name p =
  Option.value (Option.bind (Json.member "name" p) Json.as_string) ~default:""

(* numeric (key, value) pairs of an object field of the phase *)
let numerics p field =
  match Option.bind (Json.member field p) Json.as_obj with
  | None -> []
  | Some kvs ->
    List.filter_map
      (fun (k, v) -> Option.map (fun f -> (k, f)) (Json.as_float v))
      kvs

let compare_phase ~base ~cur =
  let phase = phase_name base in
  let compared = ref 0 and findings = ref [] in
  let pair key base_v cur_v =
    incr compared;
    match judge ~phase ~key ~base:base_v ~cur:cur_v with
    | Some f -> findings := f :: !findings
    | None -> ()
  in
  (match
     ( Option.bind (Json.member "seconds" base) Json.as_float,
       Option.bind (Json.member "seconds" cur) Json.as_float )
   with
  | Some b, c -> pair "seconds" b c
  | None, _ -> ());
  List.iter
    (fun field ->
      let cur_kvs = numerics cur field in
      List.iter
        (fun (key, base_v) ->
          pair (field ^ "." ^ key) base_v (List.assoc_opt key cur_kvs))
        (numerics base field))
    [ "extras"; "metrics" ];
  (!compared, List.rev !findings)

let compare_reports ~baseline ~current =
  let ( let* ) = Result.bind in
  let* bs = schema_of baseline in
  let* cs = schema_of current in
  if bs <> "monpos-bench/1" then
    Error (Printf.sprintf "baseline has unsupported schema %S" bs)
  else if cs <> bs then
    Error (Printf.sprintf "schema mismatch: baseline %S vs current %S" bs cs)
  else
    let bmode =
      Option.value
        (Option.bind (Json.member "mode" baseline) Json.as_string)
        ~default:"default"
    and cmode =
      Option.value
        (Option.bind (Json.member "mode" current) Json.as_string)
        ~default:"default"
    in
    if bmode <> cmode then
      Error
        (Printf.sprintf
           "bench mode mismatch: baseline %S vs current %S (numbers are not \
            comparable across modes)"
           bmode cmode)
    else
      let* base_phases = phases_of baseline in
      let* cur_phases = phases_of current in
      (* a run made under MONPOS_CHAOS took injected faults and may
         have answered through degraded ladder rungs, so its numbers
         (timings, device counts, pivot counters) legitimately drift
         from a fault-free baseline. Threshold violations are still
         reported, but as tolerated rather than gating regressions. *)
      let chaos_seed =
        match Json.member "chaos_seed" current with
        | Some (Json.Int s) -> Some s
        | Some (Json.Float f) when Float.is_finite f ->
          Some (int_of_float f)
        | _ -> None
      in
      let compared = ref 0 and findings = ref [] and missing = ref [] in
      List.iter
        (fun bp ->
          let name = phase_name bp in
          match
            List.find_opt (fun cp -> phase_name cp = name) cur_phases
          with
          | None -> missing := name :: !missing
          | Some cp ->
            let n, fs = compare_phase ~base:bp ~cur:cp in
            compared := !compared + n;
            findings := !findings @ fs)
        base_phases;
      let findings, tolerated =
        match chaos_seed with
        | Some _ -> ([], !findings)
        | None -> (!findings, [])
      in
      Ok
        {
          compared = !compared;
          findings;
          tolerated;
          chaos_seed;
          missing_phases = List.rev !missing;
        }

let finding_table fs =
  Monpos_util.Table.render
    ~header:[ "phase"; "metric"; "baseline"; "current"; "limit" ]
    (List.map
       (fun f ->
         [
           f.phase;
           f.key;
           Printf.sprintf "%.6g" f.baseline;
           (match f.current with
           | Some c -> Printf.sprintf "%.6g" c
           | None -> "(missing)");
           f.limit;
         ])
       fs)

let render r =
  let b = Buffer.create 256 in
  if r.missing_phases <> [] then
    Buffer.add_string b
      (Printf.sprintf "note: baseline phase(s) not in this run: %s\n"
         (String.concat ", " r.missing_phases));
  (match (r.chaos_seed, r.tolerated) with
  | None, _ -> ()
  | Some seed, [] ->
    Buffer.add_string b
      (Printf.sprintf
         "note: current run under MONPOS_CHAOS=%d; thresholds held anyway\n"
         seed)
  | Some seed, fs ->
    Buffer.add_string b (finding_table fs);
    Buffer.add_string b
      (Printf.sprintf
         "bench check: %d metric(s) outside thresholds TOLERATED (run under \
          MONPOS_CHAOS=%d: injected faults and degraded-rung outcomes are \
          expected to drift)\n"
         (List.length fs) seed));
  if r.findings = [] then begin
    if r.tolerated = [] then
      Buffer.add_string b
        (Printf.sprintf "bench check: %d metric(s) within thresholds: OK\n"
           r.compared)
  end
  else begin
    Buffer.add_string b (finding_table r.findings);
    Buffer.add_string b
      (Printf.sprintf "bench check: %d of %d metric(s) REGRESSED\n"
         (List.length r.findings) r.compared)
  end;
  Buffer.contents b
