type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = {
  upper : float array;
  counts : int array; (* length upper + 1; last is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
}

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram

type t = {
  tbl : (string, instrument) Hashtbl.t;
  mutable order : string list; (* reversed registration order *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let default = create ()

let register t name make match_existing =
  match Hashtbl.find_opt t.tbl name with
  | Some existing -> match_existing existing
  | None ->
    let i = make () in
    Hashtbl.replace t.tbl name i;
    t.order <- name :: t.order;
    i

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered with another kind" name)

let counter t name =
  match
    register t name
      (fun () -> I_counter { c = 0 })
      (function I_counter _ as i -> i | _ -> kind_error name)
  with
  | I_counter c -> c
  | _ -> assert false

let gauge t name =
  match
    register t name
      (fun () -> I_gauge { g = 0.0 })
      (function I_gauge _ as i -> i | _ -> kind_error name)
  with
  | I_gauge g -> g
  | _ -> assert false

let default_buckets =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0 |]

let histogram ?(buckets = default_buckets) t name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be ascending")
    buckets;
  match
    register t name
      (fun () ->
        I_histogram
          {
            upper = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            h_count = 0;
            h_sum = 0.0;
          })
      (function I_histogram _ as i -> i | _ -> kind_error name)
  with
  | I_histogram h -> h
  | _ -> assert false

let incr c = c.c <- c.c + 1

let add c n = c.c <- c.c + n

let counter_value c = c.c

let set g v = g.g <- v

let gauge_value g = g.g

let observe h v =
  let n = Array.length h.upper in
  let rec bucket i = if i >= n || v <= h.upper.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v

type entry =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      upper : float array;
      counts : int array;
      count : int;
      sum : float;
    }

type snapshot = (string * entry) list

let snapshot t =
  List.rev_map
    (fun name ->
      let entry =
        match Hashtbl.find t.tbl name with
        | I_counter c -> Counter_value c.c
        | I_gauge g -> Gauge_value g.g
        | I_histogram h ->
          Histogram_value
            {
              upper = Array.copy h.upper;
              counts = Array.copy h.counts;
              count = h.h_count;
              sum = h.h_sum;
            }
      in
      (name, entry))
    t.order

let reset t =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | I_counter c -> c.c <- 0
      | I_gauge g -> g.g <- 0.0
      | I_histogram h ->
        Array.fill h.counts 0 (Array.length h.counts) 0;
        h.h_count <- 0;
        h.h_sum <- 0.0)
    t.tbl

let find snap name = List.assoc_opt name snap

(* Percentile estimates via linear interpolation within buckets; an
   estimate landing in the unbounded overflow bucket can only be
   bounded below, and reports as ">last_bound". *)
let estimate_percentile ~upper ~counts p =
  Monpos_util.Stats.percentile_buckets ~upper ~counts p

let percentile_cell ~upper ~counts p =
  match estimate_percentile ~upper ~counts p with
  | Some v -> Printf.sprintf "%.6g" v
  | None -> Printf.sprintf ">%g" upper.(Array.length upper - 1)

let render_table snap =
  let rows =
    List.map
      (fun (name, entry) ->
        match entry with
        | Counter_value c -> [ name; "counter"; string_of_int c ]
        | Gauge_value g -> [ name; "gauge"; Printf.sprintf "%g" g ]
        | Histogram_value h ->
          [
            name;
            "histogram";
            (if h.count = 0 then "count=0"
             else
               Printf.sprintf
                 "count=%d sum=%.6g mean=%.6g p50=%s p90=%s p99=%s" h.count
                 h.sum
                 (h.sum /. float_of_int h.count)
                 (percentile_cell ~upper:h.upper ~counts:h.counts 50.0)
                 (percentile_cell ~upper:h.upper ~counts:h.counts 90.0)
                 (percentile_cell ~upper:h.upper ~counts:h.counts 99.0));
          ])
      snap
  in
  Monpos_util.Table.render ~header:[ "metric"; "kind"; "value" ] rows

let to_json snap =
  Json.Obj
    (List.map
       (fun (name, entry) ->
         let v =
           match entry with
           | Counter_value c -> Json.Int c
           | Gauge_value g -> Json.Float g
           | Histogram_value h ->
             let buckets =
               List.init
                 (Array.length h.counts)
                 (fun i ->
                   Json.Obj
                     [
                       ( "le",
                         if i < Array.length h.upper then Json.Float h.upper.(i)
                         else Json.Null );
                       ("count", Json.Int h.counts.(i));
                     ])
             in
             let pjson p =
               match estimate_percentile ~upper:h.upper ~counts:h.counts p with
               | Some v -> Json.Float v
               | None -> Json.Null (* beyond the last bound *)
             in
             Json.Obj
               [
                 ("count", Json.Int h.count);
                 ("sum", Json.Float h.sum);
                 ("p50", pjson 50.0);
                 ("p90", pjson 90.0);
                 ("p99", pjson 99.0);
                 ("buckets", Json.List buckets);
               ]
         in
         (name, v))
       snap)
