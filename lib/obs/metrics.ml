(* Counters are the one instrument hammered concurrently from solver
   domains (mip.nodes, simplex pivots), so they are atomic; plain
   [mutable] fields would lose increments under parallel B&B.
   Histograms mutate four fields per observation, which no single
   atomic covers, so each carries its own lock. Gauges stay plain:
   a gauge is a last-writer-wins sample and float stores do not tear
   on 64-bit OCaml. *)
type counter = { c : int Atomic.t }

type gauge = { mutable g : float }

type histogram = {
  upper : float array;
  counts : int array; (* length upper + 1; last is overflow *)
  mutable h_count : int;
  mutable h_sum : float;
  h_lock : Mutex.t;
}

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram

type labels = (string * string) list

type series = { name : string; labels : labels }

(* The canonical series key interns a (name, labels) pair as one
   string: the bare name, or name{k="v",...} with label values escaped
   the way the Prometheus exposition format does. Registration builds
   the key once; the registry hashtable is keyed by it, so a cached
   instrument handle never pays the rendering again and hot-path
   increments stay allocation-free. *)
let escape_label_value b v =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v

let series_key { name; labels } =
  match labels with
  | [] -> name
  | _ ->
    let b = Buffer.create (String.length name + 16) in
    Buffer.add_string b name;
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b k;
        Buffer.add_string b "=\"";
        escape_label_value b v;
        Buffer.add_char b '"')
      labels;
    Buffer.add_char b '}';
    Buffer.contents b

let valid_label_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       n

let check_labels name labels =
  let rec dup = function
    | [] -> None
    | (k, _) :: rest ->
      if List.mem_assoc k rest then Some k else dup rest
  in
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg
          (Printf.sprintf "Metrics: bad label name %S on metric %S" k name))
    labels;
  match dup labels with
  | Some k ->
    invalid_arg
      (Printf.sprintf "Metrics: duplicate label %S on metric %S" k name)
  | None -> ()

type t = {
  tbl : (string, instrument) Hashtbl.t; (* keyed by series_key *)
  kinds : (string, string) Hashtbl.t; (* metric name -> kind, across series *)
  mutable order : series list; (* reversed registration order *)
  lock : Mutex.t;
      (* guards [tbl], [kinds] and [order]; counter handles returned by
         registration are updated lock-free (atomic), histograms under
         their own per-instrument lock *)
}

let create () =
  {
    tbl = Hashtbl.create 32;
    kinds = Hashtbl.create 32;
    order = [];
    lock = Mutex.create ();
  }

let default = create ()

let kind_error name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered with another kind" name)

(* Registration is idempotent per (name, labels) series and enforces
   one kind per metric name across every label set — the Prometheus
   data model, where a family's TYPE line covers all its series. *)
let register t ~name ~labels ~kind make match_existing =
  check_labels name labels;
  let series = { name; labels } in
  let key = series_key series in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some existing -> match_existing existing
      | None ->
        (match Hashtbl.find_opt t.kinds name with
        | Some k when k <> kind -> kind_error name
        | _ -> ());
        let i = make () in
        Hashtbl.replace t.tbl key i;
        Hashtbl.replace t.kinds name kind;
        t.order <- series :: t.order;
        i)

let counter ?(labels = []) t name =
  match
    register t ~name ~labels ~kind:"counter"
      (fun () -> I_counter { c = Atomic.make 0 })
      (function I_counter _ as i -> i | _ -> kind_error name)
  with
  | I_counter c -> c
  | _ -> assert false

let gauge ?(labels = []) t name =
  match
    register t ~name ~labels ~kind:"gauge"
      (fun () -> I_gauge { g = 0.0 })
      (function I_gauge _ as i -> i | _ -> kind_error name)
  with
  | I_gauge g -> g
  | _ -> assert false

let default_buckets =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0; 30.0 |]

let histogram ?(buckets = default_buckets) ?(labels = []) t name =
  if Array.length buckets = 0 then invalid_arg "Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be ascending")
    buckets;
  match
    register t ~name ~labels ~kind:"histogram"
      (fun () ->
        I_histogram
          {
            upper = Array.copy buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            h_count = 0;
            h_sum = 0.0;
            h_lock = Mutex.create ();
          })
      (function I_histogram _ as i -> i | _ -> kind_error name)
  with
  | I_histogram h -> h
  | _ -> assert false

let incr c = Atomic.incr c.c

let add c n = ignore (Atomic.fetch_and_add c.c n)

let counter_value c = Atomic.get c.c

let set g v = g.g <- v

let gauge_value g = g.g

let observe h v =
  let n = Array.length h.upper in
  let rec bucket i = if i >= n || v <= h.upper.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  Mutex.protect h.h_lock (fun () ->
      h.counts.(i) <- h.counts.(i) + 1;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v)

type entry =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of {
      upper : float array;
      counts : int array;
      count : int;
      sum : float;
    }

type snapshot = (series * entry) list

let snapshot t =
  Mutex.protect t.lock (fun () ->
      List.rev_map
        (fun series ->
          let entry =
            match Hashtbl.find t.tbl (series_key series) with
            | I_counter c -> Counter_value (Atomic.get c.c)
            | I_gauge g -> Gauge_value g.g
            | I_histogram h ->
              Mutex.protect h.h_lock (fun () ->
                  Histogram_value
                    {
                      upper = Array.copy h.upper;
                      counts = Array.copy h.counts;
                      count = h.h_count;
                      sum = h.h_sum;
                    })
          in
          (series, entry))
        t.order)

let reset t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | I_counter c -> Atomic.set c.c 0
          | I_gauge g -> g.g <- 0.0
          | I_histogram h ->
            Mutex.protect h.h_lock (fun () ->
                Array.fill h.counts 0 (Array.length h.counts) 0;
                h.h_count <- 0;
                h.h_sum <- 0.0))
        t.tbl)

let find ?(labels = []) snap name =
  List.find_map
    (fun (s, e) -> if s.name = name && s.labels = labels then Some e else None)
    snap

let sum_counter snap name =
  List.fold_left
    (fun acc (s, e) ->
      match e with
      | Counter_value v when s.name = name -> acc + v
      | _ -> acc)
    0 snap

(* Percentile estimates via linear interpolation within buckets; an
   estimate landing in the unbounded overflow bucket can only be
   bounded below, and reports as ">last_bound". *)
let estimate_percentile ~upper ~counts p =
  Monpos_util.Stats.percentile_buckets ~upper ~counts p

let percentile_cell ~upper ~counts p =
  match estimate_percentile ~upper ~counts p with
  | Some v -> Printf.sprintf "%.6g" v
  | None -> Printf.sprintf ">%g" upper.(Array.length upper - 1)

let render_table snap =
  let rows =
    List.map
      (fun (series, entry) ->
        let name = series_key series in
        match entry with
        | Counter_value c -> [ name; "counter"; string_of_int c ]
        | Gauge_value g -> [ name; "gauge"; Printf.sprintf "%g" g ]
        | Histogram_value h ->
          [
            name;
            "histogram";
            (if h.count = 0 then "count=0"
             else
               Printf.sprintf
                 "count=%d sum=%.6g mean=%.6g p50=%s p90=%s p99=%s" h.count
                 h.sum
                 (h.sum /. float_of_int h.count)
                 (percentile_cell ~upper:h.upper ~counts:h.counts 50.0)
                 (percentile_cell ~upper:h.upper ~counts:h.counts 90.0)
                 (percentile_cell ~upper:h.upper ~counts:h.counts 99.0));
          ])
      snap
  in
  Monpos_util.Table.render ~header:[ "metric"; "kind"; "value" ] rows

let to_json snap =
  Json.Obj
    (List.map
       (fun (series, entry) ->
         let v =
           match entry with
           | Counter_value c -> Json.Int c
           | Gauge_value g -> Json.Float g
           | Histogram_value h ->
             let buckets =
               List.init
                 (Array.length h.counts)
                 (fun i ->
                   Json.Obj
                     [
                       ( "le",
                         if i < Array.length h.upper then Json.Float h.upper.(i)
                         else Json.Null );
                       ("count", Json.Int h.counts.(i));
                     ])
             in
             let pjson p =
               match estimate_percentile ~upper:h.upper ~counts:h.counts p with
               | Some v -> Json.Float v
               | None -> Json.Null (* beyond the last bound *)
             in
             Json.Obj
               [
                 ("count", Json.Int h.count);
                 ("sum", Json.Float h.sum);
                 ("p50", pjson 50.0);
                 ("p90", pjson 90.0);
                 ("p99", pjson 99.0);
                 ("buckets", Json.List buckets);
               ]
         in
         (series_key series, v))
       snap)
