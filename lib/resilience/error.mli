(** Typed error taxonomy for the solver stack.

    Every failure the library can surface to a caller is one of these
    variants; the bare [failwith]/[invalid_arg] sites in the solvers
    and parsers raise {!Error} instead, so callers (the degradation
    ladder, [monitorctl]'s top level, tests) can pattern-match on the
    failure class rather than scrape message strings.

    The taxonomy maps onto [monitorctl]'s documented exit codes:
    bad input is 2 ([Parse_error], [Infeasible_model], [Io_error]), a blown
    deadline or a degraded result is 3 ([Deadline_exceeded]), and a
    solver-internal fault is 4 ([Numerical], [Internal]). *)

type t =
  | Parse_error of { file : string; line : int; msg : string }
      (** Malformed input: [file] and 1-based [line] locate the fault,
          [msg] names the offending token. [line = 0] marks faults
          that precede line structure (an unreadable file, a bad CLI
          argument). *)
  | Numerical of { stage : string; detail : string }
      (** Numerical breakdown the kernels could not recover from:
          singular bases after cold-restart, NaN objectives, loss of
          feasibility during reoptimization. *)
  | Deadline_exceeded of { phase : string; elapsed : float }
      (** A {!Deadline} expired inside [phase] after [elapsed]
          seconds of wall clock. *)
  | Infeasible_model of { what : string }
      (** The model admits no feasible point (e.g. a coverage target
          unreachable even with every device installed). *)
  | Io_error of { path : string; detail : string }
      (** A file the caller named could not be opened or written (a
          trace destination, a metrics snapshot) — operator-fixable,
          so it shares exit code 2 with the parse errors. *)
  | Internal of string
      (** Invariant violation inside the library — always a bug. *)

exception Error of t

val parse_error : file:string -> line:int -> string -> 'a
(** Raise {!Error} with a located [Parse_error]. *)

val numerical : stage:string -> detail:string -> 'a

val deadline_exceeded : phase:string -> elapsed:float -> 'a

val infeasible : string -> 'a

val io_error : path:string -> string -> 'a
(** Raise {!Error} with an [Io_error] for [path]. *)

val internal : string -> 'a

val to_string : t -> string
(** One-line human-readable rendering (no backtrace). *)

val exit_code : t -> int
(** Documented process exit code for the class: 2 bad input,
    3 deadline, 4 internal/numerical. *)
