(** Cooperative preemption for long-running solves.

    SIGINT/SIGTERM must not kill a branch-and-bound search mid-wave:
    the frontier would be lost and the incumbent unreported. Instead
    {!install} registers handlers that merely set a process-wide flag;
    the deterministic scheduler polls {!requested} at every wave
    barrier — the one point where the open-node heap is consistent —
    and on a pending request writes a final checkpoint, triggers a
    flight dump, stops searching and returns the incumbent with its
    LP-certified bound ([preempted = true] on the result). A second
    signal escalates to an immediate [exit (128 + signo)] (130 for
    SIGINT, 143 for SIGTERM) for operators who do not want to wait for
    the barrier.

    The flag is a plain [Atomic.t], so worker domains observe it too;
    {!request}/{!reset} exist as test hooks to drive preemption
    deterministically without delivering real signals. *)

val install : unit -> unit
(** Register the SIGINT/SIGTERM handlers. Idempotent; safe to call
    from any entry point. On platforms without these signals the call
    degrades to a no-op and only {!request} can trigger preemption. *)

val requested : unit -> bool
(** True once a stop has been requested (by signal or {!request}) and
    not yet {!reset}. *)

val request : unit -> unit
(** Request a cooperative stop, exactly as the first signal would. *)

val reset : unit -> unit
(** Clear the flag. Tests use this between runs; servers use it after
    a drained shutdown. *)
