(* Versioned, checksummed, atomically-replaced record files.

   This module owns the container only — header, body lines, trailer,
   tmp-then-rename atomicity, corruption detection. What the lines
   mean is the caller's business (the MIP engine serializes its
   branch-and-bound state through it); keeping the container generic
   is also what keeps the dependency arrow pointing the right way:
   resilience must not depend on the LP layer.

   On-disk layout (text, one record per line, no embedded newlines):

     <magic> <version>          header
     <body line> ...            caller records
     end <count> <fnv64-hex>    trailer: body line count + checksum

   The checksum is FNV-1a (64-bit) over the body lines joined with
   '\n' — it covers content and order, not the header, so a version
   bump alone is detected as a version mismatch (caller's policy)
   rather than as corruption. *)

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv1a_update h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let checksum lines =
  let h = ref fnv_offset in
  List.iteri
    (fun i line ->
      if i > 0 then h := fnv1a_update !h "\n";
      h := fnv1a_update !h line)
    lines;
  Printf.sprintf "%016Lx" !h

let valid_line s = not (String.exists (fun c -> c = '\n' || c = '\r') s)

let write ~path ~magic ~version lines =
  if not (List.for_all valid_line lines) then
    invalid_arg "Checkpoint.write: body line contains a newline";
  let tmp = path ^ ".tmp" in
  (try
     let oc = open_out_bin tmp in
     (try
        output_string oc magic;
        output_char oc ' ';
        output_string oc (string_of_int version);
        output_char oc '\n';
        List.iter
          (fun line ->
            output_string oc line;
            output_char oc '\n')
          lines;
        Printf.fprintf oc "end %d %s\n" (List.length lines) (checksum lines);
        close_out oc
      with e ->
        close_out_noerr oc;
        raise e)
   with Sys_error detail -> Error.io_error ~path:tmp detail);
  try Sys.rename tmp path
  with Sys_error detail -> Error.io_error ~path detail

let read_lines path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  with Sys_error detail -> Error.io_error ~path detail

let load ~path ~magic =
  let corrupt line detail = Error.parse_error ~file:path ~line detail in
  match read_lines path with
  | [] -> corrupt 1 "empty checkpoint file"
  | header :: rest -> (
      let version =
        match String.split_on_char ' ' header with
        | [ m; v ] when m = magic -> (
            match int_of_string_opt v with
            | Some v -> v
            | None -> corrupt 1 (Printf.sprintf "bad version field %S" v))
        | _ ->
            corrupt 1
              (Printf.sprintf "bad magic: expected %S, got %S" magic header)
      in
      match List.rev rest with
      | [] -> corrupt 2 "truncated checkpoint: missing trailer"
      | trailer :: body_rev -> (
          let body = List.rev body_rev in
          match String.split_on_char ' ' trailer with
          | [ "end"; count; sum ] ->
              let nbody = List.length body in
              (match int_of_string_opt count with
              | Some c when c = nbody -> ()
              | _ ->
                  corrupt (nbody + 2)
                    (Printf.sprintf
                       "truncated checkpoint: trailer records %s lines, found \
                        %d"
                       count nbody));
              let actual = checksum body in
              if not (String.equal actual sum) then
                corrupt (nbody + 2)
                  (Printf.sprintf "checksum mismatch: trailer %s, computed %s"
                     sum actual);
              (version, body)
          | _ ->
              corrupt (List.length rest + 1)
                "truncated checkpoint: missing trailer"))
