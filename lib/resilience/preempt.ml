(* Cooperative preemption: signal handlers only raise a flag; the
   solver polls it at wave barriers where the frontier is consistent
   and a final checkpoint can be written. A second signal escalates to
   an immediate exit for operators who really mean it. *)

let flag = Atomic.make false
let installed = Atomic.make false

let requested () = Atomic.get flag
let request () = Atomic.set flag true
let reset () = Atomic.set flag false

let handle signo =
  if Atomic.exchange flag true then
    (* second signal: the cooperative stop is evidently not fast
       enough for the operator; exit with the conventional
       128 + signal code (130 for SIGINT, 143 for SIGTERM). *)
    Stdlib.exit (128 + signo)

let install () =
  if not (Atomic.exchange installed true) then
    List.iter
      (fun signo ->
        try Sys.set_signal signo (Sys.Signal_handle handle)
        with Invalid_argument _ | Sys_error _ ->
          (* platform without this signal: preemption simply stays
             test-hook driven (request/reset) there *)
          ())
      [ Sys.sigint; Sys.sigterm ]
