open Monpos_obs

type t = { start : float; limit : float }

let none = { start = 0.0; limit = infinity }

let of_budget seconds =
  if Float.is_finite seconds then
    let now = Clock.now () in
    { start = now; limit = now +. Float.max 0.0 seconds }
  else none

let is_none t = t.limit = infinity

let expired t = t.limit < infinity && Clock.now () >= t.limit

let elapsed t = if is_none t then 0.0 else Clock.now () -. t.start

let remaining t = if is_none t then infinity else t.limit -. Clock.now ()

let check t ~phase =
  if expired t then
    Error.deadline_exceeded ~phase ~elapsed:(Clock.now () -. t.start)
