open Monpos_util
open Monpos_obs

let parse_env () =
  match Sys.getenv_opt "MONPOS_CHAOS" with
  | None | Some "" -> None
  | Some s -> int_of_string_opt (String.trim s)

let seed_ref = ref (parse_env ())

let streams : (string, Prng.t) Hashtbl.t = Hashtbl.create 16

let seed () = !seed_ref

let set_seed s =
  seed_ref := s;
  Hashtbl.reset streams

let active () = !seed_ref <> None

let depth = ref 0

let suppressed = ref 0

let protect f =
  incr depth;
  Fun.protect ~finally:(fun () -> decr depth) f

let suppress f =
  incr suppressed;
  Fun.protect ~finally:(fun () -> decr suppressed) f

(* FNV-1a over the site name: stable across builds, unlike
   [Hashtbl.hash], so a given (seed, site) pair replays the same
   fault schedule everywhere. *)
let site_hash site =
  let h = ref 0x3b29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    site;
  !h land max_int

let stream ~site =
  match Hashtbl.find_opt streams site with
  | Some g -> g
  | None ->
    let s = Option.value !seed_ref ~default:0 in
    let g = Prng.create (s lxor site_hash site) in
    Hashtbl.add streams site g;
    g

(* labeled per site; injections are rare enough that the per-fire
   registry lookup is noise *)
let m_injections site =
  Metrics.counter ~labels:[ ("site", site) ] Metrics.default "chaos.injections"

let armed ~scoped =
  !suppressed = 0 && active () && ((not scoped) || !depth > 0)

let fire ?(scoped = true) ~site ~p () =
  armed ~scoped
  &&
  let hit = Prng.float (stream ~site) 1.0 < p in
  if hit then begin
    Metrics.incr (m_injections site);
    let s = Trace.current () in
    if Trace.enabled s then
      Trace.emit s "chaos_inject" [ ("site", Json.String site) ]
  end;
  hit

let draw ~site n = if n <= 0 || not (active ()) then 0 else Prng.int (stream ~site) n
