open Monpos_util
open Monpos_obs

let parse_env () =
  match Sys.getenv_opt "MONPOS_CHAOS" with
  | None | Some "" -> None
  | Some s -> int_of_string_opt (String.trim s)

let seed_ref = ref (parse_env ())

(* The per-site PRNG streams are shared mutable state; parallel B&B
   workers can reach [fire] concurrently (and stream creation races
   with itself), so draws are serialised by [streams_lock]. The lock
   is only taken once a fault lottery is actually active — [armed]
   and [draw] bail on [active ()] first — so chaos-off runs never
   touch it. *)
let streams_lock = Mutex.create ()

let streams : (string, Prng.t) Hashtbl.t = Hashtbl.create 16

let seed () = !seed_ref

let set_seed s =
  seed_ref := s;
  Mutex.protect streams_lock (fun () -> Hashtbl.reset streams)

let active () = !seed_ref <> None

(* Protect/suppress scoping is per domain: a ladder rung running
   [protect] on the main domain must not arm scoped sites inside
   worker domains it spawns mid-rung (their faults would be schedule-
   dependent), and a worker suppressing around its own solve must not
   mute the coordinator. Each domain starts unscoped. *)
let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let suppressed_key = Domain.DLS.new_key (fun () -> ref 0)

let depth () = Domain.DLS.get depth_key

let suppressed () = Domain.DLS.get suppressed_key

let protect f =
  let depth = depth () in
  incr depth;
  Fun.protect ~finally:(fun () -> decr depth) f

let suppress f =
  let suppressed = suppressed () in
  incr suppressed;
  Fun.protect ~finally:(fun () -> decr suppressed) f

(* FNV-1a over the site name: stable across builds, unlike
   [Hashtbl.hash], so a given (seed, site) pair replays the same
   fault schedule everywhere. *)
let site_hash site =
  let h = ref 0x3b29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    site;
  !h land max_int

(* take one uniform draw from the site's stream under the lock (the
   stream lookup, lazy creation and the PRNG state advance must be
   one critical section) *)
let drawn ~site take =
  Mutex.protect streams_lock (fun () ->
      let g =
        match Hashtbl.find_opt streams site with
        | Some g -> g
        | None ->
          let s = Option.value !seed_ref ~default:0 in
          let g = Prng.create (s lxor site_hash site) in
          Hashtbl.add streams site g;
          g
      in
      take g)

(* labeled per site; injections are rare enough that the per-fire
   registry lookup is noise *)
let m_injections site =
  Metrics.counter ~labels:[ ("site", site) ] Metrics.default "chaos.injections"

let armed ~scoped =
  !(suppressed ()) = 0 && active () && ((not scoped) || !(depth ()) > 0)

let fire ?(scoped = true) ~site ~p () =
  armed ~scoped
  &&
  let hit = drawn ~site (fun g -> Prng.float g 1.0) < p in
  if hit then begin
    Metrics.incr (m_injections site);
    let s = Trace.current () in
    if Trace.enabled s then
      Trace.emit s "chaos_inject" [ ("site", Json.String site) ];
    (* capture the lead-up to the injected fault while it is still in
       the rings — the recovery path runs after this returns *)
    Flightrec.trigger ~reason:("chaos_" ^ site)
  end;
  hit

let draw ~site n =
  if n <= 0 || not (active ()) then 0
  else drawn ~site (fun g -> Prng.int g n)
