(** Versioned, checksummed, atomically-replaced record files.

    The container format under crash-safe solving: a header line
    [<magic> <version>], caller-supplied body lines, and a trailer
    [end <count> <fnv64-hex>] whose FNV-1a checksum covers the body
    bytes. {!write} is atomic — the file is written to
    [path ^ ".tmp"] and renamed over [path], so a reader (or a crash)
    never observes a half-written checkpoint and the previous
    checkpoint survives any failure before the rename. {!load}
    verifies magic, line count and checksum, turning every corruption
    mode (truncation, bit flips, concatenation, wrong file) into a
    typed {!Error.Parse_error} instead of downstream garbage.

    Version policy: the container only transports the version number;
    accepting or rejecting it is the caller's job, so each consumer
    (e.g. the MIP engine) can state its own compatibility rule. *)

val write : path:string -> magic:string -> version:int -> string list -> unit
(** [write ~path ~magic ~version lines] atomically replaces [path]
    with a checkpoint containing [lines]. Body lines must not contain
    newlines (raises [Invalid_argument] otherwise — a programming
    error, not an I/O condition). Raises {!Error.Error} with
    [Io_error] when the directory is missing or unwritable. *)

val load : path:string -> magic:string -> int * string list
(** [load ~path ~magic] reads a checkpoint back, returning
    [(version, body_lines)]. Raises {!Error.Error} with [Io_error]
    when the file cannot be read, and with [Parse_error] on bad magic,
    truncation, line-count or checksum mismatch. *)
