(** Wall-clock deadlines threaded through the solver stack.

    A deadline is created once at the entry point that owns the
    budget ([Mip.solve] from [options.time_limit], [monitorctl] from a
    CLI flag) and passed by value down to the hot loops — simplex
    iterations, LU refactorization — which poll it with {!expired} at
    a coarse stride so the check costs one clock read every few dozen
    pivots. Unlike the old node-boundary check in [Mip], a single
    large node LP can no longer overrun the budget unboundedly. *)

type t

val none : t
(** Never expires. [expired none] is [false] forever; using it costs
    the same branch as a live deadline. *)

val of_budget : float -> t
(** [of_budget seconds] expires [seconds] of wall clock from now.
    A non-finite budget yields {!none}; a zero (or negative) budget
    is expired from the start. *)

val is_none : t -> bool

val expired : t -> bool

val elapsed : t -> float
(** Wall-clock seconds since the deadline was created ([0.] for
    {!none}). *)

val remaining : t -> float
(** Seconds until expiry; [infinity] for {!none}, negative once
    expired. *)

val check : t -> phase:string -> unit
(** Raise [Error (Deadline_exceeded {phase; elapsed})] if expired. *)
