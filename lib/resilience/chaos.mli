(** Seeded fault-injection harness.

    Setting [MONPOS_CHAOS=<seed>] (or calling {!set_seed}) arms a
    deterministic per-site fault lottery at the solver's kernel seams:
    singular pivots in LU factorization, NaN objectives at MIP nodes,
    compressed deadlines, truncated instance reads. Every recovery
    path in the resilience layer then becomes executable in tests and
    CI rather than theoretical.

    Sites are {e scoped} by default: they only fire inside a
    {!protect} region, which the degradation ladder wraps around each
    rung. Code that has not declared a recovery boundary is never
    perturbed, so a full [dune runtest] stays green under chaos while
    the resilience suites exercise real faults. The one exception is
    the singular-pivot site, which fires unscoped because the simplex
    recovers from it internally (and wraps that recovery in
    {!suppress} so an injected fault cannot also sabotage its own
    repair).

    Draws are deterministic per [(seed, site)] pair: the same seed
    replays the same faults in the same order, which is what the
    chaos property tests assert. *)

val seed : unit -> int option
(** Current seed; initialized from [MONPOS_CHAOS] at startup. *)

val set_seed : int option -> unit
(** Install (or clear) the seed and reset every site's stream, so a
    subsequent run replays deterministically. *)

val active : unit -> bool
(** A seed is installed. *)

val protect : (unit -> 'a) -> 'a
(** Run [f] with scoped sites armed. Nests. *)

val suppress : (unit -> 'a) -> 'a
(** Run [f] with every site disarmed, overriding {!protect}. Used
    around recovery code so injected faults cannot cascade. *)

val fire : ?scoped:bool -> site:string -> p:float -> unit -> bool
(** [fire ~site ~p ()] draws from [site]'s stream and returns [true]
    with probability [p] when armed ([scoped:false] sites need only a
    seed; the default needs an enclosing {!protect} too). A firing
    site increments the [chaos.injections] counter and emits a
    [chaos_inject] trace event. When disarmed, returns [false]
    without drawing, so chaos-off runs are bit-identical to builds
    without the harness. *)

val draw : site:string -> int -> int
(** [draw ~site n] is uniform in [0, n) from [site]'s stream (0 when
    no seed is installed). Used by sites that need a fault location,
    e.g. where to truncate an instance read. *)
