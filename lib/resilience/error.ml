type t =
  | Parse_error of { file : string; line : int; msg : string }
  | Numerical of { stage : string; detail : string }
  | Deadline_exceeded of { phase : string; elapsed : float }
  | Infeasible_model of { what : string }
  | Io_error of { path : string; detail : string }
  | Internal of string

exception Error of t

let parse_error ~file ~line msg = raise (Error (Parse_error { file; line; msg }))

let numerical ~stage ~detail = raise (Error (Numerical { stage; detail }))

let deadline_exceeded ~phase ~elapsed =
  (* a blown budget is exactly the moment the recent event history is
     worth keeping: snapshot the flight recorder before unwinding *)
  Monpos_obs.Flightrec.trigger ~reason:"deadline_exceeded";
  raise (Error (Deadline_exceeded { phase; elapsed }))

let infeasible what = raise (Error (Infeasible_model { what }))

let io_error ~path detail = raise (Error (Io_error { path; detail }))

let internal msg = raise (Error (Internal msg))

let to_string = function
  | Parse_error { file; line; msg } ->
    if line > 0 then Printf.sprintf "parse error: %s, line %d: %s" file line msg
    else Printf.sprintf "parse error: %s: %s" file msg
  | Numerical { stage; detail } ->
    Printf.sprintf "numerical failure in %s: %s" stage detail
  | Deadline_exceeded { phase; elapsed } ->
    Printf.sprintf "deadline exceeded in %s after %.3fs" phase elapsed
  | Infeasible_model { what } -> Printf.sprintf "infeasible model: %s" what
  | Io_error { path; detail } -> Printf.sprintf "cannot access %s: %s" path detail
  | Internal msg -> Printf.sprintf "internal error: %s" msg

let exit_code = function
  | Parse_error _ | Infeasible_model _ | Io_error _ -> 2
  | Deadline_exceeded _ -> 3
  | Numerical _ | Internal _ -> 4

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Monpos_resilience.Error.Error: " ^ to_string e)
    | _ -> None)
