(* Primal network simplex. The basis is a spanning tree rooted at an
   artificial node [n]; every non-root node v carries its tree arc in
   pred.(v) (fwd.(v) tells whether that arc is oriented v -> parent).
   The thread is a preorder traversal threaded through the nodes, so
   "the subtree of v" is the contiguous thread segment starting at v
   while depth stays greater than depth.(v) — which makes the pivot's
   re-hang and potential update O(|subtree|).

   Pivots follow the textbook strongly-feasible discipline (LEMON-style
   tie-breaking: strict < on the cycle leg searched first, <= on the
   second), with a Bland lowest-index fallback after a long degenerate
   run as a floating-point backstop. Entering arcs come from block
   (candidate-list) pricing over ~sqrt(m)-sized wrap-around windows.

   Infeasibility is detected big-M style: a star of artificial arcs
   node <-> root priced above any real path cost absorbs the initial
   imbalance; residual artificial flow at optimality means the
   instance has none. *)

module Metrics = Monpos_obs.Metrics
module Trace = Monpos_obs.Trace
module Sampler = Monpos_obs.Sampler
module Error = Monpos_resilience.Error

let m_pivots = lazy (Metrics.counter Metrics.default "flow.pivots")

type status = Optimal | Infeasible

let st_lower = 1
let st_tree = 0
let st_upper = -1

type t = {
  n : int;
  mutable m : int;
  (* user arcs, growable *)
  mutable a_src : int array;
  mutable a_dst : int array;
  mutable a_lower : float array;
  mutable a_cap : float array;
  mutable a_cost : float array;
  supply : float array;
  (* solver arrays over m + n arcs (user + artificial) and n + 1 nodes
     (root last); laid out for [built_m] user arcs, -1 = never built *)
  mutable built_m : int;
  mutable s_src : int array;
  mutable s_dst : int array;
  mutable s_cost : float array;
  mutable s_ucap : float array; (* shifted: capacity - lower *)
  mutable flow_ : float array; (* shifted flow *)
  mutable state : int array;
  mutable pi : float array;
  mutable parent : int array;
  mutable pred : int array;
  mutable fwd : bool array;
  mutable thread : int array;
  mutable rev_thread : int array;
  mutable depth : int array;
  mutable excess : float array;
  (* pivot scratch *)
  mutable child_head : int array;
  mutable child_next : int array;
  mutable stem : int array;
  mutable stem_pred : int array;
  mutable stem_fwd : bool array;
  mutable stack : int array;
  mutable next_arc : int;
  mutable last_pivots : int;
  mutable last_warm : bool;
  mutable solved : bool;
}

let create n =
  if n < 0 then invalid_arg "Netsimplex.create";
  {
    n;
    m = 0;
    a_src = Array.make 16 0;
    a_dst = Array.make 16 0;
    a_lower = Array.make 16 0.0;
    a_cap = Array.make 16 0.0;
    a_cost = Array.make 16 0.0;
    supply = Array.make (max n 1) 0.0;
    built_m = -1;
    s_src = [||];
    s_dst = [||];
    s_cost = [||];
    s_ucap = [||];
    flow_ = [||];
    state = [||];
    pi = [||];
    parent = [||];
    pred = [||];
    fwd = [||];
    thread = [||];
    rev_thread = [||];
    depth = [||];
    excess = [||];
    child_head = [||];
    child_next = [||];
    stem = [||];
    stem_pred = [||];
    stem_fwd = [||];
    stack = [||];
    next_arc = 0;
    last_pivots = 0;
    last_warm = false;
    solved = false;
  }

let node_count t = t.n
let arc_count t = t.m

let grow_int a len = Array.append a (Array.make len 0)
let grow_float a len = Array.append a (Array.make len 0.0)

let add_arc ?(lower = 0.0) t ~src ~dst ~capacity ~cost =
  if not (0 <= src && src < t.n && 0 <= dst && dst < t.n) then
    invalid_arg "Netsimplex.add_arc: node out of range";
  if not (0.0 <= lower && lower <= capacity) then
    invalid_arg "Netsimplex.add_arc: requires 0 <= lower <= capacity";
  let cap = Array.length t.a_src in
  if t.m = cap then begin
    t.a_src <- grow_int t.a_src cap;
    t.a_dst <- grow_int t.a_dst cap;
    t.a_lower <- grow_float t.a_lower cap;
    t.a_cap <- grow_float t.a_cap cap;
    t.a_cost <- grow_float t.a_cost cap
  end;
  let id = t.m in
  t.a_src.(id) <- src;
  t.a_dst.(id) <- dst;
  t.a_lower.(id) <- lower;
  t.a_cap.(id) <- capacity;
  t.a_cost.(id) <- cost;
  t.m <- t.m + 1;
  id

let set_arc ?lower ?capacity ?cost t a =
  if not (0 <= a && a < t.m) then invalid_arg "Netsimplex.set_arc";
  let lo = match lower with Some l -> l | None -> t.a_lower.(a) in
  let cap = match capacity with Some c -> c | None -> t.a_cap.(a) in
  if not (0.0 <= lo && lo <= cap) then
    invalid_arg "Netsimplex.set_arc: requires 0 <= lower <= capacity";
  t.a_lower.(a) <- lo;
  t.a_cap.(a) <- cap;
  (match cost with Some c -> t.a_cost.(a) <- c | None -> ())

let set_supply t v b =
  if not (0 <= v && v < t.n) then invalid_arg "Netsimplex.set_supply";
  t.supply.(v) <- b

(* ------------------------------------------------------------------ *)

let ensure_arrays t =
  if t.built_m = t.m then true
  else begin
    let na = t.m + t.n and nn = t.n + 1 in
    t.s_src <- Array.make (max na 1) 0;
    t.s_dst <- Array.make (max na 1) 0;
    t.s_cost <- Array.make (max na 1) 0.0;
    t.s_ucap <- Array.make (max na 1) 0.0;
    t.flow_ <- Array.make (max na 1) 0.0;
    t.state <- Array.make (max na 1) st_lower;
    t.pi <- Array.make nn 0.0;
    t.parent <- Array.make nn (-1);
    t.pred <- Array.make nn (-1);
    t.fwd <- Array.make nn false;
    t.thread <- Array.make nn 0;
    t.rev_thread <- Array.make nn 0;
    t.depth <- Array.make nn 0;
    t.excess <- Array.make nn 0.0;
    t.child_head <- Array.make nn (-1);
    t.child_next <- Array.make nn (-1);
    t.stem <- Array.make nn 0;
    t.stem_pred <- Array.make nn 0;
    t.stem_fwd <- Array.make nn false;
    t.stack <- Array.make nn 0;
    t.next_arc <- 0;
    t.built_m <- t.m;
    t.solved <- false;
    false
  end

(* shifted supply: user supply adjusted by the lower-bound shift *)
let shifted_excess t =
  let e = t.excess in
  Array.fill e 0 (t.n + 1) 0.0;
  Array.blit t.supply 0 e 0 t.n;
  for a = 0 to t.m - 1 do
    let lo = t.a_lower.(a) in
    if lo <> 0.0 then begin
      e.(t.a_src.(a)) <- e.(t.a_src.(a)) -. lo;
      e.(t.a_dst.(a)) <- e.(t.a_dst.(a)) +. lo
    end
  done

(* copy user arc data into the solver arrays; returns the big-M cost *)
let refresh t =
  let sum = ref 0.0 in
  for a = 0 to t.m - 1 do
    t.s_src.(a) <- t.a_src.(a);
    t.s_dst.(a) <- t.a_dst.(a);
    t.s_cost.(a) <- t.a_cost.(a);
    t.s_ucap.(a) <- t.a_cap.(a) -. t.a_lower.(a);
    sum := !sum +. abs_float t.a_cost.(a)
  done;
  let art = 4.0 *. (1.0 +. !sum) in
  for v = 0 to t.n - 1 do
    t.s_cost.(t.m + v) <- art;
    t.s_ucap.(t.m + v) <- infinity
  done;
  art

let cold_init t art =
  let root = t.n in
  shifted_excess t;
  for a = 0 to t.m - 1 do
    t.flow_.(a) <- 0.0;
    t.state.(a) <- st_lower
  done;
  t.pi.(root) <- 0.0;
  t.parent.(root) <- -1;
  t.pred.(root) <- -1;
  t.depth.(root) <- 0;
  for v = 0 to t.n - 1 do
    let aid = t.m + v in
    let e = t.excess.(v) in
    if e >= 0.0 then begin
      t.s_src.(aid) <- v;
      t.s_dst.(aid) <- root;
      t.fwd.(v) <- true;
      t.pi.(v) <- -.art
    end
    else begin
      t.s_src.(aid) <- root;
      t.s_dst.(aid) <- v;
      t.fwd.(v) <- false;
      t.pi.(v) <- art
    end;
    t.flow_.(aid) <- abs_float e;
    t.state.(aid) <- st_tree;
    t.parent.(v) <- root;
    t.pred.(v) <- aid;
    t.depth.(v) <- 1;
    t.thread.(v) <- (if v = t.n - 1 then root else v + 1);
    t.rev_thread.(v) <- (if v = 0 then root else v - 1)
  done;
  t.thread.(root) <- (if t.n > 0 then 0 else root);
  t.rev_thread.(root) <- (if t.n > 0 then t.n - 1 else root)

(* Warm start: keep the spanning tree and the nonbasic states from the
   previous solve; reset nonbasic flows onto their bounds, recompute
   tree-arc flows bottom-up (reverse preorder visits children before
   parents), and rebuild potentials top-down. Returns false if the
   remembered basis does not fit the current bounds, in which case the
   caller falls back to a cold start. *)
let warm_init t =
  let ok = ref true in
  let na = t.m + t.n in
  let feps = ref 1e-9 in
  shifted_excess t;
  let e = t.excess in
  for v = 0 to t.n - 1 do
    let a = abs_float e.(v) in
    if a > !feps then feps := a
  done;
  let feps = 1e-9 *. (1.0 +. !feps) in
  (* nonbasic arcs sit on a bound; subtract their flow from the excess *)
  let a = ref 0 in
  while !ok && !a < na do
    let i = !a in
    (match t.state.(i) with
    | s when s = st_lower -> t.flow_.(i) <- 0.0
    | s when s = st_upper ->
      let u = t.s_ucap.(i) in
      if u = infinity then ok := false
      else begin
        t.flow_.(i) <- u;
        e.(t.s_src.(i)) <- e.(t.s_src.(i)) -. u;
        e.(t.s_dst.(i)) <- e.(t.s_dst.(i)) +. u
      end
    | _ -> ());
    incr a
  done;
  (* tree arcs: reverse preorder, each node fixes its pred arc *)
  let root = t.n in
  let v = ref t.rev_thread.(root) in
  while !ok && !v <> root do
    let u = !v in
    let a = t.pred.(u) in
    let f = if t.fwd.(u) then e.(u) else -.e.(u) in
    if f < -.feps || f > t.s_ucap.(a) +. feps then ok := false
    else begin
      let f = max 0.0 (min f t.s_ucap.(a)) in
      t.flow_.(a) <- f;
      let p = t.parent.(u) in
      if t.fwd.(u) then e.(p) <- e.(p) +. f else e.(p) <- e.(p) -. f
    end;
    v := t.rev_thread.(u)
  done;
  if !ok then begin
    (* potentials: preorder, each node prices its pred arc to rc = 0 *)
    t.pi.(root) <- 0.0;
    let v = ref t.thread.(root) in
    while !v <> root do
      let u = !v in
      let a = t.pred.(u) in
      let p = t.parent.(u) in
      t.pi.(u) <-
        (if t.fwd.(u) then t.pi.(p) -. t.s_cost.(a)
         else t.pi.(p) +. t.s_cost.(a));
      v := t.thread.(u)
    done
  end;
  !ok

(* ------------------------------------------------------------------ *)

let find_entering t na cost_eps ~bland =
  if bland then begin
    let found = ref (-1) in
    let a = ref 0 in
    while !found < 0 && !a < na do
      let i = !a in
      let s = t.state.(i) in
      if s <> st_tree then begin
        let rc = t.s_cost.(i) +. t.pi.(t.s_src.(i)) -. t.pi.(t.s_dst.(i)) in
        if
          (s = st_lower && rc < -.cost_eps)
          || (s = st_upper && rc > cost_eps)
        then found := i
      end;
      incr a
    done;
    !found
  end
  else begin
    let block = max 50 (int_of_float (sqrt (float_of_int na))) in
    let best = ref (-1) and best_v = ref cost_eps in
    let in_block = ref 0 in
    let scanned = ref 0 in
    let stop = ref false in
    while (not !stop) && !scanned < na do
      let i = t.next_arc in
      t.next_arc <- (if i + 1 >= na then 0 else i + 1);
      let s = t.state.(i) in
      if s <> st_tree then begin
        let rc = t.s_cost.(i) +. t.pi.(t.s_src.(i)) -. t.pi.(t.s_dst.(i)) in
        let viol = if s = st_lower then -.rc else rc in
        if viol > !best_v then begin
          best := i;
          best_v := viol
        end
      end;
      incr scanned;
      incr in_block;
      if !in_block = block then begin
        in_block := 0;
        if !best >= 0 then stop := true
      end
    done;
    !best
  end

(* One pivot on entering arc [ain]. Returns the augmentation amount
   (for degeneracy tracking). *)
let pivot t ain =
  let dir = t.state.(ain) in
  let src = t.s_src.(ain) and dst = t.s_dst.(ain) in
  (* join = lowest common ancestor of src and dst *)
  let u = ref src and v = ref dst in
  while t.depth.(!u) > t.depth.(!v) do u := t.parent.(!u) done;
  while t.depth.(!v) > t.depth.(!u) do v := t.parent.(!v) done;
  while !u <> !v do
    u := t.parent.(!u);
    v := t.parent.(!v)
  done;
  let join = !u in
  let first = if dir = st_lower then src else dst in
  let second = if dir = st_lower then dst else src in
  (* leaving arc: min residual around the cycle; strict < on the first
     leg, <= on the second keeps the basis strongly feasible *)
  let delta =
    ref
      (if dir = st_lower then t.s_ucap.(ain) -. t.flow_.(ain)
       else t.flow_.(ain))
  in
  let u_out = ref (-1) and result = ref 0 in
  let u = ref first in
  while !u <> join do
    let x = !u in
    let a = t.pred.(x) in
    let d = if t.fwd.(x) then t.flow_.(a) else t.s_ucap.(a) -. t.flow_.(a) in
    if d < !delta then begin
      delta := d;
      u_out := x;
      result := 1
    end;
    u := t.parent.(x)
  done;
  let u = ref second in
  while !u <> join do
    let x = !u in
    let a = t.pred.(x) in
    let d = if t.fwd.(x) then t.s_ucap.(a) -. t.flow_.(a) else t.flow_.(a) in
    if d <= !delta then begin
      delta := d;
      u_out := x;
      result := 2
    end;
    u := t.parent.(x)
  done;
  if !delta = infinity then
    Error.numerical ~stage:"netsimplex"
      ~detail:"unbounded: negative-cost cycle of uncapacitated arcs";
  (* augment around the cycle *)
  if !delta > 0.0 then begin
    let dv = float_of_int dir *. !delta in
    t.flow_.(ain) <- t.flow_.(ain) +. dv;
    let u = ref src in
    while !u <> join do
      let x = !u in
      let a = t.pred.(x) in
      t.flow_.(a) <- (t.flow_.(a) +. if t.fwd.(x) then -.dv else dv);
      u := t.parent.(x)
    done;
    let u = ref dst in
    while !u <> join do
      let x = !u in
      let a = t.pred.(x) in
      t.flow_.(a) <- (t.flow_.(a) +. if t.fwd.(x) then dv else -.dv);
      u := t.parent.(x)
    done
  end;
  if !result = 0 then
    (* the entering arc itself was the bottleneck: it hops to its
       opposite bound and the tree is unchanged *)
    t.state.(ain) <- -dir
  else begin
    let u_out = !u_out in
    let u_in = if !result = 1 then first else second in
    let v_in = if !result = 1 then second else first in
    let a_out = t.pred.(u_out) in
    t.state.(a_out) <-
      (if t.flow_.(a_out) <= t.s_ucap.(a_out) -. t.flow_.(a_out) then st_lower
       else st_upper);
    t.state.(ain) <- st_tree;
    (* subtree of u_out = contiguous thread segment; splice it out *)
    let d_out = t.depth.(u_out) in
    let last = ref u_out in
    while t.depth.(t.thread.(!last)) > d_out do last := t.thread.(!last) done;
    let last = !last in
    let before = t.rev_thread.(u_out) and after = t.thread.(last) in
    t.thread.(before) <- after;
    t.rev_thread.(after) <- before;
    (* reverse the stem u_in .. u_out: each stem node adopts the
       previous one as parent, inheriting its old tree arc flipped *)
    let nstem = ref 0 in
    let x = ref u_in in
    let continue = ref true in
    while !continue do
      let i = !nstem in
      t.stem.(i) <- !x;
      t.stem_pred.(i) <- t.pred.(!x);
      t.stem_fwd.(i) <- t.fwd.(!x);
      nstem := i + 1;
      if !x = u_out then continue := false else x := t.parent.(!x)
    done;
    t.parent.(u_in) <- v_in;
    t.pred.(u_in) <- ain;
    t.fwd.(u_in) <- t.s_src.(ain) = u_in;
    for i = 1 to !nstem - 1 do
      let y = t.stem.(i) in
      t.parent.(y) <- t.stem.(i - 1);
      t.pred.(y) <- t.stem_pred.(i - 1);
      t.fwd.(y) <- not t.stem_fwd.(i - 1)
    done;
    (* child lists for the segment under its new parent pointers; the
       segment's internal thread is still the old preorder *)
    let x = ref u_out in
    let continue = ref true in
    while !continue do
      t.child_head.(!x) <- -1;
      if !x = last then continue := false else x := t.thread.(!x)
    done;
    let x = ref u_out in
    let continue = ref true in
    while !continue do
      let y = !x in
      let nxt = t.thread.(y) in
      if y <> u_in then begin
        let p = t.parent.(y) in
        t.child_next.(y) <- t.child_head.(p);
        t.child_head.(p) <- y
      end;
      if y = last then continue := false else x := nxt
    done;
    (* re-thread the segment in preorder from u_in, fixing depth and
       potentials as each node is emitted (parent precedes child) *)
    let after_v = t.thread.(v_in) in
    let top = ref 0 in
    t.stack.(0) <- u_in;
    top := 1;
    let prev = ref v_in in
    while !top > 0 do
      top := !top - 1;
      let y = t.stack.(!top) in
      t.thread.(!prev) <- y;
      t.rev_thread.(y) <- !prev;
      prev := y;
      let p = t.parent.(y) in
      t.depth.(y) <- t.depth.(p) + 1;
      let a = t.pred.(y) in
      t.pi.(y) <-
        (if t.fwd.(y) then t.pi.(p) -. t.s_cost.(a)
         else t.pi.(p) +. t.s_cost.(a));
      let c = ref t.child_head.(y) in
      while !c >= 0 do
        t.stack.(!top) <- !c;
        top := !top + 1;
        c := t.child_next.(!c)
      done
    done;
    t.thread.(!prev) <- after_v;
    t.rev_thread.(after_v) <- !prev
  end;
  !delta

let solve ?(warm = true) t =
  if t.n = 0 then begin
    t.last_pivots <- 0;
    t.last_warm <- false;
    t.solved <- true;
    Optimal
  end
  else begin
    let reusable = ensure_arrays t && t.solved in
    let art = refresh t in
    let warm_ok = warm && reusable && warm_init t in
    if not warm_ok then cold_init t art;
    t.last_warm <- warm_ok;
    let na = t.m + t.n in
    let maxc = ref 0.0 in
    for a = 0 to t.m - 1 do
      let c = abs_float t.a_cost.(a) in
      if c > !maxc then maxc := c
    done;
    let cost_eps = 1e-9 *. (1.0 +. !maxc) in
    (* warm_init consumes the excess array; refresh it for the scale
       estimate used by the degeneracy and feasibility tolerances *)
    shifted_excess t;
    let fscale = ref 0.0 in
    for v = 0 to t.n - 1 do
      let a = abs_float t.excess.(v) in
      if a > !fscale then fscale := a
    done;
    let flow_eps = 1e-9 *. (1.0 +. !fscale) in
    let max_pivots = 100 + (100 * na) in
    let degen_limit = na + 10 in
    let pivots = ref 0 in
    let degen_run = ref 0 in
    let continue = ref true in
    let sink = Trace.current () in
    (* the objective of the flows routed so far; O(m), so only
       computed when a pivot batch is actually emitted *)
    let running_objective () =
      let c = ref 0.0 in
      for a = 0 to t.m - 1 do
        c := !c +. ((t.flow_.(a) +. t.a_lower.(a)) *. t.a_cost.(a))
      done;
      !c
    in
    while !continue do
      let bland = !degen_run > degen_limit in
      let ain = find_entering t na cost_eps ~bland in
      if ain < 0 then continue := false
      else begin
        incr pivots;
        if !pivots > max_pivots then
          Error.numerical ~stage:"netsimplex"
            ~detail:
              (Printf.sprintf "pivot limit exceeded (%d on %d arcs)"
                 max_pivots na);
        let delta = pivot t ain in
        if delta <= flow_eps then incr degen_run else degen_run := 0;
        (* progress batches for traces: one event per 64 pivots so a
           long solve is visible without an event per pivot *)
        if !pivots land 63 = 0 && Trace.enabled sink then begin
          let w = Sampler.decide Sampler.Flow_pivot in
          if w > 0 then
            Trace.flow_pivots sink ~sampled_of:w ~algo:"netsimplex"
              ~pivots:!pivots ~objective:(running_objective ()) ()
        end
      end
    done;
    t.last_pivots <- !pivots;
    Metrics.add (Lazy.force m_pivots) !pivots;
    t.solved <- true;
    (* leftover artificial flow at optimality = no feasible flow *)
    let art_tol = 1e-7 *. (1.0 +. !fscale) in
    let infeasible = ref false in
    for v = 0 to t.n - 1 do
      if t.flow_.(t.m + v) > art_tol then infeasible := true
    done;
    if !infeasible then Infeasible else Optimal
  end

let flow t a =
  if not (0 <= a && a < t.m) then invalid_arg "Netsimplex.flow";
  if not t.solved then invalid_arg "Netsimplex.flow: not solved";
  t.flow_.(a) +. t.a_lower.(a)

let objective t =
  let c = ref 0.0 in
  for a = 0 to t.m - 1 do
    c := !c +. ((t.flow_.(a) +. t.a_lower.(a)) *. t.a_cost.(a))
  done;
  !c

let potential t v =
  if not (0 <= v && v < t.n) then invalid_arg "Netsimplex.potential";
  if not t.solved then invalid_arg "Netsimplex.potential: not solved";
  t.pi.(v)

let pivots t = t.last_pivots
let warm_started t = t.last_warm
