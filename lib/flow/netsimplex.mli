(** Primal network simplex for minimum-cost flow.

    A specialized simplex over the arc-incidence matrix: the basis is
    a spanning tree (rooted at an artificial node) held in
    parent/pred/depth/thread arrays, so each pivot is a cycle update
    plus an O(|subtree|) re-hang instead of a dense basis refactor.
    This is the kernel behind [Mincost.solve ~algo:Net_simplex]; the
    paper's PPME* re-optimization (§5.4) and the MECF bound (§4.3)
    both route through it on their hot paths.

    Design points (see DESIGN.md §13):
    - strongly feasible basis: the leaving-arc tie-break (strict [<]
      on the cycle's first leg, [<=] on the second) keeps every basis
      strongly feasible, so degenerate pivots cannot cycle in exact
      arithmetic; a Bland-style lowest-index fallback kicks in after a
      long run of degenerate pivots as a float-world backstop;
    - block (candidate-list) pricing: entering arcs are found by
      scanning wrap-around blocks of ~sqrt(m) arcs and taking the most
      negative reduced cost seen in the first block that has one;
    - warm start: [solve ~warm:true] reuses the previous spanning tree
      and arc states, recomputing tree-arc flows bottom-up and node
      potentials top-down, which makes re-solves after small
      cost/capacity/supply perturbations (drift ticks) nearly free;
    - dual certificate: on [Optimal] the node potentials are exposed,
      so callers can check complementary slackness independently. *)

type t
(** Mutable solver instance; holds both the network and the basis so
    consecutive solves can warm start. *)

type status = Optimal | Infeasible

val create : int -> t
(** [create n] is an empty network on nodes [0 .. n-1]. The artificial
    root node is internal and not part of this numbering. *)

val node_count : t -> int

val add_arc :
  ?lower:float -> t -> src:int -> dst:int -> capacity:float -> cost:float -> int
(** Append a directed arc with bounds [\[lower, capacity\]] (default
    [lower = 0.]) and per-unit [cost]; returns its dense id. Requires
    [0. <= lower <= capacity]. [capacity] may be [infinity]. Adding an
    arc invalidates the warm basis (the next solve is cold). *)

val arc_count : t -> int

val set_arc :
  ?lower:float -> ?capacity:float -> ?cost:float -> t -> int -> unit
(** Update bounds and/or cost of an existing arc in place. Keeps the
    network shape, so a following [solve ~warm:true] can reuse the
    basis. Omitted fields are left unchanged. *)

val set_supply : t -> int -> float -> unit
(** [set_supply t v b]: node [v] supplies [b] units ([b > 0.]) or
    demands [-b] ([b < 0.]). Supplies must sum to zero over the nodes;
    an unbalanced instance reports {!Infeasible}. Overwrites any
    previous supply of [v]. *)

val solve : ?warm:bool -> t -> status
(** Optimize. With [warm:true] (the default) the previous basis is
    reused when the network shape is unchanged and the remembered
    arc states still fit the current bounds; otherwise — and on the
    first call — a cold big-M start from the all-artificial star tree
    is used. Raises [Monpos_resilience.Error.Error (Numerical _)] if
    the pivot limit is exceeded (anti-cycling failure — a bug, not an
    input property). *)

val flow : t -> int -> float
(** Flow on an arc after an [Optimal] solve (includes its lower
    bound). *)

val objective : t -> float
(** Cost of the last computed flow: sum over arcs of flow x cost. *)

val potential : t -> int -> float
(** Node potential (dual value) after an [Optimal] solve. The
    complementary-slackness certificate holds with reduced cost
    [rc a = cost a +. potential (src a) -. potential (dst a)]:
    [rc >= 0] on arcs at their lower bound, [rc <= 0] on saturated
    arcs, [rc = 0] on arcs strictly between their bounds. *)

val pivots : t -> int
(** Pivot count of the last solve. *)

val warm_started : t -> bool
(** Whether the last solve actually reused the previous basis. *)
