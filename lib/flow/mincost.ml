(* Minimum-cost flow behind a two-kernel switch. [Ssp] is successive
   shortest paths on a residual graph with two extra nodes — a
   super-source (n) and super-sink (n+1) that absorb both user
   supplies and the lower-bound transformation. [Net_simplex] hands
   the instance (lower bounds and supplies included, no super nodes)
   to the spanning-tree kernel in {!Netsimplex}, which is kept alive
   across solves so unchanged-shape re-solves warm start from the
   previous basis. *)

module Trace = Monpos_obs.Trace
module Metrics = Monpos_obs.Metrics
module Span = Monpos_obs.Span
module Sampler = Monpos_obs.Sampler

let m_solves = lazy (Metrics.counter Metrics.default "mincost.solves")

let m_augmentations =
  lazy (Metrics.counter Metrics.default "mincost.augmentations")

let m_solves_ssp =
  lazy (Metrics.counter ~labels:[ ("algo", "ssp") ] Metrics.default "flow.solves")

let m_solves_ns =
  lazy
    (Metrics.counter
       ~labels:[ ("algo", "netsimplex") ]
       Metrics.default "flow.solves")

type arc = int

type status = Optimal | Infeasible

type algo = Ssp | Net_simplex

type t = {
  n : int;
  mutable narcs : int;
  (* user arcs, growable parallel arrays *)
  mutable a_src : int array;
  mutable a_dst : int array;
  mutable a_lower : float array;
  mutable a_cap : float array;
  mutable a_cost : float array;
  supply : (int, float) Hashtbl.t;
  mutable last_flow : float array; (* per user arc, includes lower *)
  mutable last_cost : float;
  mutable last_potentials : float array option;
  mutable ns : Netsimplex.t option;
}

let create n =
  {
    n;
    narcs = 0;
    a_src = Array.make 16 0;
    a_dst = Array.make 16 0;
    a_lower = Array.make 16 0.0;
    a_cap = Array.make 16 0.0;
    a_cost = Array.make 16 0.0;
    supply = Hashtbl.create 16;
    last_flow = [||];
    last_cost = 0.0;
    last_potentials = None;
    ns = None;
  }

let grow_int a len = Array.append a (Array.make len 0)
let grow_float a len = Array.append a (Array.make len 0.0)

let add_arc ?(lower = 0.0) t ~src ~dst ~capacity ~cost =
  assert (0 <= src && src < t.n && 0 <= dst && dst < t.n);
  assert (0.0 <= lower && lower <= capacity);
  let cap = Array.length t.a_src in
  if t.narcs = cap then begin
    t.a_src <- grow_int t.a_src cap;
    t.a_dst <- grow_int t.a_dst cap;
    t.a_lower <- grow_float t.a_lower cap;
    t.a_cap <- grow_float t.a_cap cap;
    t.a_cost <- grow_float t.a_cost cap
  end;
  let id = t.narcs in
  t.a_src.(id) <- src;
  t.a_dst.(id) <- dst;
  t.a_lower.(id) <- lower;
  t.a_cap.(id) <- capacity;
  t.a_cost.(id) <- cost;
  t.narcs <- t.narcs + 1;
  id

let update_arc ?lower ?capacity ?cost t a =
  assert (0 <= a && a < t.narcs);
  let lo = match lower with Some l -> l | None -> t.a_lower.(a) in
  let cap = match capacity with Some c -> c | None -> t.a_cap.(a) in
  assert (0.0 <= lo && lo <= cap);
  t.a_lower.(a) <- lo;
  t.a_cap.(a) <- cap;
  match cost with Some c -> t.a_cost.(a) <- c | None -> ()

let set_supply t v b =
  assert (0 <= v && v < t.n);
  Hashtbl.replace t.supply v b

(* ---------------- successive shortest paths kernel ---------------- *)

(* residual graph as parallel arrays; arc 2k forward / 2k+1 backward *)
type res = {
  r_head : int array;
  r_cap : float array;
  r_cost : float array;
  r_next : int array;
  r_first : int array;
  mutable r_count : int;
}

let res_create n narcs =
  {
    r_head = Array.make (2 * narcs) 0;
    r_cap = Array.make (2 * narcs) 0.0;
    r_cost = Array.make (2 * narcs) 0.0;
    r_next = Array.make (2 * narcs) (-1);
    r_first = Array.make n (-1);
    r_count = 0;
  }

let res_add r u v cap cost =
  let a = r.r_count in
  r.r_head.(a) <- v;
  r.r_cap.(a) <- cap;
  r.r_cost.(a) <- cost;
  r.r_next.(a) <- r.r_first.(u);
  r.r_first.(u) <- a;
  r.r_head.(a + 1) <- u;
  r.r_cap.(a + 1) <- 0.0;
  r.r_cost.(a + 1) <- -.cost;
  r.r_next.(a + 1) <- r.r_first.(v);
  r.r_first.(v) <- a + 1;
  r.r_count <- a + 2;
  a

let solve_ssp t sink =
  let n = t.n + 2 in
  let super_s = t.n and super_t = t.n + 1 in
  let narcs_upper = t.narcs + (2 * t.n) + 2 in
  let r = res_create n narcs_upper in
  (* net supply per node: user supplies + lower-bound shifts *)
  let net = Array.make n 0.0 in
  Hashtbl.iter (fun v b -> net.(v) <- net.(v) +. b) t.supply;
  let res_id = Array.make t.narcs (-1) in
  for i = 0 to t.narcs - 1 do
    let lo = t.a_lower.(i) in
    if lo > 0.0 then begin
      net.(t.a_src.(i)) <- net.(t.a_src.(i)) -. lo;
      net.(t.a_dst.(i)) <- net.(t.a_dst.(i)) +. lo
    end;
    res_id.(i) <-
      res_add r t.a_src.(i) t.a_dst.(i) (t.a_cap.(i) -. lo) t.a_cost.(i)
  done;
  (* hook supplies to the super nodes *)
  let required = ref 0.0 in
  for v = 0 to t.n - 1 do
    if net.(v) > 0.0 then begin
      ignore (res_add r super_s v net.(v) 0.0);
      required := !required +. net.(v)
    end
    else if net.(v) < 0.0 then ignore (res_add r v super_t (-.net.(v)) 0.0)
  done;
  (* Successive shortest paths; each path found by SPFA (queue-based
     Bellman-Ford), which tolerates the negative residual costs that
     appear on backward arcs without potential bookkeeping. *)
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let inqueue = Array.make n false in
  let routed = ref 0.0 in
  let feasible = ref true in
  let continue = ref (!required > 1e-12) in
  while !continue do
    Array.fill dist 0 n infinity;
    Array.fill parent 0 n (-1);
    Array.fill inqueue 0 n false;
    dist.(super_s) <- 0.0;
    let q = Queue.create () in
    Queue.add super_s q;
    inqueue.(super_s) <- true;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      inqueue.(u) <- false;
      let a = ref r.r_first.(u) in
      while !a <> -1 do
        let v = r.r_head.(!a) in
        if r.r_cap.(!a) > 1e-12 then begin
          let nd = dist.(u) +. r.r_cost.(!a) in
          if nd < dist.(v) -. 1e-12 then begin
            dist.(v) <- nd;
            parent.(v) <- !a;
            if not inqueue.(v) then begin
              inqueue.(v) <- true;
              Queue.add v q
            end
          end
        end;
        a := r.r_next.(!a)
      done
    done;
    if dist.(super_t) = infinity then begin
      feasible := false;
      continue := false
    end
    else begin
      (* bottleneck along the path *)
      let bott = ref (!required -. !routed) in
      let v = ref super_t in
      while !v <> super_s do
        let a = parent.(!v) in
        bott := min !bott r.r_cap.(a);
        v := r.r_head.(a lxor 1)
      done;
      let v = ref super_t in
      while !v <> super_s do
        let a = parent.(!v) in
        r.r_cap.(a) <- r.r_cap.(a) -. !bott;
        r.r_cap.(a lxor 1) <- r.r_cap.(a lxor 1) +. !bott;
        v := r.r_head.(a lxor 1)
      done;
      routed := !routed +. !bott;
      Metrics.incr (Lazy.force m_augmentations);
      if Trace.enabled sink then begin
        let w = Sampler.decide Sampler.Flow_pivot in
        if w > 0 then
          Trace.flow_augmentation sink ~sampled_of:w ~amount:!bott
            ~path_cost:dist.(super_t) ~routed:!routed ()
      end;
      if !routed >= !required -. 1e-9 then continue := false
    end
  done;
  if not !feasible then Infeasible
  else begin
    (* read back user arc flows *)
    t.last_flow <-
      Array.init t.narcs (fun i ->
          let res = res_id.(i) in
          t.a_lower.(i) +. r.r_cap.(res lxor 1));
    t.last_cost <- 0.0;
    for i = 0 to t.narcs - 1 do
      t.last_cost <- t.last_cost +. (t.last_flow.(i) *. t.a_cost.(i))
    done;
    Optimal
  end

(* ---------------- network simplex kernel ---------------- *)

(* The kernel instance survives across solves: when the arc count is
   unchanged we only push the (possibly drifted) bounds, costs and
   supplies into it, which preserves its spanning-tree basis and lets
   [Netsimplex.solve ~warm:true] reoptimize from there. *)
let sync_ns t =
  let ns =
    match t.ns with
    | Some ns when Netsimplex.arc_count ns = t.narcs -> ns
    | _ ->
      let ns = Netsimplex.create t.n in
      for i = 0 to t.narcs - 1 do
        ignore
          (Netsimplex.add_arc ns ~src:t.a_src.(i) ~dst:t.a_dst.(i)
             ~capacity:t.a_cap.(i) ~cost:t.a_cost.(i))
      done;
      t.ns <- Some ns;
      ns
  in
  for i = 0 to t.narcs - 1 do
    Netsimplex.set_arc ns i ~lower:t.a_lower.(i) ~capacity:t.a_cap.(i)
      ~cost:t.a_cost.(i)
  done;
  for v = 0 to t.n - 1 do
    Netsimplex.set_supply ns v 0.0
  done;
  Hashtbl.iter (fun v b -> Netsimplex.set_supply ns v b) t.supply;
  ns

let solve_netsimplex t =
  let ns = sync_ns t in
  match Netsimplex.solve ~warm:true ns with
  | Netsimplex.Infeasible -> (ns, Infeasible)
  | Netsimplex.Optimal ->
    t.last_flow <- Array.init t.narcs (fun i -> Netsimplex.flow ns i);
    t.last_cost <- Netsimplex.objective ns;
    t.last_potentials <-
      Some (Array.init t.n (fun v -> Netsimplex.potential ns v));
    (ns, Optimal)

(* ---------------- dispatch ---------------- *)

let status_string = function Optimal -> "optimal" | Infeasible -> "infeasible"

let solve ?(algo = Ssp) t =
  Span.run "flow_solve" @@ fun () ->
  let sink = Trace.current () in
  Metrics.incr (Lazy.force m_solves);
  match algo with
  | Ssp ->
    Metrics.incr (Lazy.force m_solves_ssp);
    let st = solve_ssp t sink in
    t.last_potentials <- None;
    if Trace.enabled sink then
      Trace.flow_solve sink ~algo:"ssp" ~pivots:0 ~warm:false
        ~status:(status_string st);
    st
  | Net_simplex ->
    Metrics.incr (Lazy.force m_solves_ns);
    let ns, st = solve_netsimplex t in
    if st = Infeasible then t.last_potentials <- None;
    if Trace.enabled sink then
      Trace.flow_solve sink ~algo:"netsimplex" ~pivots:(Netsimplex.pivots ns)
        ~warm:(Netsimplex.warm_started ns)
        ~status:(status_string st);
    st

let flow t a =
  assert (0 <= a && a < Array.length t.last_flow);
  t.last_flow.(a)

let total_cost t = t.last_cost

let potentials t = t.last_potentials
