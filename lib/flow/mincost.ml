(* Successive shortest paths with potentials. Internally the network
   has two extra nodes: a super-source (n) and super-sink (n+1) that
   absorb both user supplies and the lower-bound transformation. *)

module Trace = Monpos_obs.Trace
module Metrics = Monpos_obs.Metrics

let m_solves = lazy (Metrics.counter Metrics.default "mincost.solves")

let m_augmentations =
  lazy (Metrics.counter Metrics.default "mincost.augmentations")

type raw_arc = {
  a_src : int;
  a_dst : int;
  a_lower : float;
  a_cap : float;
  a_cost : float;
}

type arc = int

type status = Optimal | Infeasible

type t = {
  n : int;
  mutable arcs : raw_arc list; (* reversed *)
  mutable narcs : int;
  supply : (int, float) Hashtbl.t;
  mutable last_flow : float array; (* per user arc, includes lower *)
  mutable last_cost : float;
}

let create n =
  {
    n;
    arcs = [];
    narcs = 0;
    supply = Hashtbl.create 16;
    last_flow = [||];
    last_cost = 0.0;
  }

let add_arc ?(lower = 0.0) t ~src ~dst ~capacity ~cost =
  assert (0 <= src && src < t.n && 0 <= dst && dst < t.n);
  assert (0.0 <= lower && lower <= capacity);
  let a =
    { a_src = src; a_dst = dst; a_lower = lower; a_cap = capacity; a_cost = cost }
  in
  t.arcs <- a :: t.arcs;
  let id = t.narcs in
  t.narcs <- t.narcs + 1;
  id

let set_supply t v b =
  assert (0 <= v && v < t.n);
  Hashtbl.replace t.supply v b

(* residual graph as parallel arrays; arc 2k forward / 2k+1 backward *)
type res = {
  r_n : int;
  r_head : int array;
  r_cap : float array;
  r_cost : float array;
  r_next : int array;
  r_first : int array;
  mutable r_count : int;
}

let res_create n narcs =
  {
    r_n = n;
    r_head = Array.make (2 * narcs) 0;
    r_cap = Array.make (2 * narcs) 0.0;
    r_cost = Array.make (2 * narcs) 0.0;
    r_next = Array.make (2 * narcs) (-1);
    r_first = Array.make n (-1);
    r_count = 0;
  }

let res_add r u v cap cost =
  let a = r.r_count in
  r.r_head.(a) <- v;
  r.r_cap.(a) <- cap;
  r.r_cost.(a) <- cost;
  r.r_next.(a) <- r.r_first.(u);
  r.r_first.(u) <- a;
  r.r_head.(a + 1) <- u;
  r.r_cap.(a + 1) <- 0.0;
  r.r_cost.(a + 1) <- -.cost;
  r.r_next.(a + 1) <- r.r_first.(v);
  r.r_first.(v) <- a + 1;
  r.r_count <- a + 2;
  a

let solve t =
  let sink = Trace.current () in
  Metrics.incr (Lazy.force m_solves);
  let n = t.n + 2 in
  let super_s = t.n and super_t = t.n + 1 in
  let user_arcs = Array.of_list (List.rev t.arcs) in
  let narcs_upper = Array.length user_arcs + (2 * t.n) + 2 in
  let r = res_create n narcs_upper in
  (* net supply per node: user supplies + lower-bound shifts *)
  let net = Array.make n 0.0 in
  Hashtbl.iter (fun v b -> net.(v) <- net.(v) +. b) t.supply;
  let res_id = Array.make (Array.length user_arcs) (-1) in
  Array.iteri
    (fun i a ->
      if a.a_lower > 0.0 then begin
        net.(a.a_src) <- net.(a.a_src) -. a.a_lower;
        net.(a.a_dst) <- net.(a.a_dst) +. a.a_lower
      end;
      res_id.(i) <- res_add r a.a_src a.a_dst (a.a_cap -. a.a_lower) a.a_cost)
    user_arcs;
  (* hook supplies to the super nodes *)
  let required = ref 0.0 in
  for v = 0 to t.n - 1 do
    if net.(v) > 0.0 then begin
      ignore (res_add r super_s v net.(v) 0.0);
      required := !required +. net.(v)
    end
    else if net.(v) < 0.0 then ignore (res_add r v super_t (-.net.(v)) 0.0)
  done;
  (* Successive shortest paths; each path found by SPFA (queue-based
     Bellman-Ford), which tolerates the negative residual costs that
     appear on backward arcs without potential bookkeeping. *)
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let inqueue = Array.make n false in
  let routed = ref 0.0 in
  let feasible = ref true in
  let continue = ref (!required > 1e-12) in
  while !continue do
    Array.fill dist 0 n infinity;
    Array.fill parent 0 n (-1);
    Array.fill inqueue 0 n false;
    dist.(super_s) <- 0.0;
    let q = Queue.create () in
    Queue.add super_s q;
    inqueue.(super_s) <- true;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      inqueue.(u) <- false;
      let a = ref r.r_first.(u) in
      while !a <> -1 do
        let v = r.r_head.(!a) in
        if r.r_cap.(!a) > 1e-12 then begin
          let nd = dist.(u) +. r.r_cost.(!a) in
          if nd < dist.(v) -. 1e-12 then begin
            dist.(v) <- nd;
            parent.(v) <- !a;
            if not inqueue.(v) then begin
              inqueue.(v) <- true;
              Queue.add v q
            end
          end
        end;
        a := r.r_next.(!a)
      done
    done;
    if dist.(super_t) = infinity then begin
      feasible := false;
      continue := false
    end
    else begin
      (* bottleneck along the path *)
      let bott = ref (!required -. !routed) in
      let v = ref super_t in
      while !v <> super_s do
        let a = parent.(!v) in
        bott := min !bott r.r_cap.(a);
        v := r.r_head.(a lxor 1)
      done;
      let v = ref super_t in
      while !v <> super_s do
        let a = parent.(!v) in
        r.r_cap.(a) <- r.r_cap.(a) -. !bott;
        r.r_cap.(a lxor 1) <- r.r_cap.(a lxor 1) +. !bott;
        v := r.r_head.(a lxor 1)
      done;
      routed := !routed +. !bott;
      Metrics.incr (Lazy.force m_augmentations);
      if Trace.enabled sink then
        Trace.flow_augmentation sink ~amount:!bott ~path_cost:dist.(super_t)
          ~routed:!routed;
      if !routed >= !required -. 1e-9 then continue := false
    end
  done;
  if not !feasible then Infeasible
  else begin
    (* read back user arc flows *)
    t.last_flow <-
      Array.mapi
        (fun i a ->
          let res = res_id.(i) in
          let used = r.r_cap.(res lxor 1) in
          a.a_lower +. used)
        user_arcs;
    t.last_cost <- 0.0;
    Array.iteri
      (fun i a -> t.last_cost <- t.last_cost +. (t.last_flow.(i) *. a.a_cost))
      user_arcs;
    Optimal
  end

let flow t a =
  assert (0 <= a && a < Array.length t.last_flow);
  t.last_flow.(a)

let total_cost t = t.last_cost
