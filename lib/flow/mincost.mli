(** Minimum-cost flow with per-arc lower bounds.

    This is the polynomial engine behind two pieces of the paper:
    the MECF view of PPM(k) in its linearly-relaxed form (the greedy
    heuristics "are" a min-cost flow with costs 1/load, §4.3), and the
    PPME*(x,h,k) re-optimization of sampling rates when device
    positions are fixed (§5.4), which the paper notes "can be expressed
    as a minimum cost flow problem".

    Two kernels sit behind {!solve}:

    - {!Ssp}: successive shortest augmenting paths on a residual graph
      (SPFA path search, so negative arc costs are fine); lower bounds
      are removed by the standard supply transformation onto a
      super-source/super-sink pair.
    - {!Net_simplex}: the spanning-tree primal network simplex in
      {!Netsimplex}. The kernel instance is kept alive inside [t], so
      a re-solve after {!update_arc}/{!set_supply} perturbations (the
      §5.4 drift ticks) warm starts from the previous basis. On
      [Optimal] it also exposes node {!potentials} as a dual
      certificate.

    Both kernels agree on status and objective for balanced instances
    (supplies summing to zero), which the randomized differential
    harness in [test_flow_prop.ml] enforces against the LP formulation.
    On unbalanced instances [Net_simplex] reports {!Infeasible},
    while [Ssp] historically routes as much as the sinks absorb. *)

type t
(** Mutable network. *)

type arc
(** Handle on a directed arc. *)

type status =
  | Optimal  (** all supplies routed at minimum cost *)
  | Infeasible  (** supplies/lower bounds cannot be routed *)

type algo =
  | Ssp  (** successive shortest paths (the historical default) *)
  | Net_simplex  (** warm-startable spanning-tree simplex kernel *)

val create : int -> t
(** [create n] is an empty network on nodes [0 .. n-1]. *)

val add_arc :
  ?lower:float -> t -> src:int -> dst:int -> capacity:float -> cost:float -> arc
(** Append a directed arc with flow bounds [\[lower, capacity\]]
    (default [lower = 0.]) and per-unit [cost]. Requires
    [0. <= lower <= capacity]. *)

val update_arc : ?lower:float -> ?capacity:float -> ?cost:float -> t -> arc -> unit
(** Update bounds and/or cost of an existing arc in place; omitted
    fields keep their values. The network shape is preserved, so a
    following [solve ~algo:Net_simplex] can warm start from the
    previous basis. *)

val set_supply : t -> int -> float -> unit
(** [set_supply t v b] makes node [v] a source of [b] units ([b > 0.])
    or a sink of [-b] units ([b < 0.]). Supplies must globally sum to
    zero for the instance to be feasible. Overwrites any previous
    supply of [v]. *)

val solve : ?algo:algo -> t -> status
(** Route all supplies at minimum cost (default kernel {!Ssp}). May be
    called repeatedly after modifying supplies or arcs; with
    {!Net_simplex} repeated solves reuse the previous spanning-tree
    basis whenever the arc count is unchanged. *)

val flow : t -> arc -> float
(** Flow on the arc after the last {!solve} (includes its lower
    bound). *)

val total_cost : t -> float
(** Cost of the last computed flow (sum over arcs of flow × cost). *)

val potentials : t -> float array option
(** Node potentials (dual values) from the last solve: [Some pi] after
    an [Optimal] {!Net_simplex} solve, [None] otherwise. With reduced
    cost [rc = cost +. pi.(src) -. pi.(dst)], complementary slackness
    holds: [rc >= 0] on arcs at their lower bound, [rc <= 0] on
    saturated arcs, [rc = 0] strictly in between. *)
