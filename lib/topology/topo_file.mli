(** Textual POP/AS topology format.

    The paper evaluates on topologies inferred by Rocketfuel, whose
    data files are not redistributable; this module provides the
    equivalent workflow — load a measured topology from disk — with a
    small self-describing format, plus embedded sample topologies
    shaped like published ISP maps (see {!samples}).

    Format, one directive per line ([#] starts a comment):
    {v
    node <name> <role>        role: backbone | access | customer | peer
    link <name> <name>
    v}
    Node order defines node ids; links refer to declared nodes. *)

val parse :
  ?file:string -> string -> (Pop.t, Monpos_resilience.Error.t) result
(** Parse a topology from its textual representation. Errors are
    located [Parse_error {file; line; msg}] values whose message names
    the offending token; [file] defaults to ["<string>"] and labels
    the error, the input is always the string argument. The resulting
    {!Pop.t} has name "file" unless a [name <string>] directive
    appears. *)

val parse_file : string -> (Pop.t, Monpos_resilience.Error.t) result
(** {!parse} on a file's contents with [~file:path]; IO errors become
    [Parse_error] with line 0. Under [MONPOS_CHAOS] the
    ["parse.truncate"] site may feed the parser a truncated read to
    exercise the error path. *)

val to_string : Pop.t -> string
(** Serialize a POP back to the format (round-trips with {!parse} up
    to comments). *)

val samples : (string * string) list
(** Embedded example topologies [(name, contents)]: a small national
    backbone ("backbone-11", 11 routers in a ladder with stubs) and a
    metro POP ("metro-7"). Both parse, are connected, and are used in
    tests and examples as stand-ins for Rocketfuel files. *)

val load_sample : string -> Pop.t
(** Parse one of {!samples} by name. Raises [Invalid_argument] on an
    unknown name (programming error: sample names are static). *)
