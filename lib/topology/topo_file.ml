module Graph = Monpos_graph.Graph
module Error = Monpos_resilience.Error
module Chaos = Monpos_resilience.Chaos

let role_of_string = function
  | "backbone" -> Some Pop.Backbone
  | "access" -> Some Pop.Access
  | "customer" -> Some Pop.Customer
  | "peer" -> Some Pop.Peer
  | _ -> None

let string_of_role = function
  | Pop.Backbone -> "backbone"
  | Pop.Access -> "access"
  | Pop.Customer -> "customer"
  | Pop.Peer -> "peer"

let parse ?(file = "<string>") text =
  let g = Graph.create () in
  let roles = ref [] in
  let ids = Hashtbl.create 32 in
  let name = ref "file" in
  let error = ref None in
  let fail lineno msg =
    if !error = None then
      error := Some (Error.Parse_error { file; line = lineno; msg })
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | [ "name"; n ] -> name := n
      | [ "node"; n; role ] -> (
        if Hashtbl.mem ids n then fail lineno (Printf.sprintf "duplicate node %S" n)
        else
          match role_of_string role with
          | None -> fail lineno (Printf.sprintf "unknown role %S" role)
          | Some r ->
            let v = Graph.add_node ~label:n g in
            Hashtbl.replace ids n v;
            roles := r :: !roles)
      | [ "link"; a; b ] -> (
        match (Hashtbl.find_opt ids a, Hashtbl.find_opt ids b) with
        | Some u, Some v ->
          if u = v then fail lineno "self-loop link"
          else ignore (Graph.add_edge g u v)
        | None, _ -> fail lineno (Printf.sprintf "unknown node %S" a)
        | _, None -> fail lineno (Printf.sprintf "unknown node %S" b))
      | w :: _ -> fail lineno (Printf.sprintf "unknown directive %S" w))
    lines;
  match !error with
  | Some e -> Result.Error e
  | None ->
    let roles = Array.of_list (List.rev !roles) in
    (* endpoints must be degree-1 leaves for Pop invariants *)
    let ok = ref (Ok ()) in
    Array.iteri
      (fun v r ->
        match r with
        | Pop.Customer | Pop.Peer ->
          if Graph.degree g v <> 1 then
            ok :=
              Result.Error
                (Error.Parse_error
                   {
                     file;
                     line = 0;
                     msg =
                       Printf.sprintf "endpoint %S must have exactly one link"
                         (Graph.label g v);
                   })
        | Pop.Backbone | Pop.Access -> ())
      roles;
    (match !ok with
    | Result.Error e -> Result.Error e
    | Ok () -> Ok { Pop.graph = g; roles; name = !name })

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e ->
    Result.Error (Error.Parse_error { file = path; line = 0; msg = e })
  | contents ->
    (* chaos: simulate a short read (partial download, interrupted
       copy) so callers exercise the located parse-error path *)
    let contents =
      if Chaos.fire ~site:"parse.truncate" ~p:0.2 () then
        String.sub contents 0 (Chaos.draw ~site:"parse.truncate" (String.length contents))
      else contents
    in
    parse ~file:path contents

let to_string (pop : Pop.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "name %s\n" pop.Pop.name);
  for v = 0 to Graph.num_nodes pop.Pop.graph - 1 do
    Buffer.add_string buf
      (Printf.sprintf "node %s %s\n"
         (Graph.label pop.Pop.graph v)
         (string_of_role pop.Pop.roles.(v)))
  done;
  Graph.iter_edges
    (fun _ u v ->
      Buffer.add_string buf
        (Printf.sprintf "link %s %s\n"
           (Graph.label pop.Pop.graph u)
           (Graph.label pop.Pop.graph v)))
    pop.Pop.graph;
  Buffer.contents buf

let backbone_11 =
  {|# A national-backbone shape: two parallel east-west spines bridged
# at three cities, with access stubs and customers.
name backbone-11
node nyc backbone
node chi backbone
node den backbone
node sfo backbone
node dca backbone
node atl backbone
node hou backbone
node lax backbone
node bos access
node sea access
node mia access
node cust-bos customer
node cust-sea customer
node cust-mia customer
node peer-east peer
node peer-west peer
link nyc chi
link chi den
link den sfo
link dca atl
link atl hou
link hou lax
link nyc dca
link chi atl
link den hou
link sfo lax
link bos nyc
link sea sfo
link mia atl
link cust-bos bos
link cust-sea sea
link cust-mia mia
link peer-east nyc
link peer-west lax
|}

let metro_7 =
  {|# A metro POP: 3-router core triangle, 4 access routers, customers.
name metro-7
node core1 backbone
node core2 backbone
node core3 backbone
node acc1 access
node acc2 access
node acc3 access
node acc4 access
node c1 customer
node c2 customer
node c3 customer
node c4 customer
node c5 customer
node up peer
link core1 core2
link core2 core3
link core3 core1
link acc1 core1
link acc1 core2
link acc2 core2
link acc3 core3
link acc3 core1
link acc4 core3
link c1 acc1
link c2 acc2
link c3 acc3
link c4 acc4
link c5 acc2
link up core1
|}

let samples = [ ("backbone-11", backbone_11); ("metro-7", metro_7) ]

let load_sample name =
  match List.assoc_opt name samples with
  | None -> invalid_arg (Printf.sprintf "Topo_file.load_sample: unknown %S" name)
  | Some text -> (
    match parse ~file:("<sample:" ^ name ^ ">") text with
    | Ok pop -> pop
    | Result.Error e ->
      invalid_arg
        (Printf.sprintf "Topo_file.load_sample: %s: %s" name (Error.to_string e)))
