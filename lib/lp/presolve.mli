(** LP/MIP presolve: cheap model reductions applied before a solve.

    Implements the standard safe reductions (the kind CPLEX applies
    before its own simplex): removal of empty rows, conversion of
    singleton rows into variable bounds, bound tightening from row
    activity iterated to a fixed point, probing on binary variables
    (tentatively fixing each 0–1 device variable and fixing it the
    other way when propagation proves a side impossible), and fixing
    of variables whose bounds coincide. All reductions are exact: the
    reduced model has the same optimal value as the original, and
    {!restore} lifts a reduced solution back to the original variable
    space.

    Presolve never changes variable indices — reductions only tighten
    bounds and drop rows — so the lifted solution is index-compatible
    with the input model. *)

type info = {
  rows_dropped : int;  (** empty + singleton rows removed *)
  bounds_tightened : int;  (** variable bound updates applied *)
  fixed_vars : int;  (** variables whose bounds collapsed to a point *)
  infeasible : bool;
      (** presolve proved the model infeasible (contradictory bounds or
          an unsatisfiable row); the reduced model is meaningless in
          that case *)
}

val reduce :
  ?deadline:Monpos_resilience.Deadline.t -> Model.t -> Model.t * info
(** Build the reduced model (a fresh model; the input is not
    mutated). Iterates the reductions to a fixed point (bounded
    passes). [deadline] (default: none) is polled between passes and
    between probes: on expiry the remaining reductions are skipped and
    the model is handed over with whatever was tightened so far —
    every applied reduction is still exact, so a time-boxed presolve
    never changes the optimum. *)

val restore : original:Model.t -> float array -> float array
(** Lift a solution of the reduced model back: since indices are
    preserved this is the identity, provided for interface symmetry
    and future reductions that substitute variables. *)
