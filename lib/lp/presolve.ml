module Trace = Monpos_obs.Trace
module Metrics = Monpos_obs.Metrics

let m_runs = lazy (Metrics.counter Metrics.default "presolve.runs")

let m_rows = lazy (Metrics.counter Metrics.default "presolve.rows_dropped")

let m_bounds =
  lazy (Metrics.counter Metrics.default "presolve.bounds_tightened")

type info = {
  rows_dropped : int;
  bounds_tightened : int;
  fixed_vars : int;
  infeasible : bool;
}

let tol = 1e-9

(* Row activity bounds given current variable bounds. *)
let activity_bounds lb ub terms =
  List.fold_left
    (fun (lo, hi) (c, v) ->
      if c >= 0.0 then (lo +. (c *. lb.(v)), hi +. (c *. ub.(v)))
      else (lo +. (c *. ub.(v)), hi +. (c *. lb.(v))))
    (0.0, 0.0) terms

module Deadline = Monpos_resilience.Deadline

let reduce ?(deadline = Deadline.none) model =
  let n = Model.num_vars model in
  (* Polled between passes and probes: reductions applied before the
     budget runs out stay exact, so expiry just means "stop reducing
     here and hand the model over as-is". *)
  let out_of_time () = Deadline.expired deadline in
  let lb = Array.init n (fun v -> Model.var_lb model (Model.var_of_index model v)) in
  let ub = Array.init n (fun v -> Model.var_ub model (Model.var_of_index model v)) in
  let kind = Array.init n (fun v -> Model.var_kind model (Model.var_of_index model v)) in
  let rows = ref [] in
  Model.iter_constrs model (fun i terms sense rhs ->
      ignore i;
      rows := (terms, sense, rhs) :: !rows);
  let rows = Array.of_list (List.rev !rows) in
  let alive = Array.make (Array.length rows) true in
  let rows_dropped = ref 0 in
  let bounds_tightened = ref 0 in
  let infeasible = ref false in
  (* integer bounds round inward *)
  let rounded_bounds v new_lb new_ub =
    match kind.(v) with
    | Model.Continuous -> (new_lb, new_ub)
    | Model.Integer | Model.Binary ->
      ( (if new_lb = neg_infinity then new_lb else Float.ceil (new_lb -. tol)),
        if new_ub = infinity then new_ub else Float.floor (new_ub +. tol) )
  in
  (* tighten a variable's bounds in the committed arrays *)
  let tighten v new_lb new_ub =
    let new_lb, new_ub = rounded_bounds v new_lb new_ub in
    if new_lb > lb.(v) +. tol then begin
      lb.(v) <- new_lb;
      incr bounds_tightened
    end;
    if new_ub < ub.(v) -. tol then begin
      ub.(v) <- new_ub;
      incr bounds_tightened
    end;
    if lb.(v) > ub.(v) +. tol then infeasible := true
  in
  (* Activity-based propagation of one multi-term row under the given
     bound arrays. Calls [tighten] for every implied tighter bound and
     returns [true] when the activity interval proves the row
     unsatisfiable. Shared between the committed presolve passes and
     the what-if probing trials below. *)
  let propagate_row lb ub tighten terms sense rhs =
    let lo, hi = activity_bounds lb ub terms in
    let impossible =
      match sense with
      | Model.Le -> lo > rhs +. tol
      | Model.Ge -> hi < rhs -. tol
      | Model.Eq -> lo > rhs +. tol || hi < rhs -. tol
    in
    if impossible then true
    else begin
      (* for <= rows, each variable's contribution is bounded by rhs
         minus the minimum activity of the others *)
      let tighten_from (rhs', sgn) =
        List.iter
          (fun (c, v) ->
            let c = sgn *. c in
            let lo_others =
              List.fold_left
                (fun acc (c', v') ->
                  if v' = v then acc
                  else begin
                    let c' = sgn *. c' in
                    if c' >= 0.0 then acc +. (c' *. lb.(v'))
                    else acc +. (c' *. ub.(v'))
                  end)
                0.0 terms
            in
            let room = rhs' -. lo_others in
            if c > tol then begin
              if room /. c < ub.(v) -. tol then
                tighten v neg_infinity (room /. c)
            end
            else if c < -.tol then
              if room /. c > lb.(v) +. tol then tighten v (room /. c) infinity)
          terms
      in
      (match sense with
      | Model.Le -> tighten_from (rhs, 1.0)
      | Model.Ge -> tighten_from (-.rhs, -1.0)
      | Model.Eq ->
        tighten_from (rhs, 1.0);
        tighten_from (-.rhs, -1.0));
      false
    end
  in
  let pass () =
    let changed = ref false in
    let tightened_before = !bounds_tightened in
    Array.iteri
      (fun i (terms, sense, rhs) ->
        if alive.(i) && not !infeasible then begin
          match terms with
          | [] ->
            (* empty row: trivially satisfied or infeasible *)
            let ok =
              match sense with
              | Model.Le -> 0.0 <= rhs +. tol
              | Model.Ge -> 0.0 >= rhs -. tol
              | Model.Eq -> abs_float rhs <= tol
            in
            if not ok then infeasible := true;
            alive.(i) <- false;
            incr rows_dropped;
            changed := true
          | [ (c, v) ] ->
            (* singleton row becomes a bound *)
            let bound = rhs /. c in
            (match (sense, c > 0.0) with
            | Model.Le, true | Model.Ge, false -> tighten v neg_infinity bound
            | Model.Ge, true | Model.Le, false -> tighten v bound infinity
            | Model.Eq, _ -> tighten v bound bound);
            alive.(i) <- false;
            incr rows_dropped;
            changed := true
          | _ ->
            (* redundancy / infeasibility by activity bounds *)
            let lo, hi = activity_bounds lb ub terms in
            let redundant =
              match sense with
              | Model.Le -> hi <= rhs +. tol
              | Model.Ge -> lo >= rhs -. tol
              | Model.Eq -> false
            in
            if redundant then begin
              alive.(i) <- false;
              incr rows_dropped;
              changed := true
            end
            else if propagate_row lb ub tighten terms sense rhs then
              infeasible := true
        end)
      rows;
    (* a tightened bound can unlock further reductions, so it counts
       as progress for the fixed-point iteration just like a dropped
       row does *)
    !changed || !bounds_tightened > tightened_before
  in
  let fixed_point () =
    let passes = ref 0 in
    while pass () && !passes < 10 && (not !infeasible) && not (out_of_time ())
    do
      incr passes
    done
  in
  fixed_point ();
  (* Probing on the 0–1 device variables: tentatively fix each still
     free binary to 0 and to 1 and propagate the row activities under
     the trial bounds. When one side proves infeasible the variable is
     fixed the other way for good — on the paper's covering
     formulations this cascades through rows whose only remaining
     support is a single device. Trial tightenings touch copies of the
     bound arrays, never the committed ones. *)
  let binaries =
    List.filter
      (fun v -> kind.(v) = Model.Binary)
      (List.init n (fun v -> v))
  in
  if
    (not !infeasible) && binaries <> []
    && List.length binaries <= 512
    && not (out_of_time ())
  then begin
    let probe_infeasible v value =
      let plb = Array.copy lb and pub = Array.copy ub in
      plb.(v) <- value;
      pub.(v) <- value;
      let bad = ref false in
      let tighten_trial w new_lb new_ub =
        let new_lb, new_ub = rounded_bounds w new_lb new_ub in
        if new_lb > plb.(w) +. tol then plb.(w) <- new_lb;
        if new_ub < pub.(w) -. tol then pub.(w) <- new_ub;
        if plb.(w) > pub.(w) +. tol then bad := true
      in
      let sweeps = ref 0 in
      while (not !bad) && !sweeps < 3 do
        Array.iteri
          (fun i (terms, sense, rhs) ->
            if alive.(i) && not !bad then
              match terms with
              | [] | [ _ ] -> ()
              | _ ->
                if propagate_row plb pub tighten_trial terms sense rhs then
                  bad := true)
          rows;
        incr sweeps
      done;
      !bad
    in
    let rounds = ref 0 in
    let progress = ref true in
    while !progress && !rounds < 3 && (not !infeasible) && not (out_of_time ())
    do
      progress := false;
      List.iter
        (fun v ->
          if (not !infeasible) && ub.(v) -. lb.(v) > tol && not (out_of_time ())
          then
            if probe_infeasible v 0.0 then begin
              (* v = 0 kills the model, so v = 1 in every solution *)
              tighten v 1.0 infinity;
              progress := true
            end
            else if probe_infeasible v 1.0 then begin
              tighten v neg_infinity 0.0;
              progress := true
            end)
        binaries;
      (* fixings feed the ordinary reductions, and vice versa *)
      if !progress then fixed_point ();
      incr rounds
    done
  end;
  (* rebuild *)
  let reduced = Model.create ~name:(Model.name model ^ "-presolved")
      (Model.direction model)
  in
  let fixed_vars = ref 0 in
  for v = 0 to n - 1 do
    let lb_v = lb.(v) and ub_v = ub.(v) in
    let lb_v, ub_v =
      if lb_v > ub_v then
        (* crossed bounds mean the model is infeasible (already
           flagged); collapse to a point the variable kind can
           represent so the rebuilt model stays well-formed — a
           binary whose lb was tightened past 1 must not reach
           [Model.add_var] with lb > 1 *)
        let p =
          match kind.(v) with
          | Model.Binary -> min 1.0 (max 0.0 lb_v)
          | Model.Continuous | Model.Integer -> lb_v
        in
        (p, p)
      else (lb_v, ub_v)
    in
    if abs_float (ub_v -. lb_v) < tol then incr fixed_vars;
    ignore
      (Model.add_var reduced
         ~name:(Model.var_name model (Model.var_of_index model v))
         ~lb:lb_v ~ub:ub_v
         ~obj:(Model.var_obj model (Model.var_of_index model v))
         kind.(v))
  done;
  Array.iteri
    (fun i (terms, sense, rhs) ->
      if alive.(i) then
        Model.add_constr reduced
          (List.map (fun (c, v) -> (c, Model.var_of_index reduced v)) terms)
          sense rhs)
    rows;
  Metrics.incr (Lazy.force m_runs);
  Metrics.add (Lazy.force m_rows) !rows_dropped;
  Metrics.add (Lazy.force m_bounds) !bounds_tightened;
  let sink = Trace.current () in
  if Trace.enabled sink then
    Trace.presolve_reduction sink ~rows_dropped:!rows_dropped
      ~bounds_tightened:!bounds_tightened ~fixed_vars:!fixed_vars;
  ( reduced,
    {
      rows_dropped = !rows_dropped;
      bounds_tightened = !bounds_tightened;
      fixed_vars = !fixed_vars;
      infeasible = !infeasible;
    } )

let restore ~original solution =
  ignore original;
  solution
