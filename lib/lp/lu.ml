(* Sparse LU with Markowitz pivoting, threshold partial pivoting and a
   product-form eta file. See the .mli for the index-space contract.

   Factorization: Gaussian elimination on a row-wise copy of the
   basis. At step k a pivot (p, q) is chosen among the shortest active
   columns by Markowitz cost, subject to |a_pq| >= tau * max|a_.q|;
   row p then eliminates every other row with an entry in column q.
   The recorded elimination ops are the L factor (B = L1..Lm U), the
   surviving rows are U in pivot order. Column adjacency lists are
   maintained lazily (stale entries are dropped on scan, exact counts
   are kept separately), and row merges run through a dense scatter
   accumulator so each merge costs O(nonzeros touched). *)

exception Singular

let tau = 0.1 (* threshold partial pivoting factor *)

let singular_tol = 1e-12 (* a column whose largest entry is below this is dead *)

let drop_tol = 1e-13 (* elimination entries below this are discarded *)

type eta = {
  e_r : int; (* pivot basis position *)
  e_piv : float;
  e_idx : int array; (* other positions touched, with their alpha values *)
  e_val : float array;
}

type t = {
  m : int;
  (* L ops in elimination order: source row, target rows, multipliers *)
  l_src : int array;
  l_tgt : int array array;
  l_mul : float array array;
  (* U in pivot order: pivot row/position/value plus the row remainder *)
  perm_r : int array;
  perm_c : int array;
  u_piv : float array;
  u_cols : int array array; (* basis positions, pivotal at later steps *)
  u_val : float array array;
  basis_nnz : int;
  factor_nnz : int;
  mutable etas : eta array;
  mutable n_eta : int;
  mutable eta_nnz : int;
}

type stats = {
  basis_nnz : int;
  factor_nnz : int;
  eta_count : int;
  eta_nnz : int;
}

(* --- growable pair buffers (rows of the active matrix) -------------- *)

type row_buf = {
  mutable cols : int array;
  mutable vals : float array;
  mutable len : int;
}

let row_create () = { cols = Array.make 4 0; vals = Array.make 4 0.0; len = 0 }

let row_push rb c v =
  if rb.len = Array.length rb.cols then begin
    let n = 2 * rb.len in
    let cols = Array.make n 0 and vals = Array.make n 0.0 in
    Array.blit rb.cols 0 cols 0 rb.len;
    Array.blit rb.vals 0 vals 0 rb.len;
    rb.cols <- cols;
    rb.vals <- vals
  end;
  rb.cols.(rb.len) <- c;
  rb.vals.(rb.len) <- v;
  rb.len <- rb.len + 1

let row_find rb c =
  let rec go k =
    if k >= rb.len then 0.0
    else if rb.cols.(k) = c then rb.vals.(k)
    else go (k + 1)
  in
  go 0

type int_buf = { mutable a : int array; mutable n : int }

let ib_create () = { a = Array.make 4 0; n = 0 }

let ib_push b i =
  if b.n = Array.length b.a then begin
    let a = Array.make (2 * b.n) 0 in
    Array.blit b.a 0 a 0 b.n;
    b.a <- a
  end;
  b.a.(b.n) <- i;
  b.n <- b.n + 1

(* --- factorization ------------------------------------------------- *)

let factor ~m ~col =
  if m = 0 then
    {
      m = 0;
      l_src = [||];
      l_tgt = [||];
      l_mul = [||];
      perm_r = [||];
      perm_c = [||];
      u_piv = [||];
      u_cols = [||];
      u_val = [||];
      basis_nnz = 0;
      factor_nnz = 0;
      etas = [||];
      n_eta = 0;
      eta_nnz = 0;
    }
  else begin
    let rows = Array.init m (fun _ -> row_create ()) in
    let collist = Array.init m (fun _ -> ib_create ()) in
    let colcount = Array.make m 0 in
    let row_active = Array.make m true in
    let col_active = Array.make m true in
    let basis_nnz = ref 0 in
    for c = 0 to m - 1 do
      col c (fun i a ->
          if a <> 0.0 then begin
            row_push rows.(i) c a;
            ib_push collist.(c) i;
            colcount.(c) <- colcount.(c) + 1;
            incr basis_nnz
          end)
    done;
    (* scatter accumulator for row merges *)
    let spa = Array.make m 0.0 in
    let spa_mark = Bytes.make m '\000' in
    let fills = ib_create () in
    (* per-column scan dedup (stale entries can duplicate a live one) *)
    let seen = Bytes.make m '\000' in
    (* live rows of the column being evaluated, refreshed by compact *)
    let live_rows = ib_create () in
    (* Drop stale/duplicate entries of column q in place; fill
       [live_rows] with the surviving row indices. *)
    let compact q =
      let lst = collist.(q) in
      live_rows.n <- 0;
      let w = ref 0 in
      for k = 0 to lst.n - 1 do
        let i = lst.a.(k) in
        if
          row_active.(i)
          && Bytes.get seen i = '\000'
          && row_find rows.(i) q <> 0.0
        then begin
          Bytes.set seen i '\001';
          lst.a.(!w) <- i;
          incr w;
          ib_push live_rows i
        end
      done;
      lst.n <- !w;
      for k = 0 to live_rows.n - 1 do
        Bytes.set seen live_rows.a.(k) '\000'
      done
    in
    (* Best acceptable pivot of column q: Markowitz cost, ties to the
       larger magnitude. Returns (cost, |a|, row) or None (dead). *)
    let eval_col q =
      compact q;
      let colmax = ref 0.0 in
      for k = 0 to live_rows.n - 1 do
        let a = abs_float (row_find rows.(live_rows.a.(k)) q) in
        if a > !colmax then colmax := a
      done;
      if !colmax < singular_tol then None
      else begin
        let cq = live_rows.n in
        let best = ref (-1) and best_cost = ref max_int and best_abs = ref 0.0 in
        for k = 0 to live_rows.n - 1 do
          let i = live_rows.a.(k) in
          let a = abs_float (row_find rows.(i) q) in
          if a >= tau *. !colmax then begin
            let cost = (rows.(i).len - 1) * (cq - 1) in
            if cost < !best_cost || (cost = !best_cost && a > !best_abs) then begin
              best := i;
              best_cost := cost;
              best_abs := a
            end
          end
        done;
        if !best < 0 then None else Some (!best_cost, !best_abs, !best)
      end
    in
    let l_src = Array.make m 0 in
    let l_tgt = Array.make m [||] in
    let l_mul = Array.make m [||] in
    let perm_r = Array.make m 0 in
    let perm_c = Array.make m 0 in
    let u_piv = Array.make m 0.0 in
    let u_cols = Array.make m [||] in
    let u_val = Array.make m [||] in
    let factor_nnz = ref m in
    for step = 0 to m - 1 do
      (* candidate columns: up to 4 active ones with the smallest
         exact counts; fall back to scanning every active column when
         all candidates are numerically dead *)
      let mincount = ref max_int in
      for c = 0 to m - 1 do
        if col_active.(c) && colcount.(c) > 0 && colcount.(c) < !mincount
        then mincount := colcount.(c)
      done;
      let pivot = ref None in
      let consider q =
        match eval_col q with
        | None -> ()
        | Some (cost, a, i) -> (
          match !pivot with
          | Some (bc, ba, _, _) when bc < cost || (bc = cost && ba >= a) -> ()
          | _ -> pivot := Some (cost, a, i, q))
      in
      if !mincount < max_int then begin
        let cand = ref 0 in
        let c = ref 0 in
        while !cand < 4 && !c < m do
          if col_active.(!c) && colcount.(!c) = !mincount then begin
            consider !c;
            incr cand
          end;
          incr c
        done
      end;
      if !pivot = None then
        for c = 0 to m - 1 do
          if col_active.(c) && colcount.(c) > 0 then consider c
        done;
      match !pivot with
      | None -> raise Singular
      | Some (_, _, p, q) ->
        (* eval_col ran on several candidates; refresh [live_rows] for
           the winning column before eliminating *)
        compact q;
        let apq = row_find rows.(p) q in
        perm_r.(step) <- p;
        perm_c.(step) <- q;
        u_piv.(step) <- apq;
        (* U remainder of row p, and its retirement from the counts *)
        let prow = rows.(p) in
        let ulen = prow.len - 1 in
        let uc = Array.make (max ulen 0) 0 and uv = Array.make (max ulen 0) 0.0 in
        let w = ref 0 in
        for k = 0 to prow.len - 1 do
          let c = prow.cols.(k) in
          if c <> q then begin
            uc.(!w) <- c;
            uv.(!w) <- prow.vals.(k);
            incr w;
            colcount.(c) <- colcount.(c) - 1
          end
        done;
        u_cols.(step) <- uc;
        u_val.(step) <- uv;
        factor_nnz := !factor_nnz + ulen;
        row_active.(p) <- false;
        col_active.(q) <- false;
        (* eliminate the other rows of column q; [live_rows] is still
           the compacted scan from the winning eval_col *)
        let tgt = ib_create () in
        let mul = ref [] in
        for k = 0 to live_rows.n - 1 do
          let i = live_rows.a.(k) in
          if i <> p then begin
            let aiq = row_find rows.(i) q in
            let mi = aiq /. apq in
            ib_push tgt i;
            mul := mi :: !mul;
            (* new row_i = row_i - mi * row_p, pivot entry removed *)
            let rb = rows.(i) in
            for e = 0 to rb.len - 1 do
              spa.(rb.cols.(e)) <- rb.vals.(e);
              Bytes.set spa_mark rb.cols.(e) '\001'
            done;
            fills.n <- 0;
            for e = 0 to ulen - 1 do
              let c = uc.(e) in
              if Bytes.get spa_mark c = '\001' then
                spa.(c) <- spa.(c) -. (mi *. uv.(e))
              else begin
                spa.(c) <- -.mi *. uv.(e);
                Bytes.set spa_mark c '\001';
                ib_push fills c
              end
            done;
            (* rebuild the row from old pattern (minus q) + fills *)
            let old_len = rb.len in
            let old_cols = Array.sub rb.cols 0 old_len in
            rb.len <- 0;
            for e = 0 to old_len - 1 do
              let c = old_cols.(e) in
              if c <> q then begin
                let x = spa.(c) in
                if abs_float x > drop_tol then row_push rb c x
                else colcount.(c) <- colcount.(c) - 1 (* cancelled *)
              end
            done;
            for e = 0 to fills.n - 1 do
              let c = fills.a.(e) in
              let x = spa.(c) in
              if abs_float x > drop_tol then begin
                row_push rb c x;
                colcount.(c) <- colcount.(c) + 1;
                ib_push collist.(c) i
              end
            done;
            (* clear the accumulator *)
            for e = 0 to old_len - 1 do
              spa.(old_cols.(e)) <- 0.0;
              Bytes.set spa_mark old_cols.(e) '\000'
            done;
            for e = 0 to fills.n - 1 do
              spa.(fills.a.(e)) <- 0.0;
              Bytes.set spa_mark fills.a.(e) '\000'
            done
          end
        done;
        l_src.(step) <- p;
        l_tgt.(step) <- Array.sub tgt.a 0 tgt.n;
        let ml = Array.of_list (List.rev !mul) in
        l_mul.(step) <- ml;
        factor_nnz := !factor_nnz + Array.length ml
    done;
    {
      m;
      l_src;
      l_tgt;
      l_mul;
      perm_r;
      perm_c;
      u_piv;
      u_cols;
      u_val;
      basis_nnz = !basis_nnz;
      factor_nnz = !factor_nnz;
      etas = [||];
      n_eta = 0;
      eta_nnz = 0;
    }
  end

(* --- solves -------------------------------------------------------- *)

let ftran t ~rhs ~into =
  Sparse_vec.clear into;
  if t.m > 0 then begin
    let bv = Sparse_vec.raw rhs in
    (* apply L^-1 ops in elimination order *)
    for k = 0 to t.m - 1 do
      let tgt = t.l_tgt.(k) in
      if Array.length tgt > 0 then begin
        let x = bv.(t.l_src.(k)) in
        if x <> 0.0 then begin
          let mul = t.l_mul.(k) in
          for j = 0 to Array.length tgt - 1 do
            Sparse_vec.add rhs tgt.(j) (-.mul.(j) *. x)
          done
        end
      end
    done;
    (* back substitution with U, descending pivot order *)
    let xv = Sparse_vec.raw into in
    for k = t.m - 1 downto 0 do
      let acc = ref bv.(t.perm_r.(k)) in
      let uc = t.u_cols.(k) and uv = t.u_val.(k) in
      for j = 0 to Array.length uc - 1 do
        let x = xv.(uc.(j)) in
        if x <> 0.0 then acc := !acc -. (uv.(j) *. x)
      done;
      if !acc <> 0.0 then Sparse_vec.set into t.perm_c.(k) (!acc /. t.u_piv.(k))
    done;
    (* product-form etas, oldest first *)
    for l = 0 to t.n_eta - 1 do
      let e = t.etas.(l) in
      let x = xv.(e.e_r) in
      if x <> 0.0 then begin
        let x = x /. e.e_piv in
        Sparse_vec.set into e.e_r x;
        for j = 0 to Array.length e.e_idx - 1 do
          Sparse_vec.add into e.e_idx.(j) (-.e.e_val.(j) *. x)
        done
      end
    done
  end

let btran t ~rhs ~into =
  Sparse_vec.clear into;
  if t.m > 0 then begin
    let cv = Sparse_vec.raw rhs in
    (* transposed etas, newest first: only the pivot position moves *)
    for l = t.n_eta - 1 downto 0 do
      let e = t.etas.(l) in
      let acc = ref cv.(e.e_r) in
      for j = 0 to Array.length e.e_idx - 1 do
        let x = cv.(e.e_idx.(j)) in
        if x <> 0.0 then acc := !acc -. (e.e_val.(j) *. x)
      done;
      let z = !acc /. e.e_piv in
      if z <> 0.0 || cv.(e.e_r) <> 0.0 then Sparse_vec.set rhs e.e_r z
    done;
    (* forward substitution with U^T, ascending pivot order *)
    for k = 0 to t.m - 1 do
      let x = cv.(t.perm_c.(k)) in
      if x <> 0.0 then begin
        let z = x /. t.u_piv.(k) in
        Sparse_vec.set into t.perm_r.(k) z;
        let uc = t.u_cols.(k) and uv = t.u_val.(k) in
        for j = 0 to Array.length uc - 1 do
          Sparse_vec.add rhs uc.(j) (-.uv.(j) *. z)
        done
      end
    done;
    (* transposed L ops, newest first: only the source row moves *)
    let yv = Sparse_vec.raw into in
    for k = t.m - 1 downto 0 do
      let tgt = t.l_tgt.(k) in
      if Array.length tgt > 0 then begin
        let mul = t.l_mul.(k) in
        let acc = ref 0.0 in
        for j = 0 to Array.length tgt - 1 do
          let x = yv.(tgt.(j)) in
          if x <> 0.0 then acc := !acc +. (mul.(j) *. x)
        done;
        if !acc <> 0.0 then Sparse_vec.add into t.l_src.(k) (-. !acc)
      end
    done
  end

(* --- eta file ------------------------------------------------------ *)

let append_eta t ~r ~alpha =
  let piv = Sparse_vec.get alpha r in
  let count = ref 0 in
  Sparse_vec.iter alpha (fun i _ -> if i <> r then incr count);
  let e_idx = Array.make !count 0 and e_val = Array.make !count 0.0 in
  let w = ref 0 in
  Sparse_vec.iter alpha (fun i a ->
      if i <> r then begin
        e_idx.(!w) <- i;
        e_val.(!w) <- a;
        incr w
      end);
  let e = { e_r = r; e_piv = piv; e_idx; e_val } in
  if t.n_eta = Array.length t.etas then begin
    let cap = max 8 (2 * Array.length t.etas) in
    let etas = Array.make cap e in
    Array.blit t.etas 0 etas 0 t.n_eta;
    t.etas <- etas
  end;
  t.etas.(t.n_eta) <- e;
  t.n_eta <- t.n_eta + 1;
  t.eta_nnz <- t.eta_nnz + !count + 1

let eta_count t = t.n_eta

let should_refactor ?eta_limit t =
  let limit =
    match eta_limit with
    | Some l -> max 1 l
    | None -> max 32 (min 128 ((t.m / 4) + 16))
  in
  t.n_eta >= limit || t.eta_nnz > 2 * (t.factor_nnz + t.m)

let stats (t : t) =
  {
    basis_nnz = t.basis_nnz;
    factor_nnz = t.factor_nnz;
    eta_count = t.n_eta;
    eta_nnz = t.eta_nnz;
  }
