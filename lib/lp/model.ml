type var = int

type var_kind = Continuous | Integer | Binary

type sense = Le | Ge | Eq

type objective = Minimize | Maximize

type constr = {
  c_name : string;
  c_terms : (float * int) list; (* deduplicated, increasing var index *)
  c_sense : sense;
  c_rhs : float;
}

type t = {
  m_name : string;
  m_dir : objective;
  mutable v_names : string array;
  mutable v_lb : float array;
  mutable v_ub : float array;
  mutable v_obj : float array;
  mutable v_kind : var_kind array;
  mutable nvars : int;
  mutable constrs_rev : constr list;
  mutable nconstrs : int;
  mutable constrs_cache : constr array option;
}

let create ?(name = "lp") dir =
  {
    m_name = name;
    m_dir = dir;
    v_names = Array.make 16 "";
    v_lb = Array.make 16 0.0;
    v_ub = Array.make 16 0.0;
    v_obj = Array.make 16 0.0;
    v_kind = Array.make 16 Continuous;
    nvars = 0;
    constrs_rev = [];
    nconstrs = 0;
    constrs_cache = None;
  }

let name m = m.m_name

let direction m = m.m_dir

let ensure_capacity m =
  let cap = Array.length m.v_lb in
  if m.nvars >= cap then begin
    let extend a fill =
      let b = Array.make (2 * cap) fill in
      Array.blit a 0 b 0 m.nvars;
      b
    in
    m.v_names <- extend m.v_names "";
    m.v_lb <- extend m.v_lb 0.0;
    m.v_ub <- extend m.v_ub 0.0;
    m.v_obj <- extend m.v_obj 0.0;
    m.v_kind <- extend m.v_kind Continuous
  end

let check_finite what x =
  if Float.is_nan x then
    invalid_arg (Printf.sprintf "Model: NaN %s" what)

let check_coef what x =
  check_finite what x;
  if x = infinity || x = neg_infinity then
    invalid_arg (Printf.sprintf "Model: infinite %s" what)

let add_var m ?name ?lb ?ub ?(obj = 0.0) kind =
  check_coef "objective coefficient" obj;
  Option.iter (check_finite "lower bound") lb;
  Option.iter (check_finite "upper bound") ub;
  ensure_capacity m;
  let i = m.nvars in
  let default_lb, default_ub =
    match kind with
    | Binary -> (0.0, 1.0)
    | Continuous | Integer -> (0.0, infinity)
  in
  let lb = Option.value lb ~default:default_lb in
  let ub = Option.value ub ~default:default_ub in
  let lb, ub =
    match kind with Binary -> (max lb 0.0, min ub 1.0) | _ -> (lb, ub)
  in
  assert (lb <= ub);
  m.v_names.(i) <- (match name with Some s -> s | None -> Printf.sprintf "x%d" i);
  m.v_lb.(i) <- lb;
  m.v_ub.(i) <- ub;
  m.v_obj.(i) <- obj;
  m.v_kind.(i) <- kind;
  m.nvars <- m.nvars + 1;
  i

let dedup_terms terms =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (c, v) ->
      let cur = try Hashtbl.find tbl v with Not_found -> 0.0 in
      Hashtbl.replace tbl v (cur +. c))
    terms;
  Hashtbl.fold (fun v c acc -> if c = 0.0 then acc else (c, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare a b)

let add_constr m ?name terms sense rhs =
  check_coef "right-hand side" rhs;
  List.iter
    (fun (c, v) ->
      check_coef "constraint coefficient" c;
      assert (0 <= v && v < m.nvars))
    terms;
  let c_name =
    match name with Some s -> s | None -> Printf.sprintf "c%d" m.nconstrs
  in
  let c = { c_name; c_terms = dedup_terms terms; c_sense = sense; c_rhs = rhs } in
  m.constrs_rev <- c :: m.constrs_rev;
  m.nconstrs <- m.nconstrs + 1;
  m.constrs_cache <- None

let check_var m v = assert (0 <= v && v < m.nvars)

let set_obj m v c =
  check_var m v;
  m.v_obj.(v) <- c

let set_bounds m v ~lb ~ub =
  check_var m v;
  assert (lb <= ub);
  m.v_lb.(v) <- lb;
  m.v_ub.(v) <- ub

let fix m v x = set_bounds m v ~lb:x ~ub:x

let var_index v = v

let var_of_index m i =
  check_var m i;
  i

let num_vars m = m.nvars

let num_constrs m = m.nconstrs

let var_name m v =
  check_var m v;
  m.v_names.(v)

let var_lb m v =
  check_var m v;
  m.v_lb.(v)

let var_ub m v =
  check_var m v;
  m.v_ub.(v)

let var_obj m v =
  check_var m v;
  m.v_obj.(v)

let var_kind m v =
  check_var m v;
  m.v_kind.(v)

let constrs m =
  match m.constrs_cache with
  | Some a -> a
  | None ->
    let a = Array.of_list (List.rev m.constrs_rev) in
    m.constrs_cache <- Some a;
    a

let constr m i =
  let a = constrs m in
  assert (0 <= i && i < Array.length a);
  a.(i)

let constr_terms m i = (constr m i).c_terms

let constr_sense m i = (constr m i).c_sense

let constr_rhs m i = (constr m i).c_rhs

let constr_name m i = (constr m i).c_name

let iter_constrs m f =
  Array.iteri (fun i c -> f i c.c_terms c.c_sense c.c_rhs) (constrs m)

let columns m =
  let cs = constrs m in
  (* two passes: size each column exactly, then fill in row order *)
  let counts = Array.make m.nvars 0 in
  Array.iter
    (fun c ->
      List.iter (fun (_, v) -> counts.(v) <- counts.(v) + 1) c.c_terms)
    cs;
  let cols =
    Array.init m.nvars (fun v ->
        (Array.make counts.(v) 0, Array.make counts.(v) 0.0))
  in
  let fill = Array.make m.nvars 0 in
  Array.iteri
    (fun i c ->
      List.iter
        (fun (coef, v) ->
          let rows, coefs = cols.(v) in
          let k = fill.(v) in
          rows.(k) <- i;
          coefs.(k) <- coef;
          fill.(v) <- k + 1)
        c.c_terms)
    cs;
  cols

let value_feasible ?(tol = 1e-6) m x =
  assert (Array.length x = m.nvars);
  let bounds_ok = ref true in
  for v = 0 to m.nvars - 1 do
    if x.(v) < m.v_lb.(v) -. tol || x.(v) > m.v_ub.(v) +. tol then
      bounds_ok := false;
    (match m.v_kind.(v) with
    | Continuous -> ()
    | Integer | Binary ->
      if abs_float (x.(v) -. Float.round x.(v)) > tol then bounds_ok := false)
  done;
  let rows_ok = ref true in
  iter_constrs m (fun _ terms sense rhs ->
      let lhs = List.fold_left (fun acc (c, v) -> acc +. (c *. x.(v))) 0.0 terms in
      let scale = 1.0 +. abs_float rhs in
      let ok =
        match sense with
        | Le -> lhs <= rhs +. (tol *. scale)
        | Ge -> lhs >= rhs -. (tol *. scale)
        | Eq -> abs_float (lhs -. rhs) <= tol *. scale
      in
      if not ok then rows_ok := false);
  !bounds_ok && !rows_ok

let objective_value m x =
  let acc = ref 0.0 in
  for v = 0 to m.nvars - 1 do
    acc := !acc +. (m.v_obj.(v) *. x.(v))
  done;
  !acc

let pp_sense ppf = function
  | Le -> Format.pp_print_string ppf "<="
  | Ge -> Format.pp_print_string ppf ">="
  | Eq -> Format.pp_print_string ppf "="

let pp ppf m =
  let dir = match m.m_dir with Minimize -> "minimize" | Maximize -> "maximize" in
  Format.fprintf ppf "@[<v>%s %s:@," m.m_name dir;
  Format.fprintf ppf "  obj:";
  for v = 0 to m.nvars - 1 do
    if m.v_obj.(v) <> 0.0 then
      Format.fprintf ppf " %+g %s" m.v_obj.(v) m.v_names.(v)
  done;
  Format.fprintf ppf "@,";
  iter_constrs m (fun i terms sense rhs ->
      Format.fprintf ppf "  %s:" (constr_name m i);
      List.iter
        (fun (c, v) -> Format.fprintf ppf " %+g %s" c m.v_names.(v))
        terms;
      Format.fprintf ppf " %a %g@," pp_sense sense rhs);
  for v = 0 to m.nvars - 1 do
    let kind =
      match m.v_kind.(v) with
      | Continuous -> ""
      | Integer -> " int"
      | Binary -> " bin"
    in
    Format.fprintf ppf "  %g <= %s <= %g%s@," m.v_lb.(v) m.v_names.(v)
      m.v_ub.(v) kind
  done;
  Format.fprintf ppf "@]"
