(** Indexed sparse scratch vectors for the simplex linear-algebra
    kernel.

    A vector couples a dense value array with an explicit nonzero
    pattern (index list plus membership flags), so the hot solver
    loops can iterate, clear and rebuild work vectors in time
    proportional to the number of nonzeros instead of the basis
    dimension [m]. Values are readable positionally through {!raw}
    (random access is frequent in pricing and ratio tests); all
    {e writes} must go through {!set}/{!add} so the pattern stays a
    superset of the nonzero support — except for bulk dense writes
    into {!raw}, which must be followed by {!rescan}.

    Explicit zeros may linger in the pattern (a cancellation does not
    remove its index); consumers must treat a listed value of [0.] as
    absent. *)

type t

val create : int -> t
(** Zero vector of the given dimension. *)

val dim : t -> int

val clear : t -> unit
(** Zero every listed position and empty the pattern. O(nnz). *)

val set : t -> int -> float -> unit
(** Overwrite a component, adding it to the pattern if absent. *)

val add : t -> int -> float -> unit
(** Accumulate into a component, adding it to the pattern if absent. *)

val get : t -> int -> float

val raw : t -> float array
(** The backing dense value array. Read freely; after writing into it
    directly call {!rescan} before any pattern-driven operation. *)

val nnz : t -> int
(** Number of listed positions (explicit zeros included). *)

val iter : t -> (int -> float -> unit) -> unit
(** Iterate the listed positions, skipping explicit zeros. The
    callback must not modify the pattern of this vector. *)

val rescan : t -> unit
(** Rebuild the pattern from the dense array by scanning all
    components: O(dim). For use after bulk writes through {!raw}
    (the dense kernel path). *)
