(** Two-phase bounded-variable revised primal simplex, with a dual
    simplex phase for warm-started re-solves.

    Solves [min/max c.x] subject to the linear constraints and variable
    bounds of a {!Model.t}, ignoring integrality (the LP relaxation).
    The implementation keeps the constraint matrix as sparse columns
    and maintains an explicit dense basis inverse with periodic
    refactorization; variables may sit non-basic at either finite bound
    (or at zero when free), which keeps the paper's formulations small
    — e.g. the [δ_t ∈ [0,1]] variables of Linear program 2 consume no
    rows.

    Warm starts: passing the parent solve's {!solution.basis} back via
    [solve ?basis] after a bound change re-installs that basis, and —
    because reduced costs depend only on the basis, not the bounds —
    it is dual feasible, so the bounded-variable dual simplex
    re-optimizes in a handful of pivots instead of a full cold solve.
    This is how {!Mip} gets branch-and-bound node throughput. The
    final status is always confirmed by the primal phases, so a warm
    solve can never report a different status than a cold one; on a
    singular or ill-shaped basis the solver silently falls back to the
    cold slack start.

    Anti-cycling: after a run of degenerate pivots the pivot rule
    falls back to Bland's rule until progress resumes. *)

type problem
(** A model preprocessed for repeated solves: sparse columns, slack
    layout and right-hand sides. Bound overrides let {!Mip} re-solve
    branch-and-bound nodes without rebuilding the matrix. *)

type status =
  | Optimal  (** proven optimal within tolerances *)
  | Infeasible  (** phase 1 ended with positive infeasibility *)
  | Unbounded  (** an improving ray was found in phase 2 *)
  | Iteration_limit  (** gave up after [max_iterations] pivots *)

type basis = int array
(** A basis as the basic-variable index per row: structural variables
    are their {!Model.var_index}, the slack of row [r] is
    [num_structural + r]. Compact enough to store at every
    branch-and-bound node. *)

type solution = {
  status : status;
  objective : float;
      (** Objective value in the model's own direction; meaningful only
          when [status = Optimal]. *)
  primal : float array;
      (** Value per structural variable, indexed by
          {!Model.var_index}. *)
  duals : float array;
      (** Simplex multiplier per constraint row. Signs follow the
          minimization form; for a [Maximize] model they are negated so
          that weak duality holds in the model's direction. *)
  reduced_costs : float array;
      (** Reduced cost per structural variable (minimization form). *)
  iterations : int;  (** Total pivots across all phases. *)
  dual_iterations : int;
      (** Pivots spent in the dual simplex phase (0 on cold solves). *)
  basis : basis;
      (** The final basis; feed it back through [solve ?basis] to warm
          start a re-solve after a bound change. *)
}

val of_model : Model.t -> problem
(** Preprocess a model. Later changes to the model's constraints are
    not reflected; bound changes must be passed via [solve]'s
    overrides. *)

val solve :
  ?max_iterations:int ->
  ?lower:float array ->
  ?upper:float array ->
  ?basis:basis ->
  problem ->
  solution
(** Solve the LP relaxation. [lower]/[upper] (length = number of
    structural variables) override the bounds captured by
    {!of_model}. [basis] warm starts from a previous solve's final
    basis: when it is dual feasible under the current bounds (always
    true for a pure bound change on an optimal basis) the dual simplex
    runs first; otherwise the primal phases start from it. A malformed
    or singular basis degrades to a cold solve — never to a different
    answer. Default iteration budget scales with the instance size. *)

val solve_model : ?max_iterations:int -> Model.t -> solution
(** [solve_model m] is [solve (of_model m)]. *)

val num_rows : problem -> int
(** Number of constraint rows. *)

val num_structural : problem -> int
(** Number of structural (model) variables. *)
