(** Two-phase bounded-variable revised primal simplex, with a dual
    simplex phase for warm-started re-solves.

    Solves [min/max c.x] subject to the linear constraints and variable
    bounds of a {!Model.t}, ignoring integrality (the LP relaxation).
    The implementation keeps the constraint matrix as sparse columns
    and represents the basis through a pluggable linear-algebra
    {!kernel}: the default {!Sparse_lu} kernel factorizes the basis
    with Markowitz LU ({!Lu}) and folds pivots in as product-form
    etas, so FTRAN/BTRAN and the dual phase's row extraction run on
    sparse indexed work vectors in O(nonzeros); the {!Dense} kernel
    keeps the explicit inverse and is retained as the numerical
    reference for differential testing ([--dense-kernel] in the CLI
    and bench). Refactorization cadence is adaptive — the LU kernel
    refactorizes when its eta file outgrows the factorization, the
    dense kernel after a pivot count derived from the row count — and
    can be pinned via {!options.refactor_every}. Variables may sit
    non-basic at either finite bound (or at zero when free), which
    keeps the paper's formulations small — e.g. the [δ_t ∈ [0,1]]
    variables of Linear program 2 consume no rows.

    Warm starts: passing the parent solve's {!solution.basis} back via
    [solve ?basis] after a bound change re-installs that basis, and —
    because reduced costs depend only on the basis, not the bounds —
    it is dual feasible, so the bounded-variable dual simplex
    re-optimizes in a handful of pivots instead of a full cold solve.
    This is how {!Mip} gets branch-and-bound node throughput. The
    final status is always confirmed by the primal phases, so a warm
    solve can never report a different status than a cold one; on a
    singular or ill-shaped basis the solver silently falls back to the
    cold slack start.

    Anti-cycling: after a run of degenerate pivots the pivot rule
    falls back to Bland's rule until progress resumes. *)

type problem
(** A model preprocessed for repeated solves: sparse columns, slack
    layout and right-hand sides. Bound overrides let {!Mip} re-solve
    branch-and-bound nodes without rebuilding the matrix. *)

type status =
  | Optimal  (** proven optimal within tolerances *)
  | Infeasible  (** phase 1 ended with positive infeasibility *)
  | Unbounded  (** an improving ray was found in phase 2 *)
  | Iteration_limit  (** gave up after [max_iterations] pivots *)
  | Deadline_reached
      (** the caller's {!Monpos_resilience.Deadline} expired mid-solve;
          the returned basis and values are a consistent snapshot of
          wherever the pivoting stopped *)

type kernel =
  | Dense  (** explicit dense inverse, O(m^2) per pivot — reference *)
  | Sparse_lu
      (** Markowitz LU + eta file, O(nonzeros) per pivot — default *)

type options = {
  kernel : kernel;
  refactor_every : int option;
      (** Pin the refactorization cadence: maximum eta-file length for
          {!Sparse_lu}, pivots between rebuilds for {!Dense}. [None]
          (the default) derives it adaptively — from the eta file's
          size and fill growth on the LU kernel, from the row count on
          the dense one. *)
}

val default_options : options
(** [{ kernel = Sparse_lu; refactor_every = None }] *)

type basis = int array
(** A basis as the basic-variable index per row: structural variables
    are their {!Model.var_index}, the slack of row [r] is
    [num_structural + r]. Compact enough to store at every
    branch-and-bound node. *)

type solution = {
  status : status;
  objective : float;
      (** Objective value in the model's own direction; meaningful only
          when [status = Optimal]. *)
  primal : float array;
      (** Value per structural variable, indexed by
          {!Model.var_index}. *)
  duals : float array;
      (** Simplex multiplier per constraint row. Signs follow the
          minimization form; for a [Maximize] model they are negated so
          that weak duality holds in the model's direction. *)
  reduced_costs : float array;
      (** Reduced cost per structural variable (minimization form). *)
  iterations : int;  (** Total pivots across all phases. *)
  dual_iterations : int;
      (** Pivots spent in the dual simplex phase (0 on cold solves). *)
  basis : basis;
      (** The final basis; feed it back through [solve ?basis] to warm
          start a re-solve after a bound change. *)
}

val of_model : Model.t -> problem
(** Preprocess a model. Later changes to the model's constraints are
    not reflected; bound changes must be passed via [solve]'s
    overrides. *)

val solve :
  ?max_iterations:int ->
  ?lower:float array ->
  ?upper:float array ->
  ?basis:basis ->
  ?deadline:Monpos_resilience.Deadline.t ->
  ?options:options ->
  problem ->
  solution
(** Solve the LP relaxation. [lower]/[upper] (length = number of
    structural variables) override the bounds captured by
    {!of_model}. [basis] warm starts from a previous solve's final
    basis: when it is dual feasible under the current bounds (always
    true for a pure bound change on an optimal basis) the dual simplex
    runs first; otherwise the primal phases start from it. A malformed
    or singular basis degrades to a cold solve — never to a different
    answer. Warm-start bases are installed through the same kernel
    factorization as any other basis. [options] selects the kernel and
    refactorization cadence ({!default_options} otherwise). [deadline]
    (default: none) is polled every 32 pivots in both the primal and
    dual phases; on expiry the solve stops with {!Deadline_reached}
    instead of running the node LP to completion, which is what makes
    {!Mip.options.time_limit} a real wall-clock bound. Default
    iteration budget scales with the instance size. *)

val solve_model :
  ?max_iterations:int ->
  ?deadline:Monpos_resilience.Deadline.t ->
  ?options:options ->
  Model.t ->
  solution
(** [solve_model m] is [solve (of_model m)]. *)

val num_rows : problem -> int
(** Number of constraint rows. *)

val num_structural : problem -> int
(** Number of structural (model) variables. *)
