(* Bounded-variable revised primal and dual simplex over a pluggable
   linear-algebra kernel.

   Conventions: the problem is solved as a minimization; a Maximize
   model has its costs negated on input and its objective and duals
   negated on output. Every row [a.x {<=,>=,=} b] becomes
   [a.x + s = b] with slack bounds [0,inf) / (-inf,0] / [0,0], so the
   initial slack basis is the identity.

   Kernels: the default [Sparse_lu] kernel keeps the basis as a
   Markowitz LU factorization plus a product-form eta file ({!Lu});
   FTRAN/BTRAN and the dual phase's row extraction run on sparse,
   indexed work vectors, so a pivot costs O(nonzeros) instead of
   O(m^2) and a refactorization costs O(fill) instead of the O(m^3)
   Gauss-Jordan of the [Dense] explicit-inverse kernel. The dense
   kernel is kept behind [options.kernel] for differential testing
   and as the numerical reference. Refactorization is adaptive: the
   LU path refactorizes when the eta file outgrows the factorization
   (eta count or accumulated fill), the dense path after a pivot
   count derived from m — both overridable via [options.refactor_every].

   Warm starts: [solve ?basis] installs a caller-supplied basic set
   (typically the parent branch-and-bound node's optimal basis)
   through the same kernel factorization as any other basis, parks
   each nonbasic variable on the bound its reduced-cost sign asks for,
   and — when the result is dual feasible, which it always is after a
   pure bound change on an optimal basis — runs the dual simplex to
   primal feasibility. The primal phases then run from wherever the
   dual phase stopped, so the final status and objective are always
   produced by the same primal machinery as a cold solve; the dual
   phase is purely an accelerator. *)

module Trace = Monpos_obs.Trace
module Metrics = Monpos_obs.Metrics
module Span = Monpos_obs.Span
module Deadline = Monpos_resilience.Deadline
module Chaos = Monpos_resilience.Chaos

(* pivot work is one metric family split by phase label; summing the
   label sets recovers the historical total *)
let m_recoveries =
  lazy
    (Metrics.counter
       ~labels:[ ("solver", "simplex") ]
       Metrics.default "resilience.recoveries")

let m_primal_iterations =
  lazy
    (Metrics.counter
       ~labels:[ ("phase", "primal") ]
       Metrics.default "simplex.iterations")

let m_warm_starts =
  lazy (Metrics.counter Metrics.default "simplex.warm_starts")

let m_dual_iterations =
  lazy
    (Metrics.counter
       ~labels:[ ("phase", "dual") ]
       Metrics.default "simplex.iterations")

let m_refactorizations =
  lazy (Metrics.counter Metrics.default "simplex.refactorizations")

(* length of the eta file when a factorization is retired *)
let m_eta_len =
  lazy
    (Metrics.histogram
       ~buckets:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]
       Metrics.default "simplex.eta_len")

(* nnz(L+U) / nnz(B) of each fresh LU factorization *)
let m_lu_fill =
  lazy
    (Metrics.histogram
       ~buckets:[| 1.0; 1.25; 1.5; 2.0; 3.0; 5.0; 10.0 |]
       Metrics.default "simplex.lu_fill")

(* nnz(alpha) / m of each entering-column FTRAN *)
let m_ftran_nnz =
  lazy
    (Metrics.histogram
       ~buckets:[| 0.01; 0.02; 0.05; 0.1; 0.2; 0.3; 0.5; 0.7; 0.9; 1.0 |]
       Metrics.default "simplex.ftran_nnz_ratio")

type col = { rows : int array; coefs : float array }

type problem = {
  n : int; (* structural variables *)
  m : int; (* rows *)
  cols : col array; (* structural sparse columns, length n *)
  cost : float array; (* structural costs, minimization form *)
  base_lb : float array; (* structural bounds from the model *)
  base_ub : float array;
  slack_lb : float array; (* per-row slack bounds *)
  slack_ub : float array;
  b : float array;
  maximize : bool;
}

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit
  | Deadline_reached

type basis = int array

type solution = {
  status : status;
  objective : float;
  primal : float array;
  duals : float array;
  reduced_costs : float array;
  iterations : int;
  dual_iterations : int;
  basis : basis;
}

type kernel = Dense | Sparse_lu

type options = { kernel : kernel; refactor_every : int option }

let default_options = { kernel = Sparse_lu; refactor_every = None }

let num_rows p = p.m

let num_structural p = p.n

let of_model model =
  let n = Model.num_vars model in
  let m = Model.num_constrs model in
  let cols =
    Array.map (fun (rows, coefs) -> { rows; coefs }) (Model.columns model)
  in
  let b = Array.make (max m 1) 0.0 in
  let slack_lb = Array.make (max m 1) 0.0 in
  let slack_ub = Array.make (max m 1) 0.0 in
  Model.iter_constrs model (fun i _terms sense rhs ->
      b.(i) <- rhs;
      match sense with
      | Model.Le ->
        slack_lb.(i) <- 0.0;
        slack_ub.(i) <- infinity
      | Model.Ge ->
        slack_lb.(i) <- neg_infinity;
        slack_ub.(i) <- 0.0
      | Model.Eq ->
        slack_lb.(i) <- 0.0;
        slack_ub.(i) <- 0.0);
  let maximize = Model.direction model = Model.Maximize in
  let cost =
    Array.init n (fun v ->
        let c = Model.var_obj model (Model.var_of_index model v) in
        if maximize then -.c else c)
  in
  let base_lb =
    Array.init n (fun v -> Model.var_lb model (Model.var_of_index model v))
  in
  let base_ub =
    Array.init n (fun v -> Model.var_ub model (Model.var_of_index model v))
  in
  { n; m; cols; cost; base_lb; base_ub; slack_lb; slack_ub; b; maximize }

(* --- solver state ------------------------------------------------------ *)

type vstatus = Basic | At_lower | At_upper | Free_nb

type kstate =
  | Kdense of float array array (* explicit m x m inverse *)
  | Klu of lu_slot (* factorization + eta file; None before first factor *)

and lu_slot = { mutable fact : Lu.t option }

type state = {
  p : problem;
  nn : int; (* n + m total columns *)
  lb : float array; (* length nn *)
  ub : float array;
  x : float array; (* current value per column *)
  vstat : vstatus array;
  basic_var : int array; (* row -> column *)
  in_row : int array; (* column -> row or -1 *)
  kern : kstate;
  alpha : Sparse_vec.t; (* FTRAN result, indexed by basis position *)
  y : Sparse_vec.t; (* BTRAN result, indexed by constraint row *)
  work : Sparse_vec.t; (* kernel right-hand-side scratch *)
  rho : Sparse_vec.t; (* dual phase pricing row of B^-1 *)
  deadline : Deadline.t;
  mutable iters : int;
  mutable degenerate_run : int;
  mutable bland : bool;
  mutable pivots_since_factor : int;
  mutable refactor_override : int option;
}

let feas_tol = 1e-7

let dj_tol = 1e-7

let piv_tol = 1e-8

let zero_tol = 1e-11

(* Column access treating slacks as unit columns. *)
let col_iter st j f =
  if j < st.p.n then begin
    let c = st.p.cols.(j) in
    for k = 0 to Array.length c.rows - 1 do
      f c.rows.(k) c.coefs.(k)
    done
  end
  else f (j - st.p.n) 1.0

let cost_of st j = if j < st.p.n then st.p.cost.(j) else 0.0

let kernel_name st =
  match st.kern with Kdense _ -> "dense" | Klu _ -> "sparse_lu"

(* --- kernel dispatch --------------------------------------------------- *)

(* alpha := B^-1 work. The work vector is consumed. *)
let kernel_ftran st =
  match st.kern with
  | Kdense binv ->
    Sparse_vec.clear st.alpha;
    let av = Sparse_vec.raw st.alpha in
    let m = st.p.m in
    Sparse_vec.iter st.work (fun i a ->
        for r = 0 to m - 1 do
          av.(r) <- av.(r) +. (binv.(r).(i) *. a)
        done);
    Sparse_vec.rescan st.alpha
  | Klu slot -> (
    match slot.fact with
    | Some f -> Lu.ftran f ~rhs:st.work ~into:st.alpha
    | None -> Sparse_vec.clear st.alpha)

(* y := B^-T work. The work vector is consumed. *)
let kernel_btran st =
  match st.kern with
  | Kdense binv ->
    Sparse_vec.clear st.y;
    let yv = Sparse_vec.raw st.y in
    let m = st.p.m in
    Sparse_vec.iter st.work (fun r c ->
        let row = binv.(r) in
        for i = 0 to m - 1 do
          yv.(i) <- yv.(i) +. (c *. row.(i))
        done);
    Sparse_vec.rescan st.y
  | Klu slot -> (
    match slot.fact with
    | Some f -> Lu.btran f ~rhs:st.work ~into:st.y
    | None -> Sparse_vec.clear st.y)

(* rho := row [r] of B^-1 (equivalently B^-T e_r). *)
let kernel_row st r =
  match st.kern with
  | Kdense binv ->
    Sparse_vec.clear st.rho;
    let rv = Sparse_vec.raw st.rho in
    Array.blit binv.(r) 0 rv 0 st.p.m;
    Sparse_vec.rescan st.rho
  | Klu slot -> (
    Sparse_vec.clear st.work;
    Sparse_vec.set st.work r 1.0;
    match slot.fact with
    | Some f -> Lu.btran f ~rhs:st.work ~into:st.rho
    | None -> Sparse_vec.clear st.rho)

(* alpha := B^-1 A_j *)
let ftran st j =
  Sparse_vec.clear st.work;
  col_iter st j (fun i a -> if a <> 0.0 then Sparse_vec.add st.work i a);
  kernel_ftran st;
  if st.p.m > 0 then
    Metrics.observe (Lazy.force m_ftran_nnz)
      (float_of_int (Sparse_vec.nnz st.alpha) /. float_of_int st.p.m)

(* work := per-row basic costs for the current phase objective *)
let load_phase_costs st ~phase1 =
  Sparse_vec.clear st.work;
  for r = 0 to st.p.m - 1 do
    let v = st.basic_var.(r) in
    let c =
      if phase1 then begin
        let x = st.x.(v) in
        if x < st.lb.(v) -. feas_tol then -1.0
        else if x > st.ub.(v) +. feas_tol then 1.0
        else 0.0
      end
      else cost_of st v
    in
    if c <> 0.0 then Sparse_vec.set st.work r c
  done

let reduced_cost st j cost_j =
  let yv = Sparse_vec.raw st.y in
  let acc = ref cost_j in
  col_iter st j (fun i a -> acc := !acc -. (yv.(i) *. a));
  !acc

(* Recompute basic variable values from nonbasic values. *)
let recompute_basics st =
  let m = st.p.m in
  Sparse_vec.clear st.work;
  for i = 0 to m - 1 do
    if st.p.b.(i) <> 0.0 then Sparse_vec.set st.work i st.p.b.(i)
  done;
  for j = 0 to st.nn - 1 do
    if st.vstat.(j) <> Basic && st.x.(j) <> 0.0 then
      col_iter st j (fun i a -> Sparse_vec.add st.work i (-.a *. st.x.(j)))
  done;
  kernel_ftran st;
  let av = Sparse_vec.raw st.alpha in
  for r = 0 to m - 1 do
    st.x.(st.basic_var.(r)) <- av.(r)
  done

exception Singular_basis

(* Rebuild the basis representation from scratch: Gauss-Jordan with
   partial pivoting for the dense kernel, a Markowitz LU for the
   sparse one. *)
let refactorize st =
  let m = st.p.m in
  if m > 0 then begin
    (match st.kern with
    | Kdense binv ->
      let mat = Array.init m (fun _ -> Array.make m 0.0) in
      for r = 0 to m - 1 do
        let j = st.basic_var.(r) in
        col_iter st j (fun i a -> mat.(i).(r) <- a)
      done;
      let inv =
        Array.init m (fun r ->
            Array.init m (fun i -> if r = i then 1.0 else 0.0))
      in
      for k = 0 to m - 1 do
        (* partial pivot *)
        let best = ref k and best_abs = ref (abs_float mat.(k).(k)) in
        for i = k + 1 to m - 1 do
          let a = abs_float mat.(i).(k) in
          if a > !best_abs then begin
            best := i;
            best_abs := a
          end
        done;
        if !best_abs < 1e-12 then raise Singular_basis;
        if !best <> k then begin
          let t = mat.(k) in
          mat.(k) <- mat.(!best);
          mat.(!best) <- t;
          let t = inv.(k) in
          inv.(k) <- inv.(!best);
          inv.(!best) <- t
        end;
        let piv = mat.(k).(k) in
        let mk = mat.(k) and ik = inv.(k) in
        for c = 0 to m - 1 do
          mk.(c) <- mk.(c) /. piv;
          ik.(c) <- ik.(c) /. piv
        done;
        for i = 0 to m - 1 do
          if i <> k then begin
            let f = mat.(i).(k) in
            if f <> 0.0 then begin
              let mi = mat.(i) and ii = inv.(i) in
              for c = 0 to m - 1 do
                mi.(c) <- mi.(c) -. (f *. mk.(c));
                ii.(c) <- ii.(c) -. (f *. ik.(c))
              done
            end
          end
        done
      done;
      for r = 0 to m - 1 do
        Array.blit inv.(r) 0 binv.(r) 0 m
      done
    | Klu slot ->
      (match slot.fact with
      | Some f ->
        let s = Lu.stats f in
        Metrics.observe (Lazy.force m_eta_len) (float_of_int s.Lu.eta_count)
      | None -> ());
      let fact =
        Span.run "lu_factor" @@ fun () ->
        try Lu.factor ~m ~col:(fun r f -> col_iter st st.basic_var.(r) f)
        with Lu.Singular -> raise Singular_basis
      in
      let s = Lu.stats fact in
      Metrics.observe (Lazy.force m_lu_fill)
        (float_of_int s.Lu.factor_nnz /. float_of_int (max 1 s.Lu.basis_nnz));
      slot.fact <- Some fact);
    Metrics.incr (Lazy.force m_refactorizations);
    st.pivots_since_factor <- 0;
    recompute_basics st
  end

(* Refactorization cadence. The LU kernel asks its own eta file (count
   and accumulated fill); the dense kernel refactorizes after a pivot
   count derived from m — small bases drift fast and are cheap to
   rebuild. [refactor_override] (options or the numerical-recovery
   path) forces a cadence / eta limit. *)
let need_refactor st =
  match st.kern with
  | Kdense _ ->
    let every =
      match st.refactor_override with
      | Some k -> max 1 k
      | None -> max 32 (min 256 (4 * st.p.m))
    in
    st.pivots_since_factor >= every
  | Klu slot -> (
    match slot.fact with
    | Some f -> Lu.should_refactor ?eta_limit:st.refactor_override f
    | None -> true)

let violation st j =
  let x = st.x.(j) in
  if x < st.lb.(j) -. feas_tol then st.lb.(j) -. x
  else if x > st.ub.(j) +. feas_tol then x -. st.ub.(j)
  else 0.0

let total_infeasibility st =
  let acc = ref 0.0 in
  for r = 0 to st.p.m - 1 do
    acc := !acc +. violation st st.basic_var.(r)
  done;
  !acc

(* Entering-variable selection. [phase1] switches the costs: nonbasic
   phase-1 costs are zero, so d_j = -y.A_j. Returns (j, dir, d_j). *)
let choose_entering st ~phase1 =
  let best = ref (-1) and best_score = ref 0.0 and best_dir = ref 1.0 in
  let consider j d dir =
    let score = abs_float d in
    if score > dj_tol then
      if st.bland then begin
        if !best = -1 then begin
          best := j;
          best_score := score;
          best_dir := dir
        end
      end
      else if score > !best_score then begin
        best := j;
        best_score := score;
        best_dir := dir
      end
  in
  for j = 0 to st.nn - 1 do
    match st.vstat.(j) with
    | Basic -> ()
    | At_lower | At_upper | Free_nb ->
      if st.ub.(j) -. st.lb.(j) > zero_tol || st.vstat.(j) = Free_nb then begin
        let cj = if phase1 then 0.0 else cost_of st j in
        let d = reduced_cost st j cj in
        (match st.vstat.(j) with
        | At_lower -> if d < -.dj_tol then consider j d 1.0
        | At_upper -> if d > dj_tol then consider j d (-1.0)
        | Free_nb ->
          if d < -.dj_tol then consider j d 1.0
          else if d > dj_tol then consider j d (-1.0)
        | Basic -> ())
      end
  done;
  if !best = -1 then None else Some (!best, !best_dir)

type leave = Bound_flip | Leave of int * [ `Lower | `Upper ]

(* Ratio test over the nonzeros of the ftran'd entering column. In
   phase 1 infeasible basics may travel to the bound they violate and
   leave there. Returns (t, leave) or None when the direction is
   unbounded. Ties within [tie] are broken by the largest pivot
   magnitude (stability) or, in Bland mode, by the smallest
   leaving-variable index (anti-cycling). *)
let ratio_test st j dir ~phase1 =
  let tie = 1e-9 in
  let flip_limit =
    let span = st.ub.(j) -. st.lb.(j) in
    if span < 0.0 then 0.0 else span
  in
  let t_best = ref flip_limit in
  let leave = ref Bound_flip in
  let best_piv = ref 0.0 in
  let leave_var = ref max_int in
  Sparse_vec.iter st.alpha (fun r a ->
      if abs_float a > piv_tol then begin
        let v = st.basic_var.(r) in
        let delta = -.dir *. a in
        let xr = st.x.(v) and lr = st.lb.(v) and ur = st.ub.(v) in
        let candidate t side =
          let t = if t < 0.0 then 0.0 else t in
          let strictly_less = t < !t_best -. tie in
          let tied = (not strictly_less) && t <= !t_best +. tie in
          let wins_tie =
            tied
            &&
            if st.bland then v < !leave_var
            else abs_float a > !best_piv
          in
          if strictly_less || wins_tie then begin
            if t < !t_best then t_best := t;
            leave := Leave (r, side);
            best_piv := abs_float a;
            leave_var := v
          end
        in
        let below = xr < lr -. feas_tol and above = xr > ur +. feas_tol in
        if (not below) && not above then begin
          if delta < 0.0 && lr > neg_infinity then
            candidate ((xr -. lr) /. -.delta) `Lower
          else if delta > 0.0 && ur < infinity then
            candidate ((ur -. xr) /. delta) `Upper
        end
        else if phase1 then begin
          if below && delta > 0.0 then candidate ((lr -. xr) /. delta) `Lower
          else if above && delta < 0.0 then
            candidate ((xr -. ur) /. -.delta) `Upper
        end
      end);
  if !t_best = infinity then None else Some (!t_best, !leave)

(* Apply a step of length t along entering variable j / direction dir. *)
let apply_step st j dir t leave =
  let m = st.p.m in
  (* move basics along the nonzeros of alpha *)
  Sparse_vec.iter st.alpha (fun r a ->
      let v = st.basic_var.(r) in
      st.x.(v) <- st.x.(v) -. (a *. dir *. t));
  match leave with
  | Bound_flip ->
    (match st.vstat.(j) with
    | At_lower ->
      st.vstat.(j) <- At_upper;
      st.x.(j) <- st.ub.(j)
    | At_upper ->
      st.vstat.(j) <- At_lower;
      st.x.(j) <- st.lb.(j)
    | Free_nb | Basic ->
      (* a free variable has no opposite bound: a flip step of finite
         length can only come from a finite bound, so this is
         unreachable for Free_nb; keep the value consistent anyway. *)
      st.x.(j) <- st.x.(j) +. (dir *. t))
  | Leave (r, side) ->
    let v = st.basic_var.(r) in
    (match side with
    | `Lower ->
      st.x.(v) <- st.lb.(v);
      st.vstat.(v) <- At_lower
    | `Upper ->
      st.x.(v) <- st.ub.(v);
      st.vstat.(v) <- At_upper);
    st.in_row.(v) <- -1;
    st.x.(j) <- st.x.(j) +. (dir *. t);
    st.vstat.(j) <- Basic;
    st.basic_var.(r) <- j;
    st.in_row.(j) <- r;
    (* fold the basis change into the kernel *)
    (match st.kern with
    | Kdense binv ->
      (* binv := E * binv *)
      let piv = Sparse_vec.get st.alpha r in
      let pr = binv.(r) in
      for k = 0 to m - 1 do
        pr.(k) <- pr.(k) /. piv
      done;
      Sparse_vec.iter st.alpha (fun i f ->
          if i <> r && abs_float f > zero_tol then begin
            let row = binv.(i) in
            for k = 0 to m - 1 do
              row.(k) <- row.(k) -. (f *. pr.(k))
            done
          end)
    | Klu slot -> (
      match slot.fact with
      | Some fct -> Lu.append_eta fct ~r ~alpha:st.alpha
      | None -> assert false));
    st.pivots_since_factor <- st.pivots_since_factor + 1

(* One simplex phase; [phase1] selects the infeasibility objective.
   Returns [`Done] (phase-1 feasible / phase-2 optimal), [`Infeasible],
   [`Unbounded] or [`Iteration_limit]. *)
(* Deadline polling stride: a clock read every 32 pivots bounds the
   overrun past the budget to whatever 31 pivots cost, without the
   hot loops paying a syscall-ish read per iteration. *)
let deadline_due st = st.iters land 31 = 0 && Deadline.expired st.deadline

(* Fault-injection point for the numerical-recovery ladder: a
   singular basis out of nowhere, as if the factorization had
   drifted. Unscoped (fires wherever a chaos seed is installed)
   because the recovery below is internal to [solve] and
   answer-preserving. *)
let chaos_singular st =
  st.iters > 0 && Chaos.fire ~scoped:false ~site:"lu.singular" ~p:0.002 ()

let run_phase st ~phase1 ~max_iterations =
  let continue = ref true in
  let result = ref `Done in
  while !continue do
    if st.iters >= max_iterations then begin
      result := `Iteration_limit;
      continue := false
    end
    else if deadline_due st then begin
      result := `Deadline;
      continue := false
    end
    else begin
      if chaos_singular st then raise Singular_basis;
      if st.iters > 0 && need_refactor st then refactorize st;
      let inf = total_infeasibility st in
      if phase1 && inf <= feas_tol then begin
        result := `Done;
        continue := false
      end
      else begin
        (* multipliers for the current phase objective *)
        load_phase_costs st ~phase1;
        kernel_btran st;
        match choose_entering st ~phase1 with
        | None ->
          if phase1 && inf > feas_tol then result := `Infeasible
          else result := `Done;
          continue := false
        | Some (j, dir) -> (
          ftran st j;
          match ratio_test st j dir ~phase1 with
          | None ->
            result := `Unbounded;
            continue := false
          | Some (t, leave) ->
            apply_step st j dir t leave;
            st.iters <- st.iters + 1;
            if t <= 1e-10 then begin
              st.degenerate_run <- st.degenerate_run + 1;
              if st.degenerate_run > 80 then st.bland <- true
            end
            else begin
              st.degenerate_run <- 0;
              st.bland <- false
            end)
      end
    end
  done;
  !result

(* --- warm starts and the dual simplex ----------------------------- *)

(* Structural sanity of a caller-supplied basis: one distinct column
   per row, all in range. Anything else is silently treated as "no
   warm start" — a basis from a different problem must never crash the
   solve. *)
let basis_well_formed st basis =
  Array.length basis = st.p.m
  && begin
    let seen = Array.make st.nn false in
    Array.for_all
      (fun j ->
        j >= 0 && j < st.nn && not seen.(j)
        && begin
          seen.(j) <- true;
          true
        end)
      basis
  end

(* Install the basic set and factorize it through the kernel. Raises
   Singular_basis when the columns are dependent; the caller falls
   back to a cold start. *)
let install_basis st basis =
  for j = 0 to st.nn - 1 do
    st.in_row.(j) <- -1
  done;
  for r = 0 to st.p.m - 1 do
    st.basic_var.(r) <- basis.(r);
    st.in_row.(basis.(r)) <- r
  done;
  for j = 0 to st.nn - 1 do
    if st.in_row.(j) >= 0 then st.vstat.(j) <- Basic
    else begin
      (* provisional parking spot; re-chosen by reduced-cost sign in
         [prepare_warm_nonbasics] once the factorization exists *)
      st.vstat.(j) <- (if st.lb.(j) > neg_infinity then At_lower
                       else if st.ub.(j) < infinity then At_upper
                       else Free_nb);
      st.x.(j) <-
        (if st.lb.(j) > neg_infinity then st.lb.(j)
         else if st.ub.(j) < infinity then st.ub.(j)
         else 0.0)
    end
  done;
  refactorize st

(* Park every nonbasic variable on the bound its reduced cost wants:
   a boxed variable is always dual feasible this way; a one-sided or
   free variable can only sit where its bounds allow, so a wrong-signed
   reduced cost there breaks dual feasibility. Returns whether the
   basis is dual feasible (so the dual simplex may run). *)
let prepare_warm_nonbasics st =
  load_phase_costs st ~phase1:false;
  kernel_btran st;
  let dual_ok = ref true in
  for j = 0 to st.nn - 1 do
    if st.in_row.(j) < 0 then begin
      let l = st.lb.(j) and u = st.ub.(j) in
      let d = reduced_cost st j (cost_of st j) in
      if l > neg_infinity && u < infinity then
        if d >= 0.0 then begin
          st.vstat.(j) <- At_lower;
          st.x.(j) <- l
        end
        else begin
          st.vstat.(j) <- At_upper;
          st.x.(j) <- u
        end
      else if l > neg_infinity then begin
        st.vstat.(j) <- At_lower;
        st.x.(j) <- l;
        if d < -.dj_tol then dual_ok := false
      end
      else if u < infinity then begin
        st.vstat.(j) <- At_upper;
        st.x.(j) <- u;
        if d > dj_tol then dual_ok := false
      end
      else begin
        st.vstat.(j) <- Free_nb;
        st.x.(j) <- 0.0;
        if abs_float d > dj_tol then dual_ok := false
      end
    end
  done;
  recompute_basics st;
  !dual_ok

(* Dual simplex phase. Precondition: the basis is dual feasible (every
   nonbasic reduced cost has its optimality sign). Each iteration picks
   the most bound-violating basic variable as the leaving row, extracts
   that row of B^-1 through the kernel (a sparse BTRAN of a unit vector
   on the LU path), prices it against the nonbasic columns, and enters
   the column whose reduced-cost ratio |d_j / alpha_j| is smallest
   among those that move the violated basic toward its bound — the
   bounded-variable dual ratio test, ties broken by the largest pivot
   magnitude.

   Returns [`Done] (primal feasible, hence optimal), [`No_pivot] (a
   violated row admits no entering column — the strong hint of primal
   infeasibility, confirmed afterwards by primal phase 1),
   [`Numerical] (row/column pivot disagreement; the primal phases take
   over from the current basis) or [`Iteration_limit]. *)
let run_dual_phase st ~max_iterations =
  let m = st.p.m in
  let continue = ref true in
  let result = ref `Done in
  while !continue do
    if st.iters >= max_iterations then begin
      result := `Iteration_limit;
      continue := false
    end
    else if deadline_due st then begin
      result := `Deadline;
      continue := false
    end
    else begin
      if chaos_singular st then raise Singular_basis;
      if st.iters > 0 && need_refactor st then refactorize st;
      let r_best = ref (-1) and viol_best = ref feas_tol in
      for r = 0 to m - 1 do
        let v = violation st st.basic_var.(r) in
        if v > !viol_best then begin
          r_best := r;
          viol_best := v
        end
      done;
      if !r_best = -1 then begin
        result := `Done;
        continue := false
      end
      else begin
        let r = !r_best in
        let v = st.basic_var.(r) in
        let to_upper = st.x.(v) > st.ub.(v) +. feas_tol in
        (* true multipliers for the reduced costs *)
        load_phase_costs st ~phase1:false;
        kernel_btran st;
        kernel_row st r;
        let rv = Sparse_vec.raw st.rho in
        let alpha_of j =
          let acc = ref 0.0 in
          col_iter st j (fun i a -> acc := !acc +. (rv.(i) *. a));
          !acc
        in
        let best = ref (-1) in
        let best_ratio = ref infinity in
        let best_piv = ref 0.0 in
        for j = 0 to st.nn - 1 do
          match st.vstat.(j) with
          | Basic -> ()
          | (At_lower | At_upper | Free_nb) as vs ->
            if vs = Free_nb || st.ub.(j) -. st.lb.(j) > zero_tol then begin
              let a = alpha_of j in
              if abs_float a > piv_tol then begin
                let eligible =
                  match vs with
                  | At_lower -> if to_upper then a > 0.0 else a < 0.0
                  | At_upper -> if to_upper then a < 0.0 else a > 0.0
                  | Free_nb -> true
                  | Basic -> false
                in
                if eligible then begin
                  let d = reduced_cost st j (cost_of st j) in
                  let ratio = abs_float (d /. a) in
                  if
                    ratio < !best_ratio -. 1e-9
                    || (ratio <= !best_ratio +. 1e-9 && abs_float a > !best_piv)
                  then begin
                    best := j;
                    best_ratio := ratio;
                    best_piv := abs_float a
                  end
                end
              end
            end
        done;
        if !best = -1 then begin
          result := `No_pivot;
          continue := false
        end
        else begin
          let j = !best in
          ftran st j;
          let a = Sparse_vec.get st.alpha r in
          if abs_float a <= piv_tol then begin
            (* the row view and the freshly ftran'd column disagree:
               the factorization has drifted; let the primal phases
               finish from here rather than pivot on noise *)
            result := `Numerical;
            continue := false
          end
          else begin
            let bound = if to_upper then st.ub.(v) else st.lb.(v) in
            let t = (st.x.(v) -. bound) /. a in
            let dir = if t >= 0.0 then 1.0 else -1.0 in
            apply_step st j dir (abs_float t)
              (Leave (r, if to_upper then `Upper else `Lower));
            st.iters <- st.iters + 1
          end
        end
      end
    end
  done;
  !result

let default_iterations p = 20_000 + (60 * (p.n + p.m))

let solve ?max_iterations ?lower ?upper ?basis ?(deadline = Deadline.none)
    ?(options = default_options) p =
  let max_iterations =
    match max_iterations with Some k -> k | None -> default_iterations p
  in
  let n = p.n and m = p.m in
  let nn = n + m in
  let lb = Array.make nn 0.0 and ub = Array.make nn 0.0 in
  for j = 0 to n - 1 do
    lb.(j) <- (match lower with Some l -> l.(j) | None -> p.base_lb.(j));
    ub.(j) <- (match upper with Some u -> u.(j) | None -> p.base_ub.(j))
  done;
  for r = 0 to m - 1 do
    lb.(n + r) <- p.slack_lb.(r);
    ub.(n + r) <- p.slack_ub.(r)
  done;
  let bounds_ok = ref true in
  for j = 0 to nn - 1 do
    if lb.(j) > ub.(j) +. 1e-12 then bounds_ok := false
  done;
  let empty_solution status =
    {
      status;
      objective = nan;
      primal = Array.make n 0.0;
      duals = Array.make m 0.0;
      reduced_costs = Array.make n 0.0;
      iterations = 0;
      dual_iterations = 0;
      basis = Array.init m (fun r -> n + r);
    }
  in
  if not !bounds_ok then empty_solution Infeasible
  else begin
    let st =
      {
        p;
        nn;
        lb;
        ub;
        x = Array.make nn 0.0;
        vstat = Array.make nn At_lower;
        basic_var = Array.init (max m 1) (fun r -> n + r);
        in_row = Array.make nn (-1);
        kern =
          (match options.kernel with
          | Dense ->
            Kdense
              (Array.init (max m 1) (fun r ->
                   Array.init (max m 1) (fun i -> if r = i then 1.0 else 0.0)))
          | Sparse_lu -> Klu { fact = None });
        alpha = Sparse_vec.create m;
        y = Sparse_vec.create m;
        work = Sparse_vec.create m;
        rho = Sparse_vec.create m;
        deadline;
        iters = 0;
        degenerate_run = 0;
        bland = false;
        pivots_since_factor = 0;
        refactor_override = options.refactor_every;
      }
    in
    (* (re)start from the all-slack basis; used both for the initial
       start and to recover from a numerically singular basis *)
    let reset_to_slack_basis () =
      for j = 0 to nn - 1 do
        st.in_row.(j) <- -1
      done;
      for r = 0 to m - 1 do
        st.basic_var.(r) <- n + r;
        st.in_row.(n + r) <- r
      done;
      for j = 0 to n - 1 do
        let l = lb.(j) and u = ub.(j) in
        if l > neg_infinity && u < infinity then
          if abs_float l <= abs_float u then begin
            st.vstat.(j) <- At_lower;
            st.x.(j) <- l
          end
          else begin
            st.vstat.(j) <- At_upper;
            st.x.(j) <- u
          end
        else if l > neg_infinity then begin
          st.vstat.(j) <- At_lower;
          st.x.(j) <- l
        end
        else if u < infinity then begin
          st.vstat.(j) <- At_upper;
          st.x.(j) <- u
        end
        else begin
          st.vstat.(j) <- Free_nb;
          st.x.(j) <- 0.0
        end
      done;
      for r = 0 to m - 1 do
        st.vstat.(n + r) <- Basic
      done;
      (* factorizing the slack identity is trivial for both kernels
         and cannot be singular; it also recomputes the basics *)
      if m > 0 then refactorize st else recompute_basics st
    in
    reset_to_slack_basis ();
    (* Warm start: install the caller's basis and decide whether the
       dual simplex may run. Any failure (wrong shape, singular
       columns) falls back to the cold slack basis just built. *)
    let warm_dual = ref false in
    let warm_installed = ref false in
    (match basis with
    | Some bas when m > 0 && basis_well_formed st bas -> (
      match install_basis st bas with
      | () ->
        warm_installed := true;
        warm_dual := prepare_warm_nonbasics st
      | exception Singular_basis -> reset_to_slack_basis ())
    | _ -> ());
    if !warm_installed then begin
      Metrics.incr (Lazy.force m_warm_starts);
      if not !warm_dual then begin
        let sink = Trace.current () in
        if Trace.enabled sink then
          Trace.warm_start sink ~dual_feasible:false ~iterations:0
            ~kernel:(kernel_name st) ~outcome:"primal_fallback"
      end
    end;
    let dual_iters = ref 0 in
    let finish status =
      (* multipliers for the true objective at the final basis *)
      load_phase_costs st ~phase1:false;
      kernel_btran st;
      (match st.kern with
      | Klu { fact = Some f } ->
        Metrics.observe (Lazy.force m_eta_len)
          (float_of_int (Lu.eta_count f))
      | _ -> ());
      let yv = Sparse_vec.raw st.y in
      let primal = Array.sub st.x 0 n in
      let obj_min =
        let acc = ref 0.0 in
        for j = 0 to n - 1 do
          acc := !acc +. (p.cost.(j) *. primal.(j))
        done;
        !acc
      in
      let sign = if p.maximize then -1.0 else 1.0 in
      let duals = Array.init m (fun r -> sign *. yv.(r)) in
      let reduced_costs =
        Array.init n (fun j -> reduced_cost st j p.cost.(j))
      in
      {
        status;
        objective = sign *. obj_min;
        primal;
        duals;
        reduced_costs;
        iterations = st.iters;
        dual_iterations = !dual_iters;
        basis = Array.sub st.basic_var 0 m;
      }
    in
    let sink = Trace.current () in
    let phase_done phase iterations result =
      if Trace.enabled sink then begin
        let w = Monpos_obs.Sampler.decide Monpos_obs.Sampler.Simplex_phase in
        if w > 0 then
          Trace.simplex_phase sink ~sampled_of:w ~phase ~iterations
            ~outcome:
              (match result with
              | `Done -> if phase = 1 then "feasible" else "optimal"
              | `Infeasible -> "infeasible"
              | `Unbounded -> "unbounded"
              | `Iteration_limit -> "iteration_limit"
              | `Deadline -> "deadline")
            ()
      end
    in
    let run () =
      (* dual phase first when the warm basis allows it; the primal
         phases below then confirm (usually in zero pivots) whatever it
         reached, so a cold and a warm solve share one status
         authority *)
      if !warm_dual then begin
        warm_dual := false;
        let it0 = st.iters in
        let outcome = run_dual_phase st ~max_iterations in
        let pivots = st.iters - it0 in
        dual_iters := !dual_iters + pivots;
        Metrics.add (Lazy.force m_dual_iterations) pivots;
        if Trace.enabled sink then
          Trace.warm_start sink ~dual_feasible:true ~iterations:pivots
            ~kernel:(kernel_name st)
            ~outcome:
              (match outcome with
              | `Done -> "reoptimal"
              | `No_pivot -> "infeasible_guess"
              | `Numerical -> "primal_fallback"
              | `Iteration_limit -> "iteration_limit"
              | `Deadline -> "deadline")
      end;
      let r1 =
        if total_infeasibility st > feas_tol then begin
          let r = run_phase st ~phase1:true ~max_iterations in
          phase_done 1 st.iters r;
          r
        end
        else `Done
      in
      let phase1_iters = st.iters in
      match r1 with
      | `Infeasible -> finish Infeasible
      | `Deadline -> finish Deadline_reached
      | `Unbounded ->
        (* phase 1 cannot be unbounded: its objective is bounded below
           by zero, and every improving direction hits an infeasible
           basic's violated bound. *)
        assert false
      | `Iteration_limit -> finish Iteration_limit
      | `Done -> (
        st.bland <- false;
        st.degenerate_run <- 0;
        let r2 = run_phase st ~phase1:false ~max_iterations in
        phase_done 2 (st.iters - phase1_iters) r2;
        match r2 with
        | `Done -> finish Optimal
        | `Unbounded -> finish Unbounded
        | `Infeasible -> finish Infeasible
        | `Iteration_limit -> finish Iteration_limit
        | `Deadline -> finish Deadline_reached)
    in
    (* numerical recovery: a singular basis (accumulated factorization
       drift or a degenerate pivot sequence) restarts from the slack
       basis under Bland's rule with more frequent refactorization; a
       second failure gives up with Iteration_limit *)
    let sol =
      match run () with
      | sol -> sol
      | exception Singular_basis ->
        st.bland <- true;
        st.degenerate_run <- 0;
        st.refactor_override <-
          Some
            (match st.refactor_override with
            | Some k -> min k 64
            | None -> 64);
        (* the restart must not itself be sabotaged by an injected
           fault, so chaos is suppressed for its whole duration *)
        Chaos.suppress (fun () ->
            reset_to_slack_basis ();
            match run () with
            | sol ->
              Metrics.incr (Lazy.force m_recoveries);
              if Trace.enabled sink then
                Trace.recovery sink ~stage:"simplex"
                  ~detail:"singular basis: cold restart under Bland's rule";
              sol
            | exception Singular_basis -> finish Iteration_limit)
    in
    (* the solve count is labeled by the kernel the solve actually ran
       on; registration is idempotent, so this lookup is a mutexed
       hashtable hit once per solve, not per pivot *)
    Metrics.incr
      (Metrics.counter
         ~labels:[ ("kernel", kernel_name st) ]
         Metrics.default "simplex.solves");
    Metrics.add (Lazy.force m_primal_iterations)
      (sol.iterations - sol.dual_iterations);
    sol
  end

let solve_model ?max_iterations ?deadline ?options m =
  solve ?max_iterations ?deadline ?options (of_model m)
