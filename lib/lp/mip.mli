(** Branch-and-bound mixed-integer programming solver.

    This is the replacement for the CPLEX runs of the paper: it solves
    the 0–1 programs of §4 (Linear programs 1 and 2), the MILP of §5
    (Linear program 3) and the beacon-placement ILP of §6 to proven
    optimality on the instance sizes of the evaluation.

    Strategy: best-bound node selection over LP relaxations solved by
    {!Simplex}, each node warm-started with the dual simplex from its
    parent's basis (the basis is stored per node as the basic-variable
    index set); configurable branching (pseudocost by default, see
    {!branching}); an LP-diving heuristic for incumbents; {!Presolve}
    bound tightening before the search; pruning by bound, with bounds
    rounded up when the objective is provably integral (pure device
    counts). Node and wall-clock limits turn the solver into an
    anytime heuristic that reports the remaining gap.

    With [jobs > 1] the search runs on OCaml 5 domains: node LPs are
    dealt to per-domain workers with work-stealing deques, and the
    incumbent lives in a shared atomic cell. In the default
    deterministic mode the tree is explored in fixed-size waves whose
    composition, branching decisions and incumbent updates are all
    decided in a scheduling-independent order, so the reported
    incumbent, objective, bound, node count and gap are bit-identical
    for every [jobs] value (deadline-triggered stops excepted — wall
    clock is inherently timing-dependent). See DESIGN.md §14 for the
    scheduler and the memory-model argument. *)

type branching =
  | Most_fractional
      (** branch on the integer variable farthest from integrality *)
  | Pseudocost
      (** branch on the variable with the best observed
          objective-degradation history (initialized by
          most-fractional until observations accumulate) *)

type options = {
  branching : branching;  (** default [Pseudocost] *)
  max_nodes : int;  (** branch-and-bound node budget (default 200000) *)
  time_limit : float;
      (** wall-clock seconds budget, measured against the monotonic
          {!Monpos_obs.Clock} (default 120.). Enforced as a
          {!Monpos_resilience.Deadline} threaded into every node and
          diving LP, where the simplex polls it every 32 pivots — so
          the bound holds even when a single node LP is large. *)
  gap_tolerance : float;
      (** stop when the relative incumbent/bound gap is below this
          (default 1e-9, i.e. prove optimality) *)
  integrality_tol : float;
      (** how far from an integer an LP value may be and still count as
          integral (default 1e-6) *)
  heuristic_period : int;
      (** run the fix-and-resolve rounding heuristic every this many
          nodes (default 16; 0 disables) *)
  warm_start : bool;
      (** re-solve each node with the dual simplex warm-started from
          its parent's basis instead of a cold primal solve (default
          [true]; results are identical, only pivot counts change —
          turn off to benchmark or to bisect numerical issues) *)
  presolve : bool;
      (** run {!Presolve.reduce} (bound tightening, probing, row
          removal) on the model before branching so every node starts
          from tighter bounds (default [true]) *)
  kernel : Simplex.kernel;
      (** linear-algebra kernel for every node LP (default
          {!Simplex.Sparse_lu}; [Dense] is the slow reference for
          differential testing, [--dense-kernel] in the CLI) *)
  jobs : int;
      (** worker domains for the branch-and-bound search. [1] (the
          default) keeps everything on the calling domain; [n > 1]
          spawns [n - 1] extra domains; [<= 0] means auto
          ([Domain.recommended_domain_count ()]). The default can be
          overridden by the [MONPOS_JOBS] environment variable, which
          is how CI forces the whole tier-1 suite through the parallel
          scheduler. *)
  deterministic : bool;
      (** [true] (default): wave scheduling with a jobs-invariant
          result (same incumbent, objective, bound, nodes and gap for
          any [jobs]); scoped chaos sites are suppressed inside node
          LPs because fault timing is scheduling-dependent. [false]:
          free-running work stealing with immediate atomic pruning —
          faster on deep trees, but results may vary within
          [gap_tolerance] between runs and chaos stays armed
          everywhere. *)
  wave : int;
      (** nodes dispatched per wave in deterministic mode (default 16).
          Larger waves expose more parallelism; the value changes which
          tree is explored but is independent of [jobs], so any fixed
          [wave] preserves the determinism contract. *)
  checkpoint : string option;
      (** write crash-recovery checkpoints of the search state to this
          path (default [None]: no checkpoints). Deterministic mode
          only — the async scheduler has no consistent frontier to
          persist. Writes are atomic (tmp file + rename) and happen at
          wave barriers, so a reader never sees a torn file and a
          crash at any instant leaves either the previous or the new
          checkpoint intact. A final checkpoint is written when the
          solve stops at a limit or is preempted. See {!resume} and
          DESIGN.md §16. *)
  checkpoint_every : float;
      (** minimum wall-clock seconds between periodic checkpoint
          writes (default 60.; [0.] checkpoints at every wave — for
          tests and crash drills; ignored when [checkpoint = None]) *)
  log : bool;  (** print a search trace to stderr *)
}

val default_options : options
(** The defaults documented above. *)

val resolved_jobs : options -> int
(** The worker-domain count a solve with these options will actually
    use: [jobs] when positive, else [Domain.recommended_domain_count],
    floored at 1. Exposed so run manifests can record the resolved
    value. *)

val scheduler_mode : options -> string
(** ["wave"] (deterministic) or ["async"], for run manifests. *)

(** The shared incumbent cell of a parallel search, exposed for the
    multi-domain stress tests. Candidates carry a minimization score
    and a unique (node seq, sub) key; [publish] is a CAS loop that
    installs a candidate iff it beats the current content under the
    exact order [better] (score, then key). Because the order is total
    and exact, the cell converges to the minimum over every candidate
    offered, whatever the interleaving — the property the
    deterministic mode's contract rests on. *)
module Incumbent : sig
  type cand = { score : float; key : int * int; x : float array }

  type t = cand option Atomic.t

  val create : unit -> t

  val better : cand -> cand -> bool
  (** Strict total order: smaller score wins, ties go to the smaller
      key. *)

  val publish : t -> cand -> bool
  (** Atomically install the candidate if it beats the cell's current
      content; returns [true] iff it was installed. Safe to call from
      any domain. *)

  val get : t -> cand option
end

type status =
  | Optimal  (** incumbent proved optimal within [gap_tolerance] *)
  | Feasible  (** stopped at a limit with an incumbent but a gap left *)
  | Infeasible  (** no integer-feasible point exists *)
  | Unbounded  (** the relaxation is unbounded below/above *)
  | No_solution  (** stopped at a limit before finding any incumbent *)

type result = {
  status : status;
  objective : float;
      (** incumbent objective in the model's direction; [nan] when no
          incumbent exists *)
  solution : float array option;
      (** incumbent assignment indexed by {!Model.var_index} *)
  bound : float;
      (** best proven bound on the optimum, in the model's direction *)
  nodes : int;  (** nodes processed *)
  gap : float;  (** final relative gap; [0.] when proved optimal *)
  deadline_hit : bool;
      (** the wall-clock [time_limit] expired (between nodes or inside
          a node LP) — distinguishes a time-bounded stop from a
          node-budget stop for the degradation ladder *)
  preempted : bool;
      (** the solve stopped cooperatively because
          {!Monpos_resilience.Preempt.requested} became true (SIGINT /
          SIGTERM with the handler installed). The incumbent, bound
          and gap are still valid; with [checkpoint] set, a final
          checkpoint captures the frontier for {!resume}. *)
}

val solve : ?options:options -> Model.t -> result
(** Solve the model to optimality (or to its limits). Integrality of
    [Integer]/[Binary] variables is enforced; [Continuous] variables
    are free to take fractional values. *)

val resume : ?options:options -> string -> result
(** [resume path] loads the checkpoint at [path] and continues the
    search to completion (or to this run's limits). The search-shaping
    options are read from the checkpoint — branching rule, tolerances,
    heuristic period, warm start, kernel, wave size — because honoring
    overrides there would change the explored tree; [options] supplies
    only the run-environment knobs: [jobs], [max_nodes], [time_limit]
    (interpreted as the original run's total budget: the checkpoint's
    recorded elapsed time is subtracted), [log], [checkpoint] (default:
    overwrite [path]) and [checkpoint_every].

    Determinism contract: for a deterministic-mode solve interrupted at
    any wave barrier — including a [SIGKILL] between barriers, which
    leaves the last atomic checkpoint — resuming yields bit-identical
    [status]/[objective]/[solution]/[bound]/[gap] and the same total
    [nodes] as the uninterrupted run, for any [jobs] value on both
    sides. Floats round-trip through the file as hexadecimal literals
    and the frontier heap is restored verbatim, so resumed arithmetic
    starts from exactly the interrupted run's bits.

    Raises {!Monpos_resilience.Error.Error}: [Io_error] when [path]
    cannot be read, [Parse_error] (with a line number) on truncation,
    checksum mismatch or an unsupported format version. *)

val fail : ?options:options -> stage:string -> result -> 'a
(** Raise the {!Monpos_resilience.Error.Error} that best describes why
    [result] carries no usable solution: [Infeasible_model] /
    [Numerical] for infeasible and unbounded models,
    [Deadline_exceeded] when {!result.deadline_hit} is set, [Internal]
    for limit stops. [options] only supplies the budget quoted in the
    deadline error (defaults to {!default_options}). *)

val solve_or_fail : ?options:options -> Model.t -> float array * float
(** Convenience for callers that require an optimal solution: returns
    (assignment, objective) and raises {!Monpos_resilience.Error.Error}
    when the solver stops without proving optimality —
    [Infeasible_model] when no integer point exists,
    [Deadline_exceeded] when the wall clock ran out, [Numerical] on an
    unbounded relaxation, [Internal] otherwise. *)
