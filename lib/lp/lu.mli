(** Sparse LU factorization of a simplex basis, with product-form
    eta updates.

    The factorization runs Gaussian elimination with Markowitz
    pivoting (minimize [(row_count - 1) * (col_count - 1)] over a few
    shortest active columns) under threshold partial pivoting (a
    pivot must be at least [tau] times the largest entry of its
    column), the standard compromise between fill-in and numerical
    stability for the very sparse, network-structured bases produced
    by the paper's PPM/PPME/MECF programs.

    Index spaces: the basis [B] is [m x m]; its {e rows} are the LP's
    constraint rows and its {e columns} are basis positions (position
    [r] holds the column of the [r]-th basic variable). {!ftran} maps
    a row-indexed right-hand side to a position-indexed solution of
    [B x = b]; {!btran} maps a position-indexed right-hand side to a
    row-indexed solution of [B^T y = c]. Extracting row [r] of
    [B^-1] (the dual simplex's pricing row) is [btran] of the [r]-th
    unit vector.

    After each simplex pivot the caller appends a product-form eta
    built from the ftran'd entering column ({!append_eta}); solves
    then run through the factorization plus the eta file. The eta
    file grows with every pivot, so {!should_refactor} signals when
    rebuilding the factorization is cheaper than dragging the file
    along — driven by eta count {e and} accumulated eta fill, not a
    fixed iteration modulo. *)

exception Singular
(** The basis columns are (numerically) linearly dependent. *)

type t
(** A factorization plus its eta file. Mutable: {!append_eta} extends
    it in place. *)

val factor : m:int -> col:(int -> (int -> float -> unit) -> unit) -> t
(** [factor ~m ~col] factorizes the [m x m] basis whose position-[r]
    column's nonzeros are enumerated by [col r f] (calling [f row
    value]; entries with [value = 0.] are ignored). Raises
    {!Singular} when no acceptable pivot remains. *)

val ftran : t -> rhs:Sparse_vec.t -> into:Sparse_vec.t -> unit
(** Solve [B x = rhs] with [rhs] indexed by constraint rows, leaving
    [x] in [into] indexed by basis positions. [rhs] is consumed (its
    contents are destroyed); [into] is cleared first. The two vectors
    must be distinct and of dimension [>= m]. *)

val btran : t -> rhs:Sparse_vec.t -> into:Sparse_vec.t -> unit
(** Solve [B^T y = rhs] with [rhs] indexed by basis positions,
    leaving [y] in [into] indexed by constraint rows. Same vector
    contract as {!ftran}. *)

val append_eta : t -> r:int -> alpha:Sparse_vec.t -> unit
(** Record the basis change "column at position [r] replaced by the
    column whose ftran'd representation is [alpha]" as a product-form
    eta. [alpha.(r)] is the pivot element and must be bounded away
    from zero (the simplex ratio test guarantees it). [alpha] is
    copied, not retained. *)

val eta_count : t -> int
(** Etas appended since the factorization was built. *)

val should_refactor : ?eta_limit:int -> t -> bool
(** Whether the eta file has grown past the point where refactorizing
    pays: the eta count reached [eta_limit] (default: derived from
    [m]), or the accumulated eta nonzeros exceed a multiple of the
    factorization's own size. *)

type stats = {
  basis_nnz : int;  (** nonzeros of the factorized basis *)
  factor_nnz : int;  (** nonzeros of L + U, pivots included *)
  eta_count : int;
  eta_nnz : int;
}

val stats : t -> stats
(** Fill-in and eta-file accounting, for the observability layer and
    the kernel-comparison bench. *)
