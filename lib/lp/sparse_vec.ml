type t = {
  v : float array;
  mutable idx : int array; (* first [n] entries are the pattern *)
  mutable n : int;
  mark : Bytes.t; (* membership flag per position *)
}

let create dim =
  {
    v = Array.make (max dim 1) 0.0;
    idx = Array.make (max dim 1) 0;
    n = 0;
    mark = Bytes.make (max dim 1) '\000';
  }

let dim t = Array.length t.v

let clear t =
  for k = 0 to t.n - 1 do
    let i = t.idx.(k) in
    t.v.(i) <- 0.0;
    Bytes.unsafe_set t.mark i '\000'
  done;
  t.n <- 0

let push t i =
  if Bytes.unsafe_get t.mark i = '\000' then begin
    Bytes.unsafe_set t.mark i '\001';
    (* idx is sized to the dimension and positions are unique, so the
       pattern can never overflow *)
    t.idx.(t.n) <- i;
    t.n <- t.n + 1
  end

let set t i x =
  push t i;
  t.v.(i) <- x

let add t i x =
  push t i;
  t.v.(i) <- t.v.(i) +. x

let get t i = t.v.(i)

let raw t = t.v

let nnz t = t.n

let iter t f =
  for k = 0 to t.n - 1 do
    let i = t.idx.(k) in
    let x = t.v.(i) in
    if x <> 0.0 then f i x
  done

let rescan t =
  (* forget the old pattern without zeroing values, then pick up
     whatever the bulk write left behind *)
  for k = 0 to t.n - 1 do
    Bytes.unsafe_set t.mark t.idx.(k) '\000'
  done;
  t.n <- 0;
  for i = 0 to Array.length t.v - 1 do
    if t.v.(i) <> 0.0 then begin
      Bytes.unsafe_set t.mark i '\001';
      t.idx.(t.n) <- i;
      t.n <- t.n + 1
    end
  done
