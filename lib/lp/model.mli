(** Mixed-integer linear program builder.

    A model is a mutable container of variables (with bounds, objective
    coefficients and an integrality kind) and of linear constraints.
    The paper's formulations — Linear programs 1, 2 and 3 and the
    beacon-placement ILP — are all instantiated through this interface
    and handed to {!Simplex} (LP relaxations) or {!Mip} (integer
    solves). *)

type var
(** Handle on a model variable. Only valid for the model that created
    it. *)

type var_kind =
  | Continuous  (** real-valued within its bounds *)
  | Integer  (** integer-valued within its bounds *)
  | Binary  (** integer with implied bounds [\[0, 1\]] *)

type sense = Le | Ge | Eq
(** Constraint comparison direction: [row <= rhs], [>=] or [=]. *)

type objective = Minimize | Maximize

type t
(** Mutable model. *)

val create : ?name:string -> objective -> t
(** Fresh model with no variables or constraints. *)

val name : t -> string
(** Model name (defaults to ["lp"]). *)

val direction : t -> objective
(** Optimization direction given at creation. *)

val add_var :
  t -> ?name:string -> ?lb:float -> ?ub:float -> ?obj:float -> var_kind -> var
(** [add_var m kind] registers a variable. Default bounds are
    [\[0, +inf)] for [Continuous]/[Integer] and [\[0, 1\]] for
    [Binary]; default objective coefficient is [0.]. For [Binary],
    supplied bounds are intersected with [\[0, 1\]]. *)

val add_constr : t -> ?name:string -> (float * var) list -> sense -> float -> unit
(** [add_constr m terms sense rhs] adds the constraint
    [sum terms sense rhs]. Duplicate variables in [terms] are summed.
    Zero coefficients are dropped. *)

val set_obj : t -> var -> float -> unit
(** Overwrite a variable's objective coefficient. *)

val set_bounds : t -> var -> lb:float -> ub:float -> unit
(** Overwrite a variable's bounds. Requires [lb <= ub]. *)

val fix : t -> var -> float -> unit
(** [fix m v x] pins [v] to the single value [x]. *)

val var_index : var -> int
(** Dense 0-based index of the variable (creation order). *)

val var_of_index : t -> int -> var
(** Inverse of {!var_index}. Requires a valid index. *)

val num_vars : t -> int
(** Number of registered variables. *)

val num_constrs : t -> int
(** Number of registered constraints. *)

val var_name : t -> var -> string
(** Display name ("x{i}" when not provided). *)

val var_lb : t -> var -> float
(** Current lower bound. *)

val var_ub : t -> var -> float
(** Current upper bound. *)

val var_obj : t -> var -> float
(** Current objective coefficient. *)

val var_kind : t -> var -> var_kind
(** Integrality kind. *)

val constr_terms : t -> int -> (float * int) list
(** Terms of constraint [i] as (coefficient, variable index) pairs,
    deduplicated, in increasing variable order. *)

val constr_sense : t -> int -> sense
(** Sense of constraint [i]. *)

val constr_rhs : t -> int -> float
(** Right-hand side of constraint [i]. *)

val constr_name : t -> int -> string
(** Display name of constraint [i]. *)

val iter_constrs : t -> (int -> (float * int) list -> sense -> float -> unit) -> unit
(** Iterate over constraints in insertion order. *)

val columns : t -> (int array * float array) array
(** Column-wise (CSC) export of the constraint matrix: entry [v] is
    [(rows, coefs)] with the constraint indices and coefficients of
    variable [v]'s column, in increasing row order. A fresh snapshot —
    later [add_constr] calls are not reflected. This is what
    {!Simplex.of_model} consumes. *)

val value_feasible : ?tol:float -> t -> float array -> bool
(** [value_feasible m x] checks that the assignment [x] (indexed by
    {!var_index}) satisfies every bound, every constraint and every
    integrality requirement, within tolerance [tol] (default 1e-6).
    Used by tests and by the MIP rounding heuristic. *)

val objective_value : t -> float array -> float
(** Objective of an assignment (independent of direction: the raw
    [c.x]). *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering of the whole model (LP-file flavored). *)
