module Trace = Monpos_obs.Trace
module Metrics = Monpos_obs.Metrics
module Clock = Monpos_obs.Clock
module Sampler = Monpos_obs.Sampler
module Status = Monpos_obs.Status
module Json = Monpos_obs.Json
module Flightrec = Monpos_obs.Flightrec
module Error = Monpos_resilience.Error
module Deadline = Monpos_resilience.Deadline
module Chaos = Monpos_resilience.Chaos
module Preempt = Monpos_resilience.Preempt
module Ckpt = Monpos_resilience.Checkpoint
module Prng = Monpos_util.Prng
module Wsdeque = Monpos_util.Wsdeque
module H = Monpos_util.Heap

(* module-scope instrument handles: registration is idempotent and
   handles survive Metrics.reset, so hot paths pay no lookup. Every
   lazy here is forced on the main domain at solve entry — Lazy.force
   is not safe to race from two domains. *)
let m_nodes = lazy (Metrics.counter Metrics.default "mip.nodes")

let m_incumbents = lazy (Metrics.counter Metrics.default "mip.incumbents")

let m_prunes = lazy (Metrics.counter Metrics.default "mip.prunes")

let m_solves = lazy (Metrics.counter Metrics.default "mip.solves")

let m_steals = lazy (Metrics.counter Metrics.default "mip.steals")

let m_worker_failures =
  lazy (Metrics.counter Metrics.default "mip.worker_failures")

(* checkpoint write count plus the wall-clock instant of the last
   write: /statusz derives the operator-facing "checkpoint age" (how
   much search a crash right now would lose) from the pair. *)
let m_ck_writes = lazy (Metrics.counter Metrics.default "checkpoint.writes")

let m_g_ck_clock =
  lazy (Metrics.gauge Metrics.default "checkpoint.last_write_clock")

(* cumulative seconds this solve spent serializing + atomically
   replacing checkpoint files: the direct numerator of the checkpoint
   overhead, which the ckoverhead bench gates as a fraction of the
   solve wall (a paired wall-clock diff cannot resolve sub-percent
   costs on a shared machine) *)
let m_g_ck_seconds =
  lazy (Metrics.gauge Metrics.default "checkpoint.write_seconds")

(* Search-progress watermarks for live introspection (/statusz):
   last-published incumbent objective, best known relaxation bound,
   and their relative gap. Gauges, not counters — the serve loop reads
   whatever the solve last wrote. *)
let m_g_incumbent = lazy (Metrics.gauge Metrics.default "mip.incumbent")

let m_g_bound = lazy (Metrics.gauge Metrics.default "mip.bound")

let m_g_gap = lazy (Metrics.gauge Metrics.default "mip.gap")

(* per-worker series, labeled by worker slot (0 = the coordinating
   domain), not by runtime domain id: slot labels keep the series
   cardinality bounded by [jobs] where raw domain ids would grow
   without bound across solves. Registration happens on the main
   domain only (before spawn or after join); workers touch nothing
   but the returned handles. *)
let m_nodes_w w =
  Metrics.counter
    ~labels:[ ("domain", string_of_int w) ]
    Metrics.default "mip.nodes"

let m_idle_w w =
  Metrics.gauge
    ~labels:[ ("domain", string_of_int w) ]
    Metrics.default "mip.idle_seconds"

type branching = Most_fractional | Pseudocost

type options = {
  branching : branching;
  max_nodes : int;
  time_limit : float;
  gap_tolerance : float;
  integrality_tol : float;
  heuristic_period : int;
  warm_start : bool;
  presolve : bool;
  kernel : Simplex.kernel;
  jobs : int;
  deterministic : bool;
  wave : int;
  checkpoint : string option;
  checkpoint_every : float;
  log : bool;
}

let env_jobs () =
  match Sys.getenv_opt "MONPOS_JOBS" with
  | None | Some "" -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some j -> j | None -> 1)

let default_options =
  {
    branching = Pseudocost;
    max_nodes = 200_000;
    time_limit = 120.0;
    gap_tolerance = 1e-9;
    integrality_tol = 1e-6;
    heuristic_period = 16;
    warm_start = true;
    presolve = true;
    kernel = Simplex.Sparse_lu;
    jobs = env_jobs ();
    deterministic = true;
    wave = 16;
    checkpoint = None;
    checkpoint_every = 60.0;
    log = false;
  }

type status = Optimal | Feasible | Infeasible | Unbounded | No_solution

type result = {
  status : status;
  objective : float;
  solution : float array option;
  bound : float;
  nodes : int;
  gap : float;
  deadline_hit : bool;
  preempted : bool;
}

type node = {
  lower : float array;
  upper : float array;
  depth : int;
  (* deterministic creation sequence number: the root is 0 and
     children get consecutive numbers in coordinator merge order (down
     branch before up branch), so seq totally orders nodes by creation
     independently of which domain later solves them *)
  seq : int;
  (* pseudocost bookkeeping: which branch created this node, and the
     parent relaxation's score and fractional part, so the child's LP
     value updates the per-variable degradation statistics *)
  branched : (int * [ `Down | `Up ] * float * float) option;
  (* the parent relaxation's optimal basis (basic-variable index set):
     the child differs by one bound, so this basis is dual feasible
     and the node re-solve warm-starts off it *)
  start_basis : Simplex.basis option;
}

(* Internal scores are minimization scores: score = obj for Minimize,
   -obj for Maximize, so "smaller is better" throughout. *)

(* Shared incumbent under a deterministic total order.

   Candidates are ordered by score with ties broken by the (node seq,
   sub) key under which the candidate was produced (sub 0 is the
   node's own integral relaxation, sub >= 1 a diving candidate of that
   node). Keys are unique and the comparison is exact — no tolerance
   band — so publication is a lattice meet: the final cell content is
   the minimum over every candidate ever offered, independent of
   arrival order. That is the heart of the deterministic-mode
   contract: any interleaving of worker publishes converges to the
   same incumbent.

   The same exact order also makes work-skipping provably safe: a dive
   whose candidates all carry score >= s and key >= k can be skipped
   whenever the current cell beats (s, k), because the final incumbent
   beats the current cell and therefore beats everything the dive
   could have produced. Which skips happen is timing-dependent; the
   result is not. *)
module Incumbent = struct
  type cand = { score : float; key : int * int; x : float array }

  type t = cand option Atomic.t

  let create () : t = Atomic.make None

  let better a b = a.score < b.score || (a.score = b.score && a.key < b.key)

  let beats c = function None -> true | Some i -> better c i

  let rec publish t c =
    let cur = Atomic.get t in
    if beats c cur then
      if Atomic.compare_and_set t cur (Some c) then true else publish t c
    else false

  let get = Atomic.get
end

(* per-search pseudocost state: average objective degradation per unit
   of rounded-away fraction, per variable and direction. Owned by the
   coordinator in deterministic mode (updated only at merge, in wave
   order — a worker-side update would make branching decisions depend
   on scheduling); per-worker in async mode. *)
type pc = {
  pc_down : float array;
  pc_down_n : int array;
  pc_up : float array;
  pc_up_n : int array;
}

let pc_create n =
  {
    pc_down = Array.make n 0.0;
    pc_down_n = Array.make n 0;
    pc_up = Array.make n 0.0;
    pc_up_n = Array.make n 0;
  }

(* ---- deterministic wave pool ------------------------------------- *)

type outcome =
  | O_pending
  | O_infeasible
  | O_unbounded
  | O_iter_limit
  | O_deadline
  | O_optimal of { raw : float; primal : float array; basis : Simplex.basis }

type task = {
  t_node : node;
  t_bound : float;
  t_num : int;
  t_dive : bool;
  mutable t_outcome : outcome;
  (* how many worker slots have already died while holding this task;
     the supervisor requeues up to a small cap, past which the failure
     is evidently the task's own (a deterministic bug) and propagates *)
  mutable t_tries : int;
}

(* chaos site [domain.die]: the injected fail-stop worker death. The
   exception deliberately is not [Error.Error] — the supervisor must
   treat it like any other unexpected worker crash. *)
exception Worker_killed of int

(* A pool of [jobs - 1] spawned worker domains plus the coordinator
   (slot 0). Work arrives in waves: the coordinator publishes a
   generation bump with [p_remaining] set to the wave size, deals the
   tasks round-robin into the per-worker deques, and every slot then
   drains tasks — own deque first (LIFO), stealing from the top of
   random victims when empty. The barrier is [p_remaining] reaching
   zero; setting [p_remaining] before the pushes matters, because a
   straggler from the previous wave may steal a new task early and
   its decrement must land on an initialized counter. *)
type pool = {
  p_jobs : int;
  p_deques : task Wsdeque.t array;
  p_lock : Mutex.t;
  p_cond : Condition.t;
  mutable p_generation : int;
  mutable p_remaining : int;
  mutable p_quit : bool;
  mutable p_failure : exn option;
  (* fail-stop supervision state: a slot whose task raised is marked
     dead, its unfinished work moves to [p_retry] (guarded by
     [p_lock]), and the surviving slots drain it. Slot 0 (the
     coordinator) is never marked dead — a coordinator failure
     propagates, exactly as before. *)
  p_dead : bool array;
  p_retry : task Queue.t;
  p_steals : int array;
  p_idle : float array;
  p_nodes_w : Metrics.counter array;
  p_process : int -> task -> unit;
  p_sink : Trace.sink;
  mutable p_domains : unit Domain.t array;
}

let take_retry pool =
  Mutex.protect pool.p_lock (fun () ->
      if Queue.is_empty pool.p_retry then None
      else Some (Queue.pop pool.p_retry))

let find_task pool w prng =
  match Wsdeque.pop pool.p_deques.(w) with
  | Some _ as t -> t
  | None -> (
    match take_retry pool with
    | Some _ as t -> t
    | None ->
      let start = Prng.int prng pool.p_jobs in
      let rec sweep i =
        if i = pool.p_jobs then None
        else
          let v = (start + i) mod pool.p_jobs in
          if v = w then sweep (i + 1)
          else
            match Wsdeque.steal pool.p_deques.(v) with
            | Some _ as t ->
              pool.p_steals.(w) <- pool.p_steals.(w) + 1;
              t
            | None -> sweep (i + 1)
      in
      sweep 0)

let record_failure pool e =
  Mutex.protect pool.p_lock (fun () ->
      match pool.p_failure with
      | None -> pool.p_failure <- Some e
      | Some _ -> ())

let task_done pool =
  Mutex.protect pool.p_lock (fun () ->
      pool.p_remaining <- pool.p_remaining - 1;
      if pool.p_remaining = 0 then Condition.broadcast pool.p_cond)

(* Fail-stop containment for a dying worker slot: the slot is marked
   dead, the failed task and everything still sitting in the slot's
   own deque move to the retry queue, and the survivors are woken to
   drain it. [p_remaining] is deliberately not decremented for the
   requeued tasks — the wave barrier completes only once a survivor
   has actually finished them, so a merge never sees an [O_pending]
   outcome. Re-solving a node LP is deterministic, so the wave's
   results are bit-identical to an undisturbed run. *)
let supervise_failure pool w t e =
  t.t_tries <- t.t_tries + 1;
  Mutex.protect pool.p_lock (fun () ->
      pool.p_dead.(w) <- true;
      Queue.push t pool.p_retry;
      let rec drain_own () =
        match Wsdeque.pop pool.p_deques.(w) with
        | Some t' ->
          Queue.push t' pool.p_retry;
          drain_own ()
        | None -> ()
      in
      drain_own ();
      Condition.broadcast pool.p_cond);
  Metrics.incr (Lazy.force m_worker_failures);
  if Trace.enabled pool.p_sink then
    Trace.worker_failure pool.p_sink ~slot:w ~reason:(Printexc.to_string e);
  Flightrec.trigger ~reason:"worker_failure"

let rec drain_wave pool w prng =
  if pool.p_dead.(w) then ()
  else
    match find_task pool w prng with
    | Some t -> (
      match
        (* the die site fires only on a task's first attempt: a worker
           picking up a requeued task must not die on it again, or a
           single unlucky task could fell every slot in turn *)
        if
          w > 0 && t.t_tries = 0
          && Chaos.fire ~scoped:false ~site:"domain.die" ~p:0.02 ()
        then raise (Worker_killed w)
        else pool.p_process w t
      with
      | () ->
        Metrics.incr pool.p_nodes_w.(w);
        task_done pool;
        drain_wave pool w prng
      | exception e ->
        (* Typed solver errors ([Error.Error]) are findings about the
           model, not the worker — they propagate whole. So does any
           failure on slot 0 (losing the coordinator means losing the
           merge), and a task that has already killed several slots. *)
        let supervisable =
          w > 0 && t.t_tries < 3
          && (match e with Error.Error _ -> false | _ -> true)
        in
        if supervisable then supervise_failure pool w t e
        else begin
          record_failure pool e;
          task_done pool;
          drain_wave pool w prng
        end)
    | None ->
      (* nothing stealable: either the wave is done or every remaining
         task is in flight on another slot — wait for the zero broadcast *)
      let finished =
        Mutex.protect pool.p_lock (fun () ->
            if pool.p_remaining > 0 && not pool.p_quit then begin
              let t0 = Clock.now () in
              Condition.wait pool.p_cond pool.p_lock;
              pool.p_idle.(w) <- pool.p_idle.(w) +. (Clock.now () -. t0);
              false
            end
            else true)
      in
      if not finished then drain_wave pool w prng

let rec worker_loop pool w prng my_gen sink =
  let next =
    Mutex.protect pool.p_lock (fun () ->
        let t0 = Clock.now () in
        while (not pool.p_quit) && pool.p_generation = my_gen do
          Condition.wait pool.p_cond pool.p_lock
        done;
        pool.p_idle.(w) <- pool.p_idle.(w) +. (Clock.now () -. t0);
        if pool.p_quit then None else Some pool.p_generation)
  in
  match next with
  | None ->
    (* domain exit: push out any events this domain buffered, so a
       reader never sees a torn per-domain span pair *)
    Trace.flush sink
  | Some gen ->
    drain_wave pool w prng;
    worker_loop pool w prng gen sink

let create_pool ~jobs ~prngs ~process ~sink =
  let pool =
    {
      p_jobs = jobs;
      p_deques = Array.init jobs (fun _ -> Wsdeque.create ());
      p_lock = Mutex.create ();
      p_cond = Condition.create ();
      p_generation = 0;
      p_remaining = 0;
      p_quit = false;
      p_failure = None;
      p_dead = Array.make jobs false;
      p_retry = Queue.create ();
      p_steals = Array.make jobs 0;
      p_idle = Array.make jobs 0.0;
      p_nodes_w = Array.init jobs m_nodes_w;
      p_process = process;
      p_sink = sink;
      p_domains = [||];
    }
  in
  pool.p_domains <-
    Array.init (jobs - 1) (fun i ->
        let w = i + 1 in
        let prng = prngs.(w) in
        Domain.spawn (fun () -> worker_loop pool w prng 0 sink));
  pool

let run_wave pool prng0 tasks =
  let n = List.length tasks in
  Mutex.protect pool.p_lock (fun () ->
      pool.p_remaining <- n;
      pool.p_generation <- pool.p_generation + 1;
      Condition.broadcast pool.p_cond);
  (* deal only to surviving slots: a dead slot's deque has no owner to
     pop it, and while thieves could still steal from it, leaving work
     there would make the common case (no thief looks) a stall *)
  let alive =
    let l = ref [] in
    for w = pool.p_jobs - 1 downto 0 do
      if not pool.p_dead.(w) then l := w :: !l
    done;
    Array.of_list !l
  in
  List.iteri
    (fun i t ->
      Wsdeque.push pool.p_deques.(alive.(i mod Array.length alive)) t)
    tasks;
  (* second broadcast: a worker that woke on the generation bump,
     found the deques still empty and went back to waiting needs a
     poke now that the tasks are actually visible *)
  Mutex.protect pool.p_lock (fun () -> Condition.broadcast pool.p_cond);
  drain_wave pool 0 prng0;
  Mutex.protect pool.p_lock (fun () ->
      let t0 = Clock.now () in
      while pool.p_remaining > 0 do
        Condition.wait pool.p_cond pool.p_lock
      done;
      pool.p_idle.(0) <- pool.p_idle.(0) +. (Clock.now () -. t0));
  match pool.p_failure with
  | Some e ->
    pool.p_failure <- None;
    raise e
  | None -> ()

let shutdown pool =
  Mutex.protect pool.p_lock (fun () ->
      pool.p_quit <- true;
      Condition.broadcast pool.p_cond);
  Array.iter Domain.join pool.p_domains;
  let stolen = Array.fold_left ( + ) 0 pool.p_steals in
  if stolen > 0 then Metrics.add (Lazy.force m_steals) stolen;
  Array.iteri
    (fun w s ->
      if s > 0.0 then begin
        let g = m_idle_w w in
        Metrics.set g (Metrics.gauge_value g +. s)
      end)
    pool.p_idle

let resolved_jobs options =
  let j =
    if options.jobs <= 0 then Domain.recommended_domain_count ()
    else options.jobs
  in
  max 1 j

let scheduler_mode options = if options.deterministic then "wave" else "async"

(* ---- checkpoint (de)serialization ---------------------------------

   The checkpoint captures the deterministic wave scheduler's complete
   search state at a wave barrier: the (post-presolve) model, the
   search-shaping options, the open-node frontier with bounds and
   warm-start bases, the incumbent, the pseudocost tables, the worker
   PRNG stream positions and the run manifest. Two representation
   choices carry the determinism-under-resume contract:

   - every float travels as a hexadecimal literal ("%h"), so bounds,
     coefficients, scores and PRNG-derived values round-trip
     bit-exactly — resumed arithmetic starts from the very same bits;

   - the heap is stored as its verbatim internal array (Heap.snapshot
     / Heap.restore), not as a sorted drain: a rebuild by re-pushing
     would reorder equal keys and change which of two tied nodes is
     expanded first.

   The container (header, checksum trailer, atomic tmp-then-rename
   replace) is Monpos_resilience.Checkpoint; this block only encodes
   and decodes the body lines. *)

let ck_magic = "monpos-mip-checkpoint"

let ck_version = 1

(* everything [resume] needs to restart [solve_gen] mid-search *)
type saved = {
  s_path : string;
  s_options : options;
  s_model : Model.t;
  s_elapsed : float;
  s_nodes : int;
  s_next_seq : int;
  s_best_open : float;
  s_stopped : bool;
  s_deadline_stop : bool;
  s_infeasible_root : bool;
  s_incumbent : Incumbent.cand option;
  s_pc : (int * float * int * float * int) list;
  s_prngs : (int64 * int64) array;
  s_heap_keys : float array;
  s_heap_nodes : node array;
}

let ck_float = Printf.sprintf "%h"

let ck_b b = if b then "1" else "0"

let ck_encode ~model ~options ~elapsed ~nodes ~next_seq ~best_open ~stopped
    ~deadline_stop ~infeasible_root ~incumbent ~pc ~prngs ~queue =
  let n = Model.num_vars model in
  let lines = ref [] in
  let add l = lines := l :: !lines in
  let buf = Buffer.create 256 in
  let flush_line () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    add s
  in
  add
    (Printf.sprintf "dir %s"
       (match Model.direction model with
       | Model.Minimize -> "min"
       | Model.Maximize -> "max"));
  add
    (Printf.sprintf "opts %s %s %s %d %s %s %d"
       (match options.branching with
       | Pseudocost -> "pc"
       | Most_fractional -> "mf")
       (ck_float options.gap_tolerance)
       (ck_float options.integrality_tol)
       options.heuristic_period (ck_b options.warm_start)
       (match options.kernel with
       | Simplex.Sparse_lu -> "sparse"
       | Simplex.Dense -> "dense")
       options.wave);
  add (Printf.sprintf "elapsed %s" (ck_float elapsed));
  add (Printf.sprintf "vars %d" n);
  for v = 0 to n - 1 do
    let hv = Model.var_of_index model v in
    add
      (Printf.sprintf "v %s %s %s %s"
         (ck_float (Model.var_lb model hv))
         (ck_float (Model.var_ub model hv))
         (ck_float (Model.var_obj model hv))
         (match Model.var_kind model hv with
         | Model.Continuous -> "c"
         | Model.Integer -> "i"
         | Model.Binary -> "b"))
  done;
  add (Printf.sprintf "constrs %d" (Model.num_constrs model));
  Model.iter_constrs model (fun _ terms sense rhs ->
      Buffer.add_string buf "c ";
      Buffer.add_string buf
        (match sense with Model.Le -> "le" | Model.Ge -> "ge" | Model.Eq -> "eq");
      Buffer.add_char buf ' ';
      Buffer.add_string buf (ck_float rhs);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (List.length terms));
      List.iter
        (fun (c, v) ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (ck_float c);
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int v))
        terms;
      flush_line ());
  add
    (Printf.sprintf "state %d %d %s %s %s %s" nodes next_seq
       (ck_float best_open) (ck_b stopped) (ck_b deadline_stop)
       (ck_b infeasible_root));
  (match incumbent with
  | None -> add "inc none"
  | Some c ->
    Buffer.add_string buf "inc ";
    Buffer.add_string buf (ck_float c.Incumbent.score);
    let k1, k2 = c.Incumbent.key in
    Buffer.add_string buf
      (Printf.sprintf " %d %d %d" k1 k2 (Array.length c.Incumbent.x));
    Array.iter
      (fun x ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (ck_float x))
      c.Incumbent.x;
    flush_line ());
  for v = 0 to n - 1 do
    if pc.pc_down_n.(v) > 0 || pc.pc_up_n.(v) > 0 then
      add
        (Printf.sprintf "pc %d %s %d %s %d" v
           (ck_float pc.pc_down.(v))
           pc.pc_down_n.(v)
           (ck_float pc.pc_up.(v))
           pc.pc_up_n.(v))
  done;
  add (Printf.sprintf "prngs %d" (Array.length prngs));
  Array.iteri
    (fun w g ->
      let s, gm = Prng.state g in
      add (Printf.sprintf "g %d %Ld %Ld" w s gm))
    prngs;
  let keys, frontier = H.snapshot queue in
  add (Printf.sprintf "heap %d" (Array.length keys));
  Array.iteri
    (fun i key ->
      let nd = frontier.(i) in
      Buffer.add_string buf "h ";
      Buffer.add_string buf (ck_float key);
      Buffer.add_string buf (Printf.sprintf " %d %d" nd.seq nd.depth);
      (match nd.branched with
      | None -> Buffer.add_string buf " -"
      | Some (v, dir, score, frac) ->
        Buffer.add_string buf
          (Printf.sprintf " %d %s %s %s" v
             (match dir with `Down -> "d" | `Up -> "u")
             (ck_float score) (ck_float frac)));
      (match nd.start_basis with
      | None -> Buffer.add_string buf " -"
      | Some b ->
        Buffer.add_string buf (Printf.sprintf " %d" (Array.length b));
        Array.iter
          (fun bi ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (string_of_int bi))
          b);
      Array.iter
        (fun x ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (ck_float x))
        nd.lower;
      Array.iter
        (fun x ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (ck_float x))
        nd.upper;
      flush_line ())
    keys;
  (* the run manifest rides along verbatim, so a checkpoint identifies
     the run (host, argv, git revision) that produced it *)
  (match Status.manifest () with
  | Some j -> add ("manifest " ^ Json.to_string j)
  | None -> ());
  List.rev !lines

let ck_decode ~path body =
  let arr = Array.of_list body in
  (* body line [i] sits at file line [i + 2]: line 1 is the header *)
  let fail i msg = Error.parse_error ~file:path ~line:(i + 2) msg in
  let idx = ref 0 in
  let peek () = if !idx < Array.length arr then Some arr.(!idx) else None in
  let next what =
    match peek () with
    | Some l ->
      incr idx;
      (l, !idx - 1)
    | None -> fail (Array.length arr) ("truncated checkpoint: wanted " ^ what)
  in
  let toks what =
    let l, i = next what in
    (String.split_on_char ' ' l, i)
  in
  let pfloat i s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> fail i (Printf.sprintf "bad float %S" s)
  in
  let pint i s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail i (Printf.sprintf "bad int %S" s)
  in
  let pint64 i s =
    match Int64.of_string_opt s with
    | Some v -> v
    | None -> fail i (Printf.sprintf "bad int64 %S" s)
  in
  let pbool i s =
    match s with
    | "1" -> true
    | "0" -> false
    | _ -> fail i (Printf.sprintf "bad flag %S" s)
  in
  let direction =
    match toks "dir" with
    | [ "dir"; "min" ], _ -> Model.Minimize
    | [ "dir"; "max" ], _ -> Model.Maximize
    | _, i -> fail i "bad dir record"
  in
  let s_options =
    match toks "opts" with
    | [ "opts"; br; gap; itol; heur; warm; kernel; wave ], i ->
      {
        default_options with
        branching =
          (match br with
          | "pc" -> Pseudocost
          | "mf" -> Most_fractional
          | _ -> fail i (Printf.sprintf "bad branching %S" br));
        gap_tolerance = pfloat i gap;
        integrality_tol = pfloat i itol;
        heuristic_period = pint i heur;
        warm_start = pbool i warm;
        kernel =
          (match kernel with
          | "sparse" -> Simplex.Sparse_lu
          | "dense" -> Simplex.Dense
          | _ -> fail i (Printf.sprintf "bad kernel %S" kernel));
        wave = pint i wave;
        presolve = false;
        deterministic = true;
      }
    | _, i -> fail i "bad opts record"
  in
  let s_elapsed =
    match toks "elapsed" with
    | [ "elapsed"; e ], i -> pfloat i e
    | _, i -> fail i "bad elapsed record"
  in
  let n =
    match toks "vars" with
    | [ "vars"; n ], i -> pint i n
    | _, i -> fail i "bad vars record"
  in
  let model = Model.create ~name:"resumed" direction in
  for _ = 1 to n do
    match toks "v" with
    | [ "v"; lb; ub; obj; kind ], i ->
      let kind =
        match kind with
        | "c" -> Model.Continuous
        | "i" -> Model.Integer
        | "b" -> Model.Binary
        | _ -> fail i (Printf.sprintf "bad var kind %S" kind)
      in
      ignore
        (Model.add_var model ~lb:(pfloat i lb) ~ub:(pfloat i ub)
           ~obj:(pfloat i obj) kind)
    | _, i -> fail i "bad v record"
  done;
  let m =
    match toks "constrs" with
    | [ "constrs"; m ], i -> pint i m
    | _, i -> fail i "bad constrs record"
  in
  for _ = 1 to m do
    match toks "c" with
    | "c" :: sense :: rhs :: k :: rest, i ->
      let sense =
        match sense with
        | "le" -> Model.Le
        | "ge" -> Model.Ge
        | "eq" -> Model.Eq
        | _ -> fail i (Printf.sprintf "bad sense %S" sense)
      in
      let k = pint i k in
      let rec take acc j rest =
        if j = k then (List.rev acc, rest)
        else
          match rest with
          | c :: v :: rest ->
            take
              ((pfloat i c, Model.var_of_index model (pint i v)) :: acc)
              (j + 1) rest
          | _ -> fail i "truncated constraint terms"
      in
      let terms, rest = take [] 0 rest in
      if rest <> [] then fail i "trailing constraint tokens";
      Model.add_constr model terms sense (pfloat i rhs)
    | _, i -> fail i "bad c record"
  done;
  let s_nodes, s_next_seq, s_best_open, s_stopped, s_deadline_stop,
      s_infeasible_root =
    match toks "state" with
    | [ "state"; nodes; seq; best; stopped; dstop; infroot ], i ->
      ( pint i nodes,
        pint i seq,
        pfloat i best,
        pbool i stopped,
        pbool i dstop,
        pbool i infroot )
    | _, i -> fail i "bad state record"
  in
  let s_incumbent =
    match toks "inc" with
    | [ "inc"; "none" ], _ -> None
    | "inc" :: score :: k1 :: k2 :: len :: rest, i ->
      let len = pint i len in
      if List.length rest <> len then fail i "truncated incumbent vector";
      let x = Array.of_list (List.map (pfloat i) rest) in
      Some
        { Incumbent.score = pfloat i score; key = (pint i k1, pint i k2); x }
    | _, i -> fail i "bad inc record"
  in
  let rec pc_rows acc =
    match peek () with
    | Some l when String.length l > 3 && String.sub l 0 3 = "pc " -> (
      match toks "pc" with
      | [ "pc"; v; d; dn; u; un ], i ->
        pc_rows ((pint i v, pfloat i d, pint i dn, pfloat i u, pint i un) :: acc)
      | _, i -> fail i "bad pc record")
    | _ -> List.rev acc
  in
  let s_pc = pc_rows [] in
  let nprngs =
    match toks "prngs" with
    | [ "prngs"; c ], i -> pint i c
    | _, i -> fail i "bad prngs record"
  in
  let s_prngs =
    Array.init nprngs (fun w ->
        match toks "g" with
        | [ "g"; slot; st; gm ], i ->
          if pint i slot <> w then fail i "prng slots out of order";
          (pint64 i st, pint64 i gm)
        | _, i -> fail i "bad g record")
  in
  let hlen =
    match toks "heap" with
    | [ "heap"; c ], i -> pint i c
    | _, i -> fail i "bad heap record"
  in
  let s_heap_keys = Array.make hlen 0.0 in
  let dummy =
    {
      lower = [||];
      upper = [||];
      depth = 0;
      seq = 0;
      branched = None;
      start_basis = None;
    }
  in
  let s_heap_nodes = Array.make hlen dummy in
  for slot = 0 to hlen - 1 do
    match toks "h" with
    | "h" :: key :: seq :: depth :: rest, i ->
      let branched, rest =
        match rest with
        | "-" :: rest -> (None, rest)
        | v :: d :: score :: frac :: rest ->
          let dir =
            match d with
            | "d" -> `Down
            | "u" -> `Up
            | _ -> fail i (Printf.sprintf "bad branch direction %S" d)
          in
          (Some (pint i v, dir, pfloat i score, pfloat i frac), rest)
        | _ -> fail i "truncated node record"
      in
      let start_basis, rest =
        match rest with
        | "-" :: rest -> (None, rest)
        | sz :: rest ->
          let sz = pint i sz in
          let b = Array.make sz 0 in
          let rec take j rest =
            if j = sz then rest
            else
              match rest with
              | x :: rest ->
                b.(j) <- pint i x;
                take (j + 1) rest
              | [] -> fail i "truncated basis"
          in
          (Some b, take 0 rest)
        | [] -> fail i "truncated node record"
      in
      let floats count what rest =
        let a = Array.make count 0.0 in
        let rec take j rest =
          if j = count then rest
          else
            match rest with
            | x :: rest ->
              a.(j) <- pfloat i x;
              take (j + 1) rest
            | [] -> fail i ("truncated " ^ what)
        in
        (a, take 0 rest)
      in
      let lower, rest = floats n "node lower bounds" rest in
      let upper, rest = floats n "node upper bounds" rest in
      if rest <> [] then fail i "trailing node tokens";
      s_heap_keys.(slot) <- pfloat i key;
      s_heap_nodes.(slot) <-
        {
          lower;
          upper;
          depth = pint i depth;
          seq = pint i seq;
          branched;
          start_basis;
        }
    | _, i -> fail i "bad h record"
  done;
  (* optional trailing manifest line: informational, not restored *)
  (match peek () with
  | Some l when String.length l >= 9 && String.sub l 0 9 = "manifest " ->
    incr idx
  | _ -> ());
  if !idx <> Array.length arr then
    fail !idx "trailing records after checkpoint body";
  {
    s_path = path;
    s_options;
    s_model = model;
    s_elapsed;
    s_nodes;
    s_next_seq;
    s_best_open;
    s_stopped;
    s_deadline_stop;
    s_infeasible_root;
    s_incumbent;
    s_pc;
    s_prngs;
    s_heap_keys;
    s_heap_nodes;
  }

(* chaos site [process.kill]: a self-delivered SIGKILL right after a
   durable checkpoint write — the harshest crash the checkpoint layer
   claims to survive, placed at the exact moment the claim is
   strongest. Gated behind MONPOS_CHAOS_KILL because a stray fire
   would take the whole test runner down with it. With the chaos
   lottery armed the site draws from its per-site stream; without it
   the kill is deterministic on the first write — which is what the
   CI crash/resume identity check uses, keeping chaos draws out of
   the bit-identity comparison. *)
let kill_armed = lazy (Sys.getenv_opt "MONPOS_CHAOS_KILL" <> None)

let process_kill_site () =
  if Lazy.force kill_armed then begin
    let fire =
      if Chaos.active () then
        Chaos.fire ~scoped:false ~site:"process.kill" ~p:0.5 ()
      else true
    in
    if fire then Unix.kill (Unix.getpid ()) Sys.sigkill
  end

(* The one search routine behind both [solve] and [resume]: [restore]
   carries a decoded checkpoint, and every piece of search state below
   initializes from it when present. *)
let solve_gen ~options ~(restore : saved option) model =
  Monpos_obs.Span.run "mip.solve" @@ fun () ->
  Status.with_phase "mip.solve" @@ fun () ->
  let sink = Trace.current () in
  ignore (Lazy.force m_nodes);
  ignore (Lazy.force m_incumbents);
  ignore (Lazy.force m_prunes);
  ignore (Lazy.force m_steals);
  ignore (Lazy.force m_g_incumbent);
  ignore (Lazy.force m_g_bound);
  ignore (Lazy.force m_g_gap);
  Metrics.incr (Lazy.force m_solves);
  let minimize = Model.direction model = Model.Minimize in
  (* The wall-clock budget becomes a Deadline threaded through the
     whole solve — root presolve included, and every node (and diving)
     LP polls it, on whichever domain it runs — so neither a long
     probing phase nor a single large relaxation can overrun
     [time_limit] unboundedly. Chaos may compress the budget to a
     tenth to exercise the deadline paths. *)
  let budget =
    if Chaos.fire ~site:"deadline.compress" ~p:0.25 () then
      options.time_limit *. 0.1
    else options.time_limit
  in
  (* a resumed run inherits the original run's wall-clock budget minus
     what it had already consumed, so crash/resume cycles cannot
     stretch a time-limited solve without bound *)
  let elapsed_base =
    match restore with Some s -> s.s_elapsed | None -> 0.0
  in
  let budget = Float.max 0.001 (budget -. elapsed_base) in
  let deadline = Deadline.of_budget budget in
  let deadline_stop = ref false in
  (* Root presolve: every reduction is exact and preserves variable
     indices, so the search below can pretend the reduced model is the
     original. Nodes inherit the tightened bounds. *)
  let model, presolved_infeasible =
    if options.presolve then begin
      let reduced, info = Presolve.reduce ~deadline model in
      if info.Presolve.infeasible then (model, true) else (reduced, false)
    end
    else (model, false)
  in
  let n = Model.num_vars model in
  if presolved_infeasible then
    {
      status = Infeasible;
      objective = nan;
      solution = None;
      bound = (if minimize then infinity else neg_infinity);
      nodes = 0;
      gap = infinity;
      deadline_hit = false;
      preempted = false;
    }
  else begin
  let problem = Simplex.of_model model in
  let lp_options =
    { Simplex.default_options with Simplex.kernel = options.kernel }
  in
  let to_score obj = if minimize then obj else -.obj in
  let of_score s = if minimize then s else -.s in
  let int_vars =
    List.filter
      (fun v ->
        match Model.var_kind model (Model.var_of_index model v) with
        | Model.Integer | Model.Binary -> true
        | Model.Continuous -> false)
      (List.init n (fun i -> i))
  in
  let itol = options.integrality_tol in
  (* When every objective coefficient sits on integer variables and is
     itself integral, any LP bound can be rounded up to the next
     integer — a large amount of extra pruning for pure cardinality
     objectives like the paper's device counts. *)
  let integral_objective =
    List.for_all
      (fun v ->
        let c = Model.var_obj model (Model.var_of_index model v) in
        let is_int_var =
          match Model.var_kind model (Model.var_of_index model v) with
          | Model.Integer | Model.Binary -> true
          | Model.Continuous -> false
        in
        if is_int_var then Float.is_integer c else c = 0.0)
      (List.init n (fun i -> i))
  in
  let sharpen score =
    if integral_objective && score > neg_infinity && score < infinity then
      Float.round (Float.ceil (score -. 1e-6))
    else score
  in
  let fractional_var primal =
    (* most fractional integer variable, or None if integral *)
    let best = ref (-1) and best_dist = ref 0.0 in
    List.iter
      (fun v ->
        let x = primal.(v) in
        let dist = abs_float (x -. Float.round x) in
        if dist > itol && dist > !best_dist then begin
          best := v;
          best_dist := dist
        end)
      int_vars;
    if !best = -1 then None else Some !best
  in
  (* The fractional part recorded at branch time is x - floor(x + itol),
     which sits in (itol, 1 - itol) for the default tolerance but can
     approach 0 or 1 (or even leave [0, 1] entirely) when callers loosen
     integrality_tol; dividing by it unguarded turns one degenerate
     branch into a pseudocost that dwarfs every honest observation.
     Clamp the denominator below by the tolerance itself. *)
  let pc_frac f = Float.max f (Float.max itol 1e-6) in
  let record_pseudocost pc node child_score =
    match node.branched with
    | None -> ()
    | Some (v, dir, parent_score, frac) ->
      let degradation = max 0.0 (child_score -. parent_score) in
      (match dir with
      | `Down ->
        let per_unit = degradation /. pc_frac frac in
        pc.pc_down.(v) <-
          ((pc.pc_down.(v) *. float_of_int pc.pc_down_n.(v)) +. per_unit)
          /. float_of_int (pc.pc_down_n.(v) + 1);
        pc.pc_down_n.(v) <- pc.pc_down_n.(v) + 1
      | `Up ->
        let per_unit = degradation /. pc_frac (1.0 -. frac) in
        pc.pc_up.(v) <-
          ((pc.pc_up.(v) *. float_of_int pc.pc_up_n.(v)) +. per_unit)
          /. float_of_int (pc.pc_up_n.(v) + 1);
        pc.pc_up_n.(v) <- pc.pc_up_n.(v) + 1)
  in
  let branch_var pc primal =
    match options.branching with
    | Most_fractional -> fractional_var primal
    | Pseudocost ->
      (* product rule over estimated degradations; variables without
         history fall back to their fractionality *)
      let best = ref (-1) and best_score = ref neg_infinity in
      List.iter
        (fun v ->
          let x = primal.(v) in
          let frac = x -. Float.floor x in
          let dist = abs_float (x -. Float.round x) in
          if dist > itol then begin
            let est_down =
              if pc.pc_down_n.(v) > 0 then pc.pc_down.(v) *. frac else dist
            in
            let est_up =
              if pc.pc_up_n.(v) > 0 then pc.pc_up.(v) *. (1.0 -. frac)
              else dist
            in
            let score = max est_down 1e-6 *. max est_up 1e-6 in
            if score > !best_score then begin
              best := v;
              best_score := score
            end
          end)
        int_vars;
      if !best = -1 then None else Some !best
  in
  let incumbent = Incumbent.create () in
  (* a restored incumbent re-enters the lattice silently: it was
     already counted, traced and logged by the run that found it *)
  let () =
    match restore with
    | Some { s_incumbent = Some c; _ } -> ignore (Incumbent.publish incumbent c)
    | _ -> ()
  in
  let inc_score_now () =
    match Incumbent.get incumbent with
    | Some c -> c.Incumbent.score
    | None -> infinity
  in
  (* live bound/gap watermark for /statusz: [score] is the relaxation
     bound of the node being expanded — in best-first wave order the
     global bound, in async mode the expanding worker's local view.
     Gauges are last-writer-wins, which is all a live view needs. *)
  let publish_bound_watermark score =
    let b = of_score score in
    Metrics.set (Lazy.force m_g_bound) b;
    let inc = inc_score_now () in
    if Float.is_finite inc then begin
      let i = of_score inc in
      Metrics.set (Lazy.force m_g_gap)
        (Float.abs (i -. b) /. Float.max 1e-9 (Float.abs i))
    end
  in
  (* could a candidate at [score] with minimal key [key] (or any
     candidate from a subtree bounded below by that pair) still become
     the final incumbent? The order is exact, so "no" is a proof and
     the work can be dropped on any domain without changing the
     result. *)
  let worth ~key score =
    match Incumbent.get incumbent with
    | None -> true
    | Some c ->
      score < c.Incumbent.score
      || (score = c.Incumbent.score && key < c.Incumbent.key)
  in
  let publish_candidate ~key primal score =
    if worth ~key score then begin
      (* snap integers exactly before the feasibility re-check *)
      let snapped = Array.copy primal in
      List.iter (fun v -> snapped.(v) <- Float.round snapped.(v)) int_vars;
      if Model.value_feasible ~tol:1e-6 model snapped then begin
        let c = { Incumbent.score; key; x = snapped } in
        if Incumbent.publish incumbent c then begin
          Metrics.incr (Lazy.force m_incumbents);
          Metrics.set (Lazy.force m_g_incumbent) (of_score score);
          if Trace.enabled sink then
            Trace.incumbent sink ~solver:"mip" ~node:(fst key)
              ~objective:(of_score score);
          if options.log then
            Printf.eprintf "[mip] incumbent %.6f\n%!" (of_score score)
        end
      end
    end
  in
  (* prune test mirroring the serial solver: a (sharpened) score at or
     above incumbent - gap_tolerance*(1+|incumbent|) cannot improve
     the answer by more than the accepted gap. False while no
     incumbent exists. *)
  let within_gap_of_incumbent score =
    match Incumbent.get incumbent with
    | None -> false
    | Some c ->
      score
      >= c.Incumbent.score
         -. (options.gap_tolerance *. (1.0 +. abs_float c.Incumbent.score))
  in
  (* LP diving: repeatedly fix the most fractional integer variable to
     its rounded value (retrying the opposite value if that kills
     feasibility) until the LP relaxation comes out integral. Much more
     reliable than one-shot rounding on covering-type programs, where
     rounding fractional openings down is almost always infeasible.
     Runs entirely on the domain that owns the node; the candidate is
     published under key (node seq, 1) so the deterministic incumbent
     order covers it. *)
  let diving_heuristic ~seq node primal0 basis0 =
    let lower = Array.copy node.lower and upper = Array.copy node.upper in
    let warm basis = if options.warm_start then Some basis else None in
    let rec dive primal basis fuel =
      if fuel >= 0 then
        match fractional_var primal with
        | None ->
          (* integral: re-solve once to get the continuous completion *)
          let sol =
            Simplex.solve ~lower ~upper ?basis:(warm basis) ~deadline
              ~options:lp_options problem
          in
          if sol.Simplex.status = Simplex.Optimal then
            publish_candidate ~key:(seq, 1) sol.Simplex.primal
              (to_score sol.Simplex.objective)
        | Some v ->
          let try_fix value =
            let saved_l = lower.(v) and saved_u = upper.(v) in
            lower.(v) <- value;
            upper.(v) <- value;
            let sol =
              Simplex.solve ~lower ~upper ?basis:(warm basis) ~deadline
                ~options:lp_options problem
            in
            if sol.Simplex.status = Simplex.Optimal then Some sol
            else begin
              lower.(v) <- saved_l;
              upper.(v) <- saved_u;
              None
            end
          in
          let rounded = Float.round primal.(v) in
          let rounded = max node.lower.(v) (min node.upper.(v) rounded) in
          let other =
            if rounded +. 1.0 <= upper.(v) +. 1e-9 then rounded +. 1.0
            else rounded -. 1.0
          in
          (match try_fix rounded with
          | Some sol -> dive sol.Simplex.primal sol.Simplex.basis (fuel - 1)
          | None -> (
            match try_fix other with
            | Some sol -> dive sol.Simplex.primal sol.Simplex.basis (fuel - 1)
            | None -> ()))
    in
    dive primal0 basis0 (List.length int_vars)
  in
  let jobs = resolved_jobs options in
  let wave_size = max 1 options.wave in
  (* steal-victim sweep order comes from per-worker split streams:
     deterministic to construct, irrelevant to results (stealing only
     moves a node between domains) *)
  let worker_prngs =
    (* restored positions keep the steal streams where the crashed run
       left them; on a jobs mismatch fresh streams are equally valid —
       steal order never affects results *)
    match restore with
    | Some s when Array.length s.s_prngs = jobs ->
      Array.map Prng.of_state s.s_prngs
    | _ ->
      let base = Prng.create 0x6d6f6e50 in
      Array.init jobs (fun _ -> Prng.split base)
  in
  let root =
    {
      lower =
        Array.init n (fun v -> Model.var_lb model (Model.var_of_index model v));
      upper =
        Array.init n (fun v -> Model.var_ub model (Model.var_of_index model v));
      depth = 0;
      seq = 0;
      branched = None;
      start_basis = None;
    }
  in
  let nodes = ref (match restore with Some s -> s.s_nodes | None -> 0) in
  let best_open_bound =
    ref (match restore with Some s -> s.s_best_open | None -> neg_infinity)
  in
  let root_unbounded = ref false in
  let infeasible_root =
    ref (match restore with Some s -> s.s_infeasible_root | None -> true)
  in
  (* Two tiers of stop flags. [merge_*] is what checkpoints persist:
     stops observed at merges (node iteration limits, in-flight
     deadline hits) are genuine search state that must survive a
     resume. A halt caused by this run's own max_nodes cut, deadline
     or preemption is an artifact of the interruption — the resumed
     run keeps searching — so it is absorbed only by the outer
     [stopped_at_limit]/[deadline_stop] flags that drive this run's
     result. Persisting the outer flags would permanently poison a
     resumed result's status. *)
  let merge_stopped =
    ref (match restore with Some s -> s.s_stopped | None -> false)
  in
  let merge_deadline =
    ref (match restore with Some s -> s.s_deadline_stop | None -> false)
  in
  let stopped_at_limit = ref !merge_stopped in
  let () = if !merge_deadline then deadline_stop := true in
  let preempted = ref false in

  (* -------------- deterministic wave scheduler -------------------

     The coordinator repeats: pop up to [wave] nodes from the
     best-bound heap (assigning node numbers, emitting bb_node events
     and deciding stop conditions — all heap-order-deterministic),
     dispatch them to the worker deques, barrier, then merge the LP
     outcomes in wave order. Everything order-sensitive — pseudocost
     updates, branching decisions, child seq assignment, bound
     pruning, chaos draws — happens at the merge, on this domain, in
     wave order; workers only solve LPs and offer candidates to the
     exact-ordered incumbent. Node counts, the incumbent, objective,
     bound and gap are therefore identical for every [jobs] value. *)
  let solve_deterministic () =
    let queue = H.create () in
    let next_seq = ref 1 in
    let pc = pc_create n in
    (match restore with
    | Some s ->
      (* verbatim internal arrays: pop order among equal keys is part
         of the determinism contract (see Heap.snapshot) *)
      H.restore queue s.s_heap_keys s.s_heap_nodes;
      next_seq := s.s_next_seq;
      List.iter
        (fun (v, d, dn, u, un) ->
          if v >= 0 && v < n then begin
            pc.pc_down.(v) <- d;
            pc.pc_down_n.(v) <- dn;
            pc.pc_up.(v) <- u;
            pc.pc_up_n.(v) <- un
          end)
        s.s_pc;
      if Trace.enabled sink then
        Trace.checkpoint_resume sink ~path:s.s_path ~nodes:s.s_nodes
          ~frontier:(H.size queue)
    | None -> H.push queue neg_infinity root);
    let process_task (t : task) =
      (* Scoped chaos is suppressed during node processing: a fault
         injected into one node LP (say a singular warm basis) is
         recovered to the same optimum but possibly a different basis
         and primal, and which domain solves which node is timing-
         dependent — letting it fire here would break jobs-invariance.
         Chaos still hits the deterministic coordinator points
         (deadline compression at entry, NaN poisoning at merge) and
         every LP solve outside the parallel section. *)
      Chaos.suppress @@ fun () ->
      let node = t.t_node in
      let sol =
        Simplex.solve ~lower:node.lower ~upper:node.upper
          ?basis:(if options.warm_start then node.start_basis else None)
          ~deadline ~options:lp_options problem
      in
      match sol.Simplex.status with
      | Simplex.Infeasible -> t.t_outcome <- O_infeasible
      | Simplex.Iteration_limit -> t.t_outcome <- O_iter_limit
      | Simplex.Deadline_reached -> t.t_outcome <- O_deadline
      | Simplex.Unbounded -> t.t_outcome <- O_unbounded
      | Simplex.Optimal ->
        let raw = to_score sol.Simplex.objective in
        (match fractional_var sol.Simplex.primal with
        | None ->
          publish_candidate ~key:(node.seq, 0) sol.Simplex.primal (sharpen raw)
        | Some _ ->
          (* skipping a provably-losing dive is result-invariant (see
             Incumbent); (node.seq, 1) bounds every candidate the dive
             could offer from below *)
          if t.t_dive && worth ~key:(node.seq, 1) raw then
            diving_heuristic ~seq:node.seq node sol.Simplex.primal
              sol.Simplex.basis);
        t.t_outcome <-
          O_optimal
            { raw; primal = sol.Simplex.primal; basis = sol.Simplex.basis }
    in
    let inline_nodes = lazy (m_nodes_w 0) in
    let pool =
      lazy
        (create_pool ~jobs ~prngs:worker_prngs
           ~process:(fun _w t -> process_task t)
           ~sink)
    in
    let process_inline t =
      process_task t;
      if jobs > 1 then Metrics.incr (Lazy.force inline_nodes)
    in
    (* singleton waves (the root above all) run inline on this domain:
       trivial solves never pay a spawn, and the root LP forces every
       kernel-internal lazy before a worker domain can race it *)
    let run_tasks = function
      | [] -> ()
      | [ t ] -> process_inline t
      | ts when jobs = 1 -> List.iter process_inline ts
      | ts -> run_wave (Lazy.force pool) worker_prngs.(0) ts
    in
    let searching = ref true in
    let merge (t : task) =
      let node = t.t_node in
      match t.t_outcome with
      | O_pending ->
        (* unreachable: a worker failure re-raises from run_wave
           before the merge runs *)
        assert false
      | O_infeasible -> ()
      | O_iter_limit ->
        (* treat as unresolved: keep the parent bound, re-queueing
           would loop, so give up on this subtree pessimistically by
           keeping it open in the bound accounting *)
        best_open_bound := min !best_open_bound t.t_bound;
        merge_stopped := true;
        stopped_at_limit := true
      | O_deadline ->
        (* same pessimistic accounting; the collection loop notices
           the expired deadline on the next wave *)
        best_open_bound := min !best_open_bound t.t_bound;
        merge_stopped := true;
        merge_deadline := true;
        stopped_at_limit := true;
        deadline_stop := true
      | O_unbounded ->
        infeasible_root := false;
        if node.depth = 0 then begin
          root_unbounded := true;
          searching := false
        end
      | O_optimal { raw; primal; basis } ->
        infeasible_root := false;
        (* NaN guard: a poisoned node objective would silently rank
           the subtree as best-possible in the heap and corrupt every
           bound downstream, so it is a typed numerical failure
           instead. Chaos poisons the score here — at the merge, a
           deterministic point, so the draw sequence is jobs-invariant
           — to prove the guard (and the ladder above it) works. *)
        let raw =
          if Chaos.fire ~site:"mip.nan_cost" ~p:0.05 () then Float.nan else raw
        in
        if Float.is_nan raw then
          Error.numerical ~stage:"mip.node_lp"
            ~detail:
              (Printf.sprintf "NaN relaxation objective at node %d" t.t_num);
        record_pseudocost pc node raw;
        let score = sharpen raw in
        if within_gap_of_incumbent score then begin
          Metrics.incr (Lazy.force m_prunes);
          if Trace.enabled sink then
            Trace.bound_pruned sink ~solver:"mip" ~node:t.t_num
              ~bound:(of_score score)
              ~incumbent:(of_score (inc_score_now ()))
        end
        else (
          match branch_var pc primal with
          | None ->
            (* integral: the candidate was already offered worker-side
               under key (seq, 0) *)
            ()
          | Some v ->
            let x = primal.(v) in
            let f = floor (x +. itol) in
            let frac = x -. f in
            (* both children differ from this node by one bound, so
               this relaxation's basis stays dual feasible for them *)
            let child_basis = Some basis in
            let down =
              {
                node with
                upper = Array.copy node.upper;
                depth = node.depth + 1;
                seq = !next_seq;
                branched = Some (v, `Down, raw, frac);
                start_basis = child_basis;
              }
            in
            down.upper.(v) <- f;
            let up =
              {
                node with
                lower = Array.copy node.lower;
                depth = node.depth + 1;
                seq = !next_seq + 1;
                branched = Some (v, `Up, raw, frac);
                start_basis = child_basis;
              }
            in
            up.lower.(v) <- f +. 1.0;
            next_seq := !next_seq + 2;
            if down.upper.(v) >= down.lower.(v) -. 1e-9 then
              H.push queue score down;
            if up.lower.(v) <= up.upper.(v) +. 1e-9 then H.push queue score up)
    in
    (* Checkpoint writes happen here — at a wave barrier, on the
       coordinating domain, with no task in flight — so the heap, the
       pseudocosts and [next_seq] are a consistent snapshot of the
       search. [merge_*] (not the outer stop flags) are what goes to
       disk; see their definition above. *)
    let last_ck = ref (Clock.now ()) in
    let ck_seconds = ref 0.0 in
    let write_checkpoint () =
      match options.checkpoint with
      | None -> ()
      | Some path ->
        let t0 = Clock.now () in
        let lines =
          ck_encode ~model ~options
            ~elapsed:(elapsed_base +. Deadline.elapsed deadline)
            ~nodes:!nodes ~next_seq:!next_seq ~best_open:!best_open_bound
            ~stopped:!merge_stopped ~deadline_stop:!merge_deadline
            ~infeasible_root:!infeasible_root
            ~incumbent:(Incumbent.get incumbent)
            ~pc ~prngs:worker_prngs ~queue
        in
        Ckpt.write ~path ~magic:ck_magic ~version:ck_version lines;
        let dt = Clock.now () -. t0 in
        ck_seconds := !ck_seconds +. dt;
        Metrics.incr (Lazy.force m_ck_writes);
        Metrics.set (Lazy.force m_g_ck_clock) (Clock.now ());
        Metrics.set (Lazy.force m_g_ck_seconds) !ck_seconds;
        if Trace.enabled sink then
          Trace.checkpoint_write sink ~path ~nodes:!nodes
            ~frontier:(H.size queue) ~seconds:dt;
        last_ck := Clock.now ();
        process_kill_site ()
    in
    Fun.protect
      ~finally:(fun () -> if Lazy.is_val pool then shutdown (Lazy.force pool))
    @@ fun () ->
    while !searching do
      if Preempt.requested () then begin
        (* cooperative preemption lands exactly like a node-budget
           stop: the incumbent and the certified bound remain valid,
           and the final checkpoint below captures the frontier *)
        preempted := true;
        stopped_at_limit := true;
        searching := false;
        if Trace.enabled sink then
          Trace.preempt_stop sink ~phase:"mip" ~nodes:!nodes;
        Flightrec.trigger ~reason:"preempt"
      end
      else begin
        let halt = ref false in
        let rev_tasks = ref [] in
        let count = ref 0 in
        let filling = ref true in
        while !filling && !count < wave_size do
          match H.min queue with
          | None -> filling := false
          | Some (parent_bound, node) ->
            if !nodes >= options.max_nodes || Deadline.expired deadline
            then begin
              (* peek, don't pop: the node stays on the heap so the
                 final checkpoint and the post-loop drain both see the
                 complete frontier *)
              if Deadline.expired deadline then deadline_stop := true;
              stopped_at_limit := true;
              halt := true;
              filling := false
            end
            else if within_gap_of_incumbent parent_bound then begin
              (* best-first: every remaining node is at least as bad *)
              ignore (H.pop_min queue);
              if Trace.enabled sink then
                Trace.bound_pruned sink ~solver:"mip" ~node:!nodes
                  ~bound:(of_score parent_bound)
                  ~incumbent:(of_score (inc_score_now ()));
              best_open_bound := min !best_open_bound parent_bound;
              halt := true;
              filling := false
            end
            else begin
              ignore (H.pop_min queue);
              incr nodes;
              incr count;
              Metrics.incr (Lazy.force m_nodes);
              publish_bound_watermark parent_bound;
              if Trace.enabled sink then begin
                let w = Sampler.decide Sampler.Bb_node in
                if w > 0 then
                  Trace.bb_node sink ~sampled_of:w ~solver:"mip" ~node:!nodes
                    ~depth:node.depth ~bound:(of_score parent_bound) ()
              end;
              let t_dive =
                options.heuristic_period > 0
                && (!nodes = 1 || !nodes mod options.heuristic_period = 0)
              in
              rev_tasks :=
                {
                  t_node = node;
                  t_bound = parent_bound;
                  t_num = !nodes;
                  t_dive;
                  t_tries = 0;
                  t_outcome = O_pending;
                }
                :: !rev_tasks
            end
        done;
        let tasks = List.rev !rev_tasks in
        if tasks = [] && not !halt then searching := false
        else begin
          run_tasks tasks;
          List.iter merge tasks;
          if !halt then searching := false;
          if
            !searching
            && options.checkpoint <> None
            && Clock.now () -. !last_ck >= options.checkpoint_every
          then write_checkpoint ()
        end
      end
    done;
    (* interrupted (budget, deadline or preemption): one final
       checkpoint before the heap is drained, so a resume restarts
       from exactly this barrier *)
    if !stopped_at_limit then write_checkpoint ();
    (* fold any still-queued nodes into the bound *)
    if !stopped_at_limit then begin
      let rec drain () =
        match H.pop_min queue with
        | None -> ()
        | Some (b, _) ->
          best_open_bound := min !best_open_bound b;
          drain ()
      in
      drain ()
    end
  in

  (* -------------- free-running async scheduler --------------------

     No waves, no barriers: every slot runs a full best-effort B&B
     loop over its own deque, branching locally with per-worker
     pseudocosts and pruning immediately against the shared atomic
     incumbent, stealing from the top of a random victim when its own
     deque runs dry. Termination is an atomic count of queued-or-in-
     flight nodes. Faster on deep trees than the wave scheduler, but
     the tree shape depends on scheduling — results can differ run to
     run within the optimality gap, and chaos stays armed on every
     domain (firing sites are schedule-dependent). *)
  let solve_async () =
    let a_nodes = Atomic.make 0 in
    let a_seq = Atomic.make 1 in
    let a_open = Atomic.make 1 in
    let a_halt = Atomic.make false in
    let a_limit = Atomic.make false in
    let a_deadline = Atomic.make false in
    let a_unbounded = Atomic.make false in
    let a_preempt = Atomic.make false in
    let a_feasible = Atomic.make false in
    let a_failure : exn option Atomic.t = Atomic.make None in
    let deques = Array.init jobs (fun _ -> Wsdeque.create ()) in
    let steals = Array.make jobs 0 in
    let idle = Array.make jobs 0.0 in
    let folded = Array.make jobs infinity in
    let w_nodes = if jobs > 1 then Some (Array.init jobs m_nodes_w) else None in
    let pcs = Array.init jobs (fun _ -> pc_create n) in
    let fold w b = folded.(w) <- min folded.(w) b in
    let fail_with e =
      let rec store () =
        match Atomic.get a_failure with
        | Some _ -> ()
        | None ->
          if not (Atomic.compare_and_set a_failure None (Some e)) then store ()
      in
      store ();
      Atomic.set a_halt true
    in
    let process_node w (node, parent_bound) =
      if Atomic.get a_halt then fold w parent_bound
      else if
        Atomic.get a_nodes >= options.max_nodes
        || Deadline.expired deadline
        || Preempt.requested ()
      then begin
        if Deadline.expired deadline then Atomic.set a_deadline true;
        if Preempt.requested () then Atomic.set a_preempt true;
        Atomic.set a_limit true;
        Atomic.set a_halt true;
        fold w parent_bound
      end
      else if within_gap_of_incumbent parent_bound then begin
        Metrics.incr (Lazy.force m_prunes);
        if Trace.enabled sink then
          Trace.bound_pruned sink ~solver:"mip" ~node:(Atomic.get a_nodes)
            ~bound:(of_score parent_bound)
            ~incumbent:(of_score (inc_score_now ()))
      end
      else begin
        let num = 1 + Atomic.fetch_and_add a_nodes 1 in
        Metrics.incr (Lazy.force m_nodes);
        (match w_nodes with Some a -> Metrics.incr a.(w) | None -> ());
        publish_bound_watermark parent_bound;
        if Trace.enabled sink then begin
          let sw = Sampler.decide Sampler.Bb_node in
          if sw > 0 then
            Trace.bb_node sink ~sampled_of:sw ~solver:"mip" ~node:num
              ~depth:node.depth ~bound:(of_score parent_bound) ()
        end;
        let sol =
          Simplex.solve ~lower:node.lower ~upper:node.upper
            ?basis:(if options.warm_start then node.start_basis else None)
            ~deadline ~options:lp_options problem
        in
        match sol.Simplex.status with
        | Simplex.Infeasible -> ()
        | Simplex.Iteration_limit ->
          fold w parent_bound;
          Atomic.set a_limit true
        | Simplex.Deadline_reached ->
          fold w parent_bound;
          Atomic.set a_limit true;
          Atomic.set a_deadline true;
          Atomic.set a_halt true
        | Simplex.Unbounded ->
          Atomic.set a_feasible true;
          if node.depth = 0 then begin
            Atomic.set a_unbounded true;
            Atomic.set a_halt true
          end
        | Simplex.Optimal -> (
          Atomic.set a_feasible true;
          let raw = to_score sol.Simplex.objective in
          let raw =
            if Chaos.fire ~site:"mip.nan_cost" ~p:0.05 () then Float.nan
            else raw
          in
          if Float.is_nan raw then
            Error.numerical ~stage:"mip.node_lp"
              ~detail:
                (Printf.sprintf "NaN relaxation objective at node %d" num);
          record_pseudocost pcs.(w) node raw;
          let score = sharpen raw in
          if within_gap_of_incumbent score then begin
            Metrics.incr (Lazy.force m_prunes);
            if Trace.enabled sink then
              Trace.bound_pruned sink ~solver:"mip" ~node:num
                ~bound:(of_score score)
                ~incumbent:(of_score (inc_score_now ()))
          end
          else
            match branch_var pcs.(w) sol.Simplex.primal with
            | None ->
              publish_candidate ~key:(node.seq, 0) sol.Simplex.primal score
            | Some v ->
              if
                options.heuristic_period > 0
                && (num = 1 || num mod options.heuristic_period = 0)
              then
                diving_heuristic ~seq:node.seq node sol.Simplex.primal
                  sol.Simplex.basis;
              let x = sol.Simplex.primal.(v) in
              let f = floor (x +. itol) in
              let frac = x -. f in
              let child_basis = Some sol.Simplex.basis in
              let s = Atomic.fetch_and_add a_seq 2 in
              let down =
                {
                  node with
                  upper = Array.copy node.upper;
                  depth = node.depth + 1;
                  seq = s;
                  branched = Some (v, `Down, raw, frac);
                  start_basis = child_basis;
                }
              in
              down.upper.(v) <- f;
              let up =
                {
                  node with
                  lower = Array.copy node.lower;
                  depth = node.depth + 1;
                  seq = s + 1;
                  branched = Some (v, `Up, raw, frac);
                  start_basis = child_basis;
                }
              in
              up.lower.(v) <- f +. 1.0;
              if down.upper.(v) >= down.lower.(v) -. 1e-9 then begin
                Atomic.incr a_open;
                Wsdeque.push deques.(w) (down, score)
              end;
              if up.lower.(v) <= up.upper.(v) +. 1e-9 then begin
                Atomic.incr a_open;
                Wsdeque.push deques.(w) (up, score)
              end)
      end
    in
    let worker w prng =
      let find () =
        match Wsdeque.pop deques.(w) with
        | Some _ as t -> t
        | None ->
          let start = Prng.int prng jobs in
          let rec sweep i =
            if i = jobs then None
            else
              let v = (start + i) mod jobs in
              if v = w then sweep (i + 1)
              else
                match Wsdeque.steal deques.(v) with
                | Some _ as t ->
                  steals.(w) <- steals.(w) + 1;
                  t
                | None -> sweep (i + 1)
          in
          sweep 0
      in
      let rec loop () =
        match find () with
        | Some task ->
          (try process_node w task with e -> fail_with e);
          ignore (Atomic.fetch_and_add a_open (-1));
          loop ()
        | None ->
          if Atomic.get a_open > 0 then begin
            let t0 = Clock.now () in
            Domain.cpu_relax ();
            idle.(w) <- idle.(w) +. (Clock.now () -. t0);
            loop ()
          end
      in
      loop ();
      if w > 0 then Trace.flush sink
    in
    (* the root runs inline on this domain before any spawn, forcing
       kernel-internal lazies and skipping domain setup entirely for
       models whose root relaxation decides the solve *)
    (try process_node 0 (root, neg_infinity) with e -> fail_with e);
    ignore (Atomic.fetch_and_add a_open (-1));
    let domains =
      if jobs > 1 && Atomic.get a_open > 0 && not (Atomic.get a_halt) then
        Array.init (jobs - 1) (fun i ->
            let w = i + 1 in
            Domain.spawn (fun () -> worker w worker_prngs.(w)))
      else [||]
    in
    worker 0 worker_prngs.(0);
    Array.iter Domain.join domains;
    nodes := Atomic.get a_nodes;
    if Atomic.get a_limit then stopped_at_limit := true;
    if Atomic.get a_deadline then deadline_stop := true;
    if Atomic.get a_preempt then begin
      (* no checkpoint in async mode: the tree shape is schedule-
         dependent, so there is no consistent frontier to persist —
         the incumbent and certified gap are still reported *)
      preempted := true;
      if Trace.enabled sink then
        Trace.preempt_stop sink ~phase:"mip" ~nodes:!nodes;
      Flightrec.trigger ~reason:"preempt"
    end;
    if Atomic.get a_unbounded then root_unbounded := true;
    if Atomic.get a_feasible then infeasible_root := false;
    let fb = Array.fold_left min infinity folded in
    if fb < infinity then best_open_bound := min !best_open_bound fb;
    let stolen = Array.fold_left ( + ) 0 steals in
    if stolen > 0 then Metrics.add (Lazy.force m_steals) stolen;
    if jobs > 1 then
      Array.iteri
        (fun w s ->
          if s > 0.0 then begin
            let g = m_idle_w w in
            Metrics.set g (Metrics.gauge_value g +. s)
          end)
        idle;
    match Atomic.get a_failure with Some e -> raise e | None -> ()
  in
  if options.deterministic then solve_deterministic () else solve_async ();
  let inc = Incumbent.get incumbent in
  let inc_score =
    match inc with Some c -> c.Incumbent.score | None -> infinity
  in
  let bound_score =
    if !stopped_at_limit then min !best_open_bound inc_score
    else if !best_open_bound > neg_infinity then min !best_open_bound inc_score
    else inc_score
  in
  let gap =
    if inc_score = infinity || bound_score = neg_infinity then infinity
    else (inc_score -. bound_score) /. max 1.0 (abs_float inc_score)
  in
  let status =
    if !root_unbounded then Unbounded
    else
      match inc with
      | Some _ ->
        if (not !stopped_at_limit) || gap <= options.gap_tolerance then Optimal
        else Feasible
      | None -> if !stopped_at_limit then No_solution else Infeasible
  in
  if !deadline_stop then begin
    if Trace.enabled sink then
      Trace.deadline_hit sink ~phase:"mip" ~elapsed:(Deadline.elapsed deadline)
        ~budget;
    if options.log then
      Printf.eprintf "[mip] deadline hit after %.3fs (budget %.3fs)\n%!"
        (Deadline.elapsed deadline) budget
  end;
  {
    status;
    objective =
      (match inc with Some c -> of_score c.Incumbent.score | None -> nan);
    solution = (match inc with Some c -> Some c.Incumbent.x | None -> None);
    bound = of_score bound_score;
    nodes = !nodes;
    gap = (if status = Optimal then 0.0 else gap);
    deadline_hit = !deadline_stop;
    preempted = !preempted;
  }
  end

let solve ?(options = default_options) model =
  solve_gen ~options ~restore:None model

(* Options split on resume: the checkpoint owns everything that shapes
   the search tree (branching rule, tolerances, heuristic period, warm
   start, kernel, wave size) — honoring caller overrides there would
   silently break the bit-identity contract. The caller keeps the
   run-environment knobs: jobs (results are jobs-invariant), budgets,
   logging and where the next checkpoint goes (defaulting to
   overwriting the file being resumed). *)
let resume ?(options = default_options) path =
  let version, body = Ckpt.load ~path ~magic:ck_magic in
  if version <> ck_version then
    Error.parse_error ~file:path ~line:1
      (Printf.sprintf
         "unsupported checkpoint version %d (this build reads version %d)"
         version ck_version);
  let s = ck_decode ~path body in
  let options =
    {
      s.s_options with
      jobs = options.jobs;
      max_nodes = options.max_nodes;
      time_limit = options.time_limit;
      log = options.log;
      checkpoint =
        (match options.checkpoint with None -> Some path | c -> c);
      checkpoint_every = options.checkpoint_every;
    }
  in
  solve_gen ~options ~restore:(Some s) s.s_model

(* Shared by every caller that needs a typed error out of a result
   that carries no usable solution: infeasibility and unboundedness
   are properties of the model, a deadline stop is a deadline error,
   anything else (node budget, iteration limits) is internal. *)
let fail ?options ~stage r =
  match r.status with
  | Infeasible -> Error.infeasible (stage ^ ": no feasible solution exists")
  | Unbounded -> Error.numerical ~stage ~detail:"relaxation unbounded"
  | _ when r.deadline_hit ->
    let limit = (Option.value options ~default:default_options).time_limit in
    Error.deadline_exceeded ~phase:stage ~elapsed:limit
  | _ ->
    Error.internal
      (Printf.sprintf "%s: solver stopped without a solution after %d nodes"
         stage r.nodes)

let solve_or_fail ?options model =
  let r = solve ?options model in
  match (r.status, r.solution) with
  | Optimal, Some x -> (x, r.objective)
  | _ -> fail ?options ~stage:"Mip.solve_or_fail" r
